//! 4-D tensors in NCHW layout for convolutional layers.

use core::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// A dense 4-D tensor with `(batch, channels, height, width)` layout —
/// the standard NCHW arrangement for convolutional networks.
///
/// ```
/// use cryptonn_matrix::Tensor4;
///
/// let mut t = Tensor4::zeros(1, 1, 2, 2);
/// t[(0, 0, 1, 1)] = 5.0;
/// assert_eq!(t[(0, 0, 1, 1)], 5.0);
/// assert_eq!(t.shape(), (1, 1, 2, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor4 {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f64>,
}

impl Tensor4 {
    /// Creates a zero tensor.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        assert!(
            n > 0 && c > 0 && h > 0 && w > 0,
            "tensor dimensions must be positive"
        );
        Self {
            n,
            c,
            h,
            w,
            data: vec![0.0; n * c * h * w],
        }
    }

    /// Creates a tensor from an NCHW-ordered data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n*c*h*w` or any dimension is zero.
    pub fn from_vec(n: usize, c: usize, h: usize, w: usize, data: Vec<f64>) -> Self {
        assert!(
            n > 0 && c > 0 && h > 0 && w > 0,
            "tensor dimensions must be positive"
        );
        assert_eq!(data.len(), n * c * h * w, "data length must equal n*c*h*w");
        Self { n, c, h, w, data }
    }

    /// `(batch, channels, height, width)`.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Batch size.
    pub fn batch(&self) -> usize {
        self.n
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Spatial height.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Spatial width.
    pub fn width(&self) -> usize {
        self.w
    }

    /// The underlying NCHW data slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the NCHW data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    #[inline]
    fn offset(&self, n: usize, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && y < self.h && x < self.w);
        ((n * self.c + c) * self.h + y) * self.w + x
    }

    /// One image plane `(n, c)` as an `h × w` matrix copy.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `c` is out of range.
    pub fn plane(&self, n: usize, c: usize) -> Matrix<f64> {
        assert!(n < self.n && c < self.c, "plane index out of bounds");
        let start = self.offset(n, c, 0, 0);
        Matrix::from_vec(
            self.h,
            self.w,
            self.data[start..start + self.h * self.w].to_vec(),
        )
    }

    /// Zero-pads every spatial plane by `pad` on each side.
    pub fn pad(&self, pad: usize) -> Self {
        if pad == 0 {
            return self.clone();
        }
        let mut out = Self::zeros(self.n, self.c, self.h + 2 * pad, self.w + 2 * pad);
        for n in 0..self.n {
            for c in 0..self.c {
                for y in 0..self.h {
                    let src = self.offset(n, c, y, 0);
                    let dst = out.offset(n, c, y + pad, pad);
                    out.data[dst..dst + self.w].copy_from_slice(&self.data[src..src + self.w]);
                }
            }
        }
        out
    }

    /// Flattens to `(batch, c*h*w)` — the Flatten layer's forward shape.
    pub fn flatten(&self) -> Matrix<f64> {
        Matrix::from_vec(self.n, self.c * self.h * self.w, self.data.clone())
    }

    /// Rebuilds a tensor from a `(batch, c*h*w)` matrix — the Flatten
    /// layer's backward shape.
    ///
    /// # Panics
    ///
    /// Panics if `m.cols() != c*h*w`.
    pub fn from_flat(m: &Matrix<f64>, c: usize, h: usize, w: usize) -> Self {
        assert_eq!(m.cols(), c * h * w, "flat width must equal c*h*w");
        Self::from_vec(m.rows(), c, h, w, m.as_slice().to_vec())
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Self {
            data: self.data.iter().map(|&v| f(v)).collect(),
            ..*self
        }
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        Self {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
            ..*self
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Self {
        self.map(|v| v * s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// True when every element differs from `other` by at most `tol`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize, usize, usize)> for Tensor4 {
    type Output = f64;

    fn index(&self, (n, c, y, x): (usize, usize, usize, usize)) -> &f64 {
        assert!(
            n < self.n && c < self.c && y < self.h && x < self.w,
            "tensor index out of bounds"
        );
        &self.data[self.offset(n, c, y, x)]
    }
}

impl IndexMut<(usize, usize, usize, usize)> for Tensor4 {
    fn index_mut(&mut self, (n, c, y, x): (usize, usize, usize, usize)) -> &mut f64 {
        assert!(
            n < self.n && c < self.c && y < self.h && x < self.w,
            "tensor index out of bounds"
        );
        let off = self.offset(n, c, y, x);
        &mut self.data[off]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_layout() {
        let mut t = Tensor4::zeros(2, 3, 4, 5);
        t[(1, 2, 3, 4)] = 9.0;
        assert_eq!(t.as_slice()[((3 + 2) * 4 + 3) * 5 + 4], 9.0);
        assert_eq!(t[(1, 2, 3, 4)], 9.0);
        assert_eq!(t[(0, 0, 0, 0)], 0.0);
    }

    #[test]
    fn pad_surrounds_with_zeros() {
        let t = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let p = t.pad(1);
        assert_eq!(p.shape(), (1, 1, 4, 4));
        assert_eq!(p[(0, 0, 0, 0)], 0.0);
        assert_eq!(p[(0, 0, 1, 1)], 1.0);
        assert_eq!(p[(0, 0, 2, 2)], 4.0);
        assert_eq!(p[(0, 0, 3, 3)], 0.0);
        // pad(0) is identity.
        assert_eq!(t.pad(0), t);
    }

    #[test]
    fn flatten_roundtrip() {
        let t = Tensor4::from_vec(2, 2, 2, 2, (0..16).map(f64::from).collect());
        let flat = t.flatten();
        assert_eq!(flat.shape(), (2, 8));
        assert_eq!(Tensor4::from_flat(&flat, 2, 2, 2), t);
    }

    #[test]
    fn plane_extracts_matrix() {
        let t = Tensor4::from_vec(1, 2, 2, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let p = t.plane(0, 1);
        assert_eq!(p, Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]));
    }

    #[test]
    fn arithmetic() {
        let t = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.scale(2.0).sum(), 20.0);
        assert_eq!(t.add(&t), t.scale(2.0));
        assert!(t.map(|v| v + 1.0).approx_eq(
            &Tensor4::from_vec(1, 1, 2, 2, vec![2.0, 3.0, 4.0, 5.0]),
            1e-12
        ));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_bounds_checked() {
        let t = Tensor4::zeros(1, 1, 2, 2);
        let _ = t[(0, 0, 2, 0)];
    }
}
