//! Dense row-major matrices.
//!
//! The paper's prototype uses NumPy 2-D arrays for all neural-network
//! math; [`Matrix`] is the equivalent here. It is generic over the
//! element type so the same structure serves floating-point model math
//! (`Matrix<f64>`) and fixed-point/encrypted-domain integers
//! (`Matrix<i64>`).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A dense, row-major `rows × cols` matrix.
///
/// ```
/// use cryptonn_matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// assert_eq!(a[(1, 0)], 3.0);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: fmt::Debug> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix({}x{}) [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            f.debug_list()
                .entries(self.data[r * self.cols..(r + 1) * self.cols].iter())
                .finish()?;
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl<T: Copy + Default> Matrix<T> {
    /// Creates a matrix filled with `T::default()` (zero for numbers).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T: Copy> Matrix<T> {
    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(
            data.len(),
            rows * cols,
            "data length must equal rows * cols"
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty or have unequal lengths.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false (construction forbids empty matrices); provided for
    /// API completeness alongside [`len`](Self::len).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major data slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major data vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element at `(row, col)`, or `None` if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<&T> {
        if row < self.rows && col < self.cols {
            Some(&self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// A row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// A column, copied into a vector.
    ///
    /// # Panics
    ///
    /// Panics if `col >= cols`.
    pub fn col(&self, col: usize) -> Vec<T> {
        assert!(col < self.cols, "column index out of bounds");
        (0..self.rows)
            .map(|r| self.data[r * self.cols + col])
            .collect()
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks_exact(self.cols)
    }

    /// The transpose.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self.data[c * self.cols + r])
    }

    /// Applies `f` to every element, producing a new matrix.
    pub fn map<U: Copy>(&self, f: impl Fn(T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Combines two equal-shape matrices element-wise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map<U: Copy, V: Copy>(&self, other: &Matrix<U>, f: impl Fn(T, U) -> V) -> Matrix<V> {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Stacks `self` above `other`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn vstack(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.cols, "column count mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Self {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }
}

impl<T> Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    fn index(&self, (row, col): (usize, usize)) -> &T {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        &self.data[row * self.cols + col]
    }
}

impl<T> IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut T {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        &mut self.data[row * self.cols + col]
    }
}

impl<T> Matrix<T>
where
    T: Copy + Default + Add<Output = T> + Mul<Output = T> + AddAssign,
{
    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = vec![T::default(); self.rows * other.cols];
        // ikj loop order keeps the inner loop contiguous in both `other`
        // and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                let row_out = &mut out[i * other.cols..(i + 1) * other.cols];
                let row_b = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in row_out.iter_mut().zip(row_b) {
                    *o += a * b;
                }
            }
        }
        Self {
            rows: self.rows,
            cols: other.cols,
            data: out,
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> T {
        let mut acc = T::default();
        for &v in &self.data {
            acc += v;
        }
        acc
    }

    /// Per-column sums as a `1 × cols` matrix (NumPy `sum(axis=0)`).
    pub fn sum_rows(&self) -> Self {
        let mut out = vec![T::default(); self.cols];
        for row in self.iter_rows() {
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        Self {
            rows: 1,
            cols: self.cols,
            data: out,
        }
    }

    /// Per-row sums as a `rows × 1` matrix (NumPy `sum(axis=1)`).
    pub fn sum_cols(&self) -> Self {
        let data = self
            .iter_rows()
            .map(|row| {
                let mut acc = T::default();
                for &v in row {
                    acc += v;
                }
                acc
            })
            .collect();
        Self {
            rows: self.rows,
            cols: 1,
            data,
        }
    }

    /// Identity matrix of size `n`, using `T::default()` as zero and
    /// requiring a unit produced by `one`.
    pub fn identity_with(n: usize, one: T) -> Self {
        let mut m = Self {
            rows: n,
            cols: n,
            data: vec![T::default(); n * n],
        };
        for i in 0..n {
            m.data[i * n + i] = one;
        }
        m
    }

    /// Adds `row` (a `1 × cols` matrix) to every row — NumPy-style bias
    /// broadcast.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not `1 × self.cols`.
    pub fn add_row_broadcast(&self, row: &Self) -> Self {
        assert_eq!(row.rows, 1, "broadcast operand must be a single row");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        let mut out = self.clone();
        for r in out.data.chunks_exact_mut(self.cols) {
            for (o, &b) in r.iter_mut().zip(&row.data) {
                *o += b;
            }
        }
        out
    }

    /// Adds `col` (a `rows × 1` matrix) to every column.
    ///
    /// # Panics
    ///
    /// Panics if `col` is not `self.rows × 1`.
    pub fn add_col_broadcast(&self, col: &Self) -> Self {
        assert_eq!(col.cols, 1, "broadcast operand must be a single column");
        assert_eq!(col.rows, self.rows, "broadcast height mismatch");
        let mut out = self.clone();
        for (r, row) in out.data.chunks_exact_mut(self.cols).enumerate() {
            for o in row.iter_mut() {
                *o += col.data[r];
            }
        }
        out
    }
}

impl<T> Matrix<T>
where
    T: Copy + Add<Output = T>,
{
    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a + b)
    }
}

impl<T> Matrix<T>
where
    T: Copy + Sub<Output = T>,
{
    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a - b)
    }
}

impl<T> Matrix<T>
where
    T: Copy + Mul<Output = T>,
{
    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `scalar`.
    pub fn scale(&self, scalar: T) -> Self {
        self.map(|v| v * scalar)
    }
}

impl<T> Matrix<T>
where
    T: Copy + Neg<Output = T>,
{
    /// Element-wise negation.
    pub fn neg(&self) -> Self {
        self.map(|v| -v)
    }
}

impl Matrix<f64> {
    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self::identity_with(n, 1.0)
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        self.sum() / self.data.len() as f64
    }

    /// Index of the maximum element in each row (NumPy
    /// `argmax(axis=1)`); ties resolve to the first maximum.
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.iter_rows()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .fold((0, f64::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Frobenius-norm distance to another matrix, for approximate
    /// comparisons in tests.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn distance(&self, other: &Self) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Element-wise quotient.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn div_elem(&self, other: &Self) -> Self {
        self.zip_map(other, Div::div)
    }

    /// True when every element differs from `other` by at most `tol`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix<f64> {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn construction_and_shape() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.len(), 6);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.get(0, 3), None);
        assert_eq!(m.get(1, 2), Some(&6.0));
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_checks_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn from_rows_checks_raggedness() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn rows_cols_access() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity() {
        let m = sample();
        assert_eq!(m.matmul(&Matrix::identity(3)), m);
        assert_eq!(Matrix::identity(2).matmul(&m), m);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let m = sample();
        let _ = m.matmul(&sample());
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]);
        assert_eq!(
            a.add(&b),
            Matrix::from_rows(&[&[11.0, 22.0], &[33.0, 44.0]])
        );
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[9.0, 18.0], &[27.0, 36.0]]));
        assert_eq!(
            a.hadamard(&b),
            Matrix::from_rows(&[&[10.0, 40.0], &[90.0, 160.0]])
        );
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0], &[6.0, 8.0]]));
        assert_eq!(a.neg()[(0, 0)], -1.0);
        assert_eq!(
            b.div_elem(&a),
            Matrix::from_rows(&[&[10.0, 10.0], &[10.0, 10.0]])
        );
    }

    #[test]
    fn sums_and_means() {
        let m = sample();
        assert_eq!(m.sum(), 21.0);
        assert_eq!(m.mean(), 3.5);
        assert_eq!(m.sum_rows(), Matrix::from_rows(&[&[5.0, 7.0, 9.0]]));
        assert_eq!(m.sum_cols(), Matrix::from_rows(&[&[6.0], &[15.0]]));
    }

    #[test]
    fn broadcasts() {
        let m = sample();
        let bias = Matrix::from_rows(&[&[10.0, 20.0, 30.0]]);
        let out = m.add_row_broadcast(&bias);
        assert_eq!(
            out,
            Matrix::from_rows(&[&[11.0, 22.0, 33.0], &[14.0, 25.0, 36.0]])
        );
        let col = Matrix::from_rows(&[&[100.0], &[200.0]]);
        let out = m.add_col_broadcast(&col);
        assert_eq!(
            out,
            Matrix::from_rows(&[&[101.0, 102.0, 103.0], &[204.0, 205.0, 206.0]])
        );
    }

    #[test]
    fn argmax_rows_with_ties() {
        let m = Matrix::from_rows(&[&[0.1, 0.9, 0.5], &[2.0, 2.0, 1.0], &[-3.0, -1.0, -2.0]]);
        assert_eq!(m.argmax_rows(), vec![1, 0, 1]);
    }

    #[test]
    fn vstack_and_map() {
        let m = sample();
        let stacked = m.vstack(&m);
        assert_eq!(stacked.shape(), (4, 3));
        assert_eq!(stacked.row(2), m.row(0));
        let ints: Matrix<i64> = m.map(|v| v as i64);
        assert_eq!(ints[(1, 2)], 6);
    }

    #[test]
    fn integer_matrices_work() {
        let a: Matrix<i64> = Matrix::from_rows(&[&[1, -2], &[3, 4]]);
        let b: Matrix<i64> = Matrix::from_rows(&[&[5, 6], &[-7, 8]]);
        assert_eq!(a.matmul(&b)[(0, 0)], 19);
        assert_eq!(a.add(&b)[(1, 0)], -4);
        assert_eq!(a.sum(), 6);
    }

    #[test]
    fn distance_and_approx_eq() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0, 2.5]]);
        assert!((a.distance(&b) - 0.5).abs() < 1e-12);
        assert!(a.approx_eq(&b, 0.5));
        assert!(!a.approx_eq(&b, 0.4));
    }
}
