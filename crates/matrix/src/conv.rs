//! Convolution lowering: im2col / col2im and a reference conv2d.
//!
//! The paper's Fig. 2 describes the sliding-window view of a padded
//! image; `im2col` materializes exactly those windows as matrix rows so
//! that convolution becomes one matrix product (and, in the secure
//! variant, one batch of FEIP inner products — Algorithm 3 encrypts the
//! same windows).

use crate::matrix::Matrix;
use crate::tensor::Tensor4;

/// Geometry of a convolution: kernel size, stride and zero padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both spatial dimensions).
    pub stride: usize,
    /// Zero padding on every side.
    pub pad: usize,
}

impl ConvSpec {
    /// A square kernel with the given size, stride and padding.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `stride` is zero.
    pub fn square(k: usize, stride: usize, pad: usize) -> Self {
        assert!(k > 0 && stride > 0, "kernel and stride must be positive");
        Self {
            kh: k,
            kw: k,
            stride,
            pad,
        }
    }

    /// Output spatial size for an `h × w` input.
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the kernel.
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        let ph = h + 2 * self.pad;
        let pw = w + 2 * self.pad;
        assert!(
            ph >= self.kh && pw >= self.kw,
            "kernel larger than padded input"
        );
        (
            (ph - self.kh) / self.stride + 1,
            (pw - self.kw) / self.stride + 1,
        )
    }
}

/// Lowers sliding windows to matrix rows.
///
/// The output has one row per `(batch, out_y, out_x)` window, ordered
/// batch-major, and `C·kh·kw` columns ordered channel-major — so
/// `im2col(x) · wᵀ` (with `w` of shape `out_c × C·kh·kw`) computes the
/// convolution.
pub fn im2col(input: &Tensor4, spec: &ConvSpec) -> Matrix<f64> {
    let (n, c, h, w) = input.shape();
    let (oh, ow) = spec.output_size(h, w);
    let padded = input.pad(spec.pad);
    let cols = c * spec.kh * spec.kw;
    let mut data = Vec::with_capacity(n * oh * ow * cols);
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let y0 = oy * spec.stride;
                let x0 = ox * spec.stride;
                for ch in 0..c {
                    for ky in 0..spec.kh {
                        for kx in 0..spec.kw {
                            data.push(padded[(b, ch, y0 + ky, x0 + kx)]);
                        }
                    }
                }
            }
        }
    }
    Matrix::from_vec(n * oh * ow, cols, data)
}

/// Adjoint of [`im2col`]: scatters window-rows back into an image,
/// accumulating where windows overlap. Used for the convolution backward
/// pass (gradient w.r.t. the input).
///
/// `out_shape` is the original (unpadded) input shape.
///
/// # Panics
///
/// Panics if `cols` has a shape inconsistent with `out_shape` and `spec`.
pub fn col2im(
    cols: &Matrix<f64>,
    out_shape: (usize, usize, usize, usize),
    spec: &ConvSpec,
) -> Tensor4 {
    let (n, c, h, w) = out_shape;
    let (oh, ow) = spec.output_size(h, w);
    assert_eq!(cols.rows(), n * oh * ow, "col2im row count mismatch");
    assert_eq!(
        cols.cols(),
        c * spec.kh * spec.kw,
        "col2im column count mismatch"
    );

    let mut padded = Tensor4::zeros(n, c, h + 2 * spec.pad, w + 2 * spec.pad);
    let mut row = 0;
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let y0 = oy * spec.stride;
                let x0 = ox * spec.stride;
                let r = cols.row(row);
                let mut i = 0;
                for ch in 0..c {
                    for ky in 0..spec.kh {
                        for kx in 0..spec.kw {
                            padded[(b, ch, y0 + ky, x0 + kx)] += r[i];
                            i += 1;
                        }
                    }
                }
                row += 1;
            }
        }
    }

    // Crop the padding back off.
    let mut out = Tensor4::zeros(n, c, h, w);
    for b in 0..n {
        for ch in 0..c {
            for y in 0..h {
                for x in 0..w {
                    out[(b, ch, y, x)] = padded[(b, ch, y + spec.pad, x + spec.pad)];
                }
            }
        }
    }
    out
}

/// Reference convolution: `weights` is `out_c × (C·kh·kw)`, `bias` is
/// `out_c` long. Returns an `(N, out_c, oh, ow)` tensor.
///
/// # Panics
///
/// Panics on any shape inconsistency.
pub fn conv2d(input: &Tensor4, weights: &Matrix<f64>, bias: &[f64], spec: &ConvSpec) -> Tensor4 {
    let (n, c, h, w) = input.shape();
    let (oh, ow) = spec.output_size(h, w);
    let out_c = weights.rows();
    assert_eq!(
        weights.cols(),
        c * spec.kh * spec.kw,
        "weight width mismatch"
    );
    assert_eq!(bias.len(), out_c, "bias length mismatch");

    let cols = im2col(input, spec); // (n*oh*ow) × (c*kh*kw)
    let prod = cols.matmul(&weights.transpose()); // (n*oh*ow) × out_c

    let mut out = Tensor4::zeros(n, out_c, oh, ow);
    let mut row = 0;
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let r = prod.row(row);
                for (oc, &v) in r.iter().enumerate() {
                    out[(b, oc, oy, ox)] = v + bias[oc];
                }
                row += 1;
            }
        }
    }
    out
}

/// Direct (nested-loop) convolution used to cross-check the im2col
/// implementation in tests.
pub fn conv2d_naive(
    input: &Tensor4,
    weights: &Matrix<f64>,
    bias: &[f64],
    spec: &ConvSpec,
) -> Tensor4 {
    let (n, c, h, w) = input.shape();
    let (oh, ow) = spec.output_size(h, w);
    let out_c = weights.rows();
    let padded = input.pad(spec.pad);
    let mut out = Tensor4::zeros(n, out_c, oh, ow);
    for b in 0..n {
        for oc in 0..out_c {
            let wr = weights.row(oc);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias[oc];
                    let mut i = 0;
                    for ch in 0..c {
                        for ky in 0..spec.kh {
                            for kx in 0..spec.kw {
                                acc += wr[i]
                                    * padded[(b, ch, oy * spec.stride + ky, ox * spec.stride + kx)];
                                i += 1;
                            }
                        }
                    }
                    out[(b, oc, oy, ox)] = acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_size_matches_paper_figure() {
        // Fig. 2: 5×5 image, padding 1, 3×3 filter, stride 2 → 3×3 output.
        let spec = ConvSpec::square(3, 2, 1);
        assert_eq!(spec.output_size(5, 5), (3, 3));
    }

    #[test]
    fn im2col_simple_windows() {
        // 1×1×3×3 image, 2×2 kernel, stride 1, no padding → 4 windows.
        let t = Tensor4::from_vec(1, 1, 3, 3, (1..=9).map(f64::from).collect());
        let spec = ConvSpec::square(2, 1, 0);
        let cols = im2col(&t, &spec);
        assert_eq!(cols.shape(), (4, 4));
        assert_eq!(cols.row(0), &[1.0, 2.0, 4.0, 5.0]);
        assert_eq!(cols.row(3), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn im2col_respects_padding_and_stride() {
        let t = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let spec = ConvSpec::square(2, 2, 1);
        let cols = im2col(&t, &spec);
        // Padded image is 4×4, stride 2 → 2×2 windows.
        assert_eq!(cols.shape(), (4, 4));
        // Top-left window covers the zero border and pixel 1.
        assert_eq!(cols.row(0), &[0.0, 0.0, 0.0, 1.0]);
        // Bottom-right window covers pixel 4 and border.
        assert_eq!(cols.row(3), &[4.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn conv_matches_naive_multichannel() {
        let input = Tensor4::from_vec(
            2,
            3,
            5,
            5,
            (0..150).map(|v| (v % 13) as f64 - 6.0).collect(),
        );
        for (k, s, p) in [(3, 1, 0), (3, 2, 1), (5, 1, 2), (2, 2, 0)] {
            let spec = ConvSpec::square(k, s, p);
            let out_c = 4;
            let weights =
                Matrix::from_fn(out_c, 3 * k * k, |r, c| ((r * 7 + c * 3) % 5) as f64 - 2.0);
            let bias = vec![0.5, -0.5, 0.0, 1.0];
            let fast = conv2d(&input, &weights, &bias, &spec);
            let slow = conv2d_naive(&input, &weights, &bias, &spec);
            assert!(fast.approx_eq(&slow, 1e-9), "k={k} s={s} p={p}");
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // For non-overlapping windows (stride == kernel), col2im(im2col(x))
        // reproduces x exactly.
        let t = Tensor4::from_vec(1, 2, 4, 4, (0..32).map(f64::from).collect());
        let spec = ConvSpec::square(2, 2, 0);
        let cols = im2col(&t, &spec);
        let back = col2im(&cols, t.shape(), &spec);
        assert!(back.approx_eq(&t, 1e-12));
    }

    #[test]
    fn col2im_accumulates_overlaps() {
        // With stride 1, interior pixels belong to several windows; the
        // adjoint must accumulate their contributions.
        let t = Tensor4::from_vec(1, 1, 3, 3, vec![1.0; 9]);
        let spec = ConvSpec::square(2, 1, 0);
        let cols = im2col(&t, &spec);
        let back = col2im(&cols, t.shape(), &spec);
        // Center pixel is in all 4 windows.
        assert_eq!(back[(0, 0, 1, 1)], 4.0);
        // Corner pixels in exactly 1.
        assert_eq!(back[(0, 0, 0, 0)], 1.0);
        // Edge pixels in 2.
        assert_eq!(back[(0, 0, 0, 1)], 2.0);
    }

    #[test]
    #[should_panic(expected = "kernel larger than padded input")]
    fn kernel_too_large_panics() {
        ConvSpec::square(5, 1, 0).output_size(3, 3);
    }
}
