//! # cryptonn-matrix
//!
//! Dense matrices, NCHW tensors and convolution lowering — the NumPy
//! stand-in for the CryptoNN reproduction's neural-network stack.
//!
//! - [`Matrix`] — row-major 2-D arrays, generic over the element type
//!   (`f64` for model math, `i64` for the fixed-point encrypted domain).
//! - [`Tensor4`] — `(batch, channel, height, width)` tensors for
//!   convolutional layers.
//! - [`conv`] — `im2col`/`col2im` window lowering (the same windows that
//!   Algorithm 3 encrypts) and a reference `conv2d`.
//!
//! ## Example
//!
//! ```
//! use cryptonn_matrix::Matrix;
//!
//! let w = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.0]]);
//! let x = Matrix::from_rows(&[&[1.0], &[3.0]]);
//! let y = w.matmul(&x);
//! assert_eq!(y, Matrix::from_rows(&[&[-2.5], &[2.0]]));
//! ```

pub mod conv;
mod matrix;
mod tensor;

pub use conv::{col2im, conv2d, conv2d_naive, im2col, ConvSpec};
pub use matrix::Matrix;
pub use tensor::Tensor4;
