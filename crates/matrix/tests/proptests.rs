//! Property-based tests for the matrix layer: algebraic laws of matmul
//! and the im2col/conv equivalences.

use cryptonn_matrix::{col2im, conv2d, conv2d_naive, im2col, ConvSpec, Matrix, Tensor4};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<f64>> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matmul_associates(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn matmul_distributes_over_add(a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn transpose_reverses_matmul(a in matrix(3, 4), b in matrix(4, 2)) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn sums_are_consistent(a in matrix(4, 6)) {
        let total = a.sum();
        prop_assert!((a.sum_rows().sum() - total).abs() < 1e-9);
        prop_assert!((a.sum_cols().sum() - total).abs() < 1e-9);
    }

    #[test]
    fn im2col_conv_equals_naive_conv(
        data in proptest::collection::vec(-2.0f64..2.0, 2 * 2 * 6 * 6),
        weights in proptest::collection::vec(-1.0f64..1.0, 3 * 2 * 2 * 2),
        stride in 1usize..=2,
        pad in 0usize..=1,
    ) {
        let input = Tensor4::from_vec(2, 2, 6, 6, data);
        let w = Matrix::from_vec(3, 8, weights);
        let spec = ConvSpec::square(2, stride, pad);
        let bias = [0.1, -0.2, 0.3];
        let fast = conv2d(&input, &w, &bias, &spec);
        let slow = conv2d_naive(&input, &w, &bias, &spec);
        prop_assert!(fast.approx_eq(&slow, 1e-9));
    }

    #[test]
    fn col2im_adjoint_identity(
        data in proptest::collection::vec(-3.0f64..3.0, 4 * 4),
        cols_data in proptest::collection::vec(-3.0f64..3.0, 9 * 4),
    ) {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property
        // that makes the convolution backward pass correct.
        let x = Tensor4::from_vec(1, 1, 4, 4, data);
        let spec = ConvSpec::square(2, 1, 0);
        let y = Matrix::from_vec(9, 4, cols_data);

        let ix = im2col(&x, &spec);
        let lhs: f64 = ix.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();

        let cy = col2im(&y, (1, 1, 4, 4), &spec);
        let rhs: f64 = x.as_slice().iter().zip(cy.as_slice()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-9, "{} vs {}", lhs, rhs);
    }

    #[test]
    fn flatten_preserves_values(data in proptest::collection::vec(-5.0f64..5.0, 2 * 3 * 2 * 2)) {
        let t = Tensor4::from_vec(2, 3, 2, 2, data);
        let back = Tensor4::from_flat(&t.flatten(), 3, 2, 2);
        prop_assert_eq!(back, t);
    }
}
