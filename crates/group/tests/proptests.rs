//! Property-based tests for the group layer: exponent homomorphisms and
//! discrete-log recovery over random values.

use cryptonn_group::{DlogTable, SchnorrGroup, SecurityLevel};
use proptest::prelude::*;
use std::sync::OnceLock;

fn group() -> &'static SchnorrGroup {
    static G: OnceLock<SchnorrGroup> = OnceLock::new();
    G.get_or_init(|| SchnorrGroup::precomputed(SecurityLevel::Bits64))
}

fn table() -> &'static DlogTable {
    static T: OnceLock<DlogTable> = OnceLock::new();
    T.get_or_init(|| DlogTable::new(group(), 3_000_000))
}

proptest! {
    #[test]
    fn exp_is_homomorphic(a in -100_000i64..=100_000, b in -100_000i64..=100_000) {
        let g = group();
        let lhs = g.exp(&g.scalar_from_i64(a + b));
        let rhs = g.mul(&g.exp(&g.scalar_from_i64(a)), &g.exp(&g.scalar_from_i64(b)));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn pow_respects_scalar_mul(a in 1i64..=1000, b in 1i64..=1000) {
        let g = group();
        // (g^a)^b = g^(ab)
        let lhs = g.pow(&g.exp(&g.scalar_from_i64(a)), &g.scalar_from_i64(b));
        let rhs = g.exp(&g.scalar_from_i64(a * b));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn dlog_roundtrips_signed(z in -2_000_000i64..=2_000_000) {
        let g = group();
        let target = g.exp(&g.scalar_from_i64(z));
        prop_assert_eq!(table().solve(g, &target), Ok(z));
    }

    #[test]
    fn dlog_out_of_range_is_detected(z in 3_000_001i64..=4_000_000) {
        let g = group();
        for sign in [1, -1] {
            let target = g.exp(&g.scalar_from_i64(sign * z));
            prop_assert!(table().solve(g, &target).is_err());
        }
    }

    #[test]
    fn inverse_cancels(a in 1i64..=1_000_000) {
        let g = group();
        let x = g.exp(&g.scalar_from_i64(a));
        prop_assert_eq!(g.mul(&x, &g.inv(&x)), g.identity());
        prop_assert_eq!(g.div(&x, &x), g.identity());
    }

    #[test]
    fn scalar_field_distributes(a in -500i64..=500, b in -500i64..=500, c in -500i64..=500) {
        let g = group();
        let (sa, sb, sc) = (g.scalar_from_i64(a), g.scalar_from_i64(b), g.scalar_from_i64(c));
        // a(b + c) = ab + ac in Z_q
        let lhs = g.scalar_mul(&sa, &g.scalar_add(&sb, &sc));
        let rhs = g.scalar_add(&g.scalar_mul(&sa, &sb), &g.scalar_mul(&sa, &sc));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn elements_live_in_the_subgroup(a in any::<u64>()) {
        let g = group();
        let x = g.exp(&g.scalar_from_u64(a));
        // x^q = 1 for every produced element.
        let q = *g.order();
        let e = g.scalar_from_u256(q); // q ≡ 0 (mod q) → scalar zero
        prop_assert_eq!(g.pow(&x, &e), g.identity());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The `Reducer` seam is transparent at every security level: group
    /// arithmetic over the embedded parameters (FastP64 for
    /// `Bits256Fast`, Generic elsewhere) equals schoolbook
    /// multiply-then-divide in both the element and scalar fields.
    #[test]
    fn reducer_matches_schoolbook_at_every_level(
        a in proptest::collection::vec(any::<u64>(), 4),
        b in proptest::collection::vec(any::<u64>(), 4),
    ) {
        use cryptonn_bigint::{modular, U256};
        let a: [u64; 4] = [a[0], a[1], a[2], a[3]];
        let b: [u64; 4] = [b[0], b[1], b[2], b[3]];
        for level in [
            SecurityLevel::Bits32,
            SecurityLevel::Bits64,
            SecurityLevel::Bits128,
            SecurityLevel::Bits192,
            SecurityLevel::Bits224,
            SecurityLevel::Bits256,
            SecurityLevel::Bits256Fast,
        ] {
            let g = SchnorrGroup::precomputed(level);
            let (av, bv) = (U256::from_limbs(a), U256::from_limbs(b));
            // Element field Z_p.
            let (x, y) = (g.element_from_u256(av), g.element_from_u256(bv));
            if *x.value() != U256::ZERO && *y.value() != U256::ZERO {
                let got = g.mul(&x, &y);
                prop_assert_eq!(
                    *got.value(),
                    modular::mod_mul(x.value(), y.value(), g.modulus()),
                    "p-field at {:?}", level
                );
            }
            // Scalar field Z_q.
            let (s, t) = (g.scalar_from_u256(av), g.scalar_from_u256(bv));
            let got = g.scalar_mul(&s, &t);
            prop_assert_eq!(
                *got.value(),
                modular::mod_mul(s.value(), t.value(), g.order()),
                "q-field at {:?}", level
            );
        }
    }
}

/// Reference for the multi-scalar subsystem: one full-width `pow` per
/// nonzero exponent.
fn naive_multi_pow(
    g: &SchnorrGroup,
    bases: &[cryptonn_group::Element],
    y: &[i64],
) -> cryptonn_group::Element {
    let mut acc = g.identity();
    for (b, &yi) in bases.iter().zip(y) {
        if yi != 0 {
            acc = g.mul(&acc, &g.pow(b, &g.scalar_from_i64(yi)));
        }
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Straus/wNAF multi-scalar exponentiation equals the one-pow-per-base
    /// product for random signed exponents (zeros included).
    #[test]
    fn multi_scalar_matches_naive(
        y in proptest::collection::vec(-1_000_000i64..=1_000_000, 1..10),
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = group();
        let mut rng = StdRng::seed_from_u64(seed);
        let bases: Vec<_> = (0..y.len()).map(|_| g.exp(&g.random_scalar(&mut rng))).collect();
        prop_assert_eq!(g.multi_scalar_pow(&bases, &y), naive_multi_pow(g, &bases, &y));
    }

    /// Deferred ratios resolved through the batched inversion equal the
    /// per-ratio division, and folding an extra denominator in commutes
    /// with resolution.
    #[test]
    fn batched_ratio_resolution_matches_division(
        y in proptest::collection::vec(-50_000i64..=50_000, 1..6),
        extra in 1i64..=1_000_000,
        seed in any::<u64>(),
    ) {
        use cryptonn_group::{ElementRatio, WnafScalars};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = group();
        let mut rng = StdRng::seed_from_u64(seed);
        let bases: Vec<_> = (0..y.len()).map(|_| g.exp(&g.random_scalar(&mut rng))).collect();
        let scalars = WnafScalars::recode(&y);
        let den = g.exp(&g.scalar_from_i64(extra));
        let ratio = if scalars.is_all_zero() {
            ElementRatio::from_element(g, g.identity())
        } else {
            let tables = g.odd_power_tables(&bases);
            g.multi_scalar_ratio(&tables, &scalars)
        };
        let folded = ratio.div_by(g, &den);
        let resolved = g.resolve_ratios(&[ratio, folded]);
        prop_assert_eq!(resolved[0], g.div(&naive_multi_pow(g, &bases, &y), &g.identity()));
        prop_assert_eq!(resolved[1], g.div(&naive_multi_pow(g, &bases, &y), &den));
    }
}
