//! Versioned on-disk cache for precomputed tables (DESIGN.md §13.4).
//!
//! Building the generator comb and a BSGS baby-step table dominates
//! serving cold-start: both are pure functions of the group parameters
//! (and, for BSGS, the bound), so a restart can skip the build entirely
//! by reloading Montgomery-form entries from disk.
//!
//! ## File format
//!
//! ```text
//! magic    8 B   "CNNTBL03" (bumped on any layout change)
//! kind     1 B   1 = generator comb, 2 = dlog table
//! fprint  96 B   p ‖ q ‖ g, each 32 B big-endian
//! payload  …     kind-specific (see below)
//! check    8 B   4-lane word-folded FNV-1a-64 over everything above
//!                (see [`fnv1a`]), little-endian
//! ```
//!
//! The group fingerprint appears **twice**: hashed into the filename
//! (so different groups never race on one path) and verbatim in the
//! header (so a renamed or copied file from another group is rejected
//! rather than silently producing garbage elements). Readers treat any
//! mismatch — magic, kind, fingerprint, checksum, geometry — as a miss:
//! the table is rebuilt from scratch and the file rewritten. Writes go
//! through a temp file + rename so a crash mid-write can never leave a
//! truncated file that parses.
//!
//! Comb payload: `FixedBaseTable::ENTRIES` × 32 B big-endian Montgomery
//! residues, row-major (base and modulus are implied by the
//! fingerprint). Dlog payload: `m`, `bound`, `up_mont`, `giant_mont`,
//! then the baby map in packed form — slot capacity, length-prefixed
//! occupancy bitmap, length-prefixed occupied `(key, index)` pairs in
//! slot order — and the length-prefixed collision side list.
//!
//! Both the payload shape and the checksum are sized against the warm
//! path, not the cold one. The dlog file persists the baby map's
//! occupied slots *in slot order* with a one-bit-per-slot occupancy
//! bitmap: a warm load is a bitmap-guided sequential scatter —
//! re-keying `√B` entries through the hash map would rival the
//! (lane-kernel-accelerated) Montgomery baby chain it is meant to skip
//! — and the ≥ ⅓ of slots that are vacant by construction cost one bit
//! each instead of 16 bytes, nearly halving what the warm start must
//! read, checksum, and parse. Likewise the checksum folds 8-byte words
//! across four pipelined lanes instead of chaining one multiply per
//! byte: a byte-wise FNV over the file costs about as much as the baby
//! chain itself, which would cap the warm-over-cold speedup near 2x.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use cryptonn_bigint::U256;

use crate::dlog::{DlogTable, PackedSlots};
use crate::fixed_base::FixedBaseTable;
use crate::group::SchnorrGroup;

const MAGIC: [u8; 8] = *b"CNNTBL03";
const FPRINT_LEN: usize = 96;
const HEADER_LEN: usize = MAGIC.len() + 1 + FPRINT_LEN;

/// Table kinds; the byte after the magic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Comb = 1,
    Dlog = 2,
}

/// `p ‖ q ‖ g`, each 32 bytes big-endian — the identity of a group as
/// far as cached tables are concerned.
pub(crate) fn fingerprint(p: &U256, q: &U256, g: &U256) -> [u8; FPRINT_LEN] {
    let mut out = [0u8; FPRINT_LEN];
    out[..32].copy_from_slice(&p.to_be_bytes());
    out[32..64].copy_from_slice(&q.to_be_bytes());
    out[64..].copy_from_slice(&g.to_be_bytes());
    out
}

/// Four-lane FNV-1a-64 over 8-byte little-endian words.
///
/// Byte-wise FNV costs one serial multiply per byte; over a table file
/// that chain rivals the Montgomery baby chain the cache exists to
/// skip. Folding 8-byte words cuts the multiply count 8x, and striping
/// 32-byte blocks across four independent lanes breaks the remaining
/// latency chain so the multiplies pipeline. The lane digests and the
/// total length fold into a final serial pass, so the digest stays
/// sensitive to content, order, and length (the zero-padded tail block
/// cannot alias a longer file).
fn fnv1a(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    const SEED: u64 = 0xcbf2_9ce4_8422_2325;
    let mut lanes = [SEED, SEED ^ 1, SEED ^ 2, SEED ^ 3];
    let mut blocks = bytes.chunks_exact(32);
    for block in blocks.by_ref() {
        for (lane, word) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            *lane ^= u64::from_le_bytes(word.try_into().expect("exact chunk"));
            *lane = lane.wrapping_mul(PRIME);
        }
    }
    let tail = blocks.remainder();
    if !tail.is_empty() {
        let mut padded = [0u8; 32];
        padded[..tail.len()].copy_from_slice(tail);
        for (lane, word) in lanes.iter_mut().zip(padded.chunks_exact(8)) {
            *lane ^= u64::from_le_bytes(word.try_into().expect("exact chunk"));
            *lane = lane.wrapping_mul(PRIME);
        }
    }
    let mut h = SEED;
    for lane in lanes.into_iter().chain([bytes.len() as u64]) {
        h ^= lane;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The filename-embedded short form of a fingerprint.
fn short(fp: &[u8; FPRINT_LEN]) -> u64 {
    fnv1a(fp)
}

fn comb_path(dir: &Path, fp: &[u8; FPRINT_LEN]) -> PathBuf {
    dir.join(format!("comb-g-{:016x}.tbl", short(fp)))
}

fn dlog_path(dir: &Path, fp: &[u8; FPRINT_LEN], bound: u64) -> PathBuf {
    dir.join(format!("dlog-{:016x}-b{bound}.tbl", short(fp)))
}

/// Frames `payload` and writes it atomically (temp file + rename).
fn write_atomic(path: &Path, kind: Kind, fp: &[u8; FPRINT_LEN], payload: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
    buf.extend_from_slice(&MAGIC);
    buf.push(kind as u8);
    buf.extend_from_slice(fp);
    buf.extend_from_slice(payload);
    let check = fnv1a(&buf);
    buf.extend_from_slice(&check.to_le_bytes());

    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, &buf)?;
    fs::rename(&tmp, path)
}

/// Reads and verifies a framed file; returns the whole frame, or
/// `None` on any mismatch (missing file, wrong magic/kind/fingerprint,
/// bad checksum). Callers slice the payload out with [`payload`] —
/// returning the frame instead of copying the payload keeps the
/// warm-start path to a single buffer.
fn read_verified(path: &Path, kind: Kind, fp: &[u8; FPRINT_LEN]) -> Option<Vec<u8>> {
    let buf = fs::read(path).ok()?;
    if buf.len() < HEADER_LEN + 8 {
        return None;
    }
    let (body, check) = buf.split_at(buf.len() - 8);
    if fnv1a(body) != u64::from_le_bytes(check.try_into().ok()?) {
        return None;
    }
    if body[..MAGIC.len()] != MAGIC || body[MAGIC.len()] != kind as u8 {
        return None;
    }
    if &body[MAGIC.len() + 1..HEADER_LEN] != fp {
        return None;
    }
    Some(buf)
}

/// The payload slice of a frame returned by [`read_verified`].
fn payload(frame: &[u8]) -> &[u8] {
    &frame[HEADER_LEN..frame.len() - 8]
}

// ---- payload (de)serialization ---------------------------------------

struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn u64(&mut self) -> Option<u64> {
        let (head, rest) = self.0.split_at_checked(8)?;
        self.0 = rest;
        Some(u64::from_le_bytes(head.try_into().ok()?))
    }

    fn u256(&mut self) -> Option<U256> {
        let (head, rest) = self.0.split_at_checked(32)?;
        self.0 = rest;
        Some(U256::from_be_bytes(head.try_into().ok()?))
    }

    /// A length-prefixed `(u64, u64)` list, parsed in bulk: one bounds
    /// check up front, then a straight sequential copy — this sits on
    /// the warm-start path, where a per-element parse loop would show.
    fn pairs(&mut self) -> Option<Vec<(u64, u64)>> {
        let n = self.u64()? as usize;
        // Guard against absurd length prefixes before allocating.
        let (head, rest) = self.0.split_at_checked(n.checked_mul(16)?)?;
        self.0 = rest;
        Some(
            head.chunks_exact(16)
                .map(|c| {
                    (
                        u64::from_le_bytes(c[..8].try_into().expect("exact chunk")),
                        u64::from_le_bytes(c[8..].try_into().expect("exact chunk")),
                    )
                })
                .collect(),
        )
    }

    /// A length-prefixed `u64` list (the occupancy bitmap), parsed in
    /// bulk like [`Reader::pairs`].
    fn words(&mut self) -> Option<Vec<u64>> {
        let n = self.u64()? as usize;
        let (head, rest) = self.0.split_at_checked(n.checked_mul(8)?)?;
        self.0 = rest;
        Some(
            head.chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("exact chunk")))
                .collect(),
        )
    }

    fn done(&self) -> bool {
        self.0.is_empty()
    }
}

fn push_pairs(buf: &mut Vec<u8>, pairs: &[(u64, u64)]) {
    buf.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
    for &(a, b) in pairs {
        buf.extend_from_slice(&a.to_le_bytes());
        buf.extend_from_slice(&b.to_le_bytes());
    }
}

fn push_words(buf: &mut Vec<u8>, words: &[u64]) {
    buf.extend_from_slice(&(words.len() as u64).to_le_bytes());
    for &w in words {
        buf.extend_from_slice(&w.to_le_bytes());
    }
}

// ---- generator comb ---------------------------------------------------

/// Loads a cached generator comb for `(p, q, g)`, or `None` on miss.
pub(crate) fn load_comb(dir: &Path, p: &U256, q: &U256, g: &U256) -> Option<FixedBaseTable> {
    let fp = fingerprint(p, q, g);
    let frame = read_verified(&comb_path(dir, &fp), Kind::Comb, &fp)?;
    let payload = payload(&frame);
    if payload.len() != FixedBaseTable::ENTRIES * 32 {
        return None;
    }
    let flat: Vec<U256> = payload
        .chunks_exact(32)
        .map(|c| U256::from_be_bytes(c.try_into().expect("exact chunk")))
        .collect();
    FixedBaseTable::from_cached_entries(*g, *p, &flat)
}

/// Persists a group's generator comb (best-effort; IO errors surface to
/// the caller, who typically ignores them — a failed write just means
/// the next start is cold again).
pub(crate) fn store_comb(dir: &Path, group: &SchnorrGroup) -> io::Result<()> {
    let fp = fingerprint(group.modulus(), group.order(), group.generator().value());
    let mut payload = Vec::with_capacity(FixedBaseTable::ENTRIES * 32);
    for entry in group.generator_table().entries_flat() {
        payload.extend_from_slice(&entry.to_be_bytes());
    }
    write_atomic(&comb_path(dir, &fp), Kind::Comb, &fp, &payload)
}

// ---- dlog table -------------------------------------------------------

/// Loads a cached BSGS table for `group` at exactly `bound`, or `None`
/// on miss.
pub(crate) fn load_dlog(dir: &Path, group: &SchnorrGroup, bound: u64) -> Option<DlogTable> {
    let fp = fingerprint(group.modulus(), group.order(), group.generator().value());
    let frame = read_verified(&dlog_path(dir, &fp, bound), Kind::Dlog, &fp)?;
    let mut r = Reader(payload(&frame));
    let m = r.u64()?;
    let file_bound = r.u64()?;
    if file_bound != bound {
        return None;
    }
    let up = r.u256()?;
    let giant = r.u256()?;
    let packed = PackedSlots {
        cap: r.u64()?,
        bitmap: r.words()?,
        occupied: r.pairs()?,
    };
    let collisions = r.pairs()?;
    if !r.done() {
        return None;
    }
    DlogTable::from_cache_parts(m, bound, up, giant, packed, collisions)
}

/// Persists a BSGS table keyed on `group`'s fingerprint and its bound.
pub(crate) fn store_dlog(dir: &Path, group: &SchnorrGroup, table: &DlogTable) -> io::Result<()> {
    let fp = fingerprint(group.modulus(), group.order(), group.generator().value());
    let (m, bound, up, giant, packed, collisions) = table.cache_parts();
    let mut payload = Vec::with_capacity(
        16 + 64 + 32 + packed.bitmap.len() * 8 + (packed.occupied.len() + collisions.len()) * 16,
    );
    payload.extend_from_slice(&m.to_le_bytes());
    payload.extend_from_slice(&bound.to_le_bytes());
    payload.extend_from_slice(&up.to_be_bytes());
    payload.extend_from_slice(&giant.to_be_bytes());
    payload.extend_from_slice(&packed.cap.to_le_bytes());
    push_words(&mut payload, &packed.bitmap);
    push_pairs(&mut payload, &packed.occupied);
    push_pairs(&mut payload, collisions);
    write_atomic(&dlog_path(dir, &fp, bound), Kind::Dlog, &fp, &payload)
}

impl DlogTable {
    /// [`DlogTable::new`], but warm-startable: loads a cached table for
    /// this exact `(group, bound)` if `dir` holds a valid one, and
    /// otherwise builds it and persists it (best-effort) for the next
    /// start. Any invalid cache file — foreign fingerprint, corruption,
    /// stale format — is rejected, rebuilt, and overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero, as [`DlogTable::new`].
    pub fn load_or_build(group: &SchnorrGroup, bound: u64, dir: &Path) -> Self {
        if let Some(table) = load_dlog(dir, group, bound) {
            return table;
        }
        let table = Self::new(group, bound);
        let _ = store_dlog(dir, group, &table);
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::SecurityLevel;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A fresh unique directory under the system temp dir; callers
    /// remove it when done (best-effort).
    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cryptonn-cache-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn comb_roundtrip_and_warm_load() {
        let dir = scratch_dir("comb");
        let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
        assert!(load_comb(
            &dir,
            group.modulus(),
            group.order(),
            group.generator().value()
        )
        .is_none());
        store_comb(&dir, &group).unwrap();
        let table = load_comb(
            &dir,
            group.modulus(),
            group.order(),
            group.generator().value(),
        )
        .expect("warm load");
        assert_eq!(&table, group.generator_table());
        // The warm table actually computes: g^e must match.
        let e = group.scalar_from_u64(123_456_789);
        assert_eq!(group.exp_table(&table, &e), group.exp(&e));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dlog_load_or_build_roundtrip() {
        let dir = scratch_dir("dlog");
        let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
        let bound = 4_000u64;
        let cold = DlogTable::load_or_build(&group, bound, &dir);
        let warm = DlogTable::load_or_build(&group, bound, &dir);
        for z in [-(bound as i64), -17, 0, 23, bound as i64] {
            let target = group.exp(&group.scalar_from_i64(z));
            assert_eq!(cold.solve(&group, &target), Ok(z));
            assert_eq!(warm.solve(&group, &target), Ok(z));
        }
        // A different bound is a different file, not a false hit.
        assert!(load_dlog(&dir, &group, bound + 1).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_rejected_and_rebuilt() {
        let dir = scratch_dir("mismatch");
        let group_a = SchnorrGroup::precomputed(SecurityLevel::Bits64);
        let group_b = SchnorrGroup::precomputed(SecurityLevel::Bits128);
        let bound = 2_000u64;

        // Populate the cache for group A, then plant A's file at group
        // B's expected path — the filename matches B but the embedded
        // fingerprint still says A.
        let _ = DlogTable::load_or_build(&group_a, bound, &dir);
        let fp_a = fingerprint(
            group_a.modulus(),
            group_a.order(),
            group_a.generator().value(),
        );
        let fp_b = fingerprint(
            group_b.modulus(),
            group_b.order(),
            group_b.generator().value(),
        );
        fs::copy(dlog_path(&dir, &fp_a, bound), dlog_path(&dir, &fp_b, bound)).unwrap();

        // The planted file must be rejected (a raw load misses) …
        assert!(load_dlog(&dir, &group_b, bound).is_none());
        // … and load_or_build must rebuild a *correct* table for B …
        let rebuilt = DlogTable::load_or_build(&group_b, bound, &dir);
        for z in [-5i64, 0, 1_999] {
            let target = group_b.exp(&group_b.scalar_from_i64(z));
            assert_eq!(rebuilt.solve(&group_b, &target), Ok(z));
        }
        // … and overwrite the planted file so the next start is warm.
        let healed = load_dlog(&dir, &group_b, bound).expect("rewritten cache");
        let target = group_b.exp(&group_b.scalar_from_i64(-321));
        assert_eq!(healed.solve(&group_b, &target), Ok(-321));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_rejected() {
        let dir = scratch_dir("corrupt");
        let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
        let bound = 1_500u64;
        let _ = DlogTable::load_or_build(&group, bound, &dir);
        let fp = fingerprint(group.modulus(), group.order(), group.generator().value());
        let path = dlog_path(&dir, &fp, bound);

        let pristine = fs::read(&path).unwrap();
        // Bit flip in the payload: checksum mismatch.
        let mut flipped = pristine.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        fs::write(&path, &flipped).unwrap();
        assert!(load_dlog(&dir, &group, bound).is_none());
        // Truncation: too short to even frame.
        fs::write(&path, &pristine[..HEADER_LEN]).unwrap();
        assert!(load_dlog(&dir, &group, bound).is_none());
        // Wrong kind byte (checksum re-stamped to isolate the check).
        let mut wrong_kind = pristine.clone();
        wrong_kind[MAGIC.len()] = Kind::Comb as u8;
        let body_len = wrong_kind.len() - 8;
        let check = fnv1a(&wrong_kind[..body_len]);
        wrong_kind[body_len..].copy_from_slice(&check.to_le_bytes());
        fs::write(&path, &wrong_kind).unwrap();
        assert!(load_dlog(&dir, &group, bound).is_none());
        // Restored file loads again.
        fs::write(&path, &pristine).unwrap();
        assert!(load_dlog(&dir, &group, bound).is_some());
        let _ = fs::remove_dir_all(&dir);
    }
}
