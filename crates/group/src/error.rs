//! Error types for the group layer.

use core::fmt;

/// Errors arising from group construction or discrete-logarithm recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GroupError {
    /// The supplied modulus `p` failed a primality check.
    CompositeModulus,
    /// The supplied order `q` failed a primality check or does not divide
    /// `p - 1`.
    InvalidOrder,
    /// The supplied generator is not an element of the order-`q` subgroup
    /// (or is the identity).
    InvalidGenerator,
    /// BSGS did not find the exponent within the configured bound; the
    /// underlying plaintext value lies outside the advertised range.
    DlogOutOfRange {
        /// The (unsigned) search bound that was exhausted.
        bound: u64,
    },
    /// A discrete-log bound of zero was requested.
    EmptyDlogRange,
}

impl fmt::Display for GroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupError::CompositeModulus => write!(f, "group modulus is not prime"),
            GroupError::InvalidOrder => {
                write!(f, "subgroup order is not prime or does not divide p - 1")
            }
            GroupError::InvalidGenerator => {
                write!(f, "generator is not a non-identity element of the subgroup")
            }
            GroupError::DlogOutOfRange { bound } => {
                write!(f, "discrete logarithm not found within bound {bound}")
            }
            GroupError::EmptyDlogRange => write!(f, "discrete-log search bound is zero"),
        }
    }
}

impl std::error::Error for GroupError {}
