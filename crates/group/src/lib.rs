//! # cryptonn-group
//!
//! DDH-hard Schnorr groups and bounded discrete-logarithm recovery — the
//! algebraic setting for CryptoNN's functional encryption schemes.
//!
//! The paper's `GroupGen(1^λ)` (§II-B) is realized by
//! [`SchnorrGroup::generate`] (fresh safe prime) or
//! [`SchnorrGroup::precomputed`] (embedded parameters per
//! [`SecurityLevel`]). Decryption in both FEIP and FEBO ends with a
//! discrete logarithm of a bounded value, recovered via the baby-step
//! giant-step [`DlogTable`].
//!
//! All arithmetic runs on a cached per-group Montgomery context, and
//! fixed bases (the generator, FE public-key elements) get radix-2⁴
//! comb tables ([`FixedBaseTable`], [`SchnorrGroup::exp_table`],
//! [`SchnorrGroup::multi_pow`]) — the exponentiation pipeline of
//! DESIGN.md §8. *Variable* bases with small signed exponents (the
//! decrypt-side `∏ ctᵢ^{yᵢ}`) go through the Straus/wNAF multi-scalar
//! subsystem ([`WnafScalars`], [`OddPowerTables`],
//! [`SchnorrGroup::multi_scalar_ratio`]) with batched inversion
//! ([`SchnorrGroup::inv_batch`]) — DESIGN.md §10.
//!
//! The batch-decrypt hot paths additionally stride four independent
//! cells per call through `cryptonn-bigint`'s lane-batched Montgomery
//! kernel ([`SchnorrGroup::multi_scalar_ratio_lanes`],
//! [`DlogTable::solve_batch`]), [`SecurityLevel::Bits256Fast`] selects
//! a Montgomery-friendly safe prime with one multiply per reduction
//! round shaved off, and generator comb / BSGS tables persist to a
//! fingerprinted on-disk cache ([`SchnorrGroup::precomputed_cached`],
//! [`DlogTable::load_or_build`]) so serving restarts skip the table
//! builds — DESIGN.md §13.
//!
//! ## Example
//!
//! ```
//! use cryptonn_group::{DlogTable, SchnorrGroup, SecurityLevel};
//!
//! let group = SchnorrGroup::precomputed(SecurityLevel::Bits128);
//! let table = DlogTable::new(&group, 10_000);
//!
//! // g^(a+b) recovered from g^a * g^b.
//! let ga = group.exp(&group.scalar_from_i64(1234));
//! let gb = group.exp(&group.scalar_from_i64(-7000));
//! let sum = group.mul(&ga, &gb);
//! assert_eq!(table.solve(&group, &sum)?, -5766);
//! # Ok::<(), cryptonn_group::GroupError>(())
//! ```

mod cache;
mod dlog;
mod error;
mod fixed_base;
mod group;
mod multi_scalar;

pub use cryptonn_bigint::lanes::LANES;
pub use dlog::{solve_dlog, solve_dlog_naive, DlogTable};
pub use error::GroupError;
pub use fixed_base::FixedBaseTable;
pub use group::{Element, Scalar, SchnorrGroup, SecurityLevel};
pub use multi_scalar::{ElementRatio, OddPowerTables, WnafScalars, DEFAULT_WINDOW};
