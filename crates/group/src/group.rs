//! Schnorr groups: the DDH-hard setting for FEIP and FEBO.
//!
//! `GroupGen(1^λ)` in the paper returns a triple `(G, p, g)`. We realize
//! `G` as the order-`q` subgroup of `Z_p^*` for a safe prime `p = 2q + 1`
//! (the subgroup of quadratic residues), in which the Decisional
//! Diffie–Hellman assumption is standard.

use std::sync::Arc;

use cryptonn_bigint::modular::{mod_inv, mod_neg, mod_pow};
use cryptonn_bigint::prime::{gen_safe_prime, is_prime};
use cryptonn_bigint::{Montgomery, U256};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::GroupError;
use crate::fixed_base::FixedBaseTable;

/// An element of the multiplicative group `Z_p^*` (in practice, of its
/// order-`q` subgroup of quadratic residues).
///
/// Elements are created and combined through [`SchnorrGroup`] methods,
/// which maintain the reduced-mod-`p` invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Element(pub(crate) U256);

impl Element {
    /// The raw reduced representative in `[0, p)`.
    pub fn value(&self) -> &U256 {
        &self.0
    }
}

/// An exponent in `Z_q`, the scalar field of the group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Scalar(U256);

impl Scalar {
    /// The scalar zero.
    pub const ZERO: Scalar = Scalar(U256::ZERO);
    /// The scalar one.
    pub const ONE: Scalar = Scalar(U256::ONE);

    /// The raw reduced representative in `[0, q)`.
    pub fn value(&self) -> &U256 {
        &self.0
    }
}

/// A Schnorr group `(p, q, g)` with `p = 2q + 1` a safe prime and `g` a
/// generator of the order-`q` subgroup.
///
/// Every group carries a shared precomputation context: Montgomery
/// reduction contexts for both `p` (element arithmetic) and `q` (scalar
/// arithmetic), plus a fixed-base comb table for the generator. The
/// context is rebuilt from `(p, q, g)` on deserialization and is never
/// serialized itself, so key material carries its own precomputation
/// wherever it travels (DESIGN.md §8). Cloning a group shares the
/// context via `Arc`.
///
/// ```
/// use cryptonn_group::{SchnorrGroup, SecurityLevel};
///
/// let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
/// let x = group.scalar_from_u64(7);
/// let gx = group.exp(&x);                  // g^7
/// let g3 = group.exp(&group.scalar_from_u64(3));
/// let g4 = group.exp(&group.scalar_from_u64(4));
/// assert_eq!(group.mul(&g3, &g4), gx);     // g^3 · g^4 = g^7
/// ```
#[derive(Clone)]
pub struct SchnorrGroup {
    p: U256,
    q: U256,
    g: U256,
    ctx: Arc<GroupCtx>,
}

/// Shared per-group precomputation: built once per `(p, q, g)` and
/// shared by all clones.
#[derive(Debug)]
struct GroupCtx {
    /// Montgomery context for the element field `Z_p`.
    mont_p: Montgomery,
    /// Montgomery context for the scalar field `Z_q`.
    mont_q: Montgomery,
    /// Radix-2⁴ comb table for the generator `g`.
    g_table: FixedBaseTable,
}

impl core::fmt::Debug for SchnorrGroup {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // The derived cache is noise; show the defining triple only.
        f.debug_struct("SchnorrGroup")
            .field("p", &self.p)
            .field("q", &self.q)
            .field("g", &self.g)
            .finish()
    }
}

impl PartialEq for SchnorrGroup {
    fn eq(&self, other: &Self) -> bool {
        // The context is a pure function of (p, q, g).
        self.p == other.p && self.q == other.q && self.g == other.g
    }
}

impl Eq for SchnorrGroup {}

impl Serialize for SchnorrGroup {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Mirrors the layout a field derive would produce; the
        // precomputation context is derived state and stays local.
        serializer.serialize_value(serde::Value::Map(vec![
            ("p".to_string(), serde::ser::to_value(&self.p)),
            ("q".to_string(), serde::ser::to_value(&self.q)),
            ("g".to_string(), serde::ser::to_value(&self.g)),
        ]))
    }
}

impl<'de> Deserialize<'de> for SchnorrGroup {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error;
        let value = deserializer.deserialize_value()?;
        let entries = value
            .as_map()
            .ok_or_else(|| D::Error::custom("expected map for SchnorrGroup"))?;
        let p: U256 = serde::de::field(entries, "p").map_err(D::Error::custom)?;
        let q: U256 = serde::de::field(entries, "q").map_err(D::Error::custom)?;
        let g: U256 = serde::de::field(entries, "g").map_err(D::Error::custom)?;
        if p.is_even() || p <= U256::ONE || q.is_even() || q <= U256::ONE {
            return Err(D::Error::custom(
                "SchnorrGroup moduli must be odd primes greater than one",
            ));
        }
        Ok(Self::from_checked_parts(p, q, g))
    }
}

/// Named security levels with precomputed safe-prime parameters.
///
/// The parameters were generated once by
/// `cryptonn-bigint/examples/gen_group_params.rs` from a fixed seed and
/// verified prime on construction (see `params` tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SecurityLevel {
    /// 32-bit toy parameters — unit tests only.
    Bits32,
    /// 64-bit parameters — fast integration tests and CI benches.
    Bits64,
    /// 128-bit parameters — the default for the figure benchmarks.
    Bits128,
    /// 192-bit parameters.
    Bits192,
    /// 224-bit parameters.
    Bits224,
    /// 256-bit parameters — the paper's evaluation setting.
    Bits256,
    /// 256-bit Montgomery-friendly parameters: a safe prime with
    /// `p ≡ -1 (mod 2^64)` (and `q ≡ -1 (mod 2^64)` as well), so both
    /// modulus fields take the `Reducer::FastP64` reduction that drops
    /// one multiply per CIOS round (DESIGN.md §13.2). Same security
    /// margin as [`SecurityLevel::Bits256`]: a uniformly sampled
    /// 256-bit safe prime with 64 low bits pinned, leaving ~2^191
    /// candidate moduli — far beyond the generic-group attack bound.
    Bits256Fast,
}

impl SecurityLevel {
    /// The modulus width in bits.
    pub fn bits(&self) -> usize {
        match self {
            SecurityLevel::Bits32 => 32,
            SecurityLevel::Bits64 => 64,
            SecurityLevel::Bits128 => 128,
            SecurityLevel::Bits192 => 192,
            SecurityLevel::Bits224 => 224,
            SecurityLevel::Bits256 => 256,
            SecurityLevel::Bits256Fast => 256,
        }
    }
}

/// Precomputed `(p, q)` hex pairs, indexed like [`SecurityLevel`].
const PARAMS: &[(SecurityLevel, &str, &str)] = &[
    (SecurityLevel::Bits32, "85a1545f", "42d0aa2f"),
    (
        SecurityLevel::Bits64,
        "e1946b58700bae4f",
        "70ca35ac3805d727",
    ),
    (
        SecurityLevel::Bits128,
        "e8a60f34154b07019e29019fd53661e7",
        "7453079a0aa58380cf1480cfea9b30f3",
    ),
    (
        SecurityLevel::Bits192,
        "cae643bc62df98dce86d1a300a4f8dc41916bd5ee88ba403",
        "657321de316fcc6e74368d180527c6e20c8b5eaf7445d201",
    ),
    (
        SecurityLevel::Bits224,
        "f1fcd972befe655dea418894ba5e896515c2f7f09dee7ecd12512353",
        "78fe6cb95f7f32aef520c44a5d2f44b28ae17bf84ef73f66892891a9",
    ),
    (
        SecurityLevel::Bits256,
        "a504130456d8cce0af73fd190c683b02148b6371a703ba4bac786a772db736af",
        "528209822b6c667057b9fe8c86341d810a45b1b8d381dd25d63c353b96db9b57",
    ),
    // Generated by cryptonn-bigint/examples/gen_fast_prime.rs (seeded);
    // p = k·2^64 − 1 with k even, so q = (p−1)/2 ends in 64 one-bits too.
    (
        SecurityLevel::Bits256Fast,
        "9f2c45ea4d0cf9de4608fe14686ecec4ec2bde9b9326aa17ffffffffffffffff",
        "4f9622f526867cef23047f0a343767627615ef4dc993550bffffffffffffffff",
    ),
];

impl SchnorrGroup {
    /// `GroupGen(1^λ)`: generates a fresh safe-prime group of `bits` bits.
    ///
    /// This is expensive for large `bits`; prefer [`SchnorrGroup::precomputed`]
    /// unless fresh parameters are required.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 4` or `bits > 256`.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!((4..=256).contains(&bits), "bits must be in 4..=256");
        let (p, q) = gen_safe_prime(bits, rng);
        Self::with_default_generator(p, q)
    }

    /// Returns the embedded group for a named security level.
    pub fn precomputed(level: SecurityLevel) -> Self {
        let (p, q) = Self::embedded_params(level);
        Self::with_default_generator(p, q)
    }

    /// [`precomputed`](Self::precomputed), but warm-startable: loads
    /// the generator comb table from the on-disk cache in `dir` when a
    /// valid one exists, and otherwise builds it and persists it
    /// (best-effort) for the next start. Cache files are keyed and
    /// stamped with the group fingerprint `(p, q, g)`; anything invalid
    /// — foreign fingerprint, corruption, stale format — is rebuilt and
    /// overwritten (DESIGN.md §13.4).
    pub fn precomputed_cached(level: SecurityLevel, dir: &std::path::Path) -> Self {
        let (p, q) = Self::embedded_params(level);
        let g = U256::from_u64(4);
        debug_assert_eq!(mod_pow(&g, &q, &p), U256::ONE);
        let cached = crate::cache::load_comb(dir, &p, &q, &g);
        let warm = cached.is_some();
        let group = Self::from_checked_parts_with(p, q, g, cached);
        if !warm {
            let _ = crate::cache::store_comb(dir, &group);
        }
        group
    }

    /// The embedded `(p, q)` pair for a named security level.
    fn embedded_params(level: SecurityLevel) -> (U256, U256) {
        let (_, p_hex, q_hex) = PARAMS
            .iter()
            .find(|(l, _, _)| *l == level)
            .expect("all levels have parameters");
        let p = U256::from_hex(p_hex).expect("valid embedded hex");
        let q = U256::from_hex(q_hex).expect("valid embedded hex");
        (p, q)
    }

    /// Builds a group from explicit parameters, validating primality of
    /// `p` and `q`, the safe-prime relation, and the generator.
    ///
    /// # Errors
    ///
    /// Returns [`GroupError`] if any validity check fails.
    pub fn from_params<R: Rng + ?Sized>(
        p: U256,
        q: U256,
        g: U256,
        rng: &mut R,
    ) -> Result<Self, GroupError> {
        if !is_prime(&p, rng) {
            return Err(GroupError::CompositeModulus);
        }
        if !is_prime(&q, rng) || p != q.shl(1).wrapping_add(&U256::ONE) {
            return Err(GroupError::InvalidOrder);
        }
        if g <= U256::ONE || g >= p || mod_pow(&g, &q, &p) != U256::ONE {
            return Err(GroupError::InvalidGenerator);
        }
        Ok(Self::from_checked_parts(p, q, g))
    }

    /// `g = 4 = 2²`, a quadratic residue, generates the order-`q`
    /// subgroup whenever `q` is prime and `4 ≠ 1 (mod p)`.
    fn with_default_generator(p: U256, q: U256) -> Self {
        let g = U256::from_u64(4);
        debug_assert_eq!(mod_pow(&g, &q, &p), U256::ONE);
        Self::from_checked_parts(p, q, g)
    }

    /// Builds the group and its shared precomputation context. `p` and
    /// `q` must already be validated odd primes (all callers either
    /// embed, generate, or explicitly check them).
    fn from_checked_parts(p: U256, q: U256, g: U256) -> Self {
        Self::from_checked_parts_with(p, q, g, None)
    }

    /// [`from_checked_parts`](Self::from_checked_parts) with an
    /// optional pre-built (cache-loaded) generator comb.
    fn from_checked_parts_with(p: U256, q: U256, g: U256, table: Option<FixedBaseTable>) -> Self {
        // Pin the lane-batched kernel now, so its one-time calibration
        // shootout never lands inside a timed decrypt path.
        cryptonn_bigint::lanes::kernel();
        let mont_p = Montgomery::new(&p).expect("p is an odd prime");
        let mont_q = Montgomery::new(&q).expect("q is an odd prime");
        let g_table = table.unwrap_or_else(|| FixedBaseTable::build(&mont_p, &g));
        Self {
            p,
            q,
            g,
            ctx: Arc::new(GroupCtx {
                mont_p,
                mont_q,
                g_table,
            }),
        }
    }

    /// The cached Montgomery context for the element field `Z_p` — the
    /// in-crate hook the multi-scalar module evaluates through.
    pub(crate) fn mont_p(&self) -> &Montgomery {
        &self.ctx.mont_p
    }

    /// The prime modulus `p`.
    pub fn modulus(&self) -> &U256 {
        &self.p
    }

    /// The prime subgroup order `q`.
    pub fn order(&self) -> &U256 {
        &self.q
    }

    /// The subgroup generator `g`.
    pub fn generator(&self) -> Element {
        Element(self.g)
    }

    /// The identity element `1`.
    pub fn identity(&self) -> Element {
        Element(U256::ONE)
    }

    // ---- scalar (Z_q) arithmetic -------------------------------------

    /// Embeds a `u64` into `Z_q`.
    pub fn scalar_from_u64(&self, v: u64) -> Scalar {
        Scalar(U256::from_u64(v).rem(&self.q))
    }

    /// Embeds a signed integer into `Z_q` (negative values map to
    /// `q - |v|`, the standard balanced representation).
    pub fn scalar_from_i64(&self, v: i64) -> Scalar {
        if v >= 0 {
            self.scalar_from_u64(v as u64)
        } else {
            Scalar(mod_neg(
                &U256::from_u64(v.unsigned_abs()).rem(&self.q),
                &self.q,
            ))
        }
    }

    /// Reduces an arbitrary 256-bit value into `Z_q`.
    pub fn scalar_from_u256(&self, v: U256) -> Scalar {
        Scalar(v.rem(&self.q))
    }

    /// Samples a uniform scalar in `[0, q)`.
    pub fn random_scalar<R: Rng + ?Sized>(&self, rng: &mut R) -> Scalar {
        Scalar(U256::random_below(rng, &self.q))
    }

    /// `(a + b) mod q`.
    pub fn scalar_add(&self, a: &Scalar, b: &Scalar) -> Scalar {
        Scalar(cryptonn_bigint::modular::mod_add(&a.0, &b.0, &self.q))
    }

    /// `(a - b) mod q`.
    pub fn scalar_sub(&self, a: &Scalar, b: &Scalar) -> Scalar {
        Scalar(cryptonn_bigint::modular::mod_sub(&a.0, &b.0, &self.q))
    }

    /// `(a * b) mod q`, via the cached Montgomery context for `q`.
    pub fn scalar_mul(&self, a: &Scalar, b: &Scalar) -> Scalar {
        Scalar(self.ctx.mont_q.mod_mul(&a.0, &b.0))
    }

    /// `(-a) mod q`.
    pub fn scalar_neg(&self, a: &Scalar) -> Scalar {
        Scalar(mod_neg(&a.0, &self.q))
    }

    /// `a⁻¹ mod q`, or `None` for the zero scalar.
    pub fn scalar_inv(&self, a: &Scalar) -> Option<Scalar> {
        mod_inv(&a.0, &self.q).map(Scalar)
    }

    /// Inner product `⟨a, b⟩ mod q` of two scalar slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn scalar_dot(&self, a: &[Scalar], b: &[Scalar]) -> Scalar {
        assert_eq!(a.len(), b.len(), "scalar_dot length mismatch");
        let mut acc = Scalar::ZERO;
        for (x, y) in a.iter().zip(b) {
            acc = self.scalar_add(&acc, &self.scalar_mul(x, y));
        }
        acc
    }

    // ---- group (Z_p^*) arithmetic ------------------------------------

    /// `g^e` for the group generator, via the cached fixed-base comb
    /// table (≤ 64 Montgomery products, no squarings).
    pub fn exp(&self, e: &Scalar) -> Element {
        Element(self.ctx.g_table.pow(&self.ctx.mont_p, &e.0))
    }

    /// `base^e` for an arbitrary base, by windowed exponentiation in
    /// the cached Montgomery domain. For bases that recur (the FEIP
    /// `hᵢ`, any server-side constant), precompute a
    /// [`FixedBaseTable`] and use [`exp_table`](Self::exp_table)
    /// instead.
    pub fn pow(&self, base: &Element, e: &Scalar) -> Element {
        Element(self.ctx.mont_p.pow(&base.0, &e.0))
    }

    /// `a · b mod p`, via the cached Montgomery context for `p`.
    pub fn mul(&self, a: &Element, b: &Element) -> Element {
        Element(self.ctx.mont_p.mod_mul(&a.0, &b.0))
    }

    /// `a⁻¹ mod p`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is zero — zero is not a group element, so this
    /// indicates a broken invariant upstream.
    pub fn inv(&self, a: &Element) -> Element {
        Element(mod_inv(&a.0, &self.p).expect("group elements are invertible"))
    }

    /// `a / b = a · b⁻¹ mod p`.
    pub fn div(&self, a: &Element, b: &Element) -> Element {
        self.mul(a, &self.inv(b))
    }

    /// Inverts every element at the cost of **one** extended-GCD
    /// inversion plus three Montgomery products per element
    /// (Montgomery's trick; see
    /// [`Montgomery::batch_inv`](cryptonn_bigint::Montgomery::batch_inv)).
    /// The decrypt fast path uses this to amortize the divisions of a
    /// whole matrix of cells into a single inversion.
    ///
    /// # Panics
    ///
    /// Panics if any element is zero — zero is not a group element, so
    /// this indicates a broken invariant upstream (as [`inv`](Self::inv)).
    pub fn inv_batch(&self, elements: &[Element]) -> Vec<Element> {
        let values: Vec<U256> = elements.iter().map(|e| e.0).collect();
        self.ctx
            .mont_p
            .batch_inv(&values)
            .expect("group elements are invertible")
            .into_iter()
            .map(Element)
            .collect()
    }

    /// Builds an element from a raw value, reducing mod `p`.
    ///
    /// Intended for deserialization paths; arithmetic should go through
    /// the other methods.
    pub fn element_from_u256(&self, v: U256) -> Element {
        Element(v.rem(&self.p))
    }

    // ---- fixed-base exponentiation -----------------------------------

    /// Precomputes a radix-2⁴ comb table for `base`, making every
    /// subsequent [`exp_table`](Self::exp_table) against that base cost
    /// at most 64 Montgomery products. The build amortizes after about
    /// four exponentiations; key material with long-lived bases (the
    /// FEIP `hᵢ`) builds tables at setup/deserialization time.
    pub fn fixed_base_table(&self, base: &Element) -> FixedBaseTable {
        FixedBaseTable::build(&self.ctx.mont_p, &base.0)
    }

    /// The cached comb table for the generator `g` — the same table
    /// [`exp`](Self::exp) uses internally.
    pub fn generator_table(&self) -> &FixedBaseTable {
        &self.ctx.g_table
    }

    /// `base^e` through a precomputed table.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `table` was built for this group's modulus.
    pub fn exp_table(&self, table: &FixedBaseTable, e: &Scalar) -> Element {
        Element(table.pow(&self.ctx.mont_p, &e.0))
    }

    /// Lane-batched [`exp_table`](Self::exp_table): `tableⱼ.base^e` for
    /// four different tables and one shared exponent, in one 4-lane
    /// sweep — the batch-decrypt denominator shape (`ct0ⱼ^{sk_row}` for
    /// a stride of four ciphertexts).
    ///
    /// # Panics
    ///
    /// As [`exp_table`](Self::exp_table), for any foreign table.
    pub fn exp_tables_lanes(
        &self,
        tables: [&FixedBaseTable; cryptonn_bigint::lanes::LANES],
        e: &Scalar,
    ) -> [Element; cryptonn_bigint::lanes::LANES] {
        let ctx = &self.ctx.mont_p;
        let acc = FixedBaseTable::mul_pow_mont_lanes(
            tables,
            ctx,
            [ctx.one(); cryptonn_bigint::lanes::LANES],
            &e.0,
        );
        let plain = ctx.from_mont_lanes(&acc);
        core::array::from_fn(|lane| Element(plain[lane]))
    }

    /// Lane-batched [`exp_table`](Self::exp_table) with the roles
    /// swapped: one table, four exponents — the coordinate-decrypt
    /// denominator shape (one shared `ct0` comb, one unit-key exponent
    /// per coordinate).
    ///
    /// # Panics
    ///
    /// As [`exp_table`](Self::exp_table), for a foreign table.
    pub fn exp_table_many(
        &self,
        table: &FixedBaseTable,
        es: [&Scalar; cryptonn_bigint::lanes::LANES],
    ) -> [Element; cryptonn_bigint::lanes::LANES] {
        let plain = table.pow_many(&self.ctx.mont_p, core::array::from_fn(|lane| &es[lane].0));
        core::array::from_fn(|lane| Element(plain[lane]))
    }

    /// The multi-exponentiation `∏ tableⱼ.base ^ eⱼ`, evaluated in one
    /// pass through the Montgomery domain (one final conversion instead
    /// of one per factor). This is the shape of FEIP/FEBO encryption:
    /// `hᵢ^r · g^x` is a two-factor multi-pow.
    pub fn multi_pow(&self, factors: &[(&FixedBaseTable, &Scalar)]) -> Element {
        let ctx = &self.ctx.mont_p;
        let mut acc = ctx.one();
        for (table, e) in factors {
            acc = table.mul_pow_mont(ctx, acc, &e.0);
        }
        Element(ctx.from_mont(&acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group() -> SchnorrGroup {
        SchnorrGroup::precomputed(SecurityLevel::Bits64)
    }

    #[test]
    fn all_precomputed_params_are_valid() {
        let mut rng = StdRng::seed_from_u64(0);
        for (level, _, _) in PARAMS {
            let g = SchnorrGroup::precomputed(*level);
            assert_eq!(g.modulus().bit_len(), level.bits());
            // Re-validate through the checked constructor.
            let validated = SchnorrGroup::from_params(
                *g.modulus(),
                *g.order(),
                *g.generator().value(),
                &mut rng,
            );
            assert!(validated.is_ok(), "level {level:?}");
        }
    }

    #[test]
    fn generate_small_group() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = SchnorrGroup::generate(24, &mut rng);
        assert_eq!(g.modulus().bit_len(), 24);
        let e = g.random_scalar(&mut rng);
        let x = g.exp(&e);
        assert_eq!(mod_pow(x.value(), g.order(), g.modulus()), U256::ONE);
    }

    #[test]
    fn from_params_rejects_bad_inputs() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = group();
        let (p, q) = (*g.modulus(), *g.order());
        // Composite modulus.
        assert_eq!(
            SchnorrGroup::from_params(U256::from_u64(15), q, U256::from_u64(4), &mut rng),
            Err(GroupError::CompositeModulus)
        );
        // Wrong order.
        assert_eq!(
            SchnorrGroup::from_params(p, U256::from_u64(97), U256::from_u64(4), &mut rng),
            Err(GroupError::InvalidOrder)
        );
        // Identity generator.
        assert_eq!(
            SchnorrGroup::from_params(p, q, U256::ONE, &mut rng),
            Err(GroupError::InvalidGenerator)
        );
        // Generator outside subgroup: p - 1 ≡ -1 has order 2, and is a
        // non-residue since p ≡ 3 (mod 4).
        assert_eq!(
            SchnorrGroup::from_params(p, q, p.wrapping_sub(&U256::ONE), &mut rng),
            Err(GroupError::InvalidGenerator)
        );
    }

    #[test]
    fn fast_level_selects_fast_reducer_on_both_fields() {
        use cryptonn_bigint::Reducer;
        let fast = SchnorrGroup::precomputed(SecurityLevel::Bits256Fast);
        assert_eq!(fast.ctx.mont_p.reducer(), Reducer::FastP64);
        assert_eq!(fast.ctx.mont_q.reducer(), Reducer::FastP64);
        let generic = SchnorrGroup::precomputed(SecurityLevel::Bits256);
        assert_eq!(generic.ctx.mont_p.reducer(), Reducer::Generic);
        assert_eq!(generic.ctx.mont_q.reducer(), Reducer::Generic);
        // Same bit budget, same generator convention.
        assert_eq!(fast.modulus().bit_len(), 256);
        assert_eq!(fast.generator(), generic.generator());
    }

    #[test]
    fn precomputed_cached_warm_start_matches_cold() {
        let dir = std::env::temp_dir().join(format!("cryptonn-group-comb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cold = SchnorrGroup::precomputed_cached(SecurityLevel::Bits64, &dir);
        let warm = SchnorrGroup::precomputed_cached(SecurityLevel::Bits64, &dir);
        let plain = SchnorrGroup::precomputed(SecurityLevel::Bits64);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..8 {
            let e = plain.random_scalar(&mut rng);
            assert_eq!(cold.exp(&e), plain.exp(&e));
            assert_eq!(warm.exp(&e), plain.exp(&e));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exp_homomorphism() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..16 {
            let a = g.random_scalar(&mut rng);
            let b = g.random_scalar(&mut rng);
            let lhs = g.exp(&g.scalar_add(&a, &b));
            let rhs = g.mul(&g.exp(&a), &g.exp(&b));
            assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn signed_scalar_encoding() {
        let g = group();
        // g^(-3) * g^3 = identity
        let neg = g.exp(&g.scalar_from_i64(-3));
        let pos = g.exp(&g.scalar_from_i64(3));
        assert_eq!(g.mul(&neg, &pos), g.identity());
        assert_eq!(g.scalar_from_i64(5), g.scalar_from_u64(5));
    }

    #[test]
    fn scalar_field_laws() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..32 {
            let a = g.random_scalar(&mut rng);
            let b = g.random_scalar(&mut rng);
            assert_eq!(g.scalar_add(&a, &g.scalar_neg(&a)), Scalar::ZERO);
            assert_eq!(g.scalar_sub(&g.scalar_add(&a, &b), &b), a);
            if a != Scalar::ZERO {
                let inv = g.scalar_inv(&a).unwrap();
                assert_eq!(g.scalar_mul(&a, &inv), Scalar::ONE);
            }
        }
        assert_eq!(g.scalar_inv(&Scalar::ZERO), None);
    }

    #[test]
    fn scalar_dot_small() {
        let g = group();
        let a: Vec<_> = [1u64, 2, 3].iter().map(|&v| g.scalar_from_u64(v)).collect();
        let b: Vec<_> = [4u64, 5, 6].iter().map(|&v| g.scalar_from_u64(v)).collect();
        assert_eq!(g.scalar_dot(&a, &b), g.scalar_from_u64(32));
    }

    #[test]
    fn div_is_mul_inverse() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(5);
        let a = g.exp(&g.random_scalar(&mut rng));
        let b = g.exp(&g.random_scalar(&mut rng));
        assert_eq!(g.mul(&g.div(&a, &b), &b), a);
    }

    #[test]
    fn lane_exp_wrappers_match_exp_table() {
        use cryptonn_bigint::lanes::LANES;
        let g = SchnorrGroup::precomputed(SecurityLevel::Bits256Fast);
        let mut rng = StdRng::seed_from_u64(9);
        let tables: Vec<FixedBaseTable> = (0..LANES)
            .map(|_| g.fixed_base_table(&g.exp(&g.random_scalar(&mut rng))))
            .collect();
        let refs: [&FixedBaseTable; LANES] = core::array::from_fn(|i| &tables[i]);
        for _ in 0..4 {
            let e = g.random_scalar(&mut rng);
            let got = g.exp_tables_lanes(refs, &e);
            for lane in 0..LANES {
                assert_eq!(got[lane], g.exp_table(refs[lane], &e), "lane {lane}");
            }
            let es: Vec<Scalar> = (0..LANES).map(|_| g.random_scalar(&mut rng)).collect();
            let got = g.exp_table_many(refs[0], core::array::from_fn(|i| &es[i]));
            for lane in 0..LANES {
                assert_eq!(got[lane], g.exp_table(refs[0], &es[lane]), "lane {lane}");
            }
        }
    }

    #[test]
    fn exp_table_matches_pow() {
        let g = SchnorrGroup::precomputed(SecurityLevel::Bits256);
        let mut rng = StdRng::seed_from_u64(6);
        let base = g.exp(&g.random_scalar(&mut rng));
        let table = g.fixed_base_table(&base);
        for _ in 0..16 {
            let e = g.random_scalar(&mut rng);
            assert_eq!(g.exp_table(&table, &e), g.pow(&base, &e));
        }
        // The cached generator table is the exp() fast path.
        let e = g.random_scalar(&mut rng);
        assert_eq!(g.exp_table(g.generator_table(), &e), g.exp(&e));
    }

    #[test]
    fn multi_pow_matches_factored_form() {
        let g = SchnorrGroup::precomputed(SecurityLevel::Bits128);
        let mut rng = StdRng::seed_from_u64(7);
        let b1 = g.exp(&g.random_scalar(&mut rng));
        let b2 = g.exp(&g.random_scalar(&mut rng));
        let (t1, t2) = (g.fixed_base_table(&b1), g.fixed_base_table(&b2));
        for _ in 0..8 {
            let (e1, e2) = (g.random_scalar(&mut rng), g.random_scalar(&mut rng));
            let fused = g.multi_pow(&[(&t1, &e1), (&t2, &e2)]);
            let split = g.mul(&g.pow(&b1, &e1), &g.pow(&b2, &e2));
            assert_eq!(fused, split);
        }
        // Empty product is the identity.
        assert_eq!(g.multi_pow(&[]), g.identity());
    }

    #[test]
    #[should_panic(expected = "foreign group")]
    fn foreign_table_is_rejected_in_release_too() {
        let g64 = SchnorrGroup::precomputed(SecurityLevel::Bits64);
        let g128 = SchnorrGroup::precomputed(SecurityLevel::Bits128);
        let table = g64.fixed_base_table(&g64.generator());
        let _ = g128.exp_table(&table, &g128.scalar_from_u64(3));
    }

    #[test]
    fn serde_roundtrip_rebuilds_context() {
        let g = SchnorrGroup::precomputed(SecurityLevel::Bits64);
        let value = serde::ser::to_value(&g);
        let back: SchnorrGroup = serde::de::from_value(value).unwrap();
        assert_eq!(back, g);
        // The rebuilt context must actually work.
        let e = back.scalar_from_u64(123);
        assert_eq!(back.exp(&e), g.exp(&e));
    }

    #[test]
    fn deserialize_rejects_even_moduli() {
        use cryptonn_bigint::U256;
        let bad = serde::Value::Map(vec![
            ("p".to_string(), serde::ser::to_value(&U256::from_u64(16))),
            ("q".to_string(), serde::ser::to_value(&U256::from_u64(7))),
            ("g".to_string(), serde::ser::to_value(&U256::from_u64(4))),
        ]);
        assert!(serde::de::from_value::<SchnorrGroup>(bad).is_err());
    }
}
