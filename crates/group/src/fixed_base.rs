//! Fixed-base exponentiation tables (radix-2⁴ comb).
//!
//! CryptoNN's hot exponentiations almost all share a handful of bases:
//! the group generator `g` (every `Encrypt`, every BSGS verification)
//! and the FEIP public-key elements `hᵢ = g^{sᵢ}` (once per coordinate
//! per `Encrypt`). A [`FixedBaseTable`] trades one-time precomputation
//! for a ~5× cheaper exponentiation: it stores
//! `base^(d · 16^i)` for every window index `i` and digit `d ∈ [1, 16)`
//! in Montgomery form, so `base^e` becomes at most 64 Montgomery
//! products — no squarings, no conversions until the very end
//! (DESIGN.md §8).
//!
//! Tables are bound to the group's modulus; build them through
//! [`SchnorrGroup::fixed_base_table`](crate::SchnorrGroup::fixed_base_table)
//! and use them through
//! [`exp_table`](crate::SchnorrGroup::exp_table) /
//! [`multi_pow`](crate::SchnorrGroup::multi_pow).

use cryptonn_bigint::lanes::LANES;
use cryptonn_bigint::{Montgomery, U256};

/// Window width in bits. 4 balances table size (64 × 15 × 32 B = 30 KiB
/// per base) against the per-exponentiation product count (≤ 64).
const WINDOW_BITS: usize = 4;
/// Number of radix-2⁴ windows covering a 256-bit exponent.
const WINDOWS: usize = U256::BITS.div_ceil(WINDOW_BITS);
/// Non-zero digits per window.
const DIGITS: usize = (1 << WINDOW_BITS) - 1;

/// A precomputed radix-2⁴ comb table for one base in one group.
///
/// The table is deliberately *not* serializable: it is derived state,
/// rebuilt from the base at deserialization time by the owning key
/// material (`SchnorrGroup`, `FeipPublicKey`, `FeboPublicKey`).
#[derive(Clone)]
pub struct FixedBaseTable {
    /// The plain-form base, for equality/debugging.
    base: U256,
    /// The modulus the Montgomery entries live under.
    modulus: U256,
    /// `rows[i][d - 1] = base^(d · 16^i) mod m`, in Montgomery form.
    rows: Vec<[U256; DIGITS]>,
}

impl FixedBaseTable {
    /// Precomputes the comb for `base` under `ctx`. Costs
    /// `WINDOWS × DIGITS` Montgomery products — amortized after roughly
    /// four exponentiations.
    pub(crate) fn build(ctx: &Montgomery, base: &U256) -> Self {
        let base = if base < ctx.modulus() {
            *base
        } else {
            base.rem(ctx.modulus())
        };
        let mut rows = Vec::with_capacity(WINDOWS);
        // cur = base^(16^i) in Montgomery form.
        let mut cur = ctx.to_mont(&base);
        for _ in 0..WINDOWS {
            let mut row = [ctx.one(); DIGITS];
            row[0] = cur;
            for d in 1..DIGITS {
                row[d] = ctx.mont_mul(&row[d - 1], &cur);
            }
            // base^(16^(i+1)) = base^(15·16^i) · base^(16^i).
            cur = ctx.mont_mul(&row[DIGITS - 1], &cur);
            rows.push(row);
        }
        Self {
            base,
            modulus: *ctx.modulus(),
            rows,
        }
    }

    /// The plain-form base this table was built for.
    pub fn base(&self) -> &U256 {
        &self.base
    }

    /// The modulus this table's entries are reduced by.
    pub fn modulus(&self) -> &U256 {
        &self.modulus
    }

    /// Multiplies `acc` (Montgomery form) by `base^e`, staying in the
    /// Montgomery domain. This is the composable core: chaining calls
    /// over several tables evaluates a multi-exponentiation
    /// `∏ baseⱼ^{eⱼ}` with zero intermediate conversions.
    pub(crate) fn mul_pow_mont(&self, ctx: &Montgomery, mut acc: U256, e: &U256) -> U256 {
        // A real assert, not debug: exp_table/multi_pow are public APIs
        // taking arbitrary tables, and a table built for a different
        // group would silently produce garbage elements in release
        // builds. Four u64 compares against dozens of Montgomery
        // products is free.
        assert_eq!(
            &self.modulus,
            ctx.modulus(),
            "fixed-base table used with a foreign group"
        );
        let bits = e.bit_len();
        let windows = bits.div_ceil(WINDOW_BITS).min(WINDOWS);
        for (w, row) in self.rows.iter().enumerate().take(windows) {
            let mut digit = 0usize;
            for b in 0..WINDOW_BITS {
                let idx = w * WINDOW_BITS + b;
                if idx < bits && e.bit(idx) {
                    digit |= 1 << b;
                }
            }
            if digit != 0 {
                acc = ctx.mont_mul(&acc, &row[digit - 1]);
            }
        }
        acc
    }

    /// `base^e mod m` as a plain residue.
    pub(crate) fn pow(&self, ctx: &Montgomery, e: &U256) -> U256 {
        ctx.from_mont(&self.mul_pow_mont(ctx, ctx.one(), e))
    }

    /// Lane-batched [`mul_pow_mont`](Self::mul_pow_mont): multiplies
    /// four accumulators by `tableⱼ.base^e` — four *different* tables,
    /// one shared exponent. This is the shape of the batch-decrypt
    /// denominator, `ct0ⱼ^{sk_row}` for a stride of four ciphertexts:
    /// the digit schedule is identical across lanes, so every window is
    /// one gathered 4-lane Montgomery product.
    ///
    /// # Panics
    ///
    /// As [`mul_pow_mont`](Self::mul_pow_mont), for any foreign table.
    pub(crate) fn mul_pow_mont_lanes(
        tables: [&Self; LANES],
        ctx: &Montgomery,
        mut acc: [U256; LANES],
        e: &U256,
    ) -> [U256; LANES] {
        for t in tables {
            assert_eq!(
                &t.modulus,
                ctx.modulus(),
                "fixed-base table used with a foreign group"
            );
        }
        let bits = e.bit_len();
        let windows = bits.div_ceil(WINDOW_BITS).min(WINDOWS);
        for w in 0..windows {
            let mut digit = 0usize;
            for b in 0..WINDOW_BITS {
                let idx = w * WINDOW_BITS + b;
                if idx < bits && e.bit(idx) {
                    digit |= 1 << b;
                }
            }
            if digit != 0 {
                let gathered = core::array::from_fn(|lane| tables[lane].rows[w][digit - 1]);
                acc = ctx.mont_mul_lanes(&acc, &gathered);
            }
        }
        acc
    }

    /// Four exponentiations of the *same* base in one lane-batched
    /// sweep: `base^{eⱼ}` for `j ∈ 0..4`, as plain residues. Lanes with
    /// a zero digit in some window multiply by the Montgomery-domain
    /// identity `ctx.one()` so the four digit schedules stay in
    /// lockstep. This is the shape of the coordinate-decrypt
    /// denominator: one shared `ct0` comb, one secret-key exponent per
    /// output coordinate.
    ///
    /// # Panics
    ///
    /// As [`mul_pow_mont`](Self::mul_pow_mont), for a foreign table.
    pub(crate) fn pow_many(&self, ctx: &Montgomery, es: [&U256; LANES]) -> [U256; LANES] {
        assert_eq!(
            &self.modulus,
            ctx.modulus(),
            "fixed-base table used with a foreign group"
        );
        let bits = es.iter().map(|e| e.bit_len()).max().unwrap_or(0);
        let windows = bits.div_ceil(WINDOW_BITS).min(WINDOWS);
        let mut acc = [ctx.one(); LANES];
        for (w, row) in self.rows.iter().enumerate().take(windows) {
            let mut any = false;
            let gathered = core::array::from_fn(|lane| {
                let mut digit = 0usize;
                for b in 0..WINDOW_BITS {
                    let idx = w * WINDOW_BITS + b;
                    if idx < es[lane].bit_len() && es[lane].bit(idx) {
                        digit |= 1 << b;
                    }
                }
                if digit != 0 {
                    any = true;
                    row[digit - 1]
                } else {
                    ctx.one()
                }
            });
            if any {
                acc = ctx.mont_mul_lanes(&acc, &gathered);
            }
        }
        ctx.from_mont_lanes(&acc)
    }

    // ---- cache (de)serialization hooks -------------------------------

    /// Total Montgomery-form entries in a full comb.
    pub(crate) const ENTRIES: usize = WINDOWS * DIGITS;

    /// The comb entries flattened row-major, for the on-disk cache.
    pub(crate) fn entries_flat(&self) -> impl Iterator<Item = &U256> {
        self.rows.iter().flat_map(|row| row.iter())
    }

    /// Rebuilds a table from cached entries. Returns `None` if the
    /// entry count is wrong for the comb geometry — the cache layer
    /// treats that as corruption and falls back to a fresh build.
    pub(crate) fn from_cached_entries(base: U256, modulus: U256, flat: &[U256]) -> Option<Self> {
        if flat.len() != Self::ENTRIES {
            return None;
        }
        let rows = flat
            .chunks_exact(DIGITS)
            .map(|chunk| core::array::from_fn(|d| chunk[d]))
            .collect();
        Some(Self {
            base,
            modulus,
            rows,
        })
    }
}

impl core::fmt::Debug for FixedBaseTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FixedBaseTable")
            .field("base", &self.base)
            .field("modulus", &self.modulus)
            .field("windows", &self.rows.len())
            .finish()
    }
}

impl PartialEq for FixedBaseTable {
    fn eq(&self, other: &Self) -> bool {
        // Tables are fully determined by (base, modulus).
        self.base == other.base && self.modulus == other.modulus
    }
}

impl Eq for FixedBaseTable {}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptonn_bigint::modular;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p25519() -> U256 {
        U256::from_hex("7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed").unwrap()
    }

    #[test]
    fn matches_generic_mod_pow() {
        let p = p25519();
        let ctx = Montgomery::new(&p).unwrap();
        let base = U256::from_u64(4);
        let table = FixedBaseTable::build(&ctx, &base);
        let mut rng = StdRng::seed_from_u64(200);
        for _ in 0..32 {
            let e = U256::random(&mut rng);
            assert_eq!(
                table.pow(&ctx, &e),
                modular::mod_pow(&base, &e, &p),
                "e = {e}"
            );
        }
        // Degenerate exponents.
        assert_eq!(table.pow(&ctx, &U256::ZERO), U256::ONE);
        assert_eq!(table.pow(&ctx, &U256::ONE), base);
        assert_eq!(
            table.pow(&ctx, &U256::MAX),
            modular::mod_pow(&base, &U256::MAX, &p)
        );
    }

    #[test]
    fn chained_multi_exponentiation() {
        let p = p25519();
        let ctx = Montgomery::new(&p).unwrap();
        let (b1, b2) = (U256::from_u64(4), U256::from_u64(9));
        let (t1, t2) = (
            FixedBaseTable::build(&ctx, &b1),
            FixedBaseTable::build(&ctx, &b2),
        );
        let (e1, e2) = (U256::from_u64(12345), U256::from_u64(67890));
        let acc = t1.mul_pow_mont(&ctx, ctx.one(), &e1);
        let acc = t2.mul_pow_mont(&ctx, acc, &e2);
        let got = ctx.from_mont(&acc);
        let expect = modular::mod_mul(
            &modular::mod_pow(&b1, &e1, &p),
            &modular::mod_pow(&b2, &e2, &p),
            &p,
        );
        assert_eq!(got, expect);
    }

    #[test]
    fn lane_variants_match_serial() {
        let p = p25519();
        let ctx = Montgomery::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let bases: [U256; LANES] = core::array::from_fn(|i| U256::from_u64(3 + 2 * i as u64));
        let tables: Vec<FixedBaseTable> = bases
            .iter()
            .map(|b| FixedBaseTable::build(&ctx, b))
            .collect();
        let refs: [&FixedBaseTable; LANES] = core::array::from_fn(|i| &tables[i]);

        for _ in 0..8 {
            // Four tables, one exponent.
            let e = U256::random(&mut rng);
            let acc = FixedBaseTable::mul_pow_mont_lanes(refs, &ctx, [ctx.one(); LANES], &e);
            for lane in 0..LANES {
                assert_eq!(ctx.from_mont(&acc[lane]), tables[lane].pow(&ctx, &e));
            }
            // One table, four exponents.
            let es: [U256; LANES] = core::array::from_fn(|_| U256::random(&mut rng));
            let got = tables[0].pow_many(&ctx, core::array::from_fn(|i| &es[i]));
            for lane in 0..LANES {
                assert_eq!(got[lane], tables[0].pow(&ctx, &es[lane]));
            }
        }

        // Degenerate exponents force identity lanes in every window.
        let es = [U256::ZERO, U256::ONE, U256::from_u64(12345), U256::MAX];
        let got = tables[1].pow_many(&ctx, core::array::from_fn(|i| &es[i]));
        for lane in 0..LANES {
            assert_eq!(got[lane], tables[1].pow(&ctx, &es[lane]));
        }
    }

    #[test]
    fn cached_entries_roundtrip() {
        let p = p25519();
        let ctx = Montgomery::new(&p).unwrap();
        let table = FixedBaseTable::build(&ctx, &U256::from_u64(4));
        let flat: Vec<U256> = table.entries_flat().copied().collect();
        assert_eq!(flat.len(), FixedBaseTable::ENTRIES);
        let back = FixedBaseTable::from_cached_entries(table.base, table.modulus, &flat).unwrap();
        assert_eq!(back.rows, table.rows);
        assert!(
            FixedBaseTable::from_cached_entries(table.base, table.modulus, &flat[1..]).is_none()
        );
    }

    #[test]
    fn unreduced_base_is_reduced() {
        let p = U256::from_u64(97);
        let ctx = Montgomery::new(&p).unwrap();
        let table = FixedBaseTable::build(&ctx, &U256::from_u64(97 + 5));
        assert_eq!(*table.base(), U256::from_u64(5));
        assert_eq!(table.pow(&ctx, &U256::from_u64(2)), U256::from_u64(25));
    }
}
