//! Discrete-logarithm recovery in a known small range.
//!
//! FEIP/FEBO decryption ends with a value `g^z` where `z` is the function
//! output (an inner product or an element-wise result) known to lie in a
//! bounded range. The paper cites Shanks' baby-step giant-step algorithm
//! [26] for recovering `z`; this module implements it, with a reusable
//! precomputed table ([`DlogTable`]) because in Algorithm 1 the server
//! performs thousands of recoveries against the same generator.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::error::GroupError;
use crate::group::{Element, SchnorrGroup};

/// A multiply-xor hasher (FxHash-style) for the already-uniform low-64
/// baby-step keys. The default `HashMap` SipHash costs more than the
/// group multiplication between probes; group elements are
/// indistinguishable from uniform, so a keyed hash buys nothing here.
#[derive(Default)]
pub(crate) struct FxHasher64(u64);

impl Hasher for FxHasher64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

type FxMap = HashMap<u64, u64, BuildHasherDefault<FxHasher64>>;

/// A precomputed baby-step table for solving `g^z = target` with
/// `z ∈ [-bound, bound]` (signed) or `z ∈ [0, bound]` (unsigned).
///
/// Construction costs `O(√B)` group operations and the same amount of
/// memory; each [`solve`](DlogTable::solve) costs `O(√B)` multiplications
/// worst-case.
///
/// The baby-step map is keyed on the *low 64 bits* of each element
/// through a multiply-xor hasher, not on full 256-bit elements through
/// SipHash: lookups sit on the giant-step hot loop, and the truncated
/// key plus a final fixed-base verification is both faster and exact.
/// Truncation collisions are kept in a (virtually always empty)
/// side list, so no representable solution can be missed.
///
/// ```
/// use cryptonn_group::{DlogTable, SchnorrGroup, SecurityLevel};
///
/// let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
/// let table = DlogTable::new(&group, 1_000);
/// let target = group.exp(&group.scalar_from_i64(-517));
/// assert_eq!(table.solve(&group, &target), Ok(-517));
/// ```
#[derive(Debug, Clone)]
pub struct DlogTable {
    /// Baby steps: `low64(g^j) → j` for `j ∈ [0, m)`, first entry wins.
    baby: HashMap<u64, u64, BuildHasherDefault<FxHasher64>>,
    /// Baby steps whose truncated key collided with an earlier entry.
    collisions: Vec<(u64, u64)>,
    /// `g^{-m}`, the giant-step factor.
    giant_factor: Element,
    /// Baby-step count `m = ⌈√(2B+1)⌉`.
    m: u64,
    /// The signed bound `B`.
    bound: u64,
}

impl DlogTable {
    /// Builds a table able to recover exponents in `[-bound, bound]`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn new(group: &SchnorrGroup, bound: u64) -> Self {
        assert!(bound > 0, "dlog bound must be positive");
        let range = 2 * bound + 1;
        let m = (range as f64).sqrt().ceil() as u64;
        let mut baby = FxMap::with_capacity_and_hasher(m as usize, Default::default());
        let mut collisions = Vec::new();
        let g = group.generator();
        let mut acc = group.identity();
        for j in 0..m {
            let key = acc.value().low_u64();
            // First entry wins (matching the seed's or_insert semantics);
            // later arrivals under the same truncated key go to the side
            // list so no representable solution can be missed.
            match baby.entry(key) {
                Entry::Occupied(_) => collisions.push((key, j)),
                Entry::Vacant(slot) => {
                    slot.insert(j);
                }
            }
            acc = group.mul(&acc, &g);
        }
        // g^{-m} = (g^m)^{-1}; acc currently holds g^m.
        let giant_factor = group.inv(&acc);
        Self {
            baby,
            collisions,
            giant_factor,
            m,
            bound,
        }
    }

    /// The signed bound `B` this table covers.
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// Checks whether baby index `j` at giant step `i` solves the
    /// instance, verifying `g^j = gamma` in full (the map key is only
    /// 64 bits of the element).
    fn check_candidate(
        &self,
        group: &SchnorrGroup,
        gamma: &Element,
        i: u64,
        j: u64,
        range: u64,
    ) -> Option<i64> {
        let z = i * self.m + j;
        if z > range {
            return None;
        }
        let verified = group.exp(&group.scalar_from_u64(j)) == *gamma;
        verified.then_some(z as i64 - self.bound as i64)
    }

    /// Recovers `z ∈ [-B, B]` with `g^z = target`.
    ///
    /// # Errors
    ///
    /// Returns [`GroupError::DlogOutOfRange`] if no such `z` exists in the
    /// range — for CryptoNN this means a plaintext value exceeded the
    /// advertised range and the caller's bound must be increased.
    pub fn solve(&self, group: &SchnorrGroup, target: &Element) -> Result<i64, GroupError> {
        // Shift the range: solve g^(z+B) = target * g^B, z+B ∈ [0, 2B].
        let shift = group.scalar_from_u64(self.bound);
        let mut gamma = group.mul(target, &group.exp(&shift));
        let range = 2 * self.bound;
        let giant_steps = range / self.m + 1;
        for i in 0..=giant_steps {
            let key = gamma.value().low_u64();
            if let Some(&j) = self.baby.get(&key) {
                if let Some(z) = self.check_candidate(group, &gamma, i, j, range) {
                    return Ok(z);
                }
                // A truncated-key hit that failed verification: consult
                // the collision side list before moving on.
                for &(ckey, cj) in &self.collisions {
                    if ckey == key {
                        if let Some(z) = self.check_candidate(group, &gamma, i, cj, range) {
                            return Ok(z);
                        }
                    }
                }
            }
            gamma = group.mul(&gamma, &self.giant_factor);
        }
        Err(GroupError::DlogOutOfRange { bound: self.bound })
    }

    /// Recovers `z ∈ [0, B]` with `g^z = target`, rejecting negatives.
    ///
    /// # Errors
    ///
    /// Returns [`GroupError::DlogOutOfRange`] if `z` is negative or
    /// exceeds the bound.
    pub fn solve_unsigned(
        &self,
        group: &SchnorrGroup,
        target: &Element,
    ) -> Result<u64, GroupError> {
        match self.solve(group, target)? {
            z if z >= 0 => Ok(z as u64),
            _ => Err(GroupError::DlogOutOfRange { bound: self.bound }),
        }
    }
}

/// One-shot signed BSGS without table reuse. Prefer [`DlogTable`] when
/// solving more than once against the same group.
///
/// # Errors
///
/// Returns [`GroupError::DlogOutOfRange`] if no exponent in
/// `[-bound, bound]` matches.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn solve_dlog(group: &SchnorrGroup, target: &Element, bound: u64) -> Result<i64, GroupError> {
    DlogTable::new(group, bound).solve(group, target)
}

/// Exhaustive-search discrete log for tiny ranges; used to cross-check
/// BSGS in tests and for one-off recoveries where building a table is
/// not worth it.
///
/// # Errors
///
/// Returns [`GroupError::DlogOutOfRange`] if no exponent in
/// `[-bound, bound]` matches.
pub fn solve_dlog_naive(
    group: &SchnorrGroup,
    target: &Element,
    bound: u64,
) -> Result<i64, GroupError> {
    let g = group.generator();
    let mut pos = group.identity();
    let mut neg = group.identity();
    let g_inv = group.inv(&g);
    if *target == pos {
        return Ok(0);
    }
    for z in 1..=bound {
        pos = group.mul(&pos, &g);
        if pos == *target {
            return Ok(z as i64);
        }
        neg = group.mul(&neg, &g_inv);
        if neg == *target {
            return Ok(-(z as i64));
        }
    }
    Err(GroupError::DlogOutOfRange { bound })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::SecurityLevel;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn group() -> SchnorrGroup {
        SchnorrGroup::precomputed(SecurityLevel::Bits64)
    }

    #[test]
    fn solves_all_values_in_small_range() {
        let g = group();
        let table = DlogTable::new(&g, 50);
        for z in -50i64..=50 {
            let target = g.exp(&g.scalar_from_i64(z));
            assert_eq!(table.solve(&g, &target), Ok(z), "z = {z}");
        }
    }

    #[test]
    fn rejects_out_of_range() {
        let g = group();
        let table = DlogTable::new(&g, 10);
        for z in [11i64, -11, 100, -100, 12345] {
            let target = g.exp(&g.scalar_from_i64(z));
            assert_eq!(
                table.solve(&g, &target),
                Err(GroupError::DlogOutOfRange { bound: 10 }),
                "z = {z}"
            );
        }
    }

    #[test]
    fn unsigned_rejects_negative() {
        let g = group();
        let table = DlogTable::new(&g, 20);
        let target = g.exp(&g.scalar_from_i64(-5));
        assert!(table.solve_unsigned(&g, &target).is_err());
        let target = g.exp(&g.scalar_from_i64(17));
        assert_eq!(table.solve_unsigned(&g, &target), Ok(17));
    }

    #[test]
    fn random_values_large_bound() {
        let g = group();
        let bound = 1_000_000;
        let table = DlogTable::new(&g, bound);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..64 {
            let z = rng.random_range(-(bound as i64)..=bound as i64);
            let target = g.exp(&g.scalar_from_i64(z));
            assert_eq!(table.solve(&g, &target), Ok(z));
        }
    }

    #[test]
    fn matches_naive() {
        let g = group();
        let table = DlogTable::new(&g, 64);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            let z = rng.random_range(-64i64..=64);
            let target = g.exp(&g.scalar_from_i64(z));
            assert_eq!(
                table.solve(&g, &target).unwrap(),
                solve_dlog_naive(&g, &target, 64).unwrap()
            );
        }
    }

    #[test]
    fn one_shot_helper() {
        let g = group();
        let target = g.exp(&g.scalar_from_i64(-99));
        assert_eq!(solve_dlog(&g, &target, 100), Ok(-99));
    }

    #[test]
    fn truncation_collision_side_list_is_consulted() {
        // Real low-64-bit collisions among `√(2B)` baby steps are a
        // ~2⁻⁴⁴-per-table event, so fabricate one: evict the baby-map
        // entry for `j2`'s truncated key and repoint it at a different
        // index, exactly the state `new` leaves behind when a later
        // baby step collides with an earlier one (first entry wins, the
        // loser goes to the side list). `solve` must then fail the full
        // verification against the squatter and fall through to the
        // side list — still recovering the exact exponent.
        let g = group();
        let bound = 10_000;
        let mut table = DlogTable::new(&g, bound);
        let j2 = table.m / 2;
        let j1 = j2 + 1; // squatter with a different true key
        let key = g.exp(&g.scalar_from_u64(j2)).value().low_u64();
        assert_eq!(table.baby.get(&key), Some(&j2), "fixture sanity");
        table.baby.insert(key, j1);
        table.collisions.push((key, j2));

        // Every giant step `i` whose solution lands on baby index j2
        // must go through the side list; check i = 0 and a later one.
        for i in [0u64, 3] {
            let z = (i * table.m + j2) as i64 - bound as i64;
            if z.unsigned_abs() > bound {
                continue;
            }
            let target = g.exp(&g.scalar_from_i64(z));
            assert_eq!(table.solve(&g, &target), Ok(z), "giant step {i}");
        }
        // The squatter's own solutions and unrelated values still solve.
        let z1 = j1 as i64 - bound as i64;
        let target = g.exp(&g.scalar_from_i64(z1));
        assert_eq!(table.solve(&g, &target), Ok(z1));
        for z in [-(bound as i64), -1, 0, 1, 4321, bound as i64] {
            let target = g.exp(&g.scalar_from_i64(z));
            assert_eq!(table.solve(&g, &target), Ok(z), "z = {z}");
        }
    }

    #[test]
    fn boundary_values() {
        let g = group();
        let table = DlogTable::new(&g, 1);
        for z in [-1i64, 0, 1] {
            let target = g.exp(&g.scalar_from_i64(z));
            assert_eq!(table.solve(&g, &target), Ok(z));
        }
    }
}
