//! Discrete-logarithm recovery in a known small range.
//!
//! FEIP/FEBO decryption ends with a value `g^z` where `z` is the function
//! output (an inner product or an element-wise result) known to lie in a
//! bounded range. The paper cites Shanks' baby-step giant-step algorithm
//! [26] for recovering `z`; this module implements it, with a reusable
//! precomputed table ([`DlogTable`]) because in Algorithm 1 the server
//! performs thousands of recoveries against the same generator.
//!
//! The giant-step loop is the single hottest multiply chain of the whole
//! decrypt path (DESIGN.md §13.3), so the table lives entirely in the
//! **Montgomery domain**: baby keys are truncated Montgomery residues,
//! the giant factors `g^{±m}` are stored in Montgomery form, and every
//! step costs exactly one `mont_mul` — no per-call exponentiation, no
//! to/from-Montgomery conversions inside the loop.
//!
//! The signed range is searched **outward from zero**, not shifted to
//! `[0, 2B]`: two gammas per instance walk the positive and negative
//! giant strides simultaneously, so an instance whose answer has
//! magnitude `|z|` settles after `⌈|z|/m⌉` rounds instead of the
//! `(z+B)/m` a range-shifted walk pays. CryptoNN's decrypted values are
//! inner products of weight rows against inputs — concentrated near
//! zero, orders of magnitude below the worst-case bound the table must
//! advertise — which makes the centered walk the difference between
//! ~`B/m` and a handful of giant steps per cell (DESIGN.md §13.3). The
//! worst case (`|z| = B`) multiplies exactly as much as the shifted
//! walk did. [`DlogTable::solve_batch`] packs two instances (four
//! gammas) per 4-lane kernel call ([`Montgomery::mont_mul_lanes`]),
//! refilling finished instances from the pending queue so no lane
//! idles.
//!
//! [`Montgomery::mont_mul_lanes`]: cryptonn_bigint::Montgomery::mont_mul_lanes

use cryptonn_bigint::lanes::LANES;
use cryptonn_bigint::{Montgomery, U256};

use crate::error::GroupError;
use crate::group::{Element, SchnorrGroup};

/// Vacant-slot sentinel for [`FlatBabyMap`]; baby indices are `< m ≤
/// 2^33`, so `u64::MAX` can never be a real entry.
const EMPTY: u64 = u64::MAX;

/// An open-addressing flat hash table `truncated key → baby index`,
/// replacing the seed's `HashMap`: power-of-two capacity at ≤ ⅔ load,
/// Fibonacci hashing, linear probing. Lookups sit on the giant-step hot
/// loop, and flat parallel arrays probe one cache line where the std
/// map chases buckets — and pack into the on-disk table cache as an
/// occupancy bitmap plus the occupied slots (see [`PackedSlots`]).
///
/// Keys and indices live in *separate* arrays rather than one
/// `Vec<(u64, u64)>`, for two reasons. Giant-step probes are almost
/// all misses, and a miss only inspects the index array — split, it
/// packs twice as many slots per cache line as interleaved pairs
/// would. And each array stays under glibc's 128 KiB mmap threshold
/// for every realistic bound, so warm-start table loads reuse malloc
/// arena pages instead of paying a fresh `mmap` plus first-touch page
/// faults on every start (measured at 30–60 µs per load — comparable
/// to the entire rest of the warm path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FlatBabyMap {
    /// Truncated keys; meaningful only where `idx[i] != EMPTY`.
    keys: Vec<u64>,
    /// Baby indices; `EMPTY` marks a vacant slot.
    idx: Vec<u64>,
    /// `64 - log2(capacity)`, for Fibonacci hashing.
    shift: u32,
}

impl FlatBabyMap {
    /// An empty map sized for `entries` insertions at ≤ ⅔ load.
    ///
    /// The sizing target is 1.5× the entry count rounded up to a power
    /// of two, not 2×: BSGS baby counts are `⌈√(2B+1)⌉` and the table
    /// cache rounds bounds to powers of two, so `entries` lands *just
    /// above* a power of two — a 2× target would round the capacity up
    /// twice (to 0.25 load), doubling both the map's cache footprint on
    /// the giant-step hot loop and the persisted cache file's bitmap.
    fn with_capacity(entries: u64) -> Self {
        let cap = (entries.max(1) as usize)
            .saturating_mul(3)
            .div_ceil(2)
            .next_power_of_two();
        Self {
            keys: vec![0; cap],
            idx: vec![EMPTY; cap],
            shift: 64 - cap.trailing_zeros(),
        }
    }

    /// Fibonacci hash of `key` to a slot index. The multiplier is
    /// `⌊2^64/φ⌋`; the high product bits mix every key bit, which a
    /// low-bits mask would not.
    #[inline]
    fn index(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> self.shift) as usize
    }

    /// Inserts `key → j` unless `key` is already present (first entry
    /// wins, matching the seed's semantics); returns whether it was
    /// inserted.
    fn insert_first_wins(&mut self, key: u64, j: u64) -> bool {
        debug_assert_ne!(j, EMPTY);
        let mask = self.idx.len() - 1;
        let mut i = self.index(key);
        loop {
            if self.idx[i] == EMPTY {
                self.keys[i] = key;
                self.idx[i] = j;
                return true;
            }
            if self.keys[i] == key {
                return false;
            }
            i = (i + 1) & mask;
        }
    }

    /// The baby index stored under `key`, if any.
    #[inline]
    fn get(&self, key: u64) -> Option<u64> {
        let mask = self.idx.len() - 1;
        let mut i = self.index(key);
        loop {
            let j = self.idx[i];
            if j == EMPTY {
                return None;
            }
            if self.keys[i] == key {
                return Some(j);
            }
            i = (i + 1) & mask;
        }
    }

    /// Overwrites the entry stored under an existing `key` — test
    /// fixture hook for fabricating truncation collisions.
    #[cfg(test)]
    fn set(&mut self, key: u64, j: u64) {
        let mask = self.idx.len() - 1;
        let mut i = self.index(key);
        loop {
            assert_ne!(self.idx[i], EMPTY, "set() requires an existing key");
            if self.keys[i] == key {
                self.idx[i] = j;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// Packs the slot arrays for the on-disk table cache.
    fn packed(&self) -> PackedSlots {
        let mut bitmap = vec![0u64; self.idx.len().div_ceil(64)];
        let mut occupied = Vec::with_capacity(self.idx.len());
        for (s, (&key, &j)) in self.keys.iter().zip(&self.idx).enumerate() {
            if j != EMPTY {
                bitmap[s / 64] |= 1 << (s % 64);
                occupied.push((key, j));
            }
        }
        PackedSlots {
            cap: self.idx.len() as u64,
            bitmap,
            occupied,
        }
    }

    /// Rebuilds a map from its packed cache form without re-hashing
    /// anything: the bitmap says which slot each occupied pair scatters
    /// back into, in order. Returns `None` on any shape mismatch —
    /// capacity not a power of two, bitmap the wrong length, a bit set
    /// past the capacity, a popcount that disagrees with the pair
    /// count, or a pair carrying the vacancy sentinel — which the cache
    /// layer treats as corruption.
    fn from_packed(packed: PackedSlots) -> Option<Self> {
        let cap = usize::try_from(packed.cap).ok()?;
        if cap < 2 || !cap.is_power_of_two() || packed.bitmap.len() != cap.div_ceil(64) {
            return None;
        }
        // A set bit at or above `cap` would scatter out of range.
        if cap % 64 != 0 && packed.bitmap.last()? >> (cap % 64) != 0 {
            return None;
        }
        let set: usize = packed.bitmap.iter().map(|w| w.count_ones() as usize).sum();
        if set != packed.occupied.len() {
            return None;
        }
        let mut keys = vec![0; cap];
        let mut idx = vec![EMPTY; cap];
        let mut next = packed.occupied.iter();
        for (w, &word) in packed.bitmap.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let s = w * 64 + bits.trailing_zeros() as usize;
                let &(key, j) = next.next()?;
                if j == EMPTY {
                    return None;
                }
                keys[s] = key;
                idx[s] = j;
                bits &= bits - 1;
            }
        }
        Some(Self {
            keys,
            idx,
            shift: 64 - cap.trailing_zeros(),
        })
    }
}

/// [`FlatBabyMap`]'s on-disk form: an occupancy bitmap plus the
/// occupied `(key, index)` pairs in slot order. The map is vacant at
/// ≥ ⅓ of its slots by construction, and persisting a vacant slot as
/// one bit instead of 16 bytes nearly halves the cache file — which
/// the warm start pays for directly in read, checksum, and parse
/// traffic. Unpacking stays re-hash-free: a sequential scatter guided
/// by the bitmap, not `√B` fresh inserts.
pub(crate) struct PackedSlots {
    /// Total slot count (a power of two ≥ 2).
    pub(crate) cap: u64,
    /// One bit per slot: bit `s % 64` of word `s / 64` is set iff slot
    /// `s` is occupied.
    pub(crate) bitmap: Vec<u64>,
    /// The occupied slots' `(key, index)` pairs, in slot order.
    pub(crate) occupied: Vec<(u64, u64)>,
}

/// A precomputed baby-step table for solving `g^z = target` with
/// `z ∈ [-bound, bound]` (signed) or `z ∈ [0, bound]` (unsigned).
///
/// Construction costs `O(√B)` group operations and the same amount of
/// memory; each [`solve`](DlogTable::solve) costs `O(√B)` multiplications
/// worst-case.
///
/// The baby-step map is keyed on the *low 64 bits of the Montgomery
/// residue* of each element through a flat open-addressed map, not on full 256-bit
/// elements through SipHash: lookups sit on the giant-step hot loop, and
/// the truncated key plus a final fixed-base verification is both faster
/// and exact. Truncation collisions are kept in a (virtually always
/// empty) side list, so no representable solution can be missed.
///
/// ```
/// use cryptonn_group::{DlogTable, SchnorrGroup, SecurityLevel};
///
/// let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
/// let table = DlogTable::new(&group, 1_000);
/// let target = group.exp(&group.scalar_from_i64(-517));
/// assert_eq!(table.solve(&group, &target), Ok(-517));
/// ```
#[derive(Debug, Clone)]
pub struct DlogTable {
    /// Baby steps: `low64(mont(g^j)) → j` for `j ∈ [0, m)`, first entry
    /// wins.
    baby: FlatBabyMap,
    /// Baby steps whose truncated key collided with an earlier entry.
    collisions: Vec<(u64, u64)>,
    /// `g^{m}` in Montgomery form — the negative-direction giant factor
    /// (multiplying by it moves the implied giant index `i` down by 1).
    up_mont: U256,
    /// `g^{-m}` in Montgomery form — the positive-direction giant
    /// factor.
    giant_mont: U256,
    /// Baby-step count `m = ⌈√(2B+1)⌉`.
    m: u64,
    /// The signed bound `B`.
    bound: u64,
}

impl DlogTable {
    /// Builds a table able to recover exponents in `[-bound, bound]`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn new(group: &SchnorrGroup, bound: u64) -> Self {
        assert!(bound > 0, "dlog bound must be positive");
        let ctx = group.mont_p();
        let range = 2 * bound + 1;
        let m = (range as f64).sqrt().ceil() as u64;
        let g_mont = ctx.to_mont(group.generator().value());
        // acc = mont(g^j); one mont_mul per baby step. The truncated
        // keys are collected in insertion order — this chain is the
        // expensive part of construction, and it is exactly what the
        // on-disk cache persists.
        let mut keys = Vec::with_capacity(m as usize);
        let mut acc = ctx.one();
        for _ in 0..m {
            keys.push(acc.low_u64());
            acc = ctx.mont_mul(&acc, &g_mont);
        }
        let (baby, collisions) = Self::build_baby(&keys);
        // g^{-m} = (g^m)^{-1}; acc currently holds mont(g^m), which is
        // itself the negative-direction factor.
        let up_mont = acc;
        let giant = group.inv(&Element(ctx.from_mont(&acc)));
        let giant_mont = ctx.to_mont(giant.value());
        Self {
            baby,
            collisions,
            up_mont,
            giant_mont,
            m,
            bound,
        }
    }

    /// The signed bound `B` this table covers.
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// Checks whether baby index `j` at signed giant index `i` solves
    /// the instance (`z = i·m + j`), verifying `mont(g^j) = gamma` in
    /// full (the map key is only 64 bits of the residue).
    fn check_candidate(
        &self,
        group: &SchnorrGroup,
        ctx: &Montgomery,
        gamma: &U256,
        i: i64,
        j: u64,
    ) -> Option<i64> {
        let z = i * self.m as i64 + j as i64;
        if z.unsigned_abs() > self.bound {
            return None;
        }
        let verified = group
            .generator_table()
            .mul_pow_mont(ctx, ctx.one(), &U256::from_u64(j))
            == *gamma;
        verified.then_some(z)
    }

    /// Full lookup of one gamma at signed giant index `i`:
    /// truncated-key probe, verification, and the collision side list.
    fn lookup(&self, group: &SchnorrGroup, ctx: &Montgomery, gamma: &U256, i: i64) -> Option<i64> {
        let key = gamma.low_u64();
        let j = self.baby.get(key)?;
        if let Some(z) = self.check_candidate(group, ctx, gamma, i, j) {
            return Some(z);
        }
        // A truncated-key hit that failed verification: consult the
        // collision side list before moving on.
        for &(ckey, cj) in &self.collisions {
            if ckey == key {
                if let Some(z) = self.check_candidate(group, ctx, gamma, i, cj) {
                    return Some(z);
                }
            }
        }
        None
    }

    /// Last round of the outward walk: both directions have probed
    /// every giant index that can still land in `[-B, B]` once `r`
    /// passes this.
    fn max_round(&self) -> u64 {
        self.bound / self.m
    }

    /// Recovers `z ∈ [-B, B]` with `g^z = target`.
    ///
    /// Walks outward from zero: round `r` probes giant indices `r` and
    /// `-(r+1)`, so the cost is `⌈|z|/m⌉` rounds of two `mont_mul`s
    /// rather than `(z+B)/m` single-multiply steps — far cheaper for
    /// the near-zero values CryptoNN actually decrypts, identical in
    /// the worst case.
    ///
    /// # Errors
    ///
    /// Returns [`GroupError::DlogOutOfRange`] if no such `z` exists in the
    /// range — for CryptoNN this means a plaintext value exceeded the
    /// advertised range and the caller's bound must be increased.
    pub fn solve(&self, group: &SchnorrGroup, target: &Element) -> Result<i64, GroupError> {
        let ctx = group.mont_p();
        let t_mont = ctx.to_mont(target.value());
        // `pos` holds gamma at giant index `r`; `neg` at `-(r+1)`.
        let mut pos = t_mont;
        let mut neg = ctx.mont_mul(&t_mont, &self.up_mont);
        let max_round = self.max_round();
        for r in 0..=max_round {
            if let Some(z) = self.lookup(group, ctx, &pos, r as i64) {
                return Ok(z);
            }
            if let Some(z) = self.lookup(group, ctx, &neg, -(r as i64) - 1) {
                return Ok(z);
            }
            if r < max_round {
                pos = ctx.mont_mul(&pos, &self.giant_mont);
                neg = ctx.mont_mul(&neg, &self.up_mont);
            }
        }
        Err(GroupError::DlogOutOfRange { bound: self.bound })
    }

    /// Recovers a whole batch, packing two outward-walking instances —
    /// four gammas, one positive and one negative stride each — per
    /// 4-lane Montgomery call. Finished instances immediately refill
    /// from the pending queue, so the kernel always advances four
    /// useful gammas; the per-instance result order matches `targets`.
    ///
    /// # Errors
    ///
    /// Per target, as [`solve`](DlogTable::solve).
    pub fn solve_batch(
        &self,
        group: &SchnorrGroup,
        targets: &[Element],
    ) -> Vec<Result<i64, GroupError>> {
        let out_of_range = Err(GroupError::DlogOutOfRange { bound: self.bound });
        let mut results = vec![out_of_range; targets.len()];
        if targets.len() < LANES {
            for (r, t) in results.iter_mut().zip(targets) {
                *r = self.solve(group, t);
            }
            return results;
        }
        let ctx = group.mont_p();
        let max_round = self.max_round();
        // Slot `s` owns lanes `2s` (positive stride, factor `g^{-m}`)
        // and `2s+1` (negative stride, factor `g^{m}`).
        const SLOTS: usize = LANES / 2;
        let factors: [U256; LANES] = core::array::from_fn(|l| {
            if l % 2 == 0 {
                self.giant_mont
            } else {
                self.up_mont
            }
        });

        const IDLE: usize = usize::MAX;
        let mut next = 0usize;
        let mut idx = [IDLE; SLOTS];
        let mut round = [0u64; SLOTS];
        let mut gamma = [ctx.one(); LANES];
        let mut live = 0usize;
        let load = |gamma: &mut [U256; LANES], s: usize, t: usize| {
            let t_mont = ctx.to_mont(targets[t].value());
            gamma[2 * s] = t_mont;
            gamma[2 * s + 1] = ctx.mont_mul(&t_mont, &self.up_mont);
        };
        for (s, slot) in idx.iter_mut().enumerate() {
            load(&mut gamma, s, next);
            *slot = next;
            next += 1;
            live += 1;
        }
        while live > 0 {
            for s in 0..SLOTS {
                if idx[s] == IDLE {
                    continue;
                }
                loop {
                    let r = round[s] as i64;
                    let hit = self
                        .lookup(group, ctx, &gamma[2 * s], r)
                        .or_else(|| self.lookup(group, ctx, &gamma[2 * s + 1], -r - 1));
                    match hit {
                        Some(z) => results[idx[s]] = Ok(z),
                        // Unresolved but not exhausted: wait for the
                        // next 4-lane giant step.
                        None if round[s] < max_round => break,
                        // Exhausted: the Err placeholder stands.
                        None => {}
                    }
                    // This slot's instance is settled — refill or idle.
                    if next < targets.len() {
                        load(&mut gamma, s, next);
                        idx[s] = next;
                        round[s] = 0;
                        next += 1;
                        // Loop to probe the fresh gammas at round 0.
                    } else {
                        idx[s] = IDLE;
                        live -= 1;
                        break;
                    }
                }
            }
            if live == 0 {
                break;
            }
            gamma = ctx.mont_mul_lanes(&gamma, &factors);
            for s in 0..SLOTS {
                if idx[s] != IDLE {
                    round[s] += 1;
                }
            }
        }
        results
    }

    /// Recovers `z ∈ [0, B]` with `g^z = target`, rejecting negatives.
    ///
    /// # Errors
    ///
    /// Returns [`GroupError::DlogOutOfRange`] if `z` is negative or
    /// exceeds the bound.
    pub fn solve_unsigned(
        &self,
        group: &SchnorrGroup,
        target: &Element,
    ) -> Result<u64, GroupError> {
        match self.solve(group, target)? {
            z if z >= 0 => Ok(z as u64),
            _ => Err(GroupError::DlogOutOfRange { bound: self.bound }),
        }
    }

    // ---- cache (de)serialization hooks -------------------------------

    /// Builds the baby map and collision side list from the truncated
    /// keys in insertion order (`keys[j] = low64(mont(g^j))`). Shared by
    /// [`DlogTable::new`] and the cache load path, so a reloaded table
    /// is field-identical to a fresh build: first entry wins, later
    /// arrivals under the same truncated key go to the side list.
    fn build_baby(keys: &[u64]) -> (FlatBabyMap, Vec<(u64, u64)>) {
        let mut baby = FlatBabyMap::with_capacity(keys.len() as u64);
        let mut collisions = Vec::new();
        for (j, &key) in keys.iter().enumerate() {
            if !baby.insert_first_wins(key, j as u64) {
                collisions.push((key, j as u64));
            }
        }
        (baby, collisions)
    }

    /// The table's cacheable parts, in field order:
    /// `(m, bound, up_mont, giant_mont, packed_baby, collisions)`.
    /// The baby map goes out in its packed slot-order form — a warm
    /// load is then a bitmap-guided sequential scatter with no per-key
    /// hash inserts, which would otherwise rival the
    /// (lane-kernel-accelerated) Montgomery baby chain itself.
    pub(crate) fn cache_parts(&self) -> (u64, u64, &U256, &U256, PackedSlots, &[(u64, u64)]) {
        (
            self.m,
            self.bound,
            &self.up_mont,
            &self.giant_mont,
            self.baby.packed(),
            &self.collisions,
        )
    }

    /// Rebuilds a table from cached parts. Returns `None` on malformed
    /// geometry — the cache layer treats that as corruption and falls
    /// back to a fresh build.
    pub(crate) fn from_cache_parts(
        m: u64,
        bound: u64,
        up_mont: U256,
        giant_mont: U256,
        packed_baby: PackedSlots,
        collisions: Vec<(u64, u64)>,
    ) -> Option<Self> {
        if bound == 0 || m == 0 {
            return None;
        }
        let baby = FlatBabyMap::from_packed(packed_baby)?;
        Some(Self {
            baby,
            collisions,
            up_mont,
            giant_mont,
            m,
            bound,
        })
    }
}

/// One-shot signed BSGS without table reuse. Prefer [`DlogTable`] when
/// solving more than once against the same group.
///
/// # Errors
///
/// Returns [`GroupError::DlogOutOfRange`] if no exponent in
/// `[-bound, bound]` matches.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn solve_dlog(group: &SchnorrGroup, target: &Element, bound: u64) -> Result<i64, GroupError> {
    DlogTable::new(group, bound).solve(group, target)
}

/// Exhaustive-search discrete log for tiny ranges; used to cross-check
/// BSGS in tests and for one-off recoveries where building a table is
/// not worth it.
///
/// # Errors
///
/// Returns [`GroupError::DlogOutOfRange`] if no exponent in
/// `[-bound, bound]` matches.
pub fn solve_dlog_naive(
    group: &SchnorrGroup,
    target: &Element,
    bound: u64,
) -> Result<i64, GroupError> {
    let g = group.generator();
    let mut pos = group.identity();
    let mut neg = group.identity();
    let g_inv = group.inv(&g);
    if *target == pos {
        return Ok(0);
    }
    for z in 1..=bound {
        pos = group.mul(&pos, &g);
        if pos == *target {
            return Ok(z as i64);
        }
        neg = group.mul(&neg, &g_inv);
        if neg == *target {
            return Ok(-(z as i64));
        }
    }
    Err(GroupError::DlogOutOfRange { bound })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::SecurityLevel;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn group() -> SchnorrGroup {
        SchnorrGroup::precomputed(SecurityLevel::Bits64)
    }

    #[test]
    fn solves_all_values_in_small_range() {
        let g = group();
        let table = DlogTable::new(&g, 50);
        for z in -50i64..=50 {
            let target = g.exp(&g.scalar_from_i64(z));
            assert_eq!(table.solve(&g, &target), Ok(z), "z = {z}");
        }
    }

    #[test]
    fn rejects_out_of_range() {
        let g = group();
        let table = DlogTable::new(&g, 10);
        for z in [11i64, -11, 100, -100, 12345] {
            let target = g.exp(&g.scalar_from_i64(z));
            assert_eq!(
                table.solve(&g, &target),
                Err(GroupError::DlogOutOfRange { bound: 10 }),
                "z = {z}"
            );
        }
    }

    #[test]
    fn unsigned_rejects_negative() {
        let g = group();
        let table = DlogTable::new(&g, 20);
        let target = g.exp(&g.scalar_from_i64(-5));
        assert!(table.solve_unsigned(&g, &target).is_err());
        let target = g.exp(&g.scalar_from_i64(17));
        assert_eq!(table.solve_unsigned(&g, &target), Ok(17));
    }

    #[test]
    fn random_values_large_bound() {
        let g = group();
        let bound = 1_000_000;
        let table = DlogTable::new(&g, bound);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..64 {
            let z = rng.random_range(-(bound as i64)..=bound as i64);
            let target = g.exp(&g.scalar_from_i64(z));
            assert_eq!(table.solve(&g, &target), Ok(z));
        }
    }

    #[test]
    fn matches_naive() {
        let g = group();
        let table = DlogTable::new(&g, 64);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            let z = rng.random_range(-64i64..=64);
            let target = g.exp(&g.scalar_from_i64(z));
            assert_eq!(
                table.solve(&g, &target).unwrap(),
                solve_dlog_naive(&g, &target, 64).unwrap()
            );
        }
    }

    #[test]
    fn one_shot_helper() {
        let g = group();
        let target = g.exp(&g.scalar_from_i64(-99));
        assert_eq!(solve_dlog(&g, &target, 100), Ok(-99));
    }

    #[test]
    fn solve_batch_matches_solve() {
        // Mix of levels so the fast-reduction modulus runs the lane
        // stepping too; mix of in-range, boundary, and out-of-range
        // targets; batch sizes around and below the lane width.
        for level in [SecurityLevel::Bits64, SecurityLevel::Bits256Fast] {
            let g = SchnorrGroup::precomputed(level);
            let bound = 5_000u64;
            let table = DlogTable::new(&g, bound);
            let mut rng = StdRng::seed_from_u64(11);
            let mut zs: Vec<i64> = (0..21)
                .map(|_| rng.random_range(-(bound as i64)..=bound as i64))
                .collect();
            zs.extend([0, bound as i64, -(bound as i64), bound as i64 + 7, -99_999]);
            let targets: Vec<Element> = zs.iter().map(|&z| g.exp(&g.scalar_from_i64(z))).collect();
            for n in [1usize, 3, 4, 5, targets.len()] {
                let got = table.solve_batch(&g, &targets[..n]);
                for (i, r) in got.iter().enumerate() {
                    assert_eq!(*r, table.solve(&g, &targets[i]), "n={n} i={i} {level:?}");
                }
            }
        }
    }

    #[test]
    fn truncation_collision_side_list_is_consulted() {
        // Real low-64-bit collisions among `√(2B)` baby steps are a
        // ~2⁻⁴⁴-per-table event, so fabricate one: evict the baby-map
        // entry for `j2`'s truncated key and repoint it at a different
        // index, exactly the state `new` leaves behind when a later
        // baby step collides with an earlier one (first entry wins, the
        // loser goes to the side list). `solve` must then fail the full
        // verification against the squatter and fall through to the
        // side list — still recovering the exact exponent.
        let g = group();
        let bound = 10_000;
        let mut table = DlogTable::new(&g, bound);
        let ctx = g.mont_p();
        let j2 = table.m / 2;
        let j1 = j2 + 1; // squatter with a different true key
        let key = ctx.to_mont(g.exp(&g.scalar_from_u64(j2)).value()).low_u64();
        assert_eq!(table.baby.get(key), Some(j2), "fixture sanity");
        table.baby.set(key, j1);
        table.collisions.push((key, j2));

        // Every giant index `i` whose solution lands on baby index j2
        // must go through the side list; check both walk directions.
        for i in [0i64, 1, -1, -2] {
            let z = i * table.m as i64 + j2 as i64;
            if z.unsigned_abs() > bound {
                continue;
            }
            let target = g.exp(&g.scalar_from_i64(z));
            assert_eq!(table.solve(&g, &target), Ok(z), "giant index {i}");
        }
        // The squatter's own solutions and unrelated values still solve.
        let z1 = j1 as i64;
        let target = g.exp(&g.scalar_from_i64(z1));
        assert_eq!(table.solve(&g, &target), Ok(z1));
        for z in [-(bound as i64), -1, 0, 1, 4321, bound as i64] {
            let target = g.exp(&g.scalar_from_i64(z));
            assert_eq!(table.solve(&g, &target), Ok(z), "z = {z}");
        }
        // And the batched path consults the side list identically.
        let targets: Vec<Element> = [-2i64, z1, 0, (j2 as i64) - bound as i64, 4321]
            .iter()
            .map(|&z| g.exp(&g.scalar_from_i64(z)))
            .collect();
        let got = table.solve_batch(&g, &targets);
        for (i, r) in got.iter().enumerate() {
            assert_eq!(*r, table.solve(&g, &targets[i]), "batch i={i}");
        }
    }

    #[test]
    fn cache_parts_roundtrip() {
        let g = group();
        let table = DlogTable::new(&g, 7_500);
        let (m, bound, up, giant, packed, collisions) = table.cache_parts();
        // The packed form really is packed: exactly m occupied pairs,
        // bitmap popcount to match.
        assert_eq!(packed.occupied.len() as u64, m);
        let set: u64 = packed
            .bitmap
            .iter()
            .map(|w| u64::from(w.count_ones()))
            .sum();
        assert_eq!(set, m);
        let back = DlogTable::from_cache_parts(m, bound, *up, *giant, packed, collisions.to_vec())
            .unwrap();
        // The reload is field-identical, not merely equivalent: same
        // map layout, same collision list.
        assert_eq!(back.baby, table.baby);
        assert_eq!(back.collisions, table.collisions);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..16 {
            let z = rng.random_range(-7_500i64..=7_500);
            let target = g.exp(&g.scalar_from_i64(z));
            assert_eq!(back.solve(&g, &target), Ok(z));
        }
        // Malformed packed forms are rejected, not mis-parsed.
        let reject = |mutate: &dyn Fn(&mut PackedSlots)| {
            let (m, bound, up, giant, mut packed, _) = table.cache_parts();
            mutate(&mut packed);
            assert!(DlogTable::from_cache_parts(m, bound, *up, *giant, packed, vec![]).is_none());
        };
        // Capacity zero / not a power of two.
        reject(&|p| p.cap = 0);
        reject(&|p| p.cap -= 1);
        // Bitmap length disagreeing with the capacity.
        reject(&|p| {
            p.bitmap.pop();
        });
        // Popcount disagreeing with the pair count.
        reject(&|p| {
            p.occupied.pop();
        });
        // A pair carrying the vacancy sentinel.
        reject(&|p| p.occupied[0].1 = u64::MAX);
        // A set bit at or above the capacity (shrink cap so the bitmap
        // has out-of-range bits while keeping its length consistent).
        let small = DlogTable::new(&g, 40);
        let (m, bound, up, giant, mut packed, _) = small.cache_parts();
        assert!(packed.cap < 64, "fixture assumes a sub-word bitmap");
        packed.bitmap[0] |= 1 << (packed.cap + 1);
        assert!(DlogTable::from_cache_parts(m, bound, *up, *giant, packed, vec![]).is_none());
    }

    #[test]
    fn boundary_values() {
        let g = group();
        let table = DlogTable::new(&g, 1);
        for z in [-1i64, 0, 1] {
            let target = g.exp(&g.scalar_from_i64(z));
            assert_eq!(table.solve(&g, &target), Ok(z));
        }
    }
}
