//! Variable-base multi-scalar exponentiation (Straus interleaving over
//! wNAF-recoded exponents).
//!
//! CryptoNN's server spends nearly all its time in `secure-computation`,
//! whose inner loop is `∏ ctᵢ^{yᵢ}` — a product of *variable* bases
//! (fresh ciphertext elements every batch) raised to *small* signed
//! exponents (quantized weights, typically ≤ 20 bits). Evaluating that
//! product one full-width exponentiation per base costs `n × 256`
//! squarings; this module makes the cost scale with `log₂(max|yᵢ|)`
//! instead:
//!
//! - [`WnafScalars`] recodes each exponent once into width-`w` NAF
//!   digits (odd, `|d| < 2^{w−1}`), so a `b`-bit exponent contributes at
//!   most `⌈b/(w+1)⌉ + 1` nonzero digits.
//! - [`OddPowerTables`] precomputes `baseᵢ^{1,3,…,2^{w−1}−1}` in
//!   Montgomery form — one squaring plus `2^{w−2} − 1` products per
//!   base, amortized across every row of cells that reuses the bases.
//! - [`SchnorrGroup::multi_scalar_ratio`] runs **one shared squaring
//!   chain** across all bases (Straus interleaving): per digit position
//!   the two accumulators square once each, then absorb every base's
//!   digit at that position with a single product.
//!
//! Negative digits never force a per-base inversion: they multiply into
//! a separate *denominator* accumulator, and the result is returned as
//! a deferred [`ElementRatio`]. Ratios across a whole matrix of cells
//! resolve through one batched inversion
//! ([`SchnorrGroup::resolve_ratios`], Montgomery's trick) — which also
//! swallows the `ct₀^{sk}` division of FEIP/FEBO decryption for free.
//! See DESIGN.md §10 for the operation-count math.

use cryptonn_bigint::lanes::LANES;
use cryptonn_bigint::U256;

use crate::group::{Element, SchnorrGroup};

/// Default wNAF window width: digits in `{±1, ±3, ±5, ±7}`, a four-entry
/// odd-power table per base. For the ≤ 20-bit quantized exponents of the
/// decrypt path, wider windows cost more in table building than they
/// save in digit products.
pub const DEFAULT_WINDOW: usize = 4;

/// A deferred group division `num / den`, produced by evaluations that
/// postpone the (expensive) modular inversion so many of them can be
/// resolved with one batched inversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementRatio {
    /// Product of the positive-digit contributions.
    pub num: Element,
    /// Product of the negative-digit contributions (never zero; the
    /// identity when all digits were non-negative).
    pub den: Element,
}

impl ElementRatio {
    /// The ratio representing a bare element (`den = 1`).
    pub fn from_element(group: &SchnorrGroup, num: Element) -> Self {
        Self {
            num,
            den: group.identity(),
        }
    }

    /// Folds an extra factor into the denominator — the decrypt path
    /// folds `ct₀^{sk}` in here so the batched inversion covers it too.
    pub fn div_by(&self, group: &SchnorrGroup, extra_den: &Element) -> Self {
        Self {
            num: self.num,
            den: group.mul(&self.den, extra_den),
        }
    }

    /// Resolves the ratio with one inversion. Prefer
    /// [`SchnorrGroup::resolve_ratios`] when resolving more than one.
    pub fn resolve(&self, group: &SchnorrGroup) -> Element {
        group.div(&self.num, &self.den)
    }
}

/// Width-`w` NAF recodings of a vector of signed exponents, built once
/// per server operand row and shared across every ciphertext column it
/// multiplies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WnafScalars {
    /// `digits[i]` is exponent `i`'s recoding, least-significant first.
    /// Entries are zero or odd with `|d| < 2^{window−1}`.
    digits: Vec<Vec<i8>>,
    /// Length of the longest digit vector (the shared chain height).
    max_len: usize,
    window: usize,
}

impl WnafScalars {
    /// Recodes `y` with the [`DEFAULT_WINDOW`].
    pub fn recode(y: &[i64]) -> Self {
        Self::recode_with_window(y, DEFAULT_WINDOW)
    }

    /// Recodes `y` with an explicit window width in `2..=7` (digits must
    /// fit an `i8`).
    ///
    /// # Panics
    ///
    /// Panics if `window` is outside `2..=7`.
    pub fn recode_with_window(y: &[i64], window: usize) -> Self {
        assert!(
            (2..=7).contains(&window),
            "wNAF window must be in 2..=7, got {window}"
        );
        let digits: Vec<Vec<i8>> = y.iter().map(|&v| wnaf_digits(v, window)).collect();
        let max_len = digits.iter().map(Vec::len).max().unwrap_or(0);
        Self {
            digits,
            max_len,
            window,
        }
    }

    /// Number of recoded exponents.
    pub fn len(&self) -> usize {
        self.digits.len()
    }

    /// True if there are no exponents at all.
    pub fn is_empty(&self) -> bool {
        self.digits.is_empty()
    }

    /// The window width the digits were recoded for.
    pub fn window(&self) -> usize {
        self.window
    }

    /// True when every exponent is zero — callers can skip the whole
    /// evaluation (the product is the identity).
    pub fn is_all_zero(&self) -> bool {
        self.max_len == 0
    }
}

/// Width-`w` NAF digits of `v`, least-significant first.
fn wnaf_digits(v: i64, window: usize) -> Vec<i8> {
    // i128 working copy so i64::MIN and the digit subtraction are safe.
    let mut v = v as i128;
    let full = 1i128 << window;
    let half = 1i128 << (window - 1);
    let mut digits = Vec::new();
    while v != 0 {
        if v & 1 != 0 {
            // Centered remainder mod 2^w: odd, in (−2^{w−1}, 2^{w−1}).
            let mut d = v & (full - 1);
            if d >= half {
                d -= full;
            }
            digits.push(d as i8);
            v -= d;
        } else {
            digits.push(0);
        }
        v >>= 1;
    }
    digits
}

/// Precomputed odd powers `baseᵢ^{1, 3, …, 2^{window−1}−1}` for a batch
/// of variable bases, stored in Montgomery form and bound to the group's
/// modulus (like [`FixedBaseTable`](crate::FixedBaseTable), these are
/// derived state and never serialized).
#[derive(Debug, Clone)]
pub struct OddPowerTables {
    /// `powers[i][k] = basesᵢ^{2k+1}` in Montgomery form.
    powers: Vec<Vec<U256>>,
    modulus: U256,
    window: usize,
}

impl OddPowerTables {
    /// Number of bases covered.
    pub fn len(&self) -> usize {
        self.powers.len()
    }

    /// True if no bases are covered.
    pub fn is_empty(&self) -> bool {
        self.powers.is_empty()
    }

    /// The window width the tables support.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl SchnorrGroup {
    /// Builds odd-power tables for `bases` with the [`DEFAULT_WINDOW`].
    pub fn odd_power_tables(&self, bases: &[Element]) -> OddPowerTables {
        self.odd_power_tables_with_window(bases, DEFAULT_WINDOW)
    }

    /// Builds odd-power tables for `bases`: per base one squaring plus
    /// `2^{window−2} − 1` Montgomery products. The build amortizes as
    /// soon as the bases are reused for a second exponent row.
    ///
    /// # Panics
    ///
    /// Panics if `window` is outside `2..=7`.
    pub fn odd_power_tables_with_window(&self, bases: &[Element], window: usize) -> OddPowerTables {
        assert!(
            (2..=7).contains(&window),
            "wNAF window must be in 2..=7, got {window}"
        );
        let ctx = self.mont_p();
        let count = 1usize << (window - 2);
        let powers = bases
            .iter()
            .map(|b| {
                let b1 = ctx.to_mont(&b.0);
                let mut row = Vec::with_capacity(count);
                row.push(b1);
                if count > 1 {
                    let b2 = ctx.mont_sqr(&b1);
                    for k in 1..count {
                        let prev = row[k - 1];
                        row.push(ctx.mont_mul(&prev, &b2));
                    }
                }
                row
            })
            .collect();
        OddPowerTables {
            powers,
            modulus: *self.modulus(),
            window,
        }
    }

    /// Evaluates `∏ basesᵢ^{yᵢ}` over precomputed tables and recoded
    /// exponents, as a deferred [`ElementRatio`].
    ///
    /// One shared squaring chain serves every base: the cost is
    /// `2·max_len` squarings (both accumulators) plus one product per
    /// nonzero digit — independent of the base count for the squaring
    /// part, which is what makes `n = 784`-wide rows cheap.
    ///
    /// # Panics
    ///
    /// Panics if `tables` and `scalars` disagree in length or window, or
    /// if `tables` was built for a different group.
    pub fn multi_scalar_ratio(
        &self,
        tables: &OddPowerTables,
        scalars: &WnafScalars,
    ) -> ElementRatio {
        assert_eq!(
            tables.len(),
            scalars.len(),
            "multi-scalar base/exponent count mismatch"
        );
        assert_eq!(
            tables.window, scalars.window,
            "multi-scalar window mismatch between tables and recoding"
        );
        // Same rationale as FixedBaseTable::mul_pow_mont: a foreign
        // table would silently produce garbage in release builds.
        assert_eq!(
            &tables.modulus,
            self.modulus(),
            "odd-power tables used with a foreign group"
        );
        let ctx = self.mont_p();
        let mut num = ctx.one();
        let mut den = ctx.one();
        // Accumulators stay the identity until their first digit; until
        // then squaring is a no-op worth skipping.
        let mut num_live = false;
        let mut den_live = false;
        for pos in (0..scalars.max_len).rev() {
            if num_live {
                num = ctx.mont_sqr(&num);
            }
            if den_live {
                den = ctx.mont_sqr(&den);
            }
            for (digits, powers) in scalars.digits.iter().zip(&tables.powers) {
                let d = match digits.get(pos) {
                    Some(&d) if d != 0 => d,
                    _ => continue,
                };
                let entry = &powers[(d.unsigned_abs() as usize - 1) / 2];
                if d > 0 {
                    num = ctx.mont_mul(&num, entry);
                    num_live = true;
                } else {
                    den = ctx.mont_mul(&den, entry);
                    den_live = true;
                }
            }
        }
        ElementRatio {
            num: Element(ctx.from_mont(&num)),
            den: Element(ctx.from_mont(&den)),
        }
    }

    /// Lane-batched [`multi_scalar_ratio`](Self::multi_scalar_ratio):
    /// evaluates the *same* recoded exponent row against four different
    /// table sets at once — the batch-decrypt shape, where one weight
    /// row multiplies a stride of four ciphertext columns.
    ///
    /// All four lanes share one digit schedule, so the shared squaring
    /// chain and every digit product become single 4-lane Montgomery
    /// calls ([`Montgomery::mont_mul_lanes`]) instead of four serial
    /// ones, and the liveness skip flags apply to all lanes uniformly.
    ///
    /// # Panics
    ///
    /// As [`multi_scalar_ratio`](Self::multi_scalar_ratio), checked per
    /// lane.
    ///
    /// [`Montgomery::mont_mul_lanes`]: cryptonn_bigint::Montgomery::mont_mul_lanes
    pub fn multi_scalar_ratio_lanes(
        &self,
        tables: [&OddPowerTables; LANES],
        scalars: &WnafScalars,
    ) -> [ElementRatio; LANES] {
        for t in tables {
            assert_eq!(
                t.len(),
                scalars.len(),
                "multi-scalar base/exponent count mismatch"
            );
            assert_eq!(
                t.window, scalars.window,
                "multi-scalar window mismatch between tables and recoding"
            );
            assert_eq!(
                &t.modulus,
                self.modulus(),
                "odd-power tables used with a foreign group"
            );
        }
        let ctx = self.mont_p();
        let mut num = [ctx.one(); LANES];
        let mut den = [ctx.one(); LANES];
        let mut num_live = false;
        let mut den_live = false;
        for pos in (0..scalars.max_len).rev() {
            if num_live {
                num = ctx.mont_sqr_lanes(&num);
            }
            if den_live {
                den = ctx.mont_sqr_lanes(&den);
            }
            for (i, digits) in scalars.digits.iter().enumerate() {
                let d = match digits.get(pos) {
                    Some(&d) if d != 0 => d,
                    _ => continue,
                };
                let k = (d.unsigned_abs() as usize - 1) / 2;
                let entries = core::array::from_fn(|lane| tables[lane].powers[i][k]);
                if d > 0 {
                    num = ctx.mont_mul_lanes(&num, &entries);
                    num_live = true;
                } else {
                    den = ctx.mont_mul_lanes(&den, &entries);
                    den_live = true;
                }
            }
        }
        let num = ctx.from_mont_lanes(&num);
        let den = ctx.from_mont_lanes(&den);
        core::array::from_fn(|lane| ElementRatio {
            num: Element(num[lane]),
            den: Element(den[lane]),
        })
    }

    /// One-shot `∏ basesᵢ^{yᵢ}` for signed integer exponents: recodes,
    /// builds tables, evaluates, and resolves the ratio. Callers with
    /// reuse across rows or columns should hold [`WnafScalars`] /
    /// [`OddPowerTables`] themselves and batch the resolutions.
    ///
    /// # Panics
    ///
    /// Panics if `bases` and `y` have different lengths.
    pub fn multi_scalar_pow(&self, bases: &[Element], y: &[i64]) -> Element {
        assert_eq!(
            bases.len(),
            y.len(),
            "multi-scalar base/exponent count mismatch"
        );
        let scalars = WnafScalars::recode(y);
        if scalars.is_all_zero() {
            return self.identity();
        }
        let tables = self.odd_power_tables(bases);
        self.multi_scalar_ratio(&tables, &scalars).resolve(self)
    }

    /// Single-base signed-exponent power `base^y` as a deferred ratio —
    /// the FEBO multiply path (`ct^y` with quantized `y`), sharing the
    /// wNAF machinery without the full-width 256-squaring chain of
    /// [`pow`](Self::pow).
    pub fn pow_signed_ratio(&self, base: &Element, y: i64) -> ElementRatio {
        let scalars = WnafScalars::recode(&[y]);
        if scalars.is_all_zero() {
            return ElementRatio::from_element(self, self.identity());
        }
        let tables = self.odd_power_tables(std::slice::from_ref(base));
        self.multi_scalar_ratio(&tables, &scalars)
    }

    /// Resolves many deferred ratios with **one** modular inversion
    /// (Montgomery's trick over the denominators).
    pub fn resolve_ratios(&self, ratios: &[ElementRatio]) -> Vec<Element> {
        let dens: Vec<Element> = ratios.iter().map(|r| r.den).collect();
        let inverses = self.inv_batch(&dens);
        ratios
            .iter()
            .zip(&inverses)
            .map(|(r, inv)| self.mul(&r.num, inv))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::SecurityLevel;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn group() -> SchnorrGroup {
        SchnorrGroup::precomputed(SecurityLevel::Bits64)
    }

    /// Reference evaluation: one full-width pow per base.
    fn naive_product(g: &SchnorrGroup, bases: &[Element], y: &[i64]) -> Element {
        let mut acc = g.identity();
        for (b, &yi) in bases.iter().zip(y) {
            if yi == 0 {
                continue;
            }
            acc = g.mul(&acc, &g.pow(b, &g.scalar_from_i64(yi)));
        }
        acc
    }

    fn random_bases(g: &SchnorrGroup, rng: &mut StdRng, n: usize) -> Vec<Element> {
        (0..n).map(|_| g.exp(&g.random_scalar(rng))).collect()
    }

    #[test]
    fn wnaf_digits_reconstruct_value() {
        for window in 2..=7 {
            for v in [
                0i64,
                1,
                -1,
                7,
                -7,
                8,
                100,
                -100,
                12345,
                -98765,
                i64::MAX,
                i64::MIN,
            ] {
                let digits = wnaf_digits(v, window);
                let mut acc: i128 = 0;
                for &d in digits.iter().rev() {
                    acc = 2 * acc + d as i128;
                    assert!(
                        d == 0 || (d % 2 != 0 && (d as i64).unsigned_abs() < (1 << (window - 1))),
                        "digit {d} invalid for window {window}"
                    );
                }
                assert_eq!(acc, v as i128, "v={v} window={window}");
            }
        }
    }

    #[test]
    fn matches_naive_product() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 5, 16] {
            let bases = random_bases(&g, &mut rng, n);
            let y: Vec<i64> = (0..n)
                .map(|_| rng.random_range(-1_000_000..=1_000_000))
                .collect();
            assert_eq!(
                g.multi_scalar_pow(&bases, &y),
                naive_product(&g, &bases, &y)
            );
        }
    }

    #[test]
    fn all_windows_agree() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(2);
        let bases = random_bases(&g, &mut rng, 6);
        let y: Vec<i64> = (0..6).map(|_| rng.random_range(-5_000..=5_000)).collect();
        let expect = naive_product(&g, &bases, &y);
        for window in 2..=7 {
            let scalars = WnafScalars::recode_with_window(&y, window);
            let tables = g.odd_power_tables_with_window(&bases, window);
            assert_eq!(
                g.multi_scalar_ratio(&tables, &scalars).resolve(&g),
                expect,
                "window {window}"
            );
        }
    }

    #[test]
    fn lanes_match_serial_ratio() {
        // Both the plain group and the fast-reduction prime, so the
        // FastP64 seam is exercised through the lane path too.
        for level in [SecurityLevel::Bits64, SecurityLevel::Bits256Fast] {
            let g = SchnorrGroup::precomputed(level);
            let mut rng = StdRng::seed_from_u64(8);
            let n = 9;
            let y: Vec<i64> = (0..n).map(|_| rng.random_range(-50_000..=50_000)).collect();
            let scalars = WnafScalars::recode(&y);
            let table_sets: Vec<OddPowerTables> = (0..LANES)
                .map(|_| g.odd_power_tables(&random_bases(&g, &mut rng, n)))
                .collect();
            let refs: [&OddPowerTables; LANES] = core::array::from_fn(|i| &table_sets[i]);
            let got = g.multi_scalar_ratio_lanes(refs, &scalars);
            for lane in 0..LANES {
                let expect = g.multi_scalar_ratio(refs[lane], &scalars);
                assert_eq!(got[lane], expect, "lane {lane} level {level:?}");
            }
        }
    }

    #[test]
    fn zero_and_sign_edge_cases() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(3);
        let bases = random_bases(&g, &mut rng, 4);
        // All zero → identity without touching the bases.
        assert_eq!(g.multi_scalar_pow(&bases, &[0, 0, 0, 0]), g.identity());
        // All negative → pure denominator path.
        let y = [-3i64, -1, -500, -7];
        assert_eq!(
            g.multi_scalar_pow(&bases, &y),
            naive_product(&g, &bases, &y)
        );
        // Mixed with zeros.
        let y = [0i64, 9, 0, -12_345];
        assert_eq!(
            g.multi_scalar_pow(&bases, &y),
            naive_product(&g, &bases, &y)
        );
        // Empty input.
        assert_eq!(g.multi_scalar_pow(&[], &[]), g.identity());
    }

    #[test]
    fn extreme_exponents() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(4);
        let bases = random_bases(&g, &mut rng, 2);
        let y = [i64::MAX, i64::MIN];
        assert_eq!(
            g.multi_scalar_pow(&bases, &y),
            naive_product(&g, &bases, &y)
        );
    }

    #[test]
    fn pow_signed_ratio_matches_pow() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(5);
        let base = g.exp(&g.random_scalar(&mut rng));
        for y in [0i64, 1, -1, 17, -17, 100_000, -99_999] {
            assert_eq!(
                g.pow_signed_ratio(&base, y).resolve(&g),
                g.pow(&base, &g.scalar_from_i64(y)),
                "y={y}"
            );
        }
    }

    #[test]
    fn resolve_ratios_batches_correctly() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(6);
        let ratios: Vec<ElementRatio> = (0..9)
            .map(|_| {
                let num = g.exp(&g.random_scalar(&mut rng));
                let den = g.exp(&g.random_scalar(&mut rng));
                ElementRatio { num, den }
            })
            .collect();
        let batch = g.resolve_ratios(&ratios);
        for (r, got) in ratios.iter().zip(&batch) {
            assert_eq!(*got, r.resolve(&g));
        }
        assert!(g.resolve_ratios(&[]).is_empty());
    }

    #[test]
    fn div_by_folds_denominator() {
        let g = group();
        let mut rng = StdRng::seed_from_u64(7);
        let num = g.exp(&g.random_scalar(&mut rng));
        let extra = g.exp(&g.random_scalar(&mut rng));
        let r = ElementRatio::from_element(&g, num).div_by(&g, &extra);
        assert_eq!(r.resolve(&g), g.div(&num, &extra));
    }

    #[test]
    #[should_panic(expected = "foreign group")]
    fn foreign_tables_are_rejected() {
        let g64 = SchnorrGroup::precomputed(SecurityLevel::Bits64);
        let g128 = SchnorrGroup::precomputed(SecurityLevel::Bits128);
        let bases = vec![g64.generator()];
        let tables = g64.odd_power_tables(&bases);
        let scalars = WnafScalars::recode(&[3]);
        let _ = g128.multi_scalar_ratio(&tables, &scalars);
    }

    #[test]
    #[should_panic(expected = "window mismatch")]
    fn window_mismatch_is_rejected() {
        let g = group();
        let bases = vec![g.generator()];
        let tables = g.odd_power_tables_with_window(&bases, 3);
        let scalars = WnafScalars::recode_with_window(&[3], 5);
        let _ = g.multi_scalar_ratio(&tables, &scalars);
    }
}
