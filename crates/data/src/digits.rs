//! Synthetic MNIST-like digit images.
//!
//! The paper evaluates on MNIST (60 000 train / 10 000 test, 28×28
//! grayscale digits). This offline environment has no access to the
//! MNIST files, so we substitute a deterministic generator: hand-drawn
//! 7×7 glyph templates per digit class, upsampled to 28×28 and augmented
//! with seeded random shifts, intensity jitter and pixel noise. The
//! resulting task has the same input dimensionality and class count, and
//! is hard enough that LeNet-5 must actually train to fit it — which is
//! all the Fig. 6 / Table III experiments require (both arms of the
//! comparison see identical data). See DESIGN.md §3.1.

use cryptonn_matrix::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::dataset::Dataset;

/// 7×7 glyph templates, one per digit. `#` is ink, `.` is background.
const GLYPHS: [[&str; 7]; 10] = [
    // 0
    [
        ".###...", "#...#..", "#...#..", "#...#..", "#...#..", "#...#..", ".###...",
    ],
    // 1
    [
        "..#....", ".##....", "..#....", "..#....", "..#....", "..#....", ".###...",
    ],
    // 2
    [
        ".###...", "#...#..", "....#..", "...#...", "..#....", ".#.....", "#####..",
    ],
    // 3
    [
        ".###...", "#...#..", "....#..", "..##...", "....#..", "#...#..", ".###...",
    ],
    // 4
    [
        "...#...", "..##...", ".#.#...", "#..#...", "#####..", "...#...", "...#...",
    ],
    // 5
    [
        "#####..", "#......", "####...", "....#..", "....#..", "#...#..", ".###...",
    ],
    // 6
    [
        ".###...", "#......", "#......", "####...", "#...#..", "#...#..", ".###...",
    ],
    // 7
    [
        "#####..", "....#..", "...#...", "..#....", ".#.....", ".#.....", ".#.....",
    ],
    // 8
    [
        ".###...", "#...#..", "#...#..", ".###...", "#...#..", "#...#..", ".###...",
    ],
    // 9
    [
        ".###...", "#...#..", "#...#..", ".####..", "....#..", "....#..", ".###...",
    ],
];

/// Configuration for the synthetic digit generator.
#[derive(Debug, Clone, Copy)]
pub struct DigitConfig {
    /// Output image side length (e.g. 28 for the MNIST geometry).
    pub size: usize,
    /// Maximum absolute random translation in pixels.
    pub max_shift: i32,
    /// Standard deviation of additive Gaussian pixel noise.
    pub noise: f64,
    /// Ink intensity is drawn from `[1 - jitter, 1]`.
    pub intensity_jitter: f64,
}

impl DigitConfig {
    /// The MNIST-like default: 28×28, ±2 px shift, moderate noise.
    pub fn mnist_like() -> Self {
        Self {
            size: 28,
            max_shift: 2,
            noise: 0.08,
            intensity_jitter: 0.3,
        }
    }

    /// A small 14×14 variant for fast tests and CI benches.
    pub fn small() -> Self {
        Self {
            size: 14,
            max_shift: 1,
            noise: 0.05,
            intensity_jitter: 0.2,
        }
    }
}

/// Generates `n` labelled digit images with the given config and seed.
///
/// Labels cycle through the 10 classes so every class is equally
/// represented; all randomness (shift, jitter, noise) is drawn from the
/// seeded RNG, so the dataset is fully reproducible.
///
/// # Panics
///
/// Panics if `n` is zero or `config.size < 7`.
pub fn synthetic_digits(n: usize, config: DigitConfig, seed: u64) -> Dataset {
    assert!(n > 0, "dataset size must be positive");
    assert!(
        config.size >= 7,
        "image size must be at least the glyph size"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let dim = config.size * config.size;
    let mut data = Vec::with_capacity(n * dim);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let digit = i % 10;
        labels.push(digit);
        data.extend(render_digit(digit, &config, &mut rng));
    }
    Dataset::new(Matrix::from_vec(n, dim, data), labels, 10)
}

/// The standard train/test split used by the Fig. 6 / Table III
/// harness: disjoint seeds for the two sets.
pub fn synthetic_mnist(train: usize, test: usize, seed: u64) -> (Dataset, Dataset) {
    let config = DigitConfig::mnist_like();
    (
        synthetic_digits(train, config, seed),
        synthetic_digits(test, config, seed ^ 0x5eed),
    )
}

/// Renders one digit as a `size × size` image in `[0, 1]`.
fn render_digit(digit: usize, config: &DigitConfig, rng: &mut StdRng) -> Vec<f64> {
    let size = config.size;
    // Upsample factor that fits the 7×7 glyph into the image.
    let scale = size / 7;
    let glyph = &GLYPHS[digit];

    let intensity = 1.0 - rng.random_range(0.0..config.intensity_jitter);
    let dx = rng.random_range(-config.max_shift..=config.max_shift);
    let dy = rng.random_range(-config.max_shift..=config.max_shift);
    // Center the scaled glyph.
    let margin = (size - 7 * scale) / 2;

    let mut img = vec![0.0f64; size * size];
    for (gy, row) in glyph.iter().enumerate() {
        for (gx, ch) in row.bytes().enumerate() {
            if ch != b'#' {
                continue;
            }
            for sy in 0..scale {
                for sx in 0..scale {
                    let y = (margin + gy * scale + sy) as i32 + dy;
                    let x = (margin + gx * scale + sx) as i32 + dx;
                    if (0..size as i32).contains(&y) && (0..size as i32).contains(&x) {
                        img[y as usize * size + x as usize] = intensity;
                    }
                }
            }
        }
    }

    // Additive Gaussian noise (Box–Muller), clamped to [0, 1].
    if config.noise > 0.0 {
        for v in &mut img {
            *v = (*v + gaussian(rng) * config.noise).clamp(0.0, 1.0);
        }
    }
    img
}

/// A standard normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = synthetic_digits(30, DigitConfig::mnist_like(), 7);
        let b = synthetic_digits(30, DigitConfig::mnist_like(), 7);
        assert_eq!(a.images(), b.images());
        assert_eq!(a.labels(), b.labels());
        let c = synthetic_digits(30, DigitConfig::mnist_like(), 8);
        assert_ne!(
            a.images(),
            c.images(),
            "different seeds give different data"
        );
    }

    #[test]
    fn shapes_and_ranges() {
        let d = synthetic_digits(25, DigitConfig::mnist_like(), 1);
        assert_eq!(d.len(), 25);
        assert_eq!(d.images().shape(), (25, 784));
        assert_eq!(d.classes(), 10);
        assert!(d
            .images()
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn classes_are_balanced() {
        let d = synthetic_digits(100, DigitConfig::small(), 2);
        let mut counts = [0usize; 10];
        for &l in d.labels() {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn images_have_ink() {
        let d = synthetic_digits(20, DigitConfig::mnist_like(), 3);
        for r in 0..20 {
            let ink: f64 = d.images().row(r).iter().sum();
            assert!(ink > 10.0, "image {r} should contain a visible glyph");
        }
    }

    #[test]
    fn different_classes_differ_more_than_same_class() {
        // Noise-free rendering: intra-class distance (same digit, shifted)
        // should on average be below inter-class distance.
        let config = DigitConfig {
            noise: 0.0,
            ..DigitConfig::mnist_like()
        };
        let d = synthetic_digits(200, config, 4);
        let img = |i: usize| Matrix::from_vec(1, 784, d.images().row(i).to_vec());
        // Samples i and i+10 share a class; i and i+1 do not.
        let mut intra = 0.0;
        let mut inter = 0.0;
        for i in 0..50 {
            intra += img(i).distance(&img(i + 10));
            inter += img(i).distance(&img(i + 1));
        }
        assert!(intra < inter, "intra {intra} should be below inter {inter}");
    }

    #[test]
    fn train_test_split_is_disjointly_seeded() {
        let (train, test) = synthetic_mnist(20, 20, 9);
        assert_ne!(train.images(), test.images());
    }
}
