//! The labelled-dataset container and batching.

use cryptonn_matrix::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled dataset: `(n, features)` inputs plus integer class labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Matrix<f64>,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != images.rows()`, if `classes` is zero,
    /// or if any label is out of range.
    pub fn new(images: Matrix<f64>, labels: Vec<usize>, classes: usize) -> Self {
        assert_eq!(images.rows(), labels.len(), "one label per row required");
        assert!(classes > 0, "at least one class required");
        assert!(labels.iter().all(|&l| l < classes), "label out of range");
        Self {
            images,
            labels,
            classes,
        }
    }

    /// The input matrix `(n, features)`.
    pub fn images(&self) -> &Matrix<f64> {
        &self.images
    }

    /// The integer class labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the dataset has no samples (construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.images.cols()
    }

    /// One-hot encoded labels `(n, classes)` — the client-side label
    /// pre-processing of the paper's Fig. 1.
    pub fn one_hot_labels(&self) -> Matrix<f64> {
        Matrix::from_fn(self.len(), self.classes, |r, c| {
            if self.labels[r] == c {
                1.0
            } else {
                0.0
            }
        })
    }

    /// The first `n` samples as a new dataset.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the dataset size.
    pub fn take(&self, n: usize) -> Self {
        assert!(n > 0 && n <= self.len(), "subset size out of range");
        let images = Matrix::from_fn(n, self.feature_dim(), |r, c| self.images[(r, c)]);
        Self {
            images,
            labels: self.labels[..n].to_vec(),
            classes: self.classes,
        }
    }

    /// Shuffles samples in place with the given RNG.
    pub fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        let images = Matrix::from_fn(self.len(), self.feature_dim(), |r, c| {
            self.images[(order[r], c)]
        });
        let labels = order.iter().map(|&i| self.labels[i]).collect();
        self.images = images;
        self.labels = labels;
    }

    /// Splits into `(x, one-hot y)` mini-batches of at most `batch_size`
    /// rows, in order (shuffle first for SGD).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn batches(&self, batch_size: usize) -> Vec<(Matrix<f64>, Matrix<f64>)> {
        assert!(batch_size > 0, "batch size must be positive");
        let y = self.one_hot_labels();
        let mut out = Vec::new();
        let mut start = 0;
        while start < self.len() {
            let end = (start + batch_size).min(self.len());
            let x_batch = Matrix::from_fn(end - start, self.feature_dim(), |r, c| {
                self.images[(start + r, c)]
            });
            let y_batch = Matrix::from_fn(end - start, self.classes, |r, c| y[(start + r, c)]);
            out.push((x_batch, y_batch));
            start = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> Dataset {
        let images = Matrix::from_rows(&[
            &[0.0, 0.1],
            &[1.0, 1.1],
            &[2.0, 2.1],
            &[3.0, 3.1],
            &[4.0, 4.1],
        ]);
        Dataset::new(images, vec![0, 1, 2, 0, 1], 3)
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.len(), 5);
        assert_eq!(d.feature_dim(), 2);
        assert_eq!(d.classes(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn one_hot_layout() {
        let d = tiny();
        let y = d.one_hot_labels();
        assert_eq!(y.shape(), (5, 3));
        assert_eq!(y.row(2), &[0.0, 0.0, 1.0]);
        assert_eq!(y.row(3), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn batches_cover_everything_in_order() {
        let d = tiny();
        let batches = d.batches(2);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].0.rows(), 2);
        assert_eq!(batches[2].0.rows(), 1); // remainder batch
        assert_eq!(batches[2].0.row(0), &[4.0, 4.1]);
        assert_eq!(batches[1].1.row(0), &[0.0, 0.0, 1.0]); // label 2
    }

    #[test]
    fn take_subset() {
        let d = tiny();
        let s = d.take(2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[0, 1]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut d = tiny();
        let sums_before: f64 = d.images().sum();
        let mut rng = StdRng::seed_from_u64(1);
        d.shuffle(&mut rng);
        assert!((d.images().sum() - sums_before).abs() < 1e-12);
        // Label multiset preserved.
        let mut labels = d.labels().to_vec();
        labels.sort_unstable();
        assert_eq!(labels, vec![0, 0, 1, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn labels_validated() {
        let _ = Dataset::new(Matrix::zeros(1, 1), vec![5], 3);
    }
}
