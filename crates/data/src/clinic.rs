//! A synthetic "federal clinic" tabular dataset.
//!
//! The paper's introduction motivates CryptoNN with distributed clinics
//! that cannot share patient records but want a jointly-trained
//! diagnostic model. This module generates a two-class tabular task with
//! clinically-flavoured feature names so the examples can demonstrate
//! exactly that scenario: several clients (clinics), one encrypted
//! training set, one server-side model.

use cryptonn_matrix::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::dataset::Dataset;

/// Feature names of the clinic dataset, in column order.
pub const CLINIC_FEATURES: [&str; 8] = [
    "age",
    "resting_bp",
    "cholesterol",
    "max_heart_rate",
    "glucose",
    "bmi",
    "st_depression",
    "vessel_count",
];

/// Per-class feature means (healthy, diseased), in standardized units.
const CLASS_MEANS: [[f64; 8]; 2] = [
    [-0.5, -0.4, -0.3, 0.5, -0.4, -0.3, -0.6, -0.7],
    [0.5, 0.5, 0.4, -0.5, 0.4, 0.3, 0.6, 0.7],
];

/// Generates `n` patients split evenly between the two classes
/// (label 0 = healthy, 1 = diseased). Features are standardized
/// Gaussians around class-dependent means with mild feature correlation,
/// giving a task that is learnable but not linearly trivial.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn clinic_dataset(n: usize, seed: u64) -> Dataset {
    assert!(n > 0, "dataset size must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let dim = CLINIC_FEATURES.len();
    let mut data = Vec::with_capacity(n * dim);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 2;
        labels.push(class);
        let means = &CLASS_MEANS[class];
        // A shared latent factor induces correlation between features.
        let latent = gaussian(&mut rng) * 0.4;
        for &mean in means.iter().take(dim) {
            data.push(mean + latent + gaussian(&mut rng) * 0.6);
        }
    }
    Dataset::new(Matrix::from_vec(n, dim, data), labels, 2)
}

/// Splits a dataset into `k` disjoint client shards — the distributed
/// clinics of the paper's scenario. Shard sizes differ by at most one.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the dataset size.
pub fn split_among_clients(dataset: &Dataset, k: usize) -> Vec<Dataset> {
    assert!(k > 0 && k <= dataset.len(), "client count out of range");
    let n = dataset.len();
    let base = n / k;
    let extra = n % k;
    let mut shards = Vec::with_capacity(k);
    let mut start = 0;
    for c in 0..k {
        let size = base + usize::from(c < extra);
        let images = Matrix::from_fn(size, dataset.feature_dim(), |r, col| {
            dataset.images()[(start + r, col)]
        });
        let labels = dataset.labels()[start..start + size].to_vec();
        shards.push(Dataset::new(images, labels, dataset.classes()));
        start += size;
    }
    shards
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_and_deterministic() {
        let a = clinic_dataset(100, 5);
        let b = clinic_dataset(100, 5);
        assert_eq!(a, b);
        assert_eq!(a.labels().iter().filter(|&&l| l == 1).count(), 50);
        assert_eq!(a.feature_dim(), 8);
    }

    #[test]
    fn classes_are_separated_in_feature_space() {
        let d = clinic_dataset(400, 6);
        // Mean of feature 7 (vessel_count) should differ strongly by class.
        let (mut m0, mut m1, mut n0, mut n1) = (0.0, 0.0, 0, 0);
        for r in 0..d.len() {
            if d.labels()[r] == 0 {
                m0 += d.images()[(r, 7)];
                n0 += 1;
            } else {
                m1 += d.images()[(r, 7)];
                n1 += 1;
            }
        }
        assert!(m1 / n1 as f64 - m0 / n0 as f64 > 0.8);
    }

    #[test]
    fn client_split_is_a_partition() {
        let d = clinic_dataset(103, 7);
        let shards = split_among_clients(&d, 4);
        assert_eq!(shards.len(), 4);
        assert_eq!(shards.iter().map(Dataset::len).sum::<usize>(), 103);
        // Sizes differ by at most one.
        let sizes: Vec<_> = shards.iter().map(Dataset::len).collect();
        assert_eq!(sizes, vec![26, 26, 26, 25]);
        // First shard's first row equals the dataset's first row.
        assert_eq!(shards[0].images().row(0), d.images().row(0));
    }

    #[test]
    #[should_panic(expected = "client count out of range")]
    fn split_validates_k() {
        let d = clinic_dataset(4, 8);
        let _ = split_among_clients(&d, 5);
    }
}
