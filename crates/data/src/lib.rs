//! # cryptonn-data
//!
//! Offline datasets for the CryptoNN evaluation:
//!
//! - [`synthetic_mnist`] / [`synthetic_digits`] — a deterministic
//!   MNIST-like 10-class digit dataset (the paper's MNIST cannot be
//!   downloaded in this offline environment; see DESIGN.md §3.1 for the
//!   substitution argument).
//! - [`clinic_dataset`] — the "distributed federal clinics" tabular task
//!   motivating the paper's introduction, with [`split_among_clients`]
//!   to shard it across data owners.
//! - [`Dataset`] — labelled data with one-hot encoding, shuffling and
//!   mini-batching.
//!
//! ## Example
//!
//! ```
//! use cryptonn_data::{synthetic_digits, DigitConfig};
//!
//! let train = synthetic_digits(100, DigitConfig::mnist_like(), 42);
//! assert_eq!(train.images().shape(), (100, 784));
//! let batches = train.batches(32);
//! assert_eq!(batches.len(), 4); // 32+32+32+4
//! ```

mod clinic;
mod dataset;
mod digits;

pub use clinic::{clinic_dataset, split_among_clients, CLINIC_FEATURES};
pub use dataset::Dataset;
pub use digits::{synthetic_digits, synthetic_mnist, DigitConfig};
