//! Property-based tests for the dataset layer.

use cryptonn_data::{clinic_dataset, split_among_clients, synthetic_digits, DigitConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn digits_are_valid_images(n in 1usize..60, seed in any::<u64>()) {
        let d = synthetic_digits(n, DigitConfig::small(), seed);
        prop_assert_eq!(d.len(), n);
        prop_assert_eq!(d.feature_dim(), 196);
        prop_assert!(d.images().as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
        prop_assert!(d.labels().iter().all(|&l| l < 10));
    }

    #[test]
    fn one_hot_is_a_valid_indicator(n in 1usize..40, seed in any::<u64>()) {
        let d = synthetic_digits(n, DigitConfig::small(), seed);
        let y = d.one_hot_labels();
        for r in 0..n {
            let row_sum: f64 = y.row(r).iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-12);
            prop_assert_eq!(y[(r, d.labels()[r])], 1.0);
        }
    }

    #[test]
    fn batches_partition_the_dataset(n in 1usize..50, batch in 1usize..16, seed in any::<u64>()) {
        let d = clinic_dataset(n, seed);
        let batches = d.batches(batch);
        let total: usize = batches.iter().map(|(x, _)| x.rows()).sum();
        prop_assert_eq!(total, n);
        for (x, y) in &batches {
            prop_assert!(x.rows() <= batch);
            prop_assert_eq!(x.rows(), y.rows());
        }
    }

    #[test]
    fn client_split_partitions(n in 4usize..60, k in 1usize..4, seed in any::<u64>()) {
        let d = clinic_dataset(n, seed);
        let shards = split_among_clients(&d, k);
        prop_assert_eq!(shards.len(), k);
        prop_assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), n);
        // Sizes differ by at most one.
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn shuffle_preserves_multiset(n in 2usize..30, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut d = clinic_dataset(n, seed);
        let sum_before: f64 = d.images().sum();
        let mut labels_before = d.labels().to_vec();
        labels_before.sort_unstable();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 1);
        d.shuffle(&mut rng);
        prop_assert!((d.images().sum() - sum_before).abs() < 1e-9);
        let mut labels_after = d.labels().to_vec();
        labels_after.sort_unstable();
        prop_assert_eq!(labels_before, labels_after);
    }
}
