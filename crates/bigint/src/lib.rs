//! # cryptonn-bigint
//!
//! Fixed-width multi-precision integers and modular arithmetic — the
//! lowest layer of the CryptoNN reproduction, standing in for the GMP
//! library that the paper's Charm-based prototype relies on.
//!
//! The crate provides:
//!
//! - [`U256`] / [`U512`]: fixed-width unsigned integers with full
//!   arithmetic (Knuth Algorithm D division, widening multiplication),
//! - [`modular`]: modular add/sub/mul/pow/inverse over 256-bit moduli,
//! - [`montgomery`]: a reusable Montgomery reduction context (CIOS
//!   multiplication, with a fast-reduction path for moduli ≡ −1 mod
//!   2⁶⁴) that backs [`modular::mod_pow`] for odd moduli and the group
//!   layer's fixed-base exponentiation tables,
//! - [`lanes`]: the 4-wide lane-batched Montgomery kernel (AVX2 when
//!   the one-shot calibration shootout favors it, a scalar
//!   instruction-parallel fallback otherwise; `CRYPTONN_FORCE_SCALAR=1`
//!   pins the portable kernel),
//! - [`prime`]: Miller–Rabin primality testing and (safe-)prime
//!   generation for `GroupGen(1^λ)`.
//!
//! ## Example
//!
//! ```
//! use cryptonn_bigint::{modular, U256};
//!
//! let p = U256::from_u64(1_000_003); // a prime modulus
//! let a = U256::from_u64(123_456);
//! let inv = modular::mod_inv(&a, &p).expect("p is prime");
//! assert_eq!(modular::mod_mul(&a, &inv, &p), U256::ONE);
//! ```

pub mod lanes;
pub mod limbs;
pub mod modular;
pub mod montgomery;
pub mod prime;
mod uint;

pub use lanes::{kernel_name, Kernel};
pub use montgomery::{Montgomery, Reducer};
pub use uint::{ParseUintError, U256, U512};
