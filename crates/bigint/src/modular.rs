//! Modular arithmetic over [`U256`] moduli.
//!
//! All functions require their operands to be already reduced
//! (`< modulus`); this is debug-asserted. The group and FE layers maintain
//! that invariant at their boundaries.

use crate::uint::{U256, U512};

/// `(a + b) mod m`.
///
/// # Panics
///
/// Panics (debug builds) if `a` or `b` is not reduced mod `m`.
pub fn mod_add(a: &U256, b: &U256, m: &U256) -> U256 {
    debug_assert!(a < m && b < m, "operands must be reduced");
    let (sum, carry) = a.overflowing_add(b);
    if carry || &sum >= m {
        sum.wrapping_sub(m)
    } else {
        sum
    }
}

/// `(a - b) mod m`.
///
/// # Panics
///
/// Panics (debug builds) if `a` or `b` is not reduced mod `m`.
pub fn mod_sub(a: &U256, b: &U256, m: &U256) -> U256 {
    debug_assert!(a < m && b < m, "operands must be reduced");
    let (diff, borrow) = a.overflowing_sub(b);
    if borrow {
        diff.wrapping_add(m)
    } else {
        diff
    }
}

/// `(-a) mod m`.
///
/// # Panics
///
/// Panics (debug builds) if `a` is not reduced mod `m`.
pub fn mod_neg(a: &U256, m: &U256) -> U256 {
    debug_assert!(a < m, "operand must be reduced");
    if a.is_zero() {
        U256::ZERO
    } else {
        m.wrapping_sub(a)
    }
}

/// `(a * b) mod m` via a full 512-bit product and Knuth division.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_mul(a: &U256, b: &U256, m: &U256) -> U256 {
    a.widening_mul(b).rem_u256(m)
}

/// `(a^exp) mod m`.
///
/// Odd moduli (every prime modulus in this workspace) take the
/// Montgomery-form path: a [`Montgomery`](crate::montgomery::Montgomery)
/// context is built once and the whole exponentiation runs on CIOS
/// products, replacing one 512-bit Knuth division per multiply with two
/// 256-bit multiplies. Even moduli fall back to
/// [`mod_pow_schoolbook`]. Both paths are bit-identical (see the
/// equivalence property tests).
///
/// Callers that exponentiate repeatedly against one modulus should
/// build and reuse a [`Montgomery`](crate::montgomery::Montgomery)
/// context (or a fixed-base table in the group layer) instead of
/// calling this in a loop — the context construction is amortized here
/// over only a single exponentiation.
///
/// # Panics
///
/// Panics if `m` is zero. `m == 1` yields 0.
pub fn mod_pow(base: &U256, exp: &U256, m: &U256) -> U256 {
    assert!(!m.is_zero(), "zero modulus");
    match crate::montgomery::Montgomery::new(m) {
        Some(ctx) => ctx.pow(base, exp),
        None => mod_pow_schoolbook(base, exp, m),
    }
}

/// `(a^exp) mod m` by schoolbook square-and-multiply (left-to-right,
/// 4-bit window) with a full division-based reduction per product.
///
/// This is the pre-Montgomery generic path, kept for even moduli and as
/// the reference implementation the Montgomery path is property-tested
/// against (and benchmarked against in `cryptonn-bench`'s
/// `ablation_exponentiation`).
///
/// # Panics
///
/// Panics if `m` is zero. `m == 1` yields 0.
pub fn mod_pow_schoolbook(base: &U256, exp: &U256, m: &U256) -> U256 {
    assert!(!m.is_zero(), "zero modulus");
    if m == &U256::ONE {
        return U256::ZERO;
    }
    let base = base.rem(m);
    if exp.is_zero() {
        return U256::ONE;
    }
    if base.is_zero() {
        return U256::ZERO;
    }

    // Precompute base^0 .. base^15 for a fixed 4-bit window.
    let mut table = [U256::ONE; 16];
    table[1] = base;
    for i in 2..16 {
        table[i] = mod_mul(&table[i - 1], &base, m);
    }

    let bits = exp.bit_len();
    let windows = bits.div_ceil(4);
    let mut acc = U256::ONE;
    for w in (0..windows).rev() {
        if w != windows - 1 {
            acc = mod_mul(&acc, &acc, m);
            acc = mod_mul(&acc, &acc, m);
            acc = mod_mul(&acc, &acc, m);
            acc = mod_mul(&acc, &acc, m);
        }
        let mut nibble = 0usize;
        for b in 0..4 {
            let idx = w * 4 + b;
            if idx < bits && exp.bit(idx) {
                nibble |= 1 << b;
            }
        }
        if nibble != 0 {
            acc = mod_mul(&acc, &table[nibble], m);
        }
    }
    acc
}

/// Modular inverse for an odd modulus, via the binary extended-GCD
/// algorithm. Returns `None` when `gcd(a, m) != 1` or `a == 0`.
///
/// # Panics
///
/// Panics if `m` is zero or even (every modulus in this crate is an odd
/// prime, and the binary algorithm requires oddness).
pub fn mod_inv(a: &U256, m: &U256) -> Option<U256> {
    assert!(!m.is_zero(), "zero modulus");
    assert!(m.is_odd(), "mod_inv requires an odd modulus");
    let a = a.rem(m);
    if a.is_zero() {
        return None;
    }

    let halve_mod = |x: &U256| -> U256 {
        if x.is_even() {
            x.shr(1)
        } else {
            // (x + m) / 2 without overflow: x/2 + m/2 + 1 (both odd).
            x.shr(1).wrapping_add(&m.shr(1)).wrapping_add(&U256::ONE)
        }
    };

    let mut u = a;
    let mut v = *m;
    let mut x1 = U256::ONE;
    let mut x2 = U256::ZERO;

    while u != U256::ONE && v != U256::ONE {
        while u.is_even() {
            u = u.shr(1);
            x1 = halve_mod(&x1);
        }
        while v.is_even() {
            v = v.shr(1);
            x2 = halve_mod(&x2);
        }
        if u >= v {
            u = u.wrapping_sub(&v);
            x1 = mod_sub(&x1, &x2, m);
        } else {
            v = v.wrapping_sub(&u);
            x2 = mod_sub(&x2, &x1, m);
        }
        if u.is_zero() || v.is_zero() {
            return None; // gcd(a, m) != 1
        }
    }

    Some(if u == U256::ONE { x1 } else { x2 })
}

/// Batch modular inversion (Montgomery's trick) for an odd modulus:
/// inverts all of `values` with a single extended-GCD inversion plus
/// `3(n−1)` multiplications. Returns `None` if any value is zero or not
/// coprime with `m` (a partial batch would corrupt later inverses).
///
/// This is the one-shot wrapper over
/// [`Montgomery::batch_inv`](crate::montgomery::Montgomery::batch_inv);
/// callers inverting repeatedly against one modulus (the group layer)
/// should build and reuse a context instead, as with [`mod_pow`].
///
/// # Panics
///
/// Panics if `m` is zero or even, as [`mod_inv`] does.
pub fn batch_mod_inv(values: &[U256], m: &U256) -> Option<Vec<U256>> {
    assert!(!m.is_zero(), "zero modulus");
    assert!(m.is_odd(), "batch_mod_inv requires an odd modulus");
    if *m == U256::ONE {
        return None;
    }
    crate::montgomery::Montgomery::new(m)
        .expect("odd modulus > 1 always has a Montgomery context")
        .batch_inv(values)
}

/// Reduces a 512-bit value modulo a 256-bit modulus.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn reduce_wide(v: &U512, m: &U256) -> U256 {
    v.rem_u256(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// A 61-bit prime for cross-checking against native u128 arithmetic.
    const P61: u64 = 2_305_843_009_213_693_951; // 2^61 - 1 (Mersenne prime)

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    #[test]
    fn add_sub_neg_mod_small() {
        let m = u(97);
        assert_eq!(mod_add(&u(90), &u(10), &m), u(3));
        assert_eq!(mod_sub(&u(3), &u(10), &m), u(90));
        assert_eq!(mod_neg(&u(1), &m), u(96));
        assert_eq!(mod_neg(&U256::ZERO, &m), U256::ZERO);
    }

    #[test]
    fn mod_add_with_carry_past_width() {
        // a + b overflows 256 bits; modulus close to 2^256.
        let m = U256::MAX;
        let a = U256::MAX.wrapping_sub(&u(1));
        let b = U256::MAX.wrapping_sub(&u(2));
        // (2^256-2 + 2^256-3) mod (2^256-1) = 2^256 - 4... check via invariant:
        let s = mod_add(&a, &b, &m);
        assert!(s < m);
        // s ≡ a + b (mod m): verify (s - a) mod m == b mod m
        assert_eq!(mod_sub(&s, &a, &m), b.rem(&m));
    }

    #[test]
    fn mul_matches_u128() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = u(P61);
        for _ in 0..256 {
            let a = rng.random_range(0..P61);
            let b = rng.random_range(0..P61);
            let expect = ((a as u128 * b as u128) % P61 as u128) as u64;
            assert_eq!(mod_mul(&u(a), &u(b), &m), u(expect));
        }
    }

    #[test]
    fn pow_matches_naive() {
        let mut rng = StdRng::seed_from_u64(12);
        let m = u(1_000_003);
        for _ in 0..64 {
            let a = rng.random_range(0u64..1_000_003);
            let e = rng.random_range(0u64..50);
            let mut expect: u64 = 1;
            for _ in 0..e {
                expect = expect * a % 1_000_003;
            }
            assert_eq!(mod_pow(&u(a), &u(e), &m), u(expect), "{a}^{e}");
        }
    }

    #[test]
    fn pow_edge_cases() {
        let m = u(97);
        assert_eq!(mod_pow(&u(5), &U256::ZERO, &m), U256::ONE);
        assert_eq!(mod_pow(&U256::ZERO, &u(5), &m), U256::ZERO);
        assert_eq!(mod_pow(&u(5), &U256::ONE, &m), u(5));
        assert_eq!(mod_pow(&u(5), &u(3), &U256::ONE), U256::ZERO);
    }

    #[test]
    fn fermat_little_theorem_256bit() {
        // p = 2^255 - 19 is prime; a^(p-1) ≡ 1 (mod p).
        let p = U256::from_hex("7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed")
            .unwrap();
        let pm1 = p.wrapping_sub(&U256::ONE);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..4 {
            let a = U256::random_below(&mut rng, &p);
            if a.is_zero() {
                continue;
            }
            assert_eq!(mod_pow(&a, &pm1, &p), U256::ONE);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let mut rng = StdRng::seed_from_u64(14);
        let m = u(P61);
        for _ in 0..128 {
            let a = u(rng.random_range(1..P61));
            let inv = mod_inv(&a, &m).expect("prime modulus, nonzero a");
            assert_eq!(mod_mul(&a, &inv, &m), U256::ONE);
        }
    }

    #[test]
    fn inverse_of_zero_and_noncoprime() {
        let m = u(15);
        assert_eq!(mod_inv(&U256::ZERO, &m), None);
        assert_eq!(mod_inv(&u(5), &m), None); // gcd(5,15)=5
        assert_eq!(mod_inv(&u(3), &m), None);
        let i = mod_inv(&u(2), &m).unwrap();
        assert_eq!(mod_mul(&u(2), &i, &m), U256::ONE);
    }

    #[test]
    fn inverse_256bit_prime() {
        let p = U256::from_hex("7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed")
            .unwrap();
        let mut rng = StdRng::seed_from_u64(15);
        for _ in 0..8 {
            let a = U256::random_below(&mut rng, &p);
            if a.is_zero() {
                continue;
            }
            let inv = mod_inv(&a, &p).unwrap();
            assert_eq!(mod_mul(&a, &inv, &p), U256::ONE);
            // Fermat inverse agrees.
            let fermat = mod_pow(&a, &p.wrapping_sub(&U256::from_u64(2)), &p);
            assert_eq!(inv, fermat);
        }
    }

    #[test]
    fn batch_mod_inv_matches_mod_inv() {
        let mut rng = StdRng::seed_from_u64(17);
        let m = u(P61);
        let values: Vec<U256> = (0..32).map(|_| u(rng.random_range(1..P61))).collect();
        let batch = batch_mod_inv(&values, &m).unwrap();
        for (v, inv) in values.iter().zip(&batch) {
            assert_eq!(*inv, mod_inv(v, &m).unwrap());
            assert_eq!(mod_mul(v, inv, &m), U256::ONE);
        }
        // Any zero poisons the whole batch.
        assert_eq!(batch_mod_inv(&[u(3), U256::ZERO], &m), None);
        assert_eq!(batch_mod_inv(&[], &m), Some(Vec::new()));
        assert_eq!(batch_mod_inv(&[u(2)], &U256::ONE), None);
    }

    #[test]
    fn reduce_wide_matches() {
        let mut rng = StdRng::seed_from_u64(16);
        for _ in 0..32 {
            let a = U256::random(&mut rng);
            let b = U256::random(&mut rng);
            let m = u(P61);
            let r = reduce_wide(&a.widening_mul(&b), &m);
            let expect = mod_mul(&a.rem(&m), &b.rem(&m), &m);
            assert_eq!(r, expect);
        }
    }
}
