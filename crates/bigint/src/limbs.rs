//! Low-level arithmetic on little-endian limb slices.
//!
//! Every multi-limb algorithm in this crate (addition, subtraction,
//! schoolbook multiplication, Knuth Algorithm D division, shifts) is
//! implemented here on `&[Limb]` slices so that the fixed-width integer
//! types (`U256`, `U512`) can share one carefully-tested core.

/// The machine word used for all big-integer arithmetic.
pub type Limb = u64;

/// Number of bits in a [`Limb`].
pub const LIMB_BITS: usize = 64;

/// Add with carry: returns `(a + b + carry) mod 2^64` and the carry out.
#[inline(always)]
pub const fn adc(a: Limb, b: Limb, carry: Limb) -> (Limb, Limb) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as Limb, (t >> LIMB_BITS) as Limb)
}

/// Subtract with borrow: returns `(a - b - borrow) mod 2^64` and the
/// borrow out (0 or 1).
#[inline(always)]
pub const fn sbb(a: Limb, b: Limb, borrow: Limb) -> (Limb, Limb) {
    let t = (a as u128)
        .wrapping_sub(b as u128)
        .wrapping_sub(borrow as u128);
    (t as Limb, ((t >> LIMB_BITS) as Limb) & 1)
}

/// Multiply-accumulate: returns `(a + b * c + carry) mod 2^64` and the
/// high word carried out. Never overflows `u128`.
#[inline(always)]
pub const fn mac(a: Limb, b: Limb, c: Limb, carry: Limb) -> (Limb, Limb) {
    let t = a as u128 + (b as u128) * (c as u128) + carry as u128;
    (t as Limb, (t >> LIMB_BITS) as Limb)
}

/// `lhs += rhs`, returning the final carry. `rhs` may be shorter than
/// `lhs`; the carry is propagated through the remaining limbs.
///
/// # Panics
///
/// Panics if `rhs` is longer than `lhs`.
pub fn add_assign(lhs: &mut [Limb], rhs: &[Limb]) -> Limb {
    assert!(rhs.len() <= lhs.len(), "rhs longer than lhs");
    let mut carry = 0;
    for (l, &r) in lhs.iter_mut().zip(rhs.iter()) {
        let (s, c) = adc(*l, r, carry);
        *l = s;
        carry = c;
    }
    for l in lhs.iter_mut().skip(rhs.len()) {
        if carry == 0 {
            break;
        }
        let (s, c) = adc(*l, 0, carry);
        *l = s;
        carry = c;
    }
    carry
}

/// `lhs -= rhs`, returning the final borrow (0 or 1).
///
/// # Panics
///
/// Panics if `rhs` is longer than `lhs`.
pub fn sub_assign(lhs: &mut [Limb], rhs: &[Limb]) -> Limb {
    assert!(rhs.len() <= lhs.len(), "rhs longer than lhs");
    let mut borrow = 0;
    for (l, &r) in lhs.iter_mut().zip(rhs.iter()) {
        let (d, b) = sbb(*l, r, borrow);
        *l = d;
        borrow = b;
    }
    for l in lhs.iter_mut().skip(rhs.len()) {
        if borrow == 0 {
            break;
        }
        let (d, b) = sbb(*l, 0, borrow);
        *l = d;
        borrow = b;
    }
    borrow
}

/// Lexicographic comparison of two equal-length little-endian slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn cmp_slices(a: &[Limb], b: &[Limb]) -> core::cmp::Ordering {
    assert_eq!(a.len(), b.len(), "cmp_slices length mismatch");
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            core::cmp::Ordering::Equal => continue,
            ord => return ord,
        }
    }
    core::cmp::Ordering::Equal
}

/// Schoolbook multiplication: `out = a * b`.
///
/// # Panics
///
/// Panics if `out.len() < a.len() + b.len()`.
pub fn mul_into(a: &[Limb], b: &[Limb], out: &mut [Limb]) {
    assert!(out.len() >= a.len() + b.len(), "mul_into output too small");
    out.fill(0);
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0;
        for (j, &bj) in b.iter().enumerate() {
            let (lo, hi) = mac(out[i + j], ai, bj, carry);
            out[i + j] = lo;
            carry = hi;
        }
        out[i + b.len()] = carry;
    }
}

/// Number of significant limbs (index of highest non-zero limb + 1).
pub fn significant_limbs(a: &[Limb]) -> usize {
    a.iter().rposition(|&l| l != 0).map_or(0, |i| i + 1)
}

/// Bit length of the value represented by `a` (0 for zero).
pub fn bit_len(a: &[Limb]) -> usize {
    let n = significant_limbs(a);
    if n == 0 {
        0
    } else {
        n * LIMB_BITS - a[n - 1].leading_zeros() as usize
    }
}

/// Shift left in place by `shift` bits (`shift < 64`), returning the bits
/// shifted out of the top limb.
pub fn shl_small(a: &mut [Limb], shift: u32) -> Limb {
    debug_assert!(shift < 64);
    if shift == 0 {
        return 0;
    }
    let mut carry = 0;
    for limb in a.iter_mut() {
        let new_carry = *limb >> (64 - shift);
        *limb = (*limb << shift) | carry;
        carry = new_carry;
    }
    carry
}

/// Shift right in place by `shift` bits (`shift < 64`).
pub fn shr_small(a: &mut [Limb], shift: u32) {
    debug_assert!(shift < 64);
    if shift == 0 {
        return;
    }
    let mut carry = 0;
    for limb in a.iter_mut().rev() {
        let new_carry = *limb << (64 - shift);
        *limb = (*limb >> shift) | carry;
        carry = new_carry;
    }
}

/// Maximum dividend size (in limbs) supported by [`div_rem_into`].
pub const MAX_DIV_LIMBS: usize = 17;

/// Knuth Algorithm D: computes `q = u / v` and `r = u % v`.
///
/// `u` and `v` are little-endian limb slices; leading zero limbs are
/// permitted. The quotient is written to `q` (which must have at least
/// `u.len()` limbs of space) and the remainder to `r` (at least
/// `v.len()` limbs). Unused high limbs of `q` and `r` are zeroed.
///
/// # Panics
///
/// Panics if `v` is zero, if `u.len() >= MAX_DIV_LIMBS`, or if the output
/// slices are too small.
pub fn div_rem_into(u: &[Limb], v: &[Limb], q: &mut [Limb], r: &mut [Limb]) {
    let n = significant_limbs(v);
    assert!(n > 0, "division by zero");
    let m = significant_limbs(u);
    assert!(
        u.len() < MAX_DIV_LIMBS,
        "dividend too large for div_rem_into"
    );
    assert!(q.len() >= m.max(1), "quotient buffer too small");
    assert!(r.len() >= n, "remainder buffer too small");
    q.fill(0);
    r.fill(0);

    if m < n {
        r[..m].copy_from_slice(&u[..m]);
        return;
    }

    // Short division by a single limb.
    if n == 1 {
        let d = v[0] as u128;
        let mut rem: u128 = 0;
        for j in (0..m).rev() {
            let cur = (rem << 64) | u[j] as u128;
            q[j] = (cur / d) as Limb;
            rem = cur % d;
        }
        r[0] = rem as Limb;
        return;
    }

    // Normalize: shift v left so its top limb has the high bit set.
    let shift = v[n - 1].leading_zeros();
    let mut vn = [0 as Limb; MAX_DIV_LIMBS];
    vn[..n].copy_from_slice(&v[..n]);
    shl_small(&mut vn[..n], shift);

    let mut un = [0 as Limb; MAX_DIV_LIMBS + 1];
    un[..m].copy_from_slice(&u[..m]);
    un[m] = shl_small(&mut un[..m], shift);

    for j in (0..=m - n).rev() {
        // Estimate q̂ = (un[j+n]·B + un[j+n-1]) / vn[n-1].
        let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
        let den = vn[n - 1] as u128;
        let mut qhat = num / den;
        let mut rhat = num % den;

        // Correct q̂ down at most twice.
        while qhat >> 64 != 0
            || (qhat as u64 as u128) * (vn[n - 2] as u128) > ((rhat << 64) | un[j + n - 2] as u128)
        {
            qhat -= 1;
            rhat += den;
            if rhat >> 64 != 0 {
                break;
            }
        }
        let qh = qhat as Limb;

        // Multiply-and-subtract: un[j..j+n+1] -= qh * vn[..n].
        let mut mul_carry: Limb = 0;
        let mut borrow: Limb = 0;
        for i in 0..n {
            let p = (qh as u128) * (vn[i] as u128) + mul_carry as u128;
            mul_carry = (p >> 64) as Limb;
            let (d, b) = sbb(un[j + i], p as Limb, borrow);
            un[j + i] = d;
            borrow = b;
        }
        let (d, b) = sbb(un[j + n], mul_carry, borrow);
        un[j + n] = d;

        q[j] = qh;
        if b != 0 {
            // q̂ was one too large; add v back.
            q[j] -= 1;
            let carry = add_assign(&mut un[j..j + n], &vn[..n]);
            un[j + n] = un[j + n].wrapping_add(carry);
        }
    }

    // Denormalize the remainder.
    r[..n].copy_from_slice(&un[..n]);
    shr_small(&mut r[..n], shift);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_u128(limbs: &[Limb]) -> u128 {
        limbs
            .iter()
            .take(2)
            .enumerate()
            .map(|(i, &l)| (l as u128) << (64 * i))
            .sum()
    }

    #[test]
    fn adc_carries() {
        assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
        assert_eq!(adc(u64::MAX, u64::MAX, 1), (u64::MAX, 1));
        assert_eq!(adc(1, 2, 0), (3, 0));
    }

    #[test]
    fn sbb_borrows() {
        assert_eq!(sbb(0, 1, 0), (u64::MAX, 1));
        assert_eq!(sbb(5, 3, 1), (1, 0));
        assert_eq!(sbb(0, 0, 1), (u64::MAX, 1));
    }

    #[test]
    fn mac_never_overflows() {
        let (lo, hi) = mac(u64::MAX, u64::MAX, u64::MAX, u64::MAX);
        // max value of a + b*c + carry = 2^128 - 1 exactly.
        assert_eq!(lo, u64::MAX);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn add_sub_roundtrip() {
        let mut a = [1, 2, 3];
        let carry = add_assign(&mut a, &[u64::MAX, u64::MAX]);
        assert_eq!(carry, 0);
        assert_eq!(a, [0, 2, 4]);
        let borrow = sub_assign(&mut a, &[u64::MAX, u64::MAX]);
        assert_eq!(borrow, 0);
        assert_eq!(a, [1, 2, 3]);
    }

    #[test]
    fn mul_small_values() {
        let mut out = [0; 4];
        mul_into(&[3, 0], &[7, 0], &mut out);
        assert_eq!(out, [21, 0, 0, 0]);

        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        mul_into(&[u64::MAX], &[u64::MAX], &mut out[..2]);
        assert_eq!(
            to_u128(&out[..2]),
            (u128::from(u64::MAX)) * (u128::from(u64::MAX))
        );
    }

    #[test]
    fn div_rem_u128_cases() {
        let cases: [(u128, u128); 8] = [
            (0, 1),
            (5, 7),
            (100, 7),
            (u128::MAX, 3),
            (u128::MAX, u64::MAX as u128),
            (u128::MAX, (u64::MAX as u128) + 1),
            (1 << 100, (1 << 64) + 12345),
            (u128::MAX - 1, u128::MAX),
        ];
        for (a, b) in cases {
            let u = [a as u64, (a >> 64) as u64];
            let v = [b as u64, (b >> 64) as u64];
            let mut q = [0; 2];
            let mut r = [0; 2];
            div_rem_into(&u, &v, &mut q, &mut r);
            assert_eq!(to_u128(&q), a / b, "quotient for {a} / {b}");
            assert_eq!(to_u128(&r), a % b, "remainder for {a} / {b}");
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let mut q = [0; 2];
        let mut r = [0; 2];
        div_rem_into(&[1, 0], &[0, 0], &mut q, &mut r);
    }

    #[test]
    fn shl_shr_roundtrip() {
        let mut a = [0x8000_0000_0000_0001, 0x1];
        let out = shl_small(&mut a, 1);
        assert_eq!(out, 0);
        assert_eq!(a, [2, 3]);
        shr_small(&mut a, 1);
        assert_eq!(a, [0x8000_0000_0000_0001, 0x1]);
    }

    #[test]
    fn significant_and_bitlen() {
        assert_eq!(significant_limbs(&[0, 0, 0]), 0);
        assert_eq!(significant_limbs(&[1, 0, 0]), 1);
        assert_eq!(significant_limbs(&[0, 0, 5]), 3);
        assert_eq!(bit_len(&[0, 0]), 0);
        assert_eq!(bit_len(&[1]), 1);
        assert_eq!(bit_len(&[0, 1]), 65);
        assert_eq!(bit_len(&[u64::MAX, u64::MAX]), 128);
    }
}
