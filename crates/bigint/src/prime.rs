//! Primality testing and prime generation.
//!
//! Provides Miller–Rabin testing and random / safe-prime generation used
//! by `cryptonn-group`'s `GroupGen(1^λ)`. Safe primes (`p = 2q + 1` with
//! `q` prime) give the Schnorr subgroup of prime order `q` in which the
//! DDH assumption underlying FEIP/FEBO is taken.

use rand::Rng;

use crate::modular::{mod_mul, mod_pow};
use crate::uint::U256;

/// The first 64 odd primes, used for cheap trial division before
/// Miller–Rabin.
const SMALL_PRIMES: [u64; 64] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313,
];

/// Number of Miller–Rabin rounds; 40 random bases gives an error bound of
/// at most `4^-40` per composite, standard for crypto parameter generation.
pub const MILLER_RABIN_ROUNDS: usize = 40;

/// Returns true if `n` is (very probably) prime.
///
/// Uses trial division by the first 64 odd primes, then [`MILLER_RABIN_ROUNDS`]
/// rounds of Miller–Rabin with random bases drawn from `rng`.
pub fn is_prime<R: Rng + ?Sized>(n: &U256, rng: &mut R) -> bool {
    is_prime_with_rounds(n, MILLER_RABIN_ROUNDS, rng)
}

/// [`is_prime`] with an explicit number of Miller–Rabin rounds.
pub fn is_prime_with_rounds<R: Rng + ?Sized>(n: &U256, rounds: usize, rng: &mut R) -> bool {
    let two = U256::from_u64(2);
    if n < &two {
        return false;
    }
    if n == &two {
        return true;
    }
    if n.is_even() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        if n == &U256::from_u64(p) {
            return true;
        }
        if n.rem_u64(p) == 0 {
            return false;
        }
    }

    // Write n - 1 = d * 2^s with d odd.
    let n_minus_1 = n.wrapping_sub(&U256::ONE);
    let s = trailing_zeros(&n_minus_1);
    let d = n_minus_1.shr(s);

    let n_minus_3 = n.wrapping_sub(&U256::from_u64(3));
    'witness: for _ in 0..rounds {
        // a ∈ [2, n-2]
        let a = U256::random_below(rng, &n_minus_3).wrapping_add(&two);
        let mut x = mod_pow(&a, &d, n);
        if x == U256::ONE || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = mod_mul(&x, &x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn trailing_zeros(n: &U256) -> usize {
    debug_assert!(!n.is_zero());
    let mut count = 0;
    for &limb in n.as_limbs() {
        if limb == 0 {
            count += 64;
        } else {
            count += limb.trailing_zeros() as usize;
            break;
        }
    }
    count
}

/// Generates a random prime of exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2` or `bits > 256`.
pub fn gen_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> U256 {
    assert!((2..=256).contains(&bits), "bits must be in 2..=256");
    loop {
        let mut candidate = random_with_bits(bits, rng);
        if candidate.is_even() {
            candidate = candidate.wrapping_add(&U256::ONE);
        }
        if candidate.bit_len() == bits && is_prime(&candidate, rng) {
            return candidate;
        }
    }
}

/// Generates a random safe prime `p = 2q + 1` of exactly `bits` bits,
/// returning `(p, q)` where both are prime.
///
/// Safe-prime search is expensive (expected `O(bits²)` candidates); the
/// group crate ships precomputed parameters for the standard λ values and
/// only calls this for custom sizes.
///
/// # Panics
///
/// Panics if `bits < 3` or `bits > 256`.
pub fn gen_safe_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> (U256, U256) {
    assert!((3..=256).contains(&bits), "bits must be in 3..=256");
    loop {
        // Search q of bits-1 bits with cheap pre-filters before the full
        // double-primality test: p = 2q+1 must also avoid small factors.
        let q = gen_prime(bits - 1, rng);
        let p = q.shl(1).wrapping_add(&U256::ONE);
        if p.bit_len() != bits {
            continue;
        }
        let mut divisible = false;
        for &sp in &SMALL_PRIMES {
            if p.rem_u64(sp) == 0 && p != U256::from_u64(sp) {
                divisible = true;
                break;
            }
        }
        if divisible {
            continue;
        }
        if is_prime(&p, rng) {
            return (p, q);
        }
    }
}

fn random_with_bits<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> U256 {
    let mut v = U256::random(rng);
    // Clear everything above `bits`, then force the top bit.
    if bits < 256 {
        v = v.shl(256 - bits).shr(256 - bits);
    }
    let top = U256::ONE.shl(bits - 1);
    let mut limbs = v.to_limbs();
    limbs[(bits - 1) / 64] |= top.as_limbs()[(bits - 1) / 64];
    U256::from_limbs(limbs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_values() {
        let mut rng = StdRng::seed_from_u64(0);
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 7919, 1_000_003];
        let composites = [0u64, 1, 4, 9, 15, 91, 561, 1105, 1_000_001];
        for p in primes {
            assert!(is_prime(&U256::from_u64(p), &mut rng), "{p} is prime");
        }
        for c in composites {
            assert!(!is_prime(&U256::from_u64(c), &mut rng), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat but not Miller-Rabin.
        let mut rng = StdRng::seed_from_u64(1);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_prime(&U256::from_u64(c), &mut rng), "{c}");
        }
    }

    #[test]
    fn known_large_primes() {
        let mut rng = StdRng::seed_from_u64(2);
        // 2^61 - 1 (Mersenne), 2^89 - 1 (Mersenne), 2^255 - 19.
        let m61 = U256::from_u64((1u64 << 61) - 1);
        let m89 = U256::from_u128((1u128 << 89) - 1);
        let ed = U256::from_hex("7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed")
            .unwrap();
        assert!(is_prime(&m61, &mut rng));
        assert!(is_prime(&m89, &mut rng));
        assert!(is_prime(&ed, &mut rng));
        // 2^67 - 1 = 193707721 × 761838257287 is composite.
        let m67 = U256::from_u128((1u128 << 67) - 1);
        assert!(!is_prime(&m67, &mut rng));
    }

    #[test]
    fn gen_prime_has_requested_bits() {
        let mut rng = StdRng::seed_from_u64(3);
        for bits in [16, 32, 64, 96] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bit_len(), bits);
            assert!(is_prime(&p, &mut rng));
        }
    }

    #[test]
    fn gen_safe_prime_small() {
        let mut rng = StdRng::seed_from_u64(4);
        let (p, q) = gen_safe_prime(32, &mut rng);
        assert_eq!(p.bit_len(), 32);
        assert_eq!(p, q.shl(1).wrapping_add(&U256::ONE));
        assert!(is_prime(&p, &mut rng));
        assert!(is_prime(&q, &mut rng));
    }

    #[test]
    fn trailing_zeros_counts() {
        assert_eq!(trailing_zeros(&U256::from_u64(1)), 0);
        assert_eq!(trailing_zeros(&U256::from_u64(8)), 3);
        assert_eq!(trailing_zeros(&U256::ONE.shl(200)), 200);
    }
}
