//! Montgomery-form modular arithmetic over odd 256-bit moduli.
//!
//! Every hot path in CryptoNN bottoms out in modular multiplication: a
//! single FEIP `Encrypt` performs `η + 1` full 256-bit exponentiations,
//! and Algorithm 1 runs thousands of them per SGD step. The schoolbook
//! [`mod_mul`](crate::modular::mod_mul) pays a full 512-bit Knuth
//! division per product; Montgomery multiplication replaces that
//! division with shifts and multiplies against a precomputed constant.
//!
//! A [`Montgomery`] context fixes one odd modulus `m` and represents
//! residues as `ã = a·R mod m` with `R = 2^256`. The core operation is
//! the CIOS (coarsely integrated operand scanning) product
//! `mont_mul(x, y) = x·y·R⁻¹ mod m`, which maps Montgomery forms to
//! Montgomery forms. Conversions are themselves single `mont_mul`s
//! against the precomputed `R² mod m`.
//!
//! The context is meant to be built once per modulus and reused — the
//! group layer caches one per `(p, q)` pair, and every fixed-base table
//! stores its entries already in Montgomery form (DESIGN.md §8).

use crate::limbs::{adc, mac, Limb};
use crate::uint::U256;

/// The number of 64-bit limbs in the working width.
const N: usize = U256::LIMBS;

/// The reduction strategy a [`Montgomery`] context dispatches through.
///
/// Selected once at construction from the shape of the modulus; the
/// fast arm is picked automatically whenever it applies, so callers
/// never choose (they can [inspect](Montgomery::reducer) the choice for
/// telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reducer {
    /// The generic CIOS round: `mu = t₀·m′ mod 2^64`, then a full
    /// `mu·m` multiply-accumulate pass.
    Generic,
    /// Montgomery-friendly modulus `m ≡ -1 (mod 2^64)`: then
    /// `m′ = -m⁻¹ = 1`, so `mu = t₀` (one multiply gone), and the first
    /// limb of the `mu·m` pass collapses —
    /// `t₀ + mu·m₀ = mu + mu·(2^64 - 1) = mu·2^64`, i.e. the low limb
    /// cancels exactly and the carry out is just `mu` (a second
    /// multiply gone). Two of the nine 64×64 multiplies in every CIOS
    /// round disappear.
    FastP64,
}

/// A reusable Montgomery reduction context for one odd modulus.
///
/// ```
/// use cryptonn_bigint::montgomery::Montgomery;
/// use cryptonn_bigint::{modular, U256};
///
/// let m = U256::from_u64(1_000_003); // odd modulus
/// let ctx = Montgomery::new(&m).unwrap();
/// let a = U256::from_u64(123_456);
/// let b = U256::from_u64(654_321);
/// assert_eq!(ctx.mod_mul(&a, &b), modular::mod_mul(&a, &b, &m));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Montgomery {
    /// The odd modulus `m`.
    pub(crate) m: U256,
    /// `-m⁻¹ mod 2^64`, the per-limb reduction constant.
    pub(crate) m_prime: Limb,
    /// `R mod m` — the Montgomery form of 1.
    pub(crate) r1: U256,
    /// `R² mod m` — the to-Montgomery conversion factor.
    pub(crate) r2: U256,
    /// The reduction strategy, a pure function of `m`.
    pub(crate) reducer: Reducer,
}

impl Montgomery {
    /// Builds a context for `m`. Returns `None` when `m` is even or
    /// `< 2` (Montgomery reduction requires `gcd(m, 2^256) = 1`, and a
    /// modulus of 1 has no residues); callers fall back to the
    /// schoolbook path for such moduli.
    pub fn new(m: &U256) -> Option<Self> {
        if m.is_even() || *m <= U256::ONE {
            return None;
        }
        // m' = -m⁻¹ mod 2^64 by Newton–Hensel lifting. The seed
        // inv = m0 is already a correct inverse mod 8 (odd² ≡ 1 mod 8
        // gives m0·m0 ≡ 1), i.e. 3 valid bits; each iteration doubles
        // them: 3 → 6 → 12 → 24 → 48 → 96 ≥ 64.
        let m0 = m.as_limbs()[0];
        let mut inv: Limb = m0;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        debug_assert_eq!(m0.wrapping_mul(inv), 1);
        let m_prime = inv.wrapping_neg();

        // R mod m = (2^256 - 1 mod m) + 1, reduced once more.
        let r1 = {
            let r = U256::MAX.rem(m).wrapping_add(&U256::ONE);
            if r == *m {
                U256::ZERO
            } else {
                r
            }
        };
        // R² mod m by 256 modular doublings of R mod m.
        let mut r2 = r1;
        for _ in 0..U256::BITS {
            r2 = crate::modular::mod_add(&r2, &r2, m);
        }
        // m ≡ -1 (mod 2^64) ⟺ the low limb is all-ones ⟺ m′ = 1; the
        // CIOS round then sheds two multiplies (see [`Reducer::FastP64`]).
        let reducer = if m0 == Limb::MAX {
            debug_assert_eq!(m_prime, 1);
            Reducer::FastP64
        } else {
            Reducer::Generic
        };
        Some(Self {
            m: *m,
            m_prime,
            r1,
            r2,
            reducer,
        })
    }

    /// The reduction strategy this context selected for its modulus.
    pub fn reducer(&self) -> Reducer {
        self.reducer
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &U256 {
        &self.m
    }

    /// The Montgomery form of 1 (`R mod m`).
    pub fn one(&self) -> U256 {
        self.r1
    }

    /// Converts `a` (reduced, `< m`) into Montgomery form `a·R mod m`.
    pub fn to_mont(&self, a: &U256) -> U256 {
        self.mont_mul(a, &self.r2)
    }

    /// Converts a Montgomery form back to the plain residue.
    pub fn from_mont(&self, a: &U256) -> U256 {
        self.mont_mul(a, &U256::ONE)
    }

    /// The CIOS Montgomery product `x·y·R⁻¹ mod m`.
    ///
    /// Both inputs must be `< m` (debug-asserted); the result is `< m`.
    /// On Montgomery forms this computes the Montgomery form of the
    /// product; on a Montgomery form and a plain residue it computes the
    /// plain product.
    pub fn mont_mul(&self, x: &U256, y: &U256) -> U256 {
        debug_assert!(x < &self.m && y < &self.m, "operands must be reduced");
        let m = self.m.as_limbs();
        let x = x.as_limbs();
        let y = y.as_limbs();
        // t has N + 2 limbs; t[N+1] never exceeds 1.
        let mut t = [0 as Limb; N + 2];

        for &yi in y.iter().take(N) {
            // t += x * yi
            let mut carry = 0;
            for j in 0..N {
                let (lo, hi) = mac(t[j], x[j], yi, carry);
                t[j] = lo;
                carry = hi;
            }
            let (sum, over) = adc(t[N], carry, 0);
            t[N] = sum;
            t[N + 1] = over;

            // t += mu * m, then shift one limb: mu kills t[0] exactly.
            let (mu, mut carry) = match self.reducer {
                Reducer::Generic => {
                    let mu = t[0].wrapping_mul(self.m_prime);
                    let (_, carry) = mac(t[0], mu, m[0], 0);
                    (mu, carry)
                }
                // m′ = 1 ⟹ mu = t[0], and t[0] + mu·(2^64 − 1) = mu·2^64:
                // the low limb cancels and the carry out is mu itself.
                Reducer::FastP64 => (t[0], t[0]),
            };
            for j in 1..N {
                let (lo, hi) = mac(t[j], mu, m[j], carry);
                t[j - 1] = lo;
                carry = hi;
            }
            let (sum, over) = adc(t[N], carry, 0);
            t[N - 1] = sum;
            t[N] = t[N + 1] + over;
            t[N + 1] = 0;
        }

        let mut r = U256::from_limbs([t[0], t[1], t[2], t[3]]);
        // The loop invariant guarantees t < 2m, so at most one
        // correction is needed; t[N] = 1 means t ≥ 2^256 > m.
        if t[N] != 0 || r >= self.m {
            r = r.wrapping_sub(&self.m);
        }
        r
    }

    /// The Montgomery square `x²·R⁻¹ mod m`.
    pub fn mont_sqr(&self, x: &U256) -> U256 {
        self.mont_mul(x, x)
    }

    /// Four independent Montgomery products in one call:
    /// `out[i] = x[i]·y[i]·R⁻¹ mod m`, computed by the lane-batched
    /// kernel selected at process start (see [`crate::lanes`]) — AVX2
    /// vertical SIMD where the CPU has it, an interleaved-ILP scalar
    /// sweep otherwise.
    ///
    /// Unlike [`mont_mul`](Self::mont_mul), operands may be unreduced
    /// (wire-range): each is reduced on entry, so the call is
    /// equivalent to four `mont_mul`s on the reduced operands. The
    /// check is one limb comparison in the already-reduced hot case.
    pub fn mont_mul_lanes(&self, x: &[U256; 4], y: &[U256; 4]) -> [U256; 4] {
        let reduce = |v: &U256| if v < &self.m { *v } else { v.rem(&self.m) };
        let xr = [reduce(&x[0]), reduce(&x[1]), reduce(&x[2]), reduce(&x[3])];
        let yr = [reduce(&y[0]), reduce(&y[1]), reduce(&y[2]), reduce(&y[3])];
        crate::lanes::mont_mul_x4(self, &xr, &yr)
    }

    /// Four Montgomery squares in one lane-batched call.
    pub fn mont_sqr_lanes(&self, x: &[U256; 4]) -> [U256; 4] {
        self.mont_mul_lanes(x, x)
    }

    /// Converts four reduced values into Montgomery form in one
    /// lane-batched call.
    pub fn to_mont_lanes(&self, a: &[U256; 4]) -> [U256; 4] {
        self.mont_mul_lanes(a, &[self.r2; 4])
    }

    /// Converts four Montgomery forms back to plain residues in one
    /// lane-batched call.
    pub fn from_mont_lanes(&self, a: &[U256; 4]) -> [U256; 4] {
        self.mont_mul_lanes(a, &[U256::ONE; 4])
    }

    /// Batch modular inversion by Montgomery's trick: inverts every
    /// element of `values` at the cost of **one** extended-GCD
    /// inversion plus `3(n−1)` Montgomery products (and the domain
    /// conversions at the edges).
    ///
    /// The trick: form the prefix products `P_i = v_0·…·v_i`, invert
    /// only `P_{n−1}`, then peel inverses off the back —
    /// `v_i⁻¹ = P_{n−1}⁻¹·…·v_{i+1}⁻¹·P_{i−1}` — reusing the running
    /// suffix inverse. The CryptoNN server uses this to amortize the
    /// per-cell division of `∏ ctᵢ^{yᵢ} / ct₀^{sk}` across a whole
    /// matrix of decryptions (DESIGN.md §10).
    ///
    /// Operands may be unreduced (wire data); they are reduced on entry
    /// like [`mod_mul`](Self::mod_mul). Returns `None` if **any** value
    /// is not invertible (zero or sharing a factor with `m`) — partial
    /// results would silently corrupt every later inverse, so the whole
    /// batch is refused.
    pub fn batch_inv(&self, values: &[U256]) -> Option<Vec<U256>> {
        if values.is_empty() {
            return Some(Vec::new());
        }
        // All products run in the Montgomery domain: prefix[i] carries a
        // single factor of R, so one mont_mul per step keeps the form.
        let mont: Vec<U256> = values
            .iter()
            .map(|v| {
                let v = if v < &self.m { *v } else { v.rem(&self.m) };
                self.to_mont(&v)
            })
            .collect();
        let mut prefix = Vec::with_capacity(mont.len());
        let mut acc = mont[0];
        prefix.push(acc);
        for v in &mont[1..] {
            acc = self.mont_mul(&acc, v);
            prefix.push(acc);
        }
        // One real inversion, of the full product.
        let total = self.from_mont(&acc);
        let inv_total = crate::modular::mod_inv(&total, &self.m)?;
        // suffix = (v_i·…·v_{n−1})⁻¹ in Montgomery form, peeled backwards.
        let mut suffix = self.to_mont(&inv_total);
        let mut out = vec![U256::ZERO; mont.len()];
        for i in (1..mont.len()).rev() {
            out[i] = self.from_mont(&self.mont_mul(&suffix, &prefix[i - 1]));
            suffix = self.mont_mul(&suffix, &mont[i]);
        }
        out[0] = self.from_mont(&suffix);
        Some(out)
    }

    /// `(a · b) mod m` on plain residues: one conversion plus one
    /// Montgomery product — two multiplies in place of the schoolbook
    /// 512-bit Knuth division.
    ///
    /// Unlike [`mont_mul`](Self::mont_mul), this entry point accepts
    /// unreduced operands: values arriving from deserialized wire data
    /// may exceed `m`, and the schoolbook `mod_mul` this replaces
    /// reduced them correctly. The check is one limb comparison in the
    /// (universal in practice) already-reduced case.
    pub fn mod_mul(&self, a: &U256, b: &U256) -> U256 {
        let a = if a < &self.m { *a } else { a.rem(&self.m) };
        let b = if b < &self.m { *b } else { b.rem(&self.m) };
        // (a·R)·b·R⁻¹ = a·b (mod m).
        self.mont_mul(&self.to_mont(&a), &b)
    }

    /// `(base^exp) mod m` by 4-bit fixed-window exponentiation carried
    /// out entirely in the Montgomery domain.
    ///
    /// `base` need not be reduced. `exp` is used in full; callers
    /// wanting group semantics reduce it modulo the group order first.
    pub fn pow(&self, base: &U256, exp: &U256) -> U256 {
        let base = if base < &self.m {
            *base
        } else {
            base.rem(&self.m)
        };
        if exp.is_zero() {
            return U256::ONE;
        }
        if base.is_zero() {
            return U256::ZERO;
        }

        // table[d] = base^d in Montgomery form, d ∈ [0, 16).
        let mut table = [self.r1; 16];
        table[1] = self.to_mont(&base);
        for d in 2..16 {
            table[d] = self.mont_mul(&table[d - 1], &table[1]);
        }

        let bits = exp.bit_len();
        let windows = bits.div_ceil(4);
        let mut acc = self.r1;
        for w in (0..windows).rev() {
            if w != windows - 1 {
                acc = self.mont_sqr(&acc);
                acc = self.mont_sqr(&acc);
                acc = self.mont_sqr(&acc);
                acc = self.mont_sqr(&acc);
            }
            let mut nibble = 0usize;
            for b in 0..4 {
                let idx = w * 4 + b;
                if idx < bits && exp.bit(idx) {
                    nibble |= 1 << b;
                }
            }
            if nibble != 0 {
                acc = self.mont_mul(&acc, &table[nibble]);
            }
        }
        self.from_mont(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// 2^255 - 19: a convenient odd 255-bit prime.
    const P25519: &str = "7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed";

    fn random_odd_modulus(rng: &mut StdRng) -> U256 {
        loop {
            let mut m = U256::random(rng);
            if m.is_even() {
                m = m.wrapping_add(&U256::ONE);
            }
            if m > U256::ONE {
                return m;
            }
        }
    }

    #[test]
    fn rejects_even_and_degenerate_moduli() {
        assert!(Montgomery::new(&U256::ZERO).is_none());
        assert!(Montgomery::new(&U256::ONE).is_none());
        assert!(Montgomery::new(&U256::from_u64(4096)).is_none());
        assert!(Montgomery::new(&U256::from_u64(3)).is_some());
    }

    #[test]
    fn constants_are_consistent() {
        let m = U256::from_hex(P25519).unwrap();
        let ctx = Montgomery::new(&m).unwrap();
        // from_mont(one()) == 1.
        assert_eq!(ctx.from_mont(&ctx.one()), U256::ONE);
        // to_mont(1) == R mod m.
        assert_eq!(ctx.to_mont(&U256::ONE), ctx.one());
    }

    #[test]
    fn roundtrip_through_domain() {
        let mut rng = StdRng::seed_from_u64(100);
        for _ in 0..64 {
            let m = random_odd_modulus(&mut rng);
            let ctx = Montgomery::new(&m).unwrap();
            let a = U256::random(&mut rng).rem(&m);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&a)), a, "modulus {m}");
        }
    }

    #[test]
    fn mod_mul_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(101);
        for _ in 0..128 {
            let m = random_odd_modulus(&mut rng);
            let ctx = Montgomery::new(&m).unwrap();
            let a = U256::random(&mut rng).rem(&m);
            let b = U256::random(&mut rng).rem(&m);
            assert_eq!(
                ctx.mod_mul(&a, &b),
                modular::mod_mul(&a, &b, &m),
                "a={a} b={b} m={m}"
            );
        }
    }

    #[test]
    fn small_modulus_cross_check() {
        let mut rng = StdRng::seed_from_u64(102);
        let m64 = 2_305_843_009_213_693_951u64; // 2^61 - 1
        let m = U256::from_u64(m64);
        let ctx = Montgomery::new(&m).unwrap();
        for _ in 0..256 {
            let a = rng.random_range(0..m64);
            let b = rng.random_range(0..m64);
            let expect = ((a as u128 * b as u128) % m64 as u128) as u64;
            assert_eq!(
                ctx.mod_mul(&U256::from_u64(a), &U256::from_u64(b)),
                U256::from_u64(expect)
            );
        }
    }

    #[test]
    fn pow_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(103);
        for _ in 0..16 {
            let m = random_odd_modulus(&mut rng);
            let ctx = Montgomery::new(&m).unwrap();
            let base = U256::random(&mut rng);
            let exp = U256::random(&mut rng);
            assert_eq!(
                ctx.pow(&base, &exp),
                modular::mod_pow_schoolbook(&base, &exp, &m),
                "base={base} exp={exp} m={m}"
            );
        }
    }

    #[test]
    fn pow_edge_cases() {
        let m = U256::from_u64(97);
        let ctx = Montgomery::new(&m).unwrap();
        assert_eq!(ctx.pow(&U256::from_u64(5), &U256::ZERO), U256::ONE);
        assert_eq!(ctx.pow(&U256::ZERO, &U256::from_u64(5)), U256::ZERO);
        assert_eq!(ctx.pow(&U256::from_u64(5), &U256::ONE), U256::from_u64(5));
        // Unreduced base.
        assert_eq!(
            ctx.pow(&U256::from_u64(102), &U256::from_u64(2)),
            U256::from_u64(25)
        );
    }

    #[test]
    fn fermat_little_theorem() {
        let p = U256::from_hex(P25519).unwrap();
        let ctx = Montgomery::new(&p).unwrap();
        let pm1 = p.wrapping_sub(&U256::ONE);
        let mut rng = StdRng::seed_from_u64(104);
        for _ in 0..8 {
            let a = U256::random_below(&mut rng, &p);
            if a.is_zero() {
                continue;
            }
            assert_eq!(ctx.pow(&a, &pm1), U256::ONE);
        }
    }

    #[test]
    fn mod_mul_reduces_unreduced_operands() {
        // Wire data (deserialized elements) can exceed m; mod_mul must
        // match the schoolbook result for such inputs even in release
        // builds, as the division-based path it replaced did.
        let m = U256::from_hex(P25519).unwrap();
        let ctx = Montgomery::new(&m).unwrap();
        let a = U256::MAX; // >= m
        let b = U256::MAX.wrapping_sub(&U256::from_u64(7)); // >= m
        assert_eq!(
            ctx.mod_mul(&a, &b),
            modular::mod_mul(&a.rem(&m), &b.rem(&m), &m)
        );
        assert_eq!(ctx.mod_mul(&a, &U256::ONE), a.rem(&m));
    }

    #[test]
    fn batch_inv_matches_individual_inverses() {
        let mut rng = StdRng::seed_from_u64(105);
        let m = U256::from_hex(P25519).unwrap();
        let ctx = Montgomery::new(&m).unwrap();
        for n in [1usize, 2, 3, 17, 64] {
            let values: Vec<U256> = (0..n)
                .map(|_| loop {
                    let v = U256::random_below(&mut rng, &m);
                    if !v.is_zero() {
                        break v;
                    }
                })
                .collect();
            let batch = ctx.batch_inv(&values).expect("all invertible");
            for (v, inv) in values.iter().zip(&batch) {
                assert_eq!(*inv, modular::mod_inv(v, &m).unwrap(), "n={n} v={v}");
            }
        }
        assert_eq!(ctx.batch_inv(&[]), Some(Vec::new()));
    }

    #[test]
    fn batch_inv_refuses_zero_and_noncoprime() {
        let m = U256::from_hex(P25519).unwrap();
        let ctx = Montgomery::new(&m).unwrap();
        let ok = U256::from_u64(7);
        assert_eq!(ctx.batch_inv(&[ok, U256::ZERO, ok]), None);
        // Composite modulus: 3 shares a factor with 15.
        let ctx15 = Montgomery::new(&U256::from_u64(15)).unwrap();
        assert_eq!(
            ctx15.batch_inv(&[U256::from_u64(2), U256::from_u64(3)]),
            None
        );
        // Unreduced operands are accepted, as in mod_mul.
        let big = U256::MAX; // >= m
        let got = ctx.batch_inv(&[big]).unwrap();
        assert_eq!(got[0], modular::mod_inv(&big.rem(&m), &m).unwrap());
    }

    #[test]
    fn fast_reducer_selected_and_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(106);
        // Generic moduli keep the generic reducer.
        let ctx = Montgomery::new(&U256::from_hex(P25519).unwrap()).unwrap();
        assert_eq!(ctx.reducer(), Reducer::Generic);
        // Every m = k·2^64 − 1 is odd with an all-ones low limb, so the
        // fast arm must be picked — and must agree with the schoolbook
        // result everywhere.
        for _ in 0..48 {
            let k = U256::random(&mut rng);
            let m = k.shl(64).wrapping_sub(&U256::ONE);
            if m <= U256::ONE {
                continue;
            }
            let ctx = Montgomery::new(&m).unwrap();
            assert_eq!(ctx.reducer(), Reducer::FastP64, "m={m}");
            let a = U256::random_below(&mut rng, &m);
            let b = U256::random_below(&mut rng, &m);
            assert_eq!(
                ctx.mod_mul(&a, &b),
                modular::mod_mul(&a, &b, &m),
                "a={a} b={b} m={m}"
            );
            assert_eq!(ctx.from_mont(&ctx.to_mont(&a)), a, "roundtrip m={m}");
        }
    }

    #[test]
    fn near_maximum_modulus() {
        // Top-bit-set modulus exercises the t[N] overflow limb.
        let m = U256::MAX; // 2^256 - 1 = odd
        let ctx = Montgomery::new(&m).unwrap();
        let a = U256::MAX.wrapping_sub(&U256::from_u64(2));
        let b = U256::MAX.wrapping_sub(&U256::from_u64(5));
        assert_eq!(ctx.mod_mul(&a, &b), modular::mod_mul(&a, &b, &m));
    }
}
