//! Lane-batched Montgomery multiplication: four independent products
//! per call.
//!
//! The decrypt fast path (DESIGN.md §13) advances many independent
//! cells through the *same* digit schedule, so at every step it has
//! four (or more) Montgomery products with no data dependencies between
//! them. A single CIOS product is a serial dependency chain of ~9
//! multiply-accumulates per round — far too little instruction-level
//! parallelism to saturate a modern core. Batching four products into
//! one call exposes that parallelism in one of two ways:
//!
//! - **AVX2 vertical SIMD** ([`Kernel::Avx2`]): operands are split into
//!   eight 32-bit limbs and transposed so one 256-bit vector holds limb
//!   `j` of all four lanes (zero-extended to 64 bits). One
//!   `vpmuludq` then performs the `j`-th partial product of all four
//!   lanes at once. The 32-bit limb split keeps every accumulation step
//!   inside a u64: `t + x·y + carry ≤ (2^32−1)² + 2(2^32−1) = 2^64 − 1`
//!   exactly, so no lane can ever carry into its neighbor.
//! - **Interleaved scalar** ([`Kernel::Scalar`]): the four CIOS rounds
//!   are interleaved lane-by-lane in one loop, giving the out-of-order
//!   engine four independent multiply chains to schedule against each
//!   other. This is also the portable fallback for non-x86 targets.
//!
//! The kernel is picked **once per process** (first use, typically at
//! group-context build time) and pinned via [`std::sync::OnceLock`].
//! CPU feature detection only establishes *eligibility*: on hosts that
//! report AVX2 a short timed shootout between the two kernels decides
//! which one is actually faster there — `vpmuludq` retires four 32×32
//! products per cycle, which on wide scalar-multiplier cores is merely
//! break-even with four interleaved 64×64 `mul` chains. Setting
//! `CRYPTONN_FORCE_SCALAR=1` in the environment forces the scalar
//! kernel regardless of CPU features — the CI escape hatch that keeps
//! the fallback path tested.

use std::sync::OnceLock;

use crate::limbs::{adc, mac, Limb};
use crate::montgomery::{Montgomery, Reducer};
use crate::uint::U256;

/// Lanes per batched call.
pub const LANES: usize = 4;

/// Number of 64-bit limbs in the working width.
const N: usize = U256::LIMBS;

/// The lane-batched kernel implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// 4-wide vertical SIMD over 32-bit limbs (`x86_64` with AVX2).
    Avx2,
    /// Four interleaved scalar CIOS chains (ILP fallback, all targets).
    Scalar,
}

static KERNEL: OnceLock<Kernel> = OnceLock::new();

/// The kernel this process uses for every lane-batched product.
///
/// Resolution order: `CRYPTONN_FORCE_SCALAR=1` forces the scalar
/// fallback; otherwise, when the CPU reports AVX2, a one-time timed
/// shootout picks whichever kernel is faster on this host; otherwise
/// scalar. The choice is made on first call and never changes.
pub fn kernel() -> Kernel {
    *KERNEL.get_or_init(|| {
        if std::env::var_os("CRYPTONN_FORCE_SCALAR").is_some_and(|v| v == "1") {
            return Kernel::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return calibrate();
        }
        Kernel::Scalar
    })
}

/// Times both kernels on a fixed fast-reduction modulus and returns the
/// faster one. Runs once, costs well under a millisecond, and keeps the
/// pinned choice honest on cores where vertical SIMD is no faster than
/// four interleaved scalar multiply chains.
#[cfg(target_arch = "x86_64")]
fn calibrate() -> Kernel {
    // Any odd 256-bit modulus works; m ≡ -1 (mod 2^64) also covers the
    // fast-reduction round in the scalar kernel.
    let m = U256::from_limbs([u64::MAX, 0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0xd6e022bd]);
    let ctx = Montgomery::new(&m).expect("calibration modulus is odd > 1");
    let seed = U256::from_limbs([1, 2, 3, 4]);
    let mut x = [seed; LANES];
    let y = [m.wrapping_sub(&seed); LANES];

    let mut best = (Kernel::Scalar, u128::MAX);
    for k in [Kernel::Avx2, Kernel::Scalar] {
        let run = |x: &mut [U256; LANES]| match k {
            // SAFETY: calibrate() is only reached after
            // `is_x86_feature_detected!("avx2")` reported support.
            Kernel::Avx2 => *x = unsafe { avx2::mont_mul_x4(&ctx, x, &y) },
            Kernel::Scalar => *x = scalar_mont_mul_x4(&ctx, x, &y),
        };
        for _ in 0..256 {
            run(&mut x); // warm up
        }
        let t0 = std::time::Instant::now();
        for _ in 0..2048 {
            run(&mut x);
        }
        let dt = t0.elapsed().as_nanos();
        if dt < best.1 {
            best = (k, dt);
        }
    }
    // Keep the dependency chain (and thus the measurement) from being
    // optimized out.
    std::hint::black_box(x);
    best.0
}

/// The active kernel's name, for bench telemetry and logs.
pub fn kernel_name() -> &'static str {
    match kernel() {
        Kernel::Avx2 => "avx2",
        Kernel::Scalar => "scalar",
    }
}

/// Dispatches four already-reduced Montgomery products to the selected
/// kernel. Callers go through
/// [`Montgomery::mont_mul_lanes`], which reduces wire-range operands
/// first.
pub(crate) fn mont_mul_x4(ctx: &Montgomery, x: &[U256; LANES], y: &[U256; LANES]) -> [U256; LANES] {
    #[cfg(target_arch = "x86_64")]
    if kernel() == Kernel::Avx2 {
        // SAFETY: the Avx2 kernel is only selected after
        // `is_x86_feature_detected!("avx2")` reported support.
        return unsafe { avx2::mont_mul_x4(ctx, x, y) };
    }
    scalar_mont_mul_x4(ctx, x, y)
}

/// Four interleaved scalar CIOS chains. Each outer round advances every
/// lane by one `y` limb before moving on, so the four (entirely
/// independent) multiply-accumulate chains sit side by side in the
/// instruction stream for the out-of-order engine to overlap.
fn scalar_mont_mul_x4(ctx: &Montgomery, x: &[U256; LANES], y: &[U256; LANES]) -> [U256; LANES] {
    let m = ctx.m.as_limbs();
    let mut t = [[0 as Limb; N + 2]; LANES];

    for i in 0..N {
        for lane in 0..LANES {
            let xl = x[lane].as_limbs();
            let yi = y[lane].as_limbs()[i];
            let tl = &mut t[lane];

            // tl += x * yi
            let mut carry = 0;
            for j in 0..N {
                let (lo, hi) = mac(tl[j], xl[j], yi, carry);
                tl[j] = lo;
                carry = hi;
            }
            let (sum, over) = adc(tl[N], carry, 0);
            tl[N] = sum;
            tl[N + 1] = over;

            // tl += mu * m, then shift one limb (see Montgomery::mont_mul).
            let (mu, mut carry) = match ctx.reducer {
                Reducer::Generic => {
                    let mu = tl[0].wrapping_mul(ctx.m_prime);
                    let (_, carry) = mac(tl[0], mu, m[0], 0);
                    (mu, carry)
                }
                Reducer::FastP64 => (tl[0], tl[0]),
            };
            for j in 1..N {
                let (lo, hi) = mac(tl[j], mu, m[j], carry);
                tl[j - 1] = lo;
                carry = hi;
            }
            let (sum, over) = adc(tl[N], carry, 0);
            tl[N - 1] = sum;
            tl[N] = tl[N + 1] + over;
            tl[N + 1] = 0;
        }
    }

    let mut out = [U256::ZERO; LANES];
    for lane in 0..LANES {
        let tl = &t[lane];
        let mut r = U256::from_limbs([tl[0], tl[1], tl[2], tl[3]]);
        if tl[N] != 0 || r >= ctx.m {
            r = r.wrapping_sub(&ctx.m);
        }
        out[lane] = r;
    }
    out
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! The AVX2 vertical kernel: CIOS over eight 32-bit limbs, four
    //! lanes per vector.
    //!
    //! Layout: `t[j]`, `xv[j]`, `yv[j]` are `__m256i` whose four 64-bit
    //! elements hold limb `j` (32 significant bits) of lanes 0..4.
    //! `vpmuludq` multiplies the low 32 bits of each 64-bit element, so
    //! one instruction computes the `j`-th partial product of all four
    //! lanes. Every accumulation `t + x·y + carry` is bounded by
    //! `(2^32−1)² + 2(2^32−1) = 2^64 − 1` and therefore never wraps a
    //! 64-bit element — lanes cannot contaminate each other.
    //!
    //! The generic CIOS recurrence is used for every modulus: the
    //! 32-bit reduction constant `m′₃₂ = m′ mod 2^32` is correct for
    //! the fast prime too (where it is simply 1), so no per-round
    //! branch is needed in the vector loop.

    use core::arch::x86_64::*;

    use super::{Montgomery, LANES, U256};

    /// 32-bit limbs per 256-bit operand.
    const N32: usize = 8;

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn to_lanes32(v: &[U256; LANES], j: usize) -> __m256i {
        let limb = |lane: usize| {
            let l = v[lane].as_limbs()[j / 2];
            ((l >> (32 * (j % 2))) & 0xFFFF_FFFF) as i64
        };
        _mm256_setr_epi64x(limb(0), limb(1), limb(2), limb(3))
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mont_mul_x4(
        ctx: &Montgomery,
        x: &[U256; LANES],
        y: &[U256; LANES],
    ) -> [U256; LANES] {
        let mask32 = _mm256_set1_epi64x(0xFFFF_FFFF);
        let zero = _mm256_setzero_si256();

        // Broadcast the modulus limbs and m′ mod 2^32 to all lanes.
        let mut mv = [zero; N32];
        for (j, slot) in mv.iter_mut().enumerate() {
            let l = ctx.m.as_limbs()[j / 2];
            *slot = _mm256_set1_epi64x(((l >> (32 * (j % 2))) & 0xFFFF_FFFF) as i64);
        }
        let mp32 = _mm256_set1_epi64x((ctx.m_prime & 0xFFFF_FFFF) as i64);

        // Transpose operands: one vector per 32-bit limb position.
        let mut xv = [zero; N32];
        let mut yv = [zero; N32];
        for j in 0..N32 {
            xv[j] = to_lanes32(x, j);
            yv[j] = to_lanes32(y, j);
        }

        let mut t = [zero; N32 + 2];
        for yi in yv {
            // t += x * y_i
            let mut carry = zero;
            for j in 0..N32 {
                let p =
                    _mm256_add_epi64(_mm256_add_epi64(t[j], _mm256_mul_epu32(xv[j], yi)), carry);
                t[j] = _mm256_and_si256(p, mask32);
                carry = _mm256_srli_epi64(p, 32);
            }
            let s = _mm256_add_epi64(t[N32], carry);
            t[N32] = _mm256_and_si256(s, mask32);
            t[N32 + 1] = _mm256_add_epi64(t[N32 + 1], _mm256_srli_epi64(s, 32));

            // t += mu * m, then shift one 32-bit limb.
            let mu = _mm256_and_si256(_mm256_mul_epu32(t[0], mp32), mask32);
            let p0 = _mm256_add_epi64(t[0], _mm256_mul_epu32(mu, mv[0]));
            let mut carry = _mm256_srli_epi64(p0, 32);
            for j in 1..N32 {
                let p =
                    _mm256_add_epi64(_mm256_add_epi64(t[j], _mm256_mul_epu32(mu, mv[j])), carry);
                t[j - 1] = _mm256_and_si256(p, mask32);
                carry = _mm256_srli_epi64(p, 32);
            }
            let s = _mm256_add_epi64(t[N32], carry);
            t[N32 - 1] = _mm256_and_si256(s, mask32);
            t[N32] = _mm256_add_epi64(t[N32 + 1], _mm256_srli_epi64(s, 32));
            t[N32 + 1] = zero;
        }

        // Untranspose and apply the final per-lane conditional subtract.
        let mut lanes = [[0u64; N32 + 1]; LANES];
        for (j, tj) in t.iter().enumerate().take(N32 + 1) {
            let mut buf = [0u64; LANES];
            _mm256_storeu_si256(buf.as_mut_ptr().cast::<__m256i>(), *tj);
            for lane in 0..LANES {
                lanes[lane][j] = buf[lane];
            }
        }
        let mut out = [U256::ZERO; LANES];
        for lane in 0..LANES {
            let l = &lanes[lane];
            let mut r = U256::from_limbs([
                l[0] | (l[1] << 32),
                l[2] | (l[3] << 32),
                l[4] | (l[5] << 32),
                l[6] | (l[7] << 32),
            ]);
            if l[N32] != 0 || r >= ctx.m {
                r = r.wrapping_sub(&ctx.m);
            }
            out[lane] = r;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_modulus(rng: &mut StdRng, fast: bool) -> U256 {
        loop {
            let mut m = U256::random(rng);
            if fast {
                // Force m ≡ -1 (mod 2^64).
                let limbs = m.to_limbs();
                m = U256::from_limbs([u64::MAX, limbs[1], limbs[2], limbs[3]]);
            } else if m.is_even() {
                m = m.wrapping_add(&U256::ONE);
            }
            if m > U256::ONE && m.as_limbs()[0] != 0 {
                return m;
            }
        }
    }

    /// Both kernels must agree with four independent `mont_mul`s, for
    /// generic and fast-reduction moduli alike. The dispatched kernel
    /// is whatever the host picked; the scalar kernel is always checked
    /// directly, so on AVX2 hosts this covers both implementations.
    #[test]
    fn lanes_match_scalar_mont_mul() {
        let mut rng = StdRng::seed_from_u64(900);
        for fast in [false, true] {
            for _ in 0..64 {
                let m = random_modulus(&mut rng, fast);
                let ctx = Montgomery::new(&m).unwrap();
                let mut x = [U256::ZERO; LANES];
                let mut y = [U256::ZERO; LANES];
                for lane in 0..LANES {
                    x[lane] = U256::random_below(&mut rng, &m);
                    y[lane] = U256::random_below(&mut rng, &m);
                }
                let expect: Vec<U256> = (0..LANES).map(|l| ctx.mont_mul(&x[l], &y[l])).collect();
                let dispatched = ctx.mont_mul_lanes(&x, &y);
                let scalar = scalar_mont_mul_x4(&ctx, &x, &y);
                for lane in 0..LANES {
                    assert_eq!(dispatched[lane], expect[lane], "lane {lane} m={m}");
                    assert_eq!(scalar[lane], expect[lane], "scalar lane {lane} m={m}");
                }
            }
        }
    }

    #[test]
    fn lanes_reduce_unreduced_operands() {
        let m = U256::from_u64(1_000_003);
        let ctx = Montgomery::new(&m).unwrap();
        let big = U256::MAX;
        let one = U256::ONE;
        let got = ctx.mont_mul_lanes(&[big; LANES], &[one; LANES]);
        let expect = ctx.mont_mul(&big.rem(&m), &one);
        assert_eq!(got, [expect; LANES]);
    }

    #[test]
    fn near_maximum_modulus_lanes() {
        // Top-bit-set fast-reduction modulus exercises the overflow limb
        // in both kernels.
        let m = U256::MAX;
        let ctx = Montgomery::new(&m).unwrap();
        let a = U256::MAX.wrapping_sub(&U256::from_u64(2));
        let b = U256::MAX.wrapping_sub(&U256::from_u64(5));
        let got = ctx.mont_mul_lanes(&[a; LANES], &[b; LANES]);
        assert_eq!(got, [ctx.mont_mul(&a, &b); LANES]);
    }

    #[test]
    fn kernel_is_pinned_and_named() {
        let k = kernel();
        assert_eq!(kernel(), k, "kernel choice must be stable");
        assert!(matches!(kernel_name(), "avx2" | "scalar"));
    }
}
