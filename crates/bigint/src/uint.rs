//! Fixed-width unsigned big integers: [`U256`] and [`U512`].
//!
//! `U256` is the working size for group elements and exponents (the paper
//! evaluates with a 256-bit security parameter); `U512` holds the result
//! of a full `U256 × U256` product before modular reduction.

use core::cmp::Ordering;
use core::fmt;

use rand::{Rng, RngExt};

use crate::limbs::{self, Limb};

/// Error returned when parsing a big integer from a hex string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUintError {
    kind: ParseUintErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseUintErrorKind {
    Empty,
    InvalidDigit(char),
    TooLong { max_hex_digits: usize },
}

impl fmt::Display for ParseUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseUintErrorKind::Empty => write!(f, "empty hex string"),
            ParseUintErrorKind::InvalidDigit(c) => write!(f, "invalid hex digit {c:?}"),
            ParseUintErrorKind::TooLong { max_hex_digits } => {
                write!(f, "hex string longer than {max_hex_digits} digits")
            }
        }
    }
}

impl std::error::Error for ParseUintError {}

macro_rules! define_uint {
    ($(#[$doc:meta])* $name:ident, $limbs:expr, $bits:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name {
            limbs: [Limb; $limbs],
        }

        impl $name {
            /// Number of 64-bit limbs.
            pub const LIMBS: usize = $limbs;
            /// Width in bits.
            pub const BITS: usize = $bits;
            /// The value 0.
            pub const ZERO: Self = Self { limbs: [0; $limbs] };
            /// The value 1.
            pub const ONE: Self = Self::from_u64(1);
            /// The largest representable value, `2^BITS - 1`.
            pub const MAX: Self = Self { limbs: [Limb::MAX; $limbs] };

            /// Creates a value from a `u64`.
            pub const fn from_u64(v: u64) -> Self {
                let mut limbs = [0; $limbs];
                limbs[0] = v;
                Self { limbs }
            }

            /// Creates a value from a `u128`.
            pub const fn from_u128(v: u128) -> Self {
                let mut limbs = [0; $limbs];
                limbs[0] = v as u64;
                limbs[1] = (v >> 64) as u64;
                Self { limbs }
            }

            /// Creates a value from little-endian limbs.
            pub const fn from_limbs(limbs: [Limb; $limbs]) -> Self {
                Self { limbs }
            }

            /// Borrows the little-endian limb representation.
            pub const fn as_limbs(&self) -> &[Limb; $limbs] {
                &self.limbs
            }

            /// Returns the little-endian limb representation by value.
            pub const fn to_limbs(self) -> [Limb; $limbs] {
                self.limbs
            }

            /// Parses a big-endian hex string (with or without a `0x` prefix).
            ///
            /// # Errors
            ///
            /// Returns [`ParseUintError`] if the string is empty, contains a
            /// non-hex character, or encodes a value wider than `BITS` bits.
            pub fn from_hex(s: &str) -> Result<Self, ParseUintError> {
                let s = s.strip_prefix("0x").unwrap_or(s);
                if s.is_empty() {
                    return Err(ParseUintError { kind: ParseUintErrorKind::Empty });
                }
                let max = $limbs * 16;
                let digits: Vec<u8> = s
                    .chars()
                    .filter(|c| *c != '_')
                    .map(|c| {
                        c.to_digit(16)
                            .map(|d| d as u8)
                            .ok_or(ParseUintError { kind: ParseUintErrorKind::InvalidDigit(c) })
                    })
                    .collect::<Result<_, _>>()?;
                if digits.len() > max && digits[..digits.len() - max].iter().any(|&d| d != 0) {
                    return Err(ParseUintError {
                        kind: ParseUintErrorKind::TooLong { max_hex_digits: max },
                    });
                }
                let mut limbs = [0 as Limb; $limbs];
                for (i, &d) in digits.iter().rev().enumerate() {
                    if i / 16 < $limbs {
                        limbs[i / 16] |= (d as Limb) << (4 * (i % 16));
                    }
                }
                Ok(Self { limbs })
            }

            /// Formats the value as a minimal-length lowercase hex string.
            pub fn to_hex(&self) -> String {
                let n = limbs::significant_limbs(&self.limbs);
                if n == 0 {
                    return "0".to_string();
                }
                let mut s = format!("{:x}", self.limbs[n - 1]);
                for i in (0..n - 1).rev() {
                    s.push_str(&format!("{:016x}", self.limbs[i]));
                }
                s
            }

            /// Returns the big-endian byte encoding.
            pub fn to_be_bytes(&self) -> [u8; $limbs * 8] {
                let mut out = [0u8; $limbs * 8];
                for (i, limb) in self.limbs.iter().enumerate() {
                    let start = ($limbs - 1 - i) * 8;
                    out[start..start + 8].copy_from_slice(&limb.to_be_bytes());
                }
                out
            }

            /// Creates a value from its big-endian byte encoding.
            pub fn from_be_bytes(bytes: [u8; $limbs * 8]) -> Self {
                let mut limbs = [0 as Limb; $limbs];
                for (i, limb) in limbs.iter_mut().enumerate() {
                    let start = ($limbs - 1 - i) * 8;
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(&bytes[start..start + 8]);
                    *limb = Limb::from_be_bytes(buf);
                }
                Self { limbs }
            }

            /// Returns the minimal little-endian byte encoding: no
            /// trailing zero bytes, empty for zero. The binary wire
            /// form — raw limb bytes, no hex round-trip.
            pub fn to_le_bytes_min(&self) -> Vec<u8> {
                let n = limbs::significant_limbs(&self.limbs);
                if n == 0 {
                    return Vec::new();
                }
                let top_len = 8 - (self.limbs[n - 1].leading_zeros() as usize) / 8;
                let mut out = Vec::with_capacity((n - 1) * 8 + top_len);
                for limb in &self.limbs[..n - 1] {
                    out.extend_from_slice(&limb.to_le_bytes());
                }
                out.extend_from_slice(&self.limbs[n - 1].to_le_bytes()[..top_len]);
                out
            }

            /// Creates a value from little-endian bytes of any length up
            /// to the type's width (trailing zero bytes are fine).
            ///
            /// # Errors
            ///
            /// Returns [`ParseUintError`] if significant bytes extend
            /// past `BITS` bits.
            pub fn from_le_slice(bytes: &[u8]) -> Result<Self, ParseUintError> {
                let max = $limbs * 8;
                if bytes.len() > max && bytes[max..].iter().any(|&b| b != 0) {
                    return Err(ParseUintError {
                        kind: ParseUintErrorKind::TooLong { max_hex_digits: $limbs * 16 },
                    });
                }
                let mut limbs = [0 as Limb; $limbs];
                for (i, &b) in bytes.iter().take(max).enumerate() {
                    limbs[i / 8] |= (b as Limb) << (8 * (i % 8));
                }
                Ok(Self { limbs })
            }

            /// Returns true if the value is zero.
            pub fn is_zero(&self) -> bool {
                self.limbs.iter().all(|&l| l == 0)
            }

            /// Returns true if the value is odd.
            pub fn is_odd(&self) -> bool {
                self.limbs[0] & 1 == 1
            }

            /// Returns true if the value is even.
            pub fn is_even(&self) -> bool {
                !self.is_odd()
            }

            /// Returns bit `i` (little-endian order).
            ///
            /// # Panics
            ///
            /// Panics if `i >= Self::BITS`.
            pub fn bit(&self, i: usize) -> bool {
                assert!(i < Self::BITS, "bit index out of range");
                (self.limbs[i / 64] >> (i % 64)) & 1 == 1
            }

            /// Number of significant bits (0 for zero).
            pub fn bit_len(&self) -> usize {
                limbs::bit_len(&self.limbs)
            }

            /// Truncates to the low 64 bits.
            pub fn low_u64(&self) -> u64 {
                self.limbs[0]
            }

            /// Truncates to the low 128 bits.
            pub fn low_u128(&self) -> u128 {
                self.limbs[0] as u128 | ((self.limbs[1] as u128) << 64)
            }

            /// Addition returning `(wrapped_sum, carried)`.
            pub fn overflowing_add(&self, rhs: &Self) -> (Self, bool) {
                let mut out = *self;
                let carry = limbs::add_assign(&mut out.limbs, &rhs.limbs);
                (out, carry != 0)
            }

            /// Subtraction returning `(wrapped_difference, borrowed)`.
            pub fn overflowing_sub(&self, rhs: &Self) -> (Self, bool) {
                let mut out = *self;
                let borrow = limbs::sub_assign(&mut out.limbs, &rhs.limbs);
                (out, borrow != 0)
            }

            /// Wrapping (mod `2^BITS`) addition.
            pub fn wrapping_add(&self, rhs: &Self) -> Self {
                self.overflowing_add(rhs).0
            }

            /// Wrapping (mod `2^BITS`) subtraction.
            pub fn wrapping_sub(&self, rhs: &Self) -> Self {
                self.overflowing_sub(rhs).0
            }

            /// Checked addition; `None` on overflow.
            pub fn checked_add(&self, rhs: &Self) -> Option<Self> {
                match self.overflowing_add(rhs) {
                    (v, false) => Some(v),
                    _ => None,
                }
            }

            /// Checked subtraction; `None` on underflow.
            pub fn checked_sub(&self, rhs: &Self) -> Option<Self> {
                match self.overflowing_sub(rhs) {
                    (v, false) => Some(v),
                    _ => None,
                }
            }

            /// Truncating (mod `2^BITS`) multiplication.
            pub fn wrapping_mul(&self, rhs: &Self) -> Self {
                let mut wide = [0 as Limb; 2 * $limbs];
                limbs::mul_into(&self.limbs, &rhs.limbs, &mut wide);
                let mut limbs = [0 as Limb; $limbs];
                limbs.copy_from_slice(&wide[..$limbs]);
                Self { limbs }
            }

            /// Checked multiplication; `None` on overflow.
            pub fn checked_mul(&self, rhs: &Self) -> Option<Self> {
                let mut wide = [0 as Limb; 2 * $limbs];
                limbs::mul_into(&self.limbs, &rhs.limbs, &mut wide);
                if wide[$limbs..].iter().any(|&l| l != 0) {
                    return None;
                }
                let mut limbs = [0 as Limb; $limbs];
                limbs.copy_from_slice(&wide[..$limbs]);
                Some(Self { limbs })
            }

            /// Euclidean division: returns `(self / divisor, self % divisor)`.
            ///
            /// # Panics
            ///
            /// Panics if `divisor` is zero.
            pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
                let mut q = [0 as Limb; $limbs];
                let mut r = [0 as Limb; $limbs];
                limbs::div_rem_into(&self.limbs, &divisor.limbs, &mut q, &mut r);
                (Self { limbs: q }, Self { limbs: r })
            }

            /// Remainder of division by `divisor`.
            ///
            /// # Panics
            ///
            /// Panics if `divisor` is zero.
            pub fn rem(&self, divisor: &Self) -> Self {
                self.div_rem(divisor).1
            }

            /// Remainder of division by a single 64-bit divisor.
            ///
            /// # Panics
            ///
            /// Panics if `divisor` is zero.
            pub fn rem_u64(&self, divisor: u64) -> u64 {
                assert!(divisor != 0, "division by zero");
                let d = divisor as u128;
                let mut rem: u128 = 0;
                for &limb in self.limbs.iter().rev() {
                    rem = ((rem << 64) | limb as u128) % d;
                }
                rem as u64
            }

            /// Logical shift right by `shift` bits (zero if `shift >= BITS`).
            pub fn shr(&self, shift: usize) -> Self {
                if shift >= Self::BITS {
                    return Self::ZERO;
                }
                let limb_shift = shift / 64;
                let bit_shift = (shift % 64) as u32;
                let mut out = [0 as Limb; $limbs];
                out[..$limbs - limb_shift].copy_from_slice(&self.limbs[limb_shift..]);
                limbs::shr_small(&mut out, bit_shift);
                Self { limbs: out }
            }

            /// Logical shift left by `shift` bits (zero if `shift >= BITS`);
            /// overflowing bits are discarded.
            pub fn shl(&self, shift: usize) -> Self {
                if shift >= Self::BITS {
                    return Self::ZERO;
                }
                let limb_shift = shift / 64;
                let bit_shift = (shift % 64) as u32;
                let mut out = [0 as Limb; $limbs];
                out[limb_shift..].copy_from_slice(&self.limbs[..$limbs - limb_shift]);
                limbs::shl_small(&mut out, bit_shift);
                Self { limbs: out }
            }

            /// Samples a uniformly random value over the full width.
            pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                let mut limbs = [0 as Limb; $limbs];
                for limb in &mut limbs {
                    *limb = rng.random();
                }
                Self { limbs }
            }

            /// Samples a uniformly random value in `[0, bound)` by rejection
            /// sampling on the bit length of `bound`.
            ///
            /// # Panics
            ///
            /// Panics if `bound` is zero.
            pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &Self) -> Self {
                assert!(!bound.is_zero(), "random_below: zero bound");
                let bits = bound.bit_len();
                let top_limb = (bits - 1) / 64;
                let mask = if bits % 64 == 0 { Limb::MAX } else { (1 << (bits % 64)) - 1 };
                loop {
                    let mut limbs = [0 as Limb; $limbs];
                    for limb in limbs.iter_mut().take(top_limb + 1) {
                        *limb = rng.random();
                    }
                    limbs[top_limb] &= mask;
                    let candidate = Self { limbs };
                    if candidate < *bound {
                        return candidate;
                    }
                }
            }
        }

        impl Ord for $name {
            fn cmp(&self, other: &Self) -> Ordering {
                limbs::cmp_slices(&self.limbs, &other.limbs)
            }
        }

        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "(0x{})"), self.to_hex())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "0x{}", self.to_hex())
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.to_hex())
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self::from_u64(v)
            }
        }

        impl From<u128> for $name {
            fn from(v: u128) -> Self {
                Self::from_u128(v)
            }
        }

        impl core::str::FromStr for $name {
            type Err = ParseUintError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                Self::from_hex(s)
            }
        }

        impl serde::Serialize for $name {
            fn serialize<S: serde::Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
                // Byte form: raw minimal little-endian limbs. The JSON
                // writer renders this as the exact minimal lowercase
                // hex `to_hex()` used to emit, so text documents are
                // unchanged while binary formats skip hex entirely.
                ser.serialize_bytes(&self.to_le_bytes_min())
            }
        }

        impl<'de> serde::Deserialize<'de> for $name {
            fn deserialize<D: serde::Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
                match de.deserialize_value()? {
                    serde::Value::Bytes(b) => {
                        Self::from_le_slice(&b).map_err(serde::de::Error::custom)
                    }
                    serde::Value::Str(s) => Self::from_hex(&s).map_err(serde::de::Error::custom),
                    other => Err(serde::de::Error::custom(format!(
                        concat!("expected hex string or bytes for ", stringify!($name), ", got {}"),
                        other.kind()
                    ))),
                }
            }
        }
    };
}

define_uint!(
    /// A 256-bit unsigned integer (4 × 64-bit limbs, little-endian).
    ///
    /// ```
    /// use cryptonn_bigint::U256;
    ///
    /// let a = U256::from_u64(41);
    /// let b = a.wrapping_add(&U256::ONE);
    /// assert_eq!(b, U256::from_u64(42));
    /// ```
    U256,
    4,
    256
);

define_uint!(
    /// A 512-bit unsigned integer, wide enough to hold a `U256 × U256`
    /// product before reduction.
    ///
    /// ```
    /// use cryptonn_bigint::{U256, U512};
    ///
    /// let p = U256::MAX.widening_mul(&U256::MAX);
    /// assert_eq!(p.bit_len(), 512);
    /// let trunc: U256 = p.truncate();
    /// assert_eq!(trunc, U256::ONE); // (2^256 - 1)^2 ≡ 1 (mod 2^256)
    /// ```
    U512,
    8,
    512
);

impl U256 {
    /// Full-width multiplication into a [`U512`].
    pub fn widening_mul(&self, rhs: &Self) -> U512 {
        let mut wide = [0 as Limb; 8];
        limbs::mul_into(self.as_limbs(), rhs.as_limbs(), &mut wide);
        U512::from_limbs(wide)
    }

    /// Zero-extends into a [`U512`].
    pub fn widen(&self) -> U512 {
        let mut limbs = [0 as Limb; 8];
        limbs[..4].copy_from_slice(self.as_limbs());
        U512::from_limbs(limbs)
    }
}

impl U512 {
    /// Truncates to the low 256 bits.
    pub fn truncate(&self) -> U256 {
        let mut limbs = [0 as Limb; 4];
        limbs.copy_from_slice(&self.as_limbs()[..4]);
        U256::from_limbs(limbs)
    }

    /// Remainder of division by a 256-bit modulus.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn rem_u256(&self, modulus: &U256) -> U256 {
        let mut q = [0 as Limb; 8];
        let mut r = [0 as Limb; 4];
        limbs::div_rem_into(self.as_limbs(), modulus.as_limbs(), &mut q, &mut r);
        U256::from_limbs(r)
    }
}

impl From<U256> for U512 {
    fn from(v: U256) -> Self {
        v.widen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn constants() {
        assert!(U256::ZERO.is_zero());
        assert!(U256::ONE.is_odd());
        assert_eq!(U256::MAX.bit_len(), 256);
        assert_eq!(U256::ZERO.bit_len(), 0);
    }

    #[test]
    fn hex_roundtrip() {
        let cases = ["0", "1", "deadbeef", "ffffffffffffffffffffffffffffffff"];
        for c in cases {
            let v = U256::from_hex(c).unwrap();
            assert_eq!(v.to_hex(), c);
        }
        assert_eq!(U256::from_hex("0xFF").unwrap(), U256::from_u64(255));
    }

    #[test]
    fn hex_errors() {
        assert!(U256::from_hex("").is_err());
        assert!(U256::from_hex("xyz").is_err());
        // 65 hex digits with a significant top digit does not fit in 256 bits.
        let too_long = format!("1{}", "0".repeat(64));
        assert!(U256::from_hex(&too_long).is_err());
        // Leading zeros are allowed even past the width.
        let padded = format!("0{}", "f".repeat(64));
        assert!(U256::from_hex(&padded).is_ok());
    }

    #[test]
    fn be_bytes_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            let v = U256::random(&mut rng);
            assert_eq!(U256::from_be_bytes(v.to_be_bytes()), v);
        }
    }

    #[test]
    fn add_sub_invariants() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            let a = U256::random(&mut rng);
            let b = U256::random(&mut rng);
            let sum = a.wrapping_add(&b);
            assert_eq!(sum.wrapping_sub(&b), a);
            assert_eq!(sum.wrapping_sub(&a), b);
        }
    }

    #[test]
    fn checked_ops() {
        assert_eq!(U256::MAX.checked_add(&U256::ONE), None);
        assert_eq!(U256::ZERO.checked_sub(&U256::ONE), None);
        assert_eq!(
            U256::from_u64(5).checked_add(&U256::from_u64(6)),
            Some(U256::from_u64(11))
        );
        assert_eq!(U256::MAX.checked_mul(&U256::from_u64(2)), None);
        assert_eq!(
            U256::from_u128(1 << 100).checked_mul(&U256::from_u64(4)),
            Some(U256::from_u128(1 << 102))
        );
    }

    #[test]
    fn div_rem_invariant_small() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..128 {
            let a = U256::random(&mut rng);
            let b = U256::from_u128((rng.random::<u128>() >> 32).max(1));
            let (q, r) = a.div_rem(&b);
            assert!(r < b);
            // a = q*b + r
            let back = q.wrapping_mul(&b).wrapping_add(&r);
            assert_eq!(back, a);
        }
    }

    #[test]
    fn widening_mul_vs_u128() {
        let a = U256::from_u128(u128::MAX);
        let b = U256::from_u128(u128::MAX);
        let wide = a.widening_mul(&b);
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let expect =
            U512::from_hex("fffffffffffffffffffffffffffffffe00000000000000000000000000000001")
                .unwrap();
        assert_eq!(wide, expect);
    }

    #[test]
    fn rem_u256_matches_div_rem() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..64 {
            let a = U256::random(&mut rng);
            let b = U256::random(&mut rng);
            let m = U256::random(&mut rng);
            if m.is_zero() {
                continue;
            }
            let wide = a.widening_mul(&b);
            let r = wide.rem_u256(&m);
            assert!(r < m);
        }
    }

    #[test]
    fn shifts() {
        let v = U256::from_u64(1);
        assert!(v.shl(255).bit(255));
        assert_eq!(v.shl(256), U256::ZERO);
        assert_eq!(v.shl(64).low_u64(), 0);
        assert_eq!(v.shl(64).as_limbs()[1], 1);
        assert_eq!(v.shl(70).shr(70), v);
        let x = U256::from_hex("123456789abcdef0123456789abcdef0").unwrap();
        assert_eq!(x.shl(13).shr(13), x);
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let bound = U256::from_u64(1000);
        for _ in 0..256 {
            let v = U256::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
        // A one-value range always yields zero.
        assert_eq!(U256::random_below(&mut rng, &U256::ONE), U256::ZERO);
    }

    #[test]
    fn rem_u64_small() {
        let v = U256::from_u128(12345678901234567890123456789);
        assert_eq!(
            v.rem_u64(97),
            (12345678901234567890123456789u128 % 97) as u64
        );
    }

    #[test]
    fn ordering() {
        let a = U256::from_u64(5);
        let b = U256::from_hex("100000000000000000").unwrap();
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), core::cmp::Ordering::Equal);
    }

    #[test]
    fn display_and_debug_nonempty() {
        assert_eq!(format!("{}", U256::ZERO), "0x0");
        assert_eq!(format!("{:x}", U256::from_u64(255)), "ff");
        assert!(format!("{:?}", U256::ONE).contains("U256"));
    }
}
