//! Property-based tests for the big-integer layer.
//!
//! Values are cross-checked against native `u128` arithmetic where the
//! range allows it, and against algebraic identities where it does not.

use cryptonn_bigint::{modular, prime, U256};
use proptest::prelude::*;

fn u256() -> impl Strategy<Value = U256> {
    proptest::array::uniform4(any::<u64>()).prop_map(U256::from_limbs)
}

/// A non-zero modulus below 2^126 so the doubling-based reference
/// implementation in [`mulmod_shift64`] cannot overflow `u128`.
fn modulus128() -> impl Strategy<Value = u128> {
    2u128..(1u128 << 126)
}

proptest! {
    #[test]
    fn hex_roundtrip(a in u256()) {
        prop_assert_eq!(U256::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn be_bytes_roundtrip(a in u256()) {
        prop_assert_eq!(U256::from_be_bytes(a.to_be_bytes()), a);
    }

    #[test]
    fn serde_roundtrip_via_display(a in u256()) {
        // Display is `0x` + hex, and FromStr accepts the prefix.
        let s = format!("{a}");
        prop_assert_eq!(s.parse::<U256>().unwrap(), a);
    }

    #[test]
    fn add_commutes(a in u256(), b in u256()) {
        prop_assert_eq!(a.wrapping_add(&b), b.wrapping_add(&a));
    }

    #[test]
    fn add_sub_inverse(a in u256(), b in u256()) {
        prop_assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
    }

    #[test]
    fn add_matches_u128(a in any::<u128>() , b in any::<u128>()) {
        // Restrict to 127-bit halves so the sum cannot carry past 128 bits.
        let (a, b) = (a >> 1, b >> 1);
        let sum = U256::from_u128(a).wrapping_add(&U256::from_u128(b));
        prop_assert_eq!(sum, U256::from_u128(a + b));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = U256::from_u64(a).wrapping_mul(&U256::from_u64(b));
        prop_assert_eq!(prod, U256::from_u128(a as u128 * b as u128));
    }

    #[test]
    fn div_rem_invariant(a in u256(), b in u256()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        // a == q*b + r, computed with a full-width check: q*b must not
        // overflow since q <= a / b.
        let qb = q.checked_mul(&b);
        prop_assert!(qb.is_some());
        prop_assert_eq!(qb.unwrap().checked_add(&r), Some(a));
    }

    #[test]
    fn widening_mul_truncates_consistently(a in u256(), b in u256()) {
        let wide = a.widening_mul(&b);
        prop_assert_eq!(wide.truncate(), a.wrapping_mul(&b));
    }

    #[test]
    fn shl_shr_roundtrip(a in u256(), s in 0usize..256) {
        // Mask off the bits that would fall off the top.
        let masked = a.shl(s).shr(s);
        let expect = if s == 0 { a } else { a.shl(s).shr(s) };
        prop_assert_eq!(masked, expect);
        // shr then shl zeroes the low bits.
        let low_cleared = a.shr(s).shl(s);
        for i in 0..s {
            prop_assert!(!low_cleared.bit(i));
        }
    }

    #[test]
    fn mod_mul_matches_u128(a in any::<u128>(), b in any::<u128>(), m in modulus128()) {
        let a = a % m;
        let b = b % m;
        // Compute a*b mod m in u128 via a 64x64 split-free method:
        // only feasible when the product fits; restrict a to 64 bits.
        let a = a & (u64::MAX as u128);
        let expect = mul_mod_u128(a, b, m);
        let got = modular::mod_mul(&U256::from_u128(a), &U256::from_u128(b), &U256::from_u128(m));
        prop_assert_eq!(got, U256::from_u128(expect));
    }

    #[test]
    fn mod_add_sub_are_inverse(a in u256(), b in u256(), m in u256()) {
        prop_assume!(m > U256::ONE);
        let a = a.rem(&m);
        let b = b.rem(&m);
        let s = modular::mod_add(&a, &b, &m);
        prop_assert_eq!(modular::mod_sub(&s, &b, &m), a);
        prop_assert_eq!(modular::mod_sub(&s, &a, &m), b);
    }

    #[test]
    fn mod_pow_add_law(a in u256(), e1 in 0u64..64, e2 in 0u64..64, m in u256()) {
        // a^(e1+e2) == a^e1 * a^e2 (mod m)
        prop_assume!(m > U256::ONE);
        let a = a.rem(&m);
        let lhs = modular::mod_pow(&a, &U256::from_u64(e1 + e2), &m);
        let rhs = modular::mod_mul(
            &modular::mod_pow(&a, &U256::from_u64(e1), &m),
            &modular::mod_pow(&a, &U256::from_u64(e2), &m),
            &m,
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn mod_inv_is_inverse(a in u256()) {
        // Against the 2^255 - 19 prime.
        let p = U256::from_hex(
            "7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed",
        ).unwrap();
        let a = a.rem(&p);
        prop_assume!(!a.is_zero());
        let inv = modular::mod_inv(&a, &p).unwrap();
        prop_assert_eq!(modular::mod_mul(&a, &inv, &p), U256::ONE);
    }

    #[test]
    fn rem_u64_matches_rem(a in u256(), d in 1u64..) {
        let r = a.rem_u64(d);
        prop_assert_eq!(U256::from_u64(r), a.rem(&U256::from_u64(d)));
    }
}

/// Schoolbook `a * b % m` for u128 operands where `a` fits in 64 bits.
fn mul_mod_u128(a: u128, b: u128, m: u128) -> u128 {
    // a < 2^64, so a * (b >> 64) < 2^128 and a * (b & mask) < 2^128.
    let lo = b & (u64::MAX as u128);
    let hi = b >> 64;
    // a*b = a*hi*2^64 + a*lo
    let part_hi = mulmod_shift64(a.wrapping_mul(hi) % m, m);
    (part_hi + a.wrapping_mul(lo) % m) % m
}

/// Computes `(x << 64) % m` without overflow by 64 doubling steps.
fn mulmod_shift64(mut x: u128, m: u128) -> u128 {
    for _ in 0..64 {
        x <<= 1;
        if x >= m {
            x -= m;
        }
    }
    x
}

#[test]
fn random_primes_are_odd_and_sized() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(99);
    let p = prime::gen_prime(80, &mut rng);
    assert!(p.is_odd());
    assert_eq!(p.bit_len(), 80);
}

/// The `(p, q)` safe-prime pairs embedded in `cryptonn-group` for each
/// `SecurityLevel` (duplicated here because a dev-dependency on the
/// group crate would be cyclic). The Montgomery/schoolbook equivalence
/// below must hold at exactly these production moduli.
const LEVEL_PARAMS: &[(&str, &str, &str)] = &[
    ("Bits32", "85a1545f", "42d0aa2f"),
    ("Bits64", "e1946b58700bae4f", "70ca35ac3805d727"),
    (
        "Bits128",
        "e8a60f34154b07019e29019fd53661e7",
        "7453079a0aa58380cf1480cfea9b30f3",
    ),
    (
        "Bits192",
        "cae643bc62df98dce86d1a300a4f8dc41916bd5ee88ba403",
        "657321de316fcc6e74368d180527c6e20c8b5eaf7445d201",
    ),
    (
        "Bits224",
        "f1fcd972befe655dea418894ba5e896515c2f7f09dee7ecd12512353",
        "78fe6cb95f7f32aef520c44a5d2f44b28ae17bf84ef73f66892891a9",
    ),
    (
        "Bits256",
        "a504130456d8cce0af73fd190c683b02148b6371a703ba4bac786a772db736af",
        "528209822b6c667057b9fe8c86341d810a45b1b8d381dd25d63c353b96db9b57",
    ),
    // The Montgomery-friendly level: both p and q ≡ -1 (mod 2^64), so
    // every context below takes the FastP64 reducer.
    (
        "Bits256Fast",
        "9f2c45ea4d0cf9de4608fe14686ecec4ec2bde9b9326aa17ffffffffffffffff",
        "4f9622f526867cef23047f0a343767627615ef4dc993550bffffffffffffffff",
    ),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Montgomery `mod_mul` is bit-identical to the schoolbook
    /// (widening-multiply + Knuth-division) product at every embedded
    /// security level's `p` and `q`.
    #[test]
    fn montgomery_mod_mul_equals_schoolbook_at_all_levels(a in u256(), b in u256()) {
        for (level, p_hex, q_hex) in LEVEL_PARAMS {
            for m_hex in [p_hex, q_hex] {
                let m = U256::from_hex(m_hex).unwrap();
                let ctx = cryptonn_bigint::Montgomery::new(&m).unwrap();
                let (ar, br) = (a.rem(&m), b.rem(&m));
                prop_assert_eq!(
                    ctx.mod_mul(&ar, &br),
                    modular::mod_mul(&ar, &br, &m),
                    "level {} modulus {}", level, m
                );
            }
        }
    }

    /// `mod_pow` (Montgomery path) is bit-identical to
    /// `mod_pow_schoolbook` at every embedded security level.
    #[test]
    fn montgomery_mod_pow_equals_schoolbook_at_all_levels(base in u256(), exp in u256()) {
        for (level, p_hex, q_hex) in LEVEL_PARAMS {
            for m_hex in [p_hex, q_hex] {
                let m = U256::from_hex(m_hex).unwrap();
                prop_assert_eq!(
                    modular::mod_pow(&base, &exp, &m),
                    modular::mod_pow_schoolbook(&base, &exp, &m),
                    "level {} modulus {}", level, m
                );
            }
        }
    }

    /// The two paths also agree on arbitrary odd moduli (the fallback
    /// boundary itself: even moduli take the schoolbook path inside
    /// `mod_pow`, so both calls degenerate to the same code there).
    #[test]
    fn montgomery_mod_pow_equals_schoolbook_random_moduli(
        base in u256(),
        exp in u256(),
        m in u256(),
    ) {
        prop_assume!(m > U256::ONE);
        prop_assert_eq!(
            modular::mod_pow(&base, &exp, &m),
            modular::mod_pow_schoolbook(&base, &exp, &m),
            "modulus {}", m
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Montgomery-trick batch inversion equals element-wise `mod_inv`
    /// at every embedded security level's `p` and `q`.
    #[test]
    fn batch_inversion_equals_individual_at_all_levels(
        values in proptest::collection::vec(u256(), 1..12),
    ) {
        for (level, p_hex, q_hex) in LEVEL_PARAMS {
            for m_hex in [p_hex, q_hex] {
                let m = U256::from_hex(m_hex).unwrap();
                let reduced: Vec<U256> = values.iter().map(|v| v.rem(&m)).collect();
                let batch = modular::batch_mod_inv(&reduced, &m);
                let individual: Option<Vec<U256>> =
                    reduced.iter().map(|v| modular::mod_inv(v, &m)).collect();
                prop_assert_eq!(batch, individual, "level {} modulus {}", level, m);
            }
        }
    }

    /// The lane-batched kernel equals four independent `mont_mul`s on
    /// unreduced (wire-range) operands, at every embedded level's `p`
    /// and `q` — generic and fast-reduction moduli alike, whatever
    /// kernel the host dispatched.
    #[test]
    fn mont_mul_lanes_equals_four_mont_muls(
        x in proptest::array::uniform4(u256()),
        y in proptest::array::uniform4(u256()),
    ) {
        use cryptonn_bigint::Montgomery;
        for (level, p_hex, q_hex) in LEVEL_PARAMS {
            for m_hex in [p_hex, q_hex] {
                let m = U256::from_hex(m_hex).unwrap();
                let ctx = Montgomery::new(&m).unwrap();
                let got = ctx.mont_mul_lanes(&x, &y);
                for lane in 0..4 {
                    // mont_mul reduces wire-range operands on entry,
                    // exactly as the lane entry point documents.
                    let expect = ctx.mont_mul(&x[lane].rem(&m), &y[lane].rem(&m));
                    prop_assert_eq!(got[lane], expect, "level {} modulus {} lane {}", level, m, lane);
                }
            }
        }
    }
}
