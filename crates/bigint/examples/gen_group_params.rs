//! One-shot generator for the safe-prime group parameters embedded in
//! `cryptonn-group::params`. Run with:
//!
//! ```sh
//! cargo run --release -p cryptonn-bigint --example gen_group_params
//! ```

use cryptonn_bigint::prime::gen_safe_prime;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Seeded so the published parameters are reproducible.
    let mut rng = StdRng::seed_from_u64(0x2019_0426);
    for bits in [32usize, 64, 128, 192, 224, 256] {
        let (p, q) = gen_safe_prime(bits, &mut rng);
        println!("bits={bits}");
        println!("  p = {}", p.to_hex());
        println!("  q = {}", q.to_hex());
    }
}
