//! One-shot search for the Montgomery-friendly safe prime behind
//! `SecurityLevel::Bits256Fast` (DESIGN.md §13.2). Run with:
//!
//! ```sh
//! cargo run --release -p cryptonn-bigint --example gen_fast_prime
//! ```
//!
//! The search looks for a 256-bit safe prime of the shape
//! `p = k·2^64 − 1` with `k` even and the top bit of `k` set. Then
//!
//! - `p ≡ -1 (mod 2^64)`, so `m′ = -p^{-1} mod 2^64 = 1` and the
//!   `Reducer::FastP64` seam drops one multiply per CIOS round, and
//! - `q = (p−1)/2 = (k/2)·2^64 − 1` (because `k` is even), so the
//!   order-`q` scalar field gets the *same* fast reduction for free.
//!
//! Seeded so the published parameters are reproducible.

use cryptonn_bigint::prime::{is_prime, is_prime_with_rounds};
use cryptonn_bigint::U256;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(0x2019_0426);
    let mut tries = 0u64;
    loop {
        tries += 1;
        // k: 192 bits, top bit set (so p fills 256 bits), low bit clear.
        let k = U256::from_limbs([
            rng.random::<u64>() & !1,
            rng.random(),
            rng.random::<u64>() | (1 << 63),
            0,
        ]);
        let p = k.shl(64).wrapping_sub(&U256::ONE);
        let q = p.shr(1); // (p - 1) / 2, exact because p is odd

        // Cheap screen before the full 40-round certification.
        if !is_prime_with_rounds(&p, 2, &mut rng) || !is_prime_with_rounds(&q, 2, &mut rng) {
            continue;
        }
        if is_prime(&p, &mut rng) && is_prime(&q, &mut rng) {
            println!("tries = {tries}");
            println!("p = {}", p.to_hex());
            println!("q = {}", q.to_hex());
            assert_eq!(p.as_limbs()[0], u64::MAX);
            assert_eq!(q.as_limbs()[0], u64::MAX);
            assert_eq!(p.bit_len(), 256);
            return;
        }
    }
}
