//! The binary wire codec (DESIGN.md §16).
//!
//! Every CryptoNN frame payload is one serde [`Value`] tree. The seed
//! encoding is compact JSON; this crate adds a bincode-shaped binary
//! encoding of the same tree — fixed-width little-endian integers,
//! length-prefixed strings and sequences, varint-free — plus the
//! negotiation machinery that lets both formats coexist on one daemon:
//!
//! - **Self-identifying payloads.** A binary payload starts with
//!   [`BINARY_MAGIC`] (`0xB1`), a byte that can never begin a JSON
//!   document (it is a UTF-8 continuation byte, and JSON starts with
//!   ASCII). Every frame is sniffed with [`WireFormat::sniff`]; no
//!   handshake change, and a daemon handles mixed-format clients
//!   per-connection.
//! - **Raw limb bytes.** Group elements serialize as [`Value::Bytes`]
//!   (minimal little-endian limbs). JSON renders them as the legacy
//!   hex strings; the binary encoding carries the raw bytes — the
//!   vendored analogue of real serde's `is_human_readable()` seam.
//!   Blobs up to 255 bytes (every group element at every supported
//!   level) take a one-byte length; longer ones a four-byte length.
//! - **Per-payload string interning.** Map keys and enum tags repeat
//!   heavily in a frame (one `"cmt"`/`"value"` pair per ciphertext
//!   cell); the first occurrence is written inline and both sides
//!   register it, later occurrences are a 5-byte back-reference.
//! - **Defensive decoding.** Length and count prefixes are validated
//!   against the remaining input *before* allocation, nesting depth is
//!   bounded, and every failure is a typed [`WireError`] — hostile
//!   bytes can fail a connection, never panic or balloon a process.
//!
//! The format selector [`WireFormat::from_env`] reads `CRYPTONN_WIRE`
//! (`binary` opts in; anything else keeps the seed JSON), mirroring
//! the `CRYPTONN_TRANSPORT` idiom. [`FormatCell`] carries the
//! per-connection negotiated format between split transport halves.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

/// First byte of every binary payload. `0xB1` is a UTF-8 continuation
/// byte: no JSON document (which begins with ASCII `{`, `[`, `"`, a
/// digit, `-`, `t`, `f`, or `n`) can start with it, so a payload's
/// first byte alone names its format.
pub const BINARY_MAGIC: u8 = 0xB1;

/// Second byte of every binary payload: the encoding version. Bumped
/// only for incompatible changes; decoders refuse versions they do not
/// know instead of misreading them.
pub const BINARY_VERSION: u8 = 0x01;

/// Nesting bound while decoding — hostile deeply-nested input fails
/// with a typed error instead of overflowing the stack. Real payloads
/// nest a dozen levels at most.
const MAX_DEPTH: usize = 96;

/// Strings longer than this are never interned (hex blobs would bloat
/// the table for one-shot wins); map keys and enum tags are short.
const INTERN_MAX_LEN: usize = 64;

/// Intern-table entry cap per payload, both sides. Beyond it, strings
/// keep being written inline — correctness is unaffected, only
/// compression degrades.
const INTERN_MAX_ENTRIES: usize = 4096;

// Value tags. Fixed-width payloads follow each tag directly.
const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_I64: u8 = 0x03;
const TAG_U64: u8 = 0x04;
const TAG_F64: u8 = 0x05;
const TAG_STR: u8 = 0x06;
const TAG_STR_REF: u8 = 0x07;
const TAG_BYTES: u8 = 0x08;
const TAG_SEQ: u8 = 0x09;
const TAG_MAP: u8 = 0x0a;
/// Byte strings up to 255 bytes — one length byte instead of four.
/// Group elements (8–32 bytes of limbs) are the dominant leaf of every
/// encrypted frame, so the shorter fixed-width form is what almost all
/// real payload bytes use; the u32 form stays for bulk blobs. Not a
/// varint: which form applies is named by the tag, never by
/// continuation bits.
const TAG_BYTES8: u8 = 0x0b;

/// Which encoding a frame payload carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// Compact JSON text (the seed encoding; always understood).
    #[default]
    Json,
    /// The binary value encoding defined by this crate.
    Binary,
}

impl WireFormat {
    /// Resolves the process-default format from the `CRYPTONN_WIRE`
    /// environment variable: `binary` opts into the binary codec,
    /// anything else — including unset — keeps the seed JSON. Mirrors
    /// the `CRYPTONN_TRANSPORT` / `CRYPTONN_FORCE_SCALAR` selectors.
    pub fn from_env() -> Self {
        match std::env::var("CRYPTONN_WIRE").as_deref() {
            Ok("binary") => WireFormat::Binary,
            _ => WireFormat::Json,
        }
    }

    /// Names the format a payload carries by its first byte. Empty
    /// payloads sniff as JSON (and will fail JSON decoding with a
    /// proper error).
    pub fn sniff(payload: &[u8]) -> Self {
        match payload.first() {
            Some(&BINARY_MAGIC) => WireFormat::Binary,
            _ => WireFormat::Json,
        }
    }

    /// A short lowercase name (`"json"` / `"binary"`), for telemetry.
    pub fn name(self) -> &'static str {
        match self {
            WireFormat::Json => "json",
            WireFormat::Binary => "binary",
        }
    }
}

/// The per-connection negotiated format, shared between the send and
/// receive halves of a split transport: the receive half records the
/// format of each arriving payload, the send half encodes replies the
/// same way — so a daemon mirrors whatever each client speaks without
/// any handshake field.
#[derive(Debug, Clone)]
pub struct FormatCell(Arc<AtomicU8>);

impl FormatCell {
    /// A cell starting at `initial` (the connection initiator's
    /// preference; a server side typically starts at the process
    /// default and is corrected by the first inbound frame).
    pub fn new(initial: WireFormat) -> Self {
        let cell = Self(Arc::new(AtomicU8::new(0)));
        cell.set(initial);
        cell
    }

    /// The current format.
    pub fn get(&self) -> WireFormat {
        match self.0.load(Ordering::Relaxed) {
            1 => WireFormat::Binary,
            _ => WireFormat::Json,
        }
    }

    /// Records a format (called by the receive half per frame).
    pub fn set(&self, fmt: WireFormat) {
        self.0.store(
            match fmt {
                WireFormat::Json => 0,
                WireFormat::Binary => 1,
            },
            Ordering::Relaxed,
        );
    }
}

impl Default for FormatCell {
    fn default() -> Self {
        Self::new(WireFormat::default())
    }
}

/// Errors from binary encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "binary wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

// ------------------------------------------------------------ encode

/// Serializes `value` into one binary payload (magic, version, value
/// tree).
///
/// # Errors
///
/// [`WireError`] if the value contains a non-finite float (parity with
/// the JSON writer) or overflows a `u32` length prefix.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    append_to_vec(value, &mut out)?;
    Ok(out)
}

/// Appends `value`'s binary payload to `out` — the allocation-reuse
/// entry point for frame assembly. On error, `out` may hold a partial
/// encoding; the caller owns truncating back to its checkpoint.
///
/// # Errors
///
/// As [`to_vec`].
pub fn append_to_vec<T: Serialize + ?Sized>(value: &T, out: &mut Vec<u8>) -> Result<(), WireError> {
    let v = serde::ser::to_value(value);
    out.push(BINARY_MAGIC);
    out.push(BINARY_VERSION);
    let mut interned: HashMap<String, u32> = HashMap::new();
    encode_value(&v, out, &mut interned)
}

fn write_len(len: usize, out: &mut Vec<u8>) -> Result<(), WireError> {
    let n = u32::try_from(len).map_err(|_| WireError(format!("length {len} overflows u32")))?;
    out.extend_from_slice(&n.to_le_bytes());
    Ok(())
}

fn encode_str(
    s: &str,
    out: &mut Vec<u8>,
    interned: &mut HashMap<String, u32>,
) -> Result<(), WireError> {
    if let Some(&idx) = interned.get(s) {
        out.push(TAG_STR_REF);
        out.extend_from_slice(&idx.to_le_bytes());
        return Ok(());
    }
    out.push(TAG_STR);
    write_len(s.len(), out)?;
    out.extend_from_slice(s.as_bytes());
    if s.len() <= INTERN_MAX_LEN && interned.len() < INTERN_MAX_ENTRIES {
        interned.insert(s.to_owned(), interned.len() as u32);
    }
    Ok(())
}

fn encode_value(
    v: &Value,
    out: &mut Vec<u8>,
    interned: &mut HashMap<String, u32>,
) -> Result<(), WireError> {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::I64(n) => {
            out.push(TAG_I64);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::U64(n) => {
            out.push(TAG_U64);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(WireError("cannot encode non-finite float".into()));
            }
            out.push(TAG_F64);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => encode_str(s, out, interned)?,
        Value::Bytes(b) => {
            if let Ok(short) = u8::try_from(b.len()) {
                out.push(TAG_BYTES8);
                out.push(short);
            } else {
                out.push(TAG_BYTES);
                write_len(b.len(), out)?;
            }
            out.extend_from_slice(b);
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            write_len(items.len(), out)?;
            for item in items {
                encode_value(item, out, interned)?;
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            write_len(entries.len(), out)?;
            for (k, item) in entries {
                encode_str(k, out, interned)?;
                encode_value(item, out, interned)?;
            }
        }
    }
    Ok(())
}

// ------------------------------------------------------------ decode

/// Deserializes a typed value from one binary payload.
///
/// # Errors
///
/// [`WireError`] on a missing/foreign magic, an unknown version,
/// malformed bytes (bad tag, truncated fixed-width field, length
/// prefix past the input, dangling intern reference, over-deep
/// nesting, trailing bytes), or a type mismatch in the typed
/// conversion.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, WireError> {
    let value = parse_payload(bytes)?;
    serde::de::from_value(value).map_err(|e| WireError(e.to_string()))
}

/// Parses one binary payload into its [`Value`] tree.
///
/// # Errors
///
/// As [`from_slice`], minus the typed conversion.
pub fn parse_payload(bytes: &[u8]) -> Result<Value, WireError> {
    let mut d = Decoder {
        bytes,
        pos: 0,
        interned: Vec::new(),
    };
    match d.take_byte("magic")? {
        BINARY_MAGIC => {}
        other => {
            return Err(WireError(format!(
                "not a binary payload (first byte {other:#04x})"
            )))
        }
    }
    match d.take_byte("version")? {
        BINARY_VERSION => {}
        other => {
            return Err(WireError(format!(
                "unknown binary wire version {other:#04x}"
            )))
        }
    }
    let v = d.parse_value(0)?;
    if d.pos != d.bytes.len() {
        return Err(WireError(format!(
            "{} trailing bytes after the value",
            d.bytes.len() - d.pos
        )));
    }
    Ok(v)
}

struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    interned: Vec<String>,
}

impl Decoder<'_> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take_byte(&mut self, what: &str) -> Result<u8, WireError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| WireError(format!("input ended before {what}")))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&[u8], WireError> {
        if self.remaining() < n {
            return Err(WireError(format!(
                "input ended inside {what} ({} of {n} bytes left)",
                self.remaining()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_u64(&mut self, what: &str) -> Result<u64, WireError> {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(self.take(8, what)?);
        Ok(u64::from_le_bytes(buf))
    }

    fn take_len(&mut self, what: &str) -> Result<usize, WireError> {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(self.take(4, what)?);
        Ok(u32::from_le_bytes(buf) as usize)
    }

    fn take_str(&mut self, tag: u8) -> Result<String, WireError> {
        match tag {
            TAG_STR => {
                let len = self.take_len("string length")?;
                // Validated against remaining input before allocation:
                // a hostile prefix cannot balloon memory.
                let raw = self.take(len, "string contents")?;
                let s = std::str::from_utf8(raw)
                    .map_err(|_| WireError("invalid UTF-8 in string".into()))?
                    .to_owned();
                if s.len() <= INTERN_MAX_LEN && self.interned.len() < INTERN_MAX_ENTRIES {
                    self.interned.push(s.clone());
                }
                Ok(s)
            }
            TAG_STR_REF => {
                let idx = self.take_len("string reference")?;
                self.interned
                    .get(idx)
                    .cloned()
                    .ok_or_else(|| WireError(format!("dangling string reference {idx}")))
            }
            other => Err(WireError(format!(
                "expected a string, got tag {other:#04x}"
            ))),
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, WireError> {
        if depth > MAX_DEPTH {
            return Err(WireError(format!("nesting deeper than {MAX_DEPTH}")));
        }
        let tag = self.take_byte("value tag")?;
        Ok(match tag {
            TAG_NULL => Value::Null,
            TAG_FALSE => Value::Bool(false),
            TAG_TRUE => Value::Bool(true),
            TAG_I64 => Value::I64(self.take_u64("i64")? as i64),
            TAG_U64 => Value::U64(self.take_u64("u64")?),
            TAG_F64 => {
                let f = f64::from_bits(self.take_u64("f64")?);
                if !f.is_finite() {
                    return Err(WireError("non-finite float on the wire".into()));
                }
                Value::F64(f)
            }
            TAG_STR | TAG_STR_REF => Value::Str(self.take_str(tag)?),
            TAG_BYTES => {
                let len = self.take_len("byte-string length")?;
                Value::Bytes(self.take(len, "byte-string contents")?.to_vec())
            }
            TAG_BYTES8 => {
                let len = self.take_byte("short byte-string length")? as usize;
                Value::Bytes(self.take(len, "byte-string contents")?.to_vec())
            }
            TAG_SEQ => {
                let count = self.take_len("sequence count")?;
                // Every element costs at least one tag byte, so a count
                // past the remaining input is a lie — refuse it before
                // reserving capacity.
                if count > self.remaining() {
                    return Err(WireError(format!(
                        "sequence count {count} exceeds the {} remaining bytes",
                        self.remaining()
                    )));
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(self.parse_value(depth + 1)?);
                }
                Value::Seq(items)
            }
            TAG_MAP => {
                let count = self.take_len("map count")?;
                if count > self.remaining() {
                    return Err(WireError(format!(
                        "map count {count} exceeds the {} remaining bytes",
                        self.remaining()
                    )));
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let key_tag = self.take_byte("map key tag")?;
                    let key = self.take_str(key_tag)?;
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                }
                Value::Map(entries)
            }
            other => return Err(WireError(format!("unknown value tag {other:#04x}"))),
        })
    }
}

// --------------------------------------------------- format dispatch

/// Appends `value` to `out` in `format` — JSON text or the binary
/// payload. The single switch point frame assembly goes through.
///
/// # Errors
///
/// The underlying encoder's errors, stringified into [`WireError`].
pub fn append_payload<T: Serialize + ?Sized>(
    value: &T,
    format: WireFormat,
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    match format {
        WireFormat::Json => {
            serde_json::append_to_vec(value, out).map_err(|e| WireError(e.to_string()))
        }
        WireFormat::Binary => append_to_vec(value, out),
    }
}

/// Decodes one payload of either format, sniffing by the first byte.
///
/// # Errors
///
/// The matching decoder's errors, stringified into [`WireError`].
pub fn decode_payload<T: DeserializeOwned>(payload: &[u8]) -> Result<T, WireError> {
    match WireFormat::sniff(payload) {
        WireFormat::Json => serde_json::from_slice(payload).map_err(|e| WireError(e.to_string())),
        WireFormat::Binary => from_slice(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::I64(-42),
            Value::U64(u64::MAX),
            Value::F64(-1.5),
            Value::Str("hello".into()),
            Value::Bytes(vec![0xde, 0xad, 0x00]),
        ] {
            let bytes = to_vec(&v).unwrap();
            assert_eq!(bytes[0], BINARY_MAGIC);
            let back = parse_payload(&bytes).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn interning_compresses_repeated_keys() {
        let row = Value::Map(vec![
            ("commitment".into(), Value::U64(1)),
            ("value".into(), Value::U64(2)),
        ]);
        let seq = Value::Seq(vec![row.clone(); 64]);
        let bytes = to_vec(&seq).unwrap();
        // Without interning every row would pay both inline keys
        // (tag + u32 length + contents); with it, only the first row
        // does and later rows pay 5-byte references.
        let inline_row = 5 + (5 + 10 + 9) + (5 + 5 + 9);
        let ref_row = 5 + (5 + 9) + (5 + 9);
        assert_eq!(bytes.len(), 2 + 5 + inline_row + 63 * ref_row);
        assert!(bytes.len() < 2 + 5 + 64 * inline_row);
        assert_eq!(parse_payload(&bytes).unwrap(), seq);
    }

    #[test]
    fn byte_strings_pick_the_shortest_length_form() {
        // ≤ 255 bytes: tag + 1 length byte + contents.
        let short = Value::Bytes(vec![0xab; 255]);
        let bytes = to_vec(&short).unwrap();
        assert_eq!(
            &bytes[..4],
            &[BINARY_MAGIC, BINARY_VERSION, TAG_BYTES8, 255]
        );
        assert_eq!(bytes.len(), 4 + 255);
        assert_eq!(parse_payload(&bytes).unwrap(), short);
        // 256 bytes: tag + 4 length bytes + contents.
        let long = Value::Bytes(vec![0xcd; 256]);
        let bytes = to_vec(&long).unwrap();
        assert_eq!(bytes[2], TAG_BYTES);
        assert_eq!(bytes.len(), 3 + 4 + 256);
        assert_eq!(parse_payload(&bytes).unwrap(), long);
        // Both forms decode; a truncated short form fails typed.
        assert!(parse_payload(&[BINARY_MAGIC, BINARY_VERSION, TAG_BYTES8, 9, 0]).is_err());
        assert!(parse_payload(&[BINARY_MAGIC, BINARY_VERSION, TAG_BYTES8]).is_err());
    }

    #[test]
    fn sniffing_separates_formats() {
        assert_eq!(WireFormat::sniff(b"{\"a\":1}"), WireFormat::Json);
        assert_eq!(WireFormat::sniff(&[BINARY_MAGIC, 1]), WireFormat::Binary);
        assert_eq!(WireFormat::sniff(b""), WireFormat::Json);
    }

    #[test]
    fn hostile_inputs_fail_typed() {
        // Unknown version.
        assert!(parse_payload(&[BINARY_MAGIC, 0x7f, TAG_NULL]).is_err());
        // Truncated fixed-width field.
        assert!(parse_payload(&[BINARY_MAGIC, BINARY_VERSION, TAG_U64, 1, 2]).is_err());
        // Length prefix past the input — refused before allocation.
        let mut huge = vec![BINARY_MAGIC, BINARY_VERSION, TAG_BYTES];
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(parse_payload(&huge).is_err());
        // Hostile sequence count.
        let mut seq = vec![BINARY_MAGIC, BINARY_VERSION, TAG_SEQ];
        seq.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(parse_payload(&seq).is_err());
        // Dangling intern reference.
        let mut r = vec![BINARY_MAGIC, BINARY_VERSION, TAG_STR_REF];
        r.extend_from_slice(&7u32.to_le_bytes());
        assert!(parse_payload(&r).is_err());
        // Trailing bytes.
        assert!(parse_payload(&[BINARY_MAGIC, BINARY_VERSION, TAG_NULL, 0]).is_err());
        // Unknown tag.
        assert!(parse_payload(&[BINARY_MAGIC, BINARY_VERSION, 0x6f]).is_err());
    }

    #[test]
    fn depth_is_bounded() {
        let mut bytes = vec![BINARY_MAGIC, BINARY_VERSION];
        for _ in 0..(MAX_DEPTH + 8) {
            bytes.push(TAG_SEQ);
            bytes.extend_from_slice(&1u32.to_le_bytes());
        }
        bytes.push(TAG_NULL);
        assert!(parse_payload(&bytes).is_err());
    }

    #[test]
    fn format_cell_mirrors() {
        let cell = FormatCell::new(WireFormat::Json);
        assert_eq!(cell.get(), WireFormat::Json);
        let peer = cell.clone();
        peer.set(WireFormat::Binary);
        assert_eq!(cell.get(), WireFormat::Binary);
    }

    #[test]
    fn dispatch_sniffs_both_formats() {
        let v = vec![1u64, 2, 3];
        let mut json = Vec::new();
        append_payload(&v, WireFormat::Json, &mut json).unwrap();
        let mut bin = Vec::new();
        append_payload(&v, WireFormat::Binary, &mut bin).unwrap();
        assert_eq!(decode_payload::<Vec<u64>>(&json).unwrap(), v);
        assert_eq!(decode_payload::<Vec<u64>>(&bin).unwrap(), v);
    }
}
