//! # cryptonn-bench
//!
//! Shared fixtures and workload generators for the benchmark harness
//! that regenerates every table and figure of the CryptoNN evaluation
//! (§IV of the paper). See EXPERIMENTS.md for the experiment index and
//! paper-vs-measured results.
//!
//! All sweeps default to CI-sized parameters; set `CRYPTONN_BENCH_FULL=1`
//! to run paper-scale sweeps (slower by orders of magnitude, exactly as
//! the paper's own serial arms are).

use cryptonn_fe::{KeyAuthority, PermittedFunctions};
use cryptonn_group::{SchnorrGroup, SecurityLevel};
use cryptonn_matrix::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// True when paper-scale sweeps were requested via `CRYPTONN_BENCH_FULL`.
pub fn full_scale() -> bool {
    std::env::var("CRYPTONN_BENCH_FULL").is_ok_and(|v| v == "1")
}

/// Picks the CI-sized or paper-scale parameter list.
pub fn sweep<T: Copy>(default: &[T], full: &[T]) -> Vec<T> {
    if full_scale() {
        full.to_vec()
    } else {
        default.to_vec()
    }
}

/// The group security level for benches: 128-bit by default (the same
/// algorithms as the paper's 256-bit runs, faster limbs), 256-bit under
/// `CRYPTONN_BENCH_FULL`.
pub fn bench_level() -> SecurityLevel {
    if full_scale() {
        SecurityLevel::Bits256
    } else {
        SecurityLevel::Bits128
    }
}

/// A ready-made authority + group fixture.
pub fn fixture(seed: u64) -> (SchnorrGroup, KeyAuthority) {
    let group = SchnorrGroup::precomputed(bench_level());
    let authority = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), seed);
    (group, authority)
}

/// The value ranges used in the Figs. 3–4 legends.
pub const ELEMENT_RANGES: [(i64, i64, &str); 3] = [
    (-10, 10, "[-10,10]"),
    (-100, 100, "[-100,100]"),
    (-1000, 1000, "[-1000,1000]"),
];

/// A `1 × k` matrix of uniform values in `[lo, hi]` (the element-wise
/// figures sweep the element count, shape is irrelevant).
pub fn random_elements(k: usize, lo: i64, hi: i64, seed: u64) -> Matrix<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(1, k, |_, _| rng.random_range(lo..=hi))
}

/// A `rows × cols` matrix of uniform values in `[lo, hi]`.
pub fn random_matrix(rows: usize, cols: usize, lo: i64, hi: i64, seed: u64) -> Matrix<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(lo..=hi))
}

/// Draws a deterministic RNG for client-side encryption in benches.
pub fn bench_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Thread counts for parallel-arm sweeps, capped at the machine size.
pub fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut counts = vec![1, 2, 4, 8, 16];
    counts.retain(|&c| c <= max);
    counts
}

/// Formats a `std::time::Duration` as fractional milliseconds.
pub fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Host provenance stamped into every telemetry JSON: perf numbers are
/// meaningless without the machine that produced them.
#[derive(Debug, Clone, serde::Serialize)]
pub struct HostInfo {
    /// Detected SIMD/ISA extensions relevant to the bigint kernels.
    pub cpu_flags: Vec<String>,
    /// `std::thread::available_parallelism()` at bench time.
    pub cores: usize,
    /// `rustc --version` of the toolchain that built the harness.
    pub rustc: String,
    /// Which lane-batched Montgomery kernel the calibration pinned
    /// (`avx2` or `scalar`) — see `cryptonn_bigint::lanes`.
    pub mont_kernel: String,
}

/// Probes the host once; cheap enough to call per run.
pub fn host_info() -> HostInfo {
    #[allow(unused_mut)]
    let mut cpu_flags = Vec::new();
    #[cfg(target_arch = "x86_64")]
    for flag in ["sse4.2", "avx", "avx2", "bmi2", "adx", "avx512f"] {
        let detected = match flag {
            "sse4.2" => std::arch::is_x86_feature_detected!("sse4.2"),
            "avx" => std::arch::is_x86_feature_detected!("avx"),
            "avx2" => std::arch::is_x86_feature_detected!("avx2"),
            "bmi2" => std::arch::is_x86_feature_detected!("bmi2"),
            "adx" => std::arch::is_x86_feature_detected!("adx"),
            "avx512f" => std::arch::is_x86_feature_detected!("avx512f"),
            _ => false,
        };
        if detected {
            cpu_flags.push(flag.to_string());
        }
    }
    let rustc =
        std::process::Command::new(std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string()))
            .arg("--version")
            .output()
            .ok()
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|| "unknown".to_string());
    HostInfo {
        cpu_flags,
        cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        rustc,
        mont_kernel: cryptonn_bigint::kernel_name().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_selects_default_without_env() {
        // The test environment does not set CRYPTONN_BENCH_FULL.
        if !full_scale() {
            assert_eq!(sweep(&[1, 2], &[10, 20]), vec![1, 2]);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            random_elements(5, -10, 10, 1),
            random_elements(5, -10, 10, 1)
        );
        let m = random_matrix(3, 4, -5, 5, 2);
        assert!(m.as_slice().iter().all(|v| (-5..=5).contains(v)));
    }
}
