//! Compact wall-clock report for Figs. 3–5 — the same measurements as
//! the criterion benches, printed as the series the paper plots
//! (pre-process encryption / key-derive / secure computation serial and
//! parallel, per element count and value range).
//!
//! Use this for a quick shape check; use `cargo bench` for rigorous
//! statistics. `CRYPTONN_BENCH_FULL=1` switches to paper-scale sweeps.

use std::time::Instant;

use cryptonn_bench::{
    bench_rng, fixture, ms, random_elements, random_matrix, sweep, ELEMENT_RANGES,
};
use cryptonn_fe::BasicOp;
use cryptonn_group::DlogTable;
use cryptonn_smc::{
    derive_dot_keys, derive_elementwise_keys, secure_dot, secure_elementwise, EncryptedMatrix,
    Parallelism,
};

fn elementwise_report(op: BasicOp, figure: &str, sizes: &[usize], dlog_bound: u64) {
    let (group, authority) = fixture(801);
    let febo_mpk = authority.febo_public_key();
    let table = DlogTable::new(&group, dlog_bound);
    println!(
        "\n=== {figure}: element-wise {op} (group {} bits) ===",
        group.modulus().bit_len()
    );
    println!(
        "{:>8} {:>14} {:>12} {:>12} {:>14} {:>14}",
        "k", "range", "enc (ms)", "keys (ms)", "serial (ms)", "parallel (ms)"
    );
    for &k in sizes {
        for (lo, hi, label) in ELEMENT_RANGES {
            let x = random_elements(k, lo, hi, 61);
            let y = random_elements(k, lo, hi, 62);
            let mut rng = bench_rng(63);

            let t = Instant::now();
            let enc = EncryptedMatrix::encrypt_elements(&x, &febo_mpk, &mut rng).unwrap();
            let t_enc = t.elapsed();

            let t = Instant::now();
            let keys = derive_elementwise_keys(&authority, &enc, op, &y).unwrap();
            let t_keys = t.elapsed();

            let t = Instant::now();
            let z1 =
                secure_elementwise(&febo_mpk, &enc, &keys, op, &y, &table, Parallelism::Serial)
                    .unwrap();
            let t_serial = t.elapsed();

            let t = Instant::now();
            let z2 = secure_elementwise(
                &febo_mpk,
                &enc,
                &keys,
                op,
                &y,
                &table,
                Parallelism::available(),
            )
            .unwrap();
            let t_parallel = t.elapsed();
            assert_eq!(z1, z2);
            assert_eq!(z1, x.zip_map(&y, |a, b| op.apply(a, b)));

            println!(
                "{k:>8} {label:>14} {:>12.2} {:>12.2} {:>14.2} {:>14.2}",
                ms(t_enc),
                ms(t_keys),
                ms(t_serial),
                ms(t_parallel)
            );
        }
    }
}

fn dot_report(counts: &[usize]) {
    let (group, authority) = fixture(802);
    let table = DlogTable::new(&group, 1_100_000);
    println!(
        "\n=== Fig. 5: secure dot-product (group {} bits) ===",
        group.modulus().bit_len()
    );
    println!(
        "{:>8} {:>16} {:>12} {:>12} {:>14} {:>14}",
        "k", "config", "enc (ms)", "keys (ms)", "serial (ms)", "parallel (ms)"
    );
    for &k in counts {
        for (l, v, label) in [
            (10usize, 10i64, "l=10,v=[1,10]"),
            (10, 100, "l=10,v=[1,100]"),
            (100, 10, "l=100,v=[1,10]"),
            (100, 100, "l=100,v=[1,100]"),
        ] {
            let x = random_matrix(l, k, 1, v, 64);
            let w = random_matrix(1, l, 1, v, 65);
            let mpk = authority.feip_public_key(l);
            let mut rng = bench_rng(66);

            let t = Instant::now();
            let enc = EncryptedMatrix::encrypt_columns(&x, &mpk, &mut rng).unwrap();
            let t_enc = t.elapsed();

            let t = Instant::now();
            let keys = derive_dot_keys(&authority, &w).unwrap();
            let t_keys = t.elapsed();

            let t = Instant::now();
            let z1 = secure_dot(&mpk, &enc, &keys, &w, &table, Parallelism::Serial).unwrap();
            let t_serial = t.elapsed();

            let t = Instant::now();
            let z2 = secure_dot(&mpk, &enc, &keys, &w, &table, Parallelism::available()).unwrap();
            let t_parallel = t.elapsed();
            assert_eq!(z1, z2);
            assert_eq!(z1, w.matmul(&x));

            println!(
                "{k:>8} {label:>16} {:>12.2} {:>12.2} {:>14.2} {:>14.2}",
                ms(t_enc),
                ms(t_keys),
                ms(t_serial),
                ms(t_parallel)
            );
        }
    }
}

fn main() {
    let sizes_add = sweep(
        &[256usize, 512, 1024],
        &[2_000, 4_000, 6_000, 8_000, 10_000],
    );
    let sizes_mul = sweep(&[128usize, 256, 512], &[2_000, 4_000, 6_000, 8_000, 10_000]);
    let counts = sweep(&[16usize, 32, 64], &[2_000, 4_000, 6_000, 8_000, 10_000]);

    elementwise_report(BasicOp::Add, "Fig. 3", &sizes_add, 4_000);
    elementwise_report(BasicOp::Mul, "Fig. 4", &sizes_mul, 1_100_000);
    dot_report(&counts);

    println!(
        "\nShape checks vs paper: times scale ~linearly in k; multiplication ≫\n\
         addition (larger dlog range); parallel ≪ serial. Absolute numbers\n\
         differ from the paper's Python+GMP testbed; see EXPERIMENTS.md."
    );
}
