//! Precision ablation (DESIGN.md §7): sweeps the fixed-point scale the
//! paper fixes at two decimals, and reports its effect on encrypted
//! training. The paper asserts two decimals suffice for MNIST-grade
//! accuracy; this quantifies the claim — and shows where one decimal
//! starts to hurt.

use cryptonn_core::{Client, CryptoMlp, CryptoNnConfig};
use cryptonn_data::clinic_dataset;
use cryptonn_fe::{KeyAuthority, PermittedFunctions};
use cryptonn_group::SchnorrGroup;
use cryptonn_matrix::Matrix;
use cryptonn_nn::binary_accuracy;
use cryptonn_smc::FixedPoint;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("ABLATION: fixed-point scale vs encrypted-training accuracy");
    println!("(paper setting: scale 100 = two decimal places)\n");
    let train = clinic_dataset(80, 71);
    let test = clinic_dataset(60, 72);
    let squash = |m: &Matrix<f64>| m.map(|v: f64| (v / 3.0).clamp(-1.0, 1.0));

    println!(
        "{:>8} {:>18} {:>16}",
        "scale", "final loss", "test accuracy"
    );
    for scale in [10u32, 100, 1000] {
        let config = CryptoNnConfig {
            level: cryptonn_bench::bench_level(),
            fp: FixedPoint::new(scale),
            ..CryptoNnConfig::fast()
        };
        let group = SchnorrGroup::precomputed(config.level);
        let authority = KeyAuthority::with_seed(group, PermittedFunctions::all(), 73);
        let mut client = Client::for_mlp(&authority, train.feature_dim(), 1, config.fp, 74);
        let mut rng = StdRng::seed_from_u64(75);
        let mut model = CryptoMlp::binary(train.feature_dim(), &[8], config, &mut rng);

        let mut last_loss = f64::NAN;
        for _ in 0..8 {
            for (x, y) in train.batches(16) {
                let y_bin = Matrix::from_fn(y.rows(), 1, |r, _| y[(r, 1)]);
                let batch = client.encrypt_batch(&squash(&x), &y_bin).unwrap();
                last_loss = model
                    .train_encrypted_batch(&authority, &batch, 1.5)
                    .unwrap()
                    .loss;
            }
        }
        let pred = model.predict_plain(&squash(test.images()));
        let y_test = Matrix::from_fn(test.len(), 1, |r, _| test.labels()[r] as f64);
        let acc = binary_accuracy(&pred, &y_test);
        println!("{scale:>8} {last_loss:>18.4} {:>15.1}%", 100.0 * acc);
    }
    println!("\nObserved: on this task even one decimal place suffices; the paper's");
    println!("two decimals (scale 100) is comfortably inside the safe region, and");
    println!("finer scales buy nothing — supporting the paper's choice.");
}
