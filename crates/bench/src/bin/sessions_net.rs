//! Networked session-layer telemetry — throughput of the concurrent
//! multi-session server over TCP loopback.
//!
//! Spins up the real daemons (the networked key authority and the
//! multi-session training server), then sweeps a grid of
//! `S sessions × K clients`: each grid point runs `S` full federated
//! MLP training sessions concurrently, every client on its own thread
//! over its own loopback socket. Reported per point:
//!
//! - **sessions/sec** — completed training sessions per wall-clock
//!   second;
//! - **steps/sec** — training steps (encrypted batches consumed)
//!   per second across all sessions;
//! - **msgs/sec** — session-protocol wire messages (handshakes,
//!   registrations, parameter/start broadcasts, batches, per-step
//!   deltas, epoch barriers, summaries, and the server↔authority key
//!   traffic) per second.
//!
//! Emits `BENCH_sessions_net.json` (schema
//! `cryptonn.bench.sessions_net/v3`, host provenance included) so CI
//! can archive the trajectory. v3 adds a **recovery** block: a recorded
//! run is re-executed twice — once from step 0 (`full_replay_ms`) and
//! once from its last durable checkpoint plus the transcript suffix
//! (`resume_ms`, `steps_replayed_on_resume`) — quantifying what a
//! crash-resume saves over a from-scratch replay. With `--check-resume`
//! the process exits non-zero unless the resume is strictly cheaper in
//! both time and replayed steps (the CI gate).
//!
//! v4 adds the **wire arm** (DESIGN.md §16): the step-dominant
//! encrypted-batch frame is encoded and decoded under both wire
//! formats (bytes/msg, encode/decode µs), and one full two-client
//! training session is replayed over TCP with the clients speaking
//! json, binary, and a mixed pair on one daemon — all three must
//! produce bit-identical summaries. `--check-wire` gates on the binary
//! frame being smaller than the JSON one at the bench level.
//!
//! v5 adds the **threshold arm** (DESIGN.md §17): the same
//! key-derivation sweep is run against a single authority daemon and
//! against a 2-of-3 share-holder fleet behind the threshold connector —
//! every response must be bit-identical between the two deployments —
//! and the wall-clock overhead of partial derivation, DLEQ validation,
//! and Lagrange recombination is recorded.
//!
//! ```text
//! cargo run --release -p cryptonn-bench --bin sessions_net -- \
//!     [--out BENCH_sessions_net.json] [--check-resume] [--check-wire]
//! ```

use std::sync::Arc;
use std::time::Instant;

use cryptonn_core::Objective;
use cryptonn_data::clinic_dataset;
use cryptonn_fe::{
    febo, BasicOp, FeboKeyRequest, KeyAuthority, PermittedFunctions, ShareSpec, ThresholdSetup,
};
use cryptonn_group::SchnorrGroup;
use cryptonn_matrix::Matrix;
use cryptonn_net::{
    encode_frame_fmt, read_frame_sniff, run_client, AuthorityConnector, AuthorityOptions,
    AuthorityServer, NetMsg, RemoteAuthority, ServerOptions, SessionServer, TcpTransport,
    ThresholdAuthority, WireFormat, DEFAULT_MAX_FRAME,
};
use cryptonn_parallel::Parallelism;
use cryptonn_protocol::{
    replay_server, resume_from_checkpoint, round_robin_shards, CheckpointStore, ClientId,
    ClientSession, EncryptedBatchMsg, FeboKeysRequest, FeipKeysRequest, KeyRequest, MlpSpec,
    ModelSpec, ReplayResolution, SessionConfig, SessionId, TrainingSessionRunner, WireMessage,
};
use cryptonn_smc::FixedPoint;
use serde::Serialize;

fn session_config(clients: u32, feature_dim: usize, classes: usize) -> SessionConfig {
    SessionConfig {
        level: cryptonn_bench::bench_level(),
        fp: FixedPoint::TWO_DECIMALS,
        grad_fp: FixedPoint::new(10_000),
        permitted: PermittedFunctions::all(),
        model: ModelSpec::Mlp(MlpSpec {
            feature_dim,
            hidden: vec![6],
            classes,
            objective: Objective::SoftmaxCrossEntropy,
        }),
        lr: 1.0,
        epochs: 1,
        batch_size: 8,
        clients,
        authority_seed: 901,
        model_seed: 902,
        client_seed_base: 903,
        policy: cryptonn_protocol::SessionPolicy::FailFast,
    }
}

#[derive(Debug, Clone, Serialize)]
struct Measurement {
    sessions: usize,
    clients_per_session: u32,
    steps_per_session: u64,
    wall_ms: f64,
    sessions_per_sec: f64,
    steps_per_sec: f64,
    msgs_per_sec: f64,
    /// Total session-protocol messages exchanged, all transports.
    messages: u64,
}

/// Time-to-recover telemetry: replaying a recorded run from scratch vs
/// resuming it from its last durable checkpoint plus the transcript
/// suffix.
#[derive(Debug, Clone, Serialize)]
struct Recovery {
    clients: u32,
    steps_total: u64,
    checkpoint_step: u64,
    steps_replayed_on_resume: u64,
    full_replay_ms: f64,
    resume_ms: f64,
    speedup: f64,
}

/// One format's codec microbench over the step-dominant training frame
/// — a full `EncryptedBatchMsg` at the bench security level, pushed
/// through the real frame path.
#[derive(Debug, Clone, Serialize)]
struct WireCodecArm {
    format: String,
    /// Encoded frame payload size (the 4-byte length header excluded).
    payload_bytes: u64,
    encode_us: f64,
    decode_us: f64,
}

/// One client-dialect replay of the same two-client training session
/// over TCP loopback.
#[derive(Debug, Clone, Serialize)]
struct WireTrainingArm {
    /// `"json"`, `"binary"`, or `"mixed"` (one client each).
    dialect: String,
    wall_ms: f64,
    steps_per_sec: f64,
}

/// The wire-format comparison (schema v4, DESIGN.md §16).
#[derive(Debug, Serialize)]
struct WireBench {
    codec: Vec<WireCodecArm>,
    /// json over binary payload bytes on the encrypted-batch frame —
    /// the `--check-wire` gate.
    byte_reduction: f64,
    training: Vec<WireTrainingArm>,
    /// Binary over json training steps/s.
    binary_over_json: f64,
}

/// One authority deployment's key-derivation sweep over TCP loopback.
#[derive(Debug, Clone, Serialize)]
struct ThresholdArm {
    /// `"single"` or `"threshold-2of3"`.
    deployment: String,
    /// FEIP + FEBO keys derived over the sweep.
    keys: u64,
    wall_ms: f64,
    keys_per_sec: f64,
}

/// Single authority vs 2-of-3 threshold key derivation (schema v5,
/// DESIGN.md §17).
#[derive(Debug, Serialize)]
struct ThresholdBench {
    arms: Vec<ThresholdArm>,
    /// Threshold-over-single wall-time ratio — the price of partial
    /// derivation, DLEQ validation, and Lagrange recombination.
    overhead: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    schema: String,
    generated_by: String,
    host: cryptonn_bench::HostInfo,
    level: String,
    samples_per_session: usize,
    batch_size: u32,
    measurements: Vec<Measurement>,
    recovery: Recovery,
    /// json vs binary wire codec on the training path (schema v4).
    wire: WireBench,
    /// single vs threshold authority key derivation (schema v5).
    threshold: ThresholdBench,
}

/// The middle element of `xs`, destructively.
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Counts the wire messages one grid point exchanges. Derived from the
/// protocol, not sniffed: per session of K clients and B batches —
/// K hellos + K configs (driver-side) are excluded as transport
/// framing; counted are K registrations, K public-params deliveries,
/// 1 start, B batches, B deltas broadcast to K clients, E epoch
/// barriers × K, 1 summary × K, plus the authority leg: 1 hello,
/// 1 params, and 2 frames per key exchange.
fn messages_per_session(k: u64, batches: u64, epochs: u64, key_exchanges: u64) -> u64 {
    let b = batches * epochs;
    k          // Register
        + k    // PublicParams per member
        + k    // Start per member
        + b    // Batch
        + b * k // Delta broadcasts
        + epochs * k // Epoch barriers
        + k    // Summary per member
        + 2    // authority hello + params
        + 2 * key_exchanges
}

/// Records one session with periodic checkpoints, then times a full
/// replay against a checkpoint resume of the same transcript, asserting
/// both reproduce the recorded summary bit-for-bit.
fn measure_recovery(config: &SessionConfig, data: &cryptonn_data::Dataset) -> Recovery {
    let dir = std::env::temp_dir().join(format!("cryptonn-bench-ckpt-{}", std::process::id()));
    let store = CheckpointStore::new(&dir);
    let session = SessionId(0);
    let batches = (data.len() as u64).div_ceil(u64::from(config.batch_size));
    let steps_total = batches * u64::from(config.epochs);
    // Checkpoint cadence ≈ every quarter of the run: the last clean cut
    // before the summary is what the resume starts from.
    let every = (steps_total / 4).max(1);
    let outcome = TrainingSessionRunner::new(config.clone())
        .with_checkpoints(store.clone(), session, every)
        .run_mlp(data)
        .expect("recorded run");
    let ckpt = store.load(session, config).expect("checkpoint on disk");

    let start = Instant::now();
    let full = replay_server(&outcome.transcript).expect("full replay");
    let full_replay_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(full.matches_recording(), "full replay diverged");

    let start = Instant::now();
    let resumed = resume_from_checkpoint(&outcome.transcript, &ckpt).expect("resume replay");
    let resume_ms = start.elapsed().as_secs_f64() * 1e3;
    match resumed {
        ReplayResolution::Completed(outcome) => {
            assert!(outcome.matches_recording(), "resume replay diverged")
        }
        ReplayResolution::Resume(_) => panic!("resume replay did not reach the summary"),
    }

    let _ = std::fs::remove_dir_all(&dir);
    Recovery {
        clients: config.clients,
        steps_total,
        checkpoint_step: ckpt.next_step,
        steps_replayed_on_resume: steps_total - ckpt.next_step,
        full_replay_ms,
        resume_ms,
        speedup: full_replay_ms / resume_ms.max(1e-9),
    }
}

/// Encodes and decodes the frame that dominates a training session's
/// traffic — one `EncryptedBatchMsg` carrying a full batch of
/// ciphertext features and labels at the bench level — under both wire
/// formats. Returns the per-arm stats and the json-over-binary payload
/// byte ratio.
fn measure_wire_codec(
    config: &SessionConfig,
    data: &cryptonn_data::Dataset,
) -> (Vec<WireCodecArm>, f64) {
    let group = SchnorrGroup::precomputed(config.level);
    let authority = KeyAuthority::with_seed(group, config.permitted, config.authority_seed);
    let mut encryptor = cryptonn_core::Client::for_mlp(
        &authority,
        data.feature_dim(),
        data.classes(),
        config.fp,
        config.client_seed_base,
    );
    let rows = config.batch_size as usize;
    let x = Matrix::from_fn(rows, data.feature_dim(), |r, c| {
        ((r * 31 + c * 7) % 97) as f64 / 97.0
    });
    let y = Matrix::from_fn(rows, data.classes(), |r, c| {
        if r % data.classes() == c {
            1.0
        } else {
            0.0
        }
    });
    let msg = NetMsg::Msg(WireMessage::Batch(EncryptedBatchMsg {
        client: ClientId(0),
        step: 0,
        gen: 0,
        batch: encryptor
            .encrypt_batch(&x, &y)
            .expect("encrypt the codec probe"),
    }));

    let reps = 32;
    let mut arms = Vec::new();
    for format in [WireFormat::Json, WireFormat::Binary] {
        let frame = encode_frame_fmt(&msg, DEFAULT_MAX_FRAME, format).expect("encode probe");
        let payload_bytes = (frame.len() - 4) as u64;
        let mut encode_us = Vec::with_capacity(reps);
        let mut decode_us = Vec::with_capacity(reps);
        // One untimed round warms the allocator and the code paths.
        for timed in [false, true] {
            for _ in 0..reps {
                let t0 = Instant::now();
                let encoded =
                    encode_frame_fmt(&msg, DEFAULT_MAX_FRAME, format).expect("encode probe");
                let e = t0.elapsed().as_secs_f64() * 1e6;
                assert_eq!(encoded.len(), frame.len());
                let t1 = Instant::now();
                let decoded = read_frame_sniff::<_, NetMsg>(&mut &encoded[..], DEFAULT_MAX_FRAME)
                    .expect("decode probe")
                    .expect("one whole frame");
                let d = t1.elapsed().as_secs_f64() * 1e6;
                assert_eq!(decoded.1, format);
                assert_eq!(decoded.0, msg);
                if timed {
                    encode_us.push(e);
                    decode_us.push(d);
                }
            }
        }
        let arm = WireCodecArm {
            format: format.name().into(),
            payload_bytes,
            encode_us: median(&mut encode_us),
            decode_us: median(&mut decode_us),
        };
        println!(
            "wire codec {:6}: {:6} bytes/msg  encode {:7.2} us  decode {:7.2} us",
            arm.format, arm.payload_bytes, arm.encode_us, arm.decode_us
        );
        arms.push(arm);
    }
    let reduction = arms[0].payload_bytes as f64 / arms[1].payload_bytes as f64;
    println!("wire codec: binary is {reduction:.2}x smaller on the encrypted-batch frame");
    (arms, reduction)
}

/// Runs one full two-client training session over TCP with each
/// client's wire format chosen by `wire_of`, returning the arm stats
/// and the (identical) member summary.
fn run_wire_training_arm(
    dialect: &str,
    authority_addr: std::net::SocketAddr,
    session: SessionId,
    config: &SessionConfig,
    data: &cryptonn_data::Dataset,
    wire_of: fn(usize) -> WireFormat,
) -> (WireTrainingArm, cryptonn_protocol::SessionSummary) {
    let server = SessionServer::start(
        "127.0.0.1:0",
        Arc::new(RemoteAuthority::new(authority_addr)),
        ServerOptions {
            pool_threads: config.clients as usize + 8,
            ..ServerOptions::default()
        },
    )
    .expect("session server binds");
    let addr = server.local_addr();
    let shards = round_robin_shards(data, config.batch_size as usize, config.clients as usize);
    let batches = (data.len() as u64).div_ceil(u64::from(config.batch_size));
    let steps = batches * u64::from(config.epochs);

    let start = Instant::now();
    let clients: Vec<_> = shards
        .into_iter()
        .enumerate()
        .map(|(c, shard)| {
            let config = config.clone();
            std::thread::spawn(move || {
                let sm = ClientSession::new(
                    ClientId(c as u32),
                    config.client_seed_base + c as u64,
                    Parallelism::Serial,
                    shard,
                );
                let transport = TcpTransport::connect(addr, DEFAULT_MAX_FRAME).expect("connect");
                transport.set_wire_format(wire_of(c));
                run_client(transport, session, sm, &config).expect("session completes")
            })
        })
        .collect();
    let mut summaries: Vec<_> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    let wall = start.elapsed().as_secs_f64();
    server.shutdown();

    let summary = summaries.pop().expect("at least one member");
    for other in &summaries {
        assert_eq!(other, &summary, "members disagree within the {dialect} arm");
    }
    let arm = WireTrainingArm {
        dialect: dialect.into(),
        wall_ms: wall * 1e3,
        steps_per_sec: steps as f64 / wall,
    };
    println!(
        "wire training {dialect:6}: {:8.1} ms wall, {:6.1} steps/s",
        arm.wall_ms, arm.steps_per_sec
    );
    (arm, summary)
}

/// The wire arm: codec microbench plus the same training session
/// replayed under the json, binary, and mixed client dialects — every
/// replay must produce bit-identical summaries.
fn measure_wire(config: &SessionConfig, data: &cryptonn_data::Dataset) -> WireBench {
    let (codec, byte_reduction) = measure_wire_codec(config, data);

    let authority = AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default())
        .expect("authority daemon binds for the wire arm");
    let (json_arm, json_summary) = run_wire_training_arm(
        "json",
        authority.local_addr(),
        SessionId(900_000),
        config,
        data,
        |_| WireFormat::Json,
    );
    let (binary_arm, binary_summary) = run_wire_training_arm(
        "binary",
        authority.local_addr(),
        SessionId(900_001),
        config,
        data,
        |_| WireFormat::Binary,
    );
    let (mixed_arm, mixed_summary) = run_wire_training_arm(
        "mixed",
        authority.local_addr(),
        SessionId(900_002),
        config,
        data,
        |c| {
            if c % 2 == 0 {
                WireFormat::Binary
            } else {
                WireFormat::Json
            }
        },
    );
    authority.shutdown();
    assert_eq!(
        binary_summary, json_summary,
        "binary-dialect training must be bit-identical to json"
    );
    assert_eq!(
        mixed_summary, json_summary,
        "mixed-dialect training must be bit-identical to json"
    );

    let binary_over_json = binary_arm.steps_per_sec / json_arm.steps_per_sec;
    println!("wire training: binary dialect at {binary_over_json:.2}x the json arm");
    WireBench {
        codec,
        byte_reduction,
        training: vec![json_arm, binary_arm, mixed_arm],
        binary_over_json,
    }
}

/// One deployment's key-derivation sweep: alternating batched FEIP and
/// FEBO requests through the connector's authority channel, exactly
/// the traffic a training server generates. Returns the timing arm and
/// the raw responses so the caller can assert deployment bit-identity.
fn run_threshold_arm(
    deployment: &str,
    connector: &dyn AuthorityConnector,
    session: SessionId,
    config: &SessionConfig,
    data: &cryptonn_data::Dataset,
) -> (ThresholdArm, Vec<cryptonn_protocol::KeyResponse>) {
    let (params, mut channel) = connector
        .connect(session, config)
        .expect("authority connect for the threshold arm");
    let dim = data.feature_dim();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(905);
    let reps = 12usize;
    let sweeps: Vec<(KeyRequest, KeyRequest)> = (0..reps)
        .map(|r| {
            let ys: Vec<Vec<i64>> = (0..4)
                .map(|k| (0..dim).map(|i| ((i + k + r) % 7) as i64 - 3).collect())
                .collect();
            let reqs: Vec<FeboKeyRequest> =
                [BasicOp::Add, BasicOp::Sub, BasicOp::Mul, BasicOp::Div]
                    .into_iter()
                    .enumerate()
                    .map(|(k, op)| FeboKeyRequest {
                        cmt: *febo::encrypt(&params.febo_mpk, (r * 4 + k) as i64, &mut rng)
                            .commitment(),
                        op,
                        y: 1 + (r + k) as i64,
                    })
                    .collect();
            (
                KeyRequest::Feip(FeipKeysRequest { dim, ys }),
                KeyRequest::Febo(FeboKeysRequest { reqs }),
            )
        })
        .collect();

    let keys = (reps * 8) as u64;
    let start = Instant::now();
    let mut responses = Vec::with_capacity(reps * 2);
    for (feip, febo) in sweeps {
        responses.push(channel.exchange(feip).expect("FEIP derivation"));
        responses.push(channel.exchange(febo).expect("FEBO derivation"));
    }
    let wall = start.elapsed().as_secs_f64();
    let arm = ThresholdArm {
        deployment: deployment.into(),
        keys,
        wall_ms: wall * 1e3,
        keys_per_sec: keys as f64 / wall,
    };
    println!(
        "threshold {:15}: {:8.1} ms wall, {:7.1} keys/s",
        arm.deployment, arm.wall_ms, arm.keys_per_sec
    );
    (arm, responses)
}

/// The threshold arm: the same derivation sweep against a single
/// authority daemon and against a 2-of-3 share-holder fleet — every
/// response bit-identical, the overhead recorded.
fn measure_threshold(config: &SessionConfig, data: &cryptonn_data::Dataset) -> ThresholdBench {
    let single_daemon = AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default())
        .expect("single authority binds");
    let single = RemoteAuthority::new(single_daemon.local_addr());
    let (single_arm, single_responses) =
        run_threshold_arm("single", &single, SessionId(910_000), config, data);
    single_daemon.shutdown();

    let setup = ThresholdSetup::new(3, 2).expect("2-of-3");
    let share_daemons: Vec<AuthorityServer> = (1..=3)
        .map(|i| {
            let spec = ShareSpec::new(setup, i).expect("index in range");
            AuthorityServer::start("127.0.0.1:0", AuthorityOptions::share_node(spec))
                .expect("share daemon binds")
        })
        .collect();
    let fleet = ThresholdAuthority::new(
        share_daemons.iter().map(|d| d.local_addr()).collect(),
        setup,
    );
    let (threshold_arm, threshold_responses) =
        run_threshold_arm("threshold-2of3", &fleet, SessionId(910_001), config, data);
    for d in share_daemons {
        d.shutdown();
    }

    assert_eq!(
        threshold_responses, single_responses,
        "threshold-derived keys must be bit-identical to the single authority's"
    );
    let overhead = threshold_arm.wall_ms / single_arm.wall_ms.max(1e-9);
    println!("threshold: 2-of-3 derivation at {overhead:.2}x the single authority");
    ThresholdBench {
        arms: vec![single_arm, threshold_arm],
        overhead,
    }
}

fn main() {
    let mut out_path = "BENCH_sessions_net.json".to_string();
    let mut check_resume = false;
    let mut check_wire = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out requires a path"),
            "--check-resume" => check_resume = true,
            "--check-wire" => check_wire = true,
            other => panic!("unknown argument {other}"),
        }
    }

    let samples = if cryptonn_bench::full_scale() { 64 } else { 32 };
    let data = clinic_dataset(samples, 301);
    let grid: &[(usize, u32)] = if cryptonn_bench::full_scale() {
        &[(1, 1), (1, 2), (2, 2), (4, 2), (4, 4), (8, 2)]
    } else {
        &[(1, 1), (2, 2), (4, 2)]
    };

    let authority = AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default())
        .expect("authority daemon binds");
    let mut measurements = Vec::new();

    for (point, &(s, k)) in grid.iter().enumerate() {
        // The authority daemon outlives every grid point and keys its
        // per-session state by id: ids must be globally unique.
        let session_base = (point as u64) * 1_000;
        let server = SessionServer::start(
            "127.0.0.1:0",
            Arc::new(RemoteAuthority::new(authority.local_addr())),
            ServerOptions {
                max_sessions: s.max(8),
                pool_threads: (s as u32 * k) as usize + 8,
                ..ServerOptions::default()
            },
        )
        .expect("session server binds");
        let addr = server.local_addr();
        let config = session_config(k, data.feature_dim(), data.classes());
        let batches = (samples as u64).div_ceil(u64::from(config.batch_size));
        let steps_per_session = batches * u64::from(config.epochs);

        let start = Instant::now();
        let sessions: Vec<_> = (0..s)
            .map(|i| {
                let config = config.clone();
                let data = data.clone();
                std::thread::spawn(move || {
                    let shards = round_robin_shards(
                        &data,
                        config.batch_size as usize,
                        config.clients as usize,
                    );
                    let clients: Vec<_> = shards
                        .into_iter()
                        .enumerate()
                        .map(|(c, shard)| {
                            let config = config.clone();
                            std::thread::spawn(move || {
                                let sm = ClientSession::new(
                                    ClientId(c as u32),
                                    config.client_seed_base + c as u64,
                                    Parallelism::Serial,
                                    shard,
                                );
                                let transport = TcpTransport::connect(addr, DEFAULT_MAX_FRAME)
                                    .expect("connect");
                                run_client(
                                    transport,
                                    SessionId(session_base + i as u64),
                                    sm,
                                    &config,
                                )
                                .expect("session completes")
                            })
                        })
                        .collect();
                    for c in clients {
                        let summary = c.join().expect("client thread");
                        assert_eq!(summary.steps, steps_per_session, "wrong step count");
                    }
                })
            })
            .collect();
        for session in sessions {
            session.join().expect("session thread");
        }
        let wall = start.elapsed();
        server.shutdown();

        // Key exchanges per MLP step: one FEIP batch (layer-1 keys +
        // unit keys are batched) and one FEBO batch per step is the
        // dominant pattern; measure instead of guessing by running the
        // in-process runner and counting its recorded key requests.
        let key_exchanges = {
            let outcome = cryptonn_protocol::TrainingSessionRunner::new(config.clone())
                .run_mlp(&data)
                .expect("baseline run");
            outcome.transcript.of_kind("key-request").count() as u64
        };
        let msgs = (s as u64)
            * messages_per_session(
                u64::from(k),
                batches,
                u64::from(config.epochs),
                key_exchanges,
            );
        let secs = wall.as_secs_f64();
        measurements.push(Measurement {
            sessions: s,
            clients_per_session: k,
            steps_per_session,
            wall_ms: secs * 1e3,
            sessions_per_sec: s as f64 / secs,
            steps_per_sec: (s as f64) * (steps_per_session as f64) / secs,
            msgs_per_sec: msgs as f64 / secs,
            messages: msgs,
        });
        let m = measurements.last().expect("just pushed");
        println!(
            "S={s} K={k}: {:.1} ms wall, {:.2} sessions/s, {:.1} steps/s, {:.0} msgs/s",
            m.wall_ms, m.sessions_per_sec, m.steps_per_sec, m.msgs_per_sec
        );
    }
    authority.shutdown();

    let recovery = measure_recovery(
        &session_config(2, data.feature_dim(), data.classes()),
        &data,
    );
    println!(
        "recovery: {} steps total, checkpoint at {}, replay {:.1} ms full vs {:.1} ms resumed \
         ({:.1}x)",
        recovery.steps_total,
        recovery.checkpoint_step,
        recovery.full_replay_ms,
        recovery.resume_ms,
        recovery.speedup
    );
    if check_resume {
        assert!(
            recovery.steps_replayed_on_resume < recovery.steps_total,
            "resume replayed the whole run: {} of {} steps",
            recovery.steps_replayed_on_resume,
            recovery.steps_total
        );
        assert!(
            recovery.resume_ms < recovery.full_replay_ms,
            "resume ({:.1} ms) was no faster than a full replay ({:.1} ms)",
            recovery.resume_ms,
            recovery.full_replay_ms
        );
    }

    let wire = measure_wire(
        &session_config(2, data.feature_dim(), data.classes()),
        &data,
    );

    let threshold = measure_threshold(
        &session_config(2, data.feature_dim(), data.classes()),
        &data,
    );

    let report = Report {
        schema: "cryptonn.bench.sessions_net/v5".into(),
        generated_by: "cargo run --release -p cryptonn-bench --bin sessions_net".into(),
        host: cryptonn_bench::host_info(),
        level: format!("{:?}", cryptonn_bench::bench_level()),
        samples_per_session: samples,
        batch_size: 8,
        measurements,
        recovery,
        wire,
        threshold,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write telemetry JSON");
    println!("wrote {out_path}");

    if check_wire {
        assert!(
            report.wire.byte_reduction > 1.0,
            "wire gate: the binary encrypted-batch frame ({:.2}x reduction) must be smaller \
             than the JSON one",
            report.wire.byte_reduction
        );
    }
}
