//! Fig. 6 + Table III — the CryptoCNN vs LeNet training comparison.
//!
//! Trains an encrypted CryptoCNN and an identically-initialized
//! plaintext LeNet twin on the synthetic digit dataset, printing
//! (a) the Fig. 6 series — average batch accuracy per iteration bucket
//! for both arms — and (b) the Table III rows — test accuracy after each
//! epoch plus total training time for both arms.
//!
//! Default scale: the 14×14 `lenet_small` topology, 4 classes, 2 epochs
//! (minutes). `CRYPTONN_BENCH_FULL=1` runs the paper's geometry — full
//! LeNet-5 on 28×28 digits, 10 classes, batch 64 — which, like the
//! paper's own 57-hour run, takes a very long time.

use std::time::Instant;

use cryptonn_bench::full_scale;
use cryptonn_core::{Client, CryptoCnn, CryptoNnConfig};
use cryptonn_data::{synthetic_digits, DigitConfig};
use cryptonn_fe::{KeyAuthority, PermittedFunctions};
use cryptonn_group::SchnorrGroup;
use cryptonn_matrix::{Matrix, Tensor4};
use cryptonn_nn::{accuracy, one_hot};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Scale {
    classes: usize,
    img: usize,
    train: usize,
    test: usize,
    batch: usize,
    epochs: usize,
    bucket: usize,
    lr: f64,
}

fn main() {
    let scale = if full_scale() {
        Scale {
            classes: 10,
            img: 28,
            train: 6_000,
            test: 1_000,
            batch: 64,
            epochs: 2,
            bucket: 50,
            lr: 0.3,
        }
    } else {
        Scale {
            classes: 4,
            img: 14,
            train: 320,
            test: 80,
            batch: 8,
            epochs: 2,
            bucket: 5,
            lr: 0.3,
        }
    };
    let digit_config = if full_scale() {
        DigitConfig::mnist_like()
    } else {
        DigitConfig::small()
    };

    let config = CryptoNnConfig {
        level: cryptonn_bench::bench_level(),
        ..CryptoNnConfig::fast()
    };
    let group = SchnorrGroup::precomputed(config.level);
    let authority = KeyAuthority::with_seed(group, PermittedFunctions::all(), 901);

    // Datasets (filtered to the class subset at demo scale).
    let train_all = synthetic_digits(scale.train * 10 / scale.classes.min(10), digit_config, 902);
    let test_all = synthetic_digits(scale.test * 10 / scale.classes.min(10), digit_config, 903);
    let filter = |d: &cryptonn_data::Dataset, n: usize| -> (Matrix<f64>, Vec<usize>) {
        let idx: Vec<usize> = (0..d.len())
            .filter(|&i| d.labels()[i] < scale.classes)
            .take(n)
            .collect();
        let images = Matrix::from_fn(idx.len(), d.feature_dim(), |r, c| d.images()[(idx[r], c)]);
        let labels = idx.iter().map(|&i| d.labels()[i]).collect();
        (images, labels)
    };
    let (train_x, train_y) = filter(&train_all, scale.train);
    let (test_x, test_y) = filter(&test_all, scale.test);
    println!(
        "Fig. 6 / Table III harness: {} train / {} test digits, {} classes, {}x{} px, batch {}, {} epochs",
        train_x.rows(), test_x.rows(), scale.classes, scale.img, scale.img, scale.batch, scale.epochs
    );

    // Identically-seeded twins.
    let mut rng_a = StdRng::seed_from_u64(904);
    let mut rng_b = StdRng::seed_from_u64(904);
    let (mut crypto, mut plain) = if full_scale() {
        (
            CryptoCnn::lenet5(config, &mut rng_a),
            CryptoCnn::lenet5(config, &mut rng_b),
        )
    } else {
        (
            CryptoCnn::lenet_small(config, scale.classes, &mut rng_a),
            CryptoCnn::lenet_small(config, scale.classes, &mut rng_b),
        )
    };
    let spec = crypto.conv_spec();
    let mut client = Client::for_cnn(&authority, &spec, 1, scale.classes, config.fp, 905)
        .with_parallelism(config.parallelism);

    let y_test = one_hot(&test_y, scale.classes);
    let mut fig6: Vec<(usize, f64, f64)> = Vec::new();
    let mut table3: Vec<(usize, f64, f64)> = Vec::new();
    let (mut t_crypto, mut t_plain) = (std::time::Duration::ZERO, std::time::Duration::ZERO);

    let mut iteration = 0usize;
    let (mut acc_c, mut acc_p, mut in_bucket) = (0.0, 0.0, 0usize);
    for epoch in 0..scale.epochs {
        let mut start = 0;
        while start < train_x.rows() {
            let end = (start + scale.batch).min(train_x.rows());
            let n = end - start;
            let x_flat = Matrix::from_fn(n, train_x.cols(), |r, c| train_x[(start + r, c)]);
            let labels: Vec<usize> = train_y[start..end].to_vec();
            let y = one_hot(&labels, scale.classes);
            let images = Tensor4::from_flat(&x_flat, 1, scale.img, scale.img);

            let t = Instant::now();
            let batch = client.encrypt_image_batch(&images, &y, &spec).unwrap();
            let step_c = crypto
                .train_encrypted_batch(&authority, &batch, scale.lr)
                .unwrap();
            t_crypto += t.elapsed();

            let t = Instant::now();
            let step_p = plain.train_plain_batch(&x_flat, &y, scale.lr);
            t_plain += t.elapsed();

            acc_c += accuracy(&step_c.predictions, &y);
            acc_p += accuracy(&step_p.predictions, &y);
            in_bucket += 1;
            iteration += 1;
            if in_bucket == scale.bucket {
                fig6.push((
                    iteration,
                    acc_c / in_bucket as f64,
                    acc_p / in_bucket as f64,
                ));
                acc_c = 0.0;
                acc_p = 0.0;
                in_bucket = 0;
            }
            start = end;
        }
        // Table III: test accuracy after this epoch.
        let acc_crypto = accuracy(&crypto.predict_plain(&test_x), &y_test);
        let acc_plain = accuracy(&plain.predict_plain(&test_x), &y_test);
        table3.push((epoch + 1, acc_crypto, acc_plain));
        println!(
            "epoch {} done: test acc CryptoCNN {:.4}, LeNet {:.4}",
            epoch + 1,
            acc_crypto,
            acc_plain
        );
    }
    if in_bucket > 0 {
        fig6.push((
            iteration,
            acc_c / in_bucket as f64,
            acc_p / in_bucket as f64,
        ));
    }

    println!(
        "\n=== Fig. 6: average batch accuracy per {}-iteration bucket ===",
        scale.bucket
    );
    println!(
        "{:>10} {:>16} {:>16}",
        "iteration", "CryptoCNN", "LeNet (plain)"
    );
    for (it, c, p) in &fig6 {
        println!("{it:>10} {c:>16.4} {p:>16.4}");
    }

    println!("\n=== Table III: accuracy and training time ===");
    println!(
        "{:<12} {:>14} {:>14} {:>16}",
        "model", "epoch 1 (acc)", "epoch 2 (acc)", "training time"
    );
    let get = |arm: usize, e: usize| {
        table3
            .get(e)
            .map(|r| if arm == 0 { r.1 } else { r.2 })
            .unwrap_or(f64::NAN)
    };
    println!(
        "{:<12} {:>13.2}% {:>13.2}% {:>16}",
        "LeNet-5",
        100.0 * get(1, 0),
        100.0 * get(1, 1),
        format!("{:.1?}", t_plain)
    );
    println!(
        "{:<12} {:>13.2}% {:>13.2}% {:>16}",
        "CryptoCNN",
        100.0 * get(0, 0),
        100.0 * get(0, 1),
        format!("{:.1?}", t_crypto)
    );
    println!(
        "\npaper (256-bit group, 60k MNIST): LeNet-5 93.04%/95.48% in 4h;\n\
         CryptoCNN 93.12%/95.49% in 57h (≈14× slower). Shape to check here:\n\
         near-identical accuracies, encrypted arm slower by an order of\n\
         magnitude (crypto time / plain time = {:.1}x).",
        t_crypto.as_secs_f64() / t_plain.as_secs_f64().max(1e-9)
    );
}
