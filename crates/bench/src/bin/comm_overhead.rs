//! §IV-B2 communication overhead of key generation.
//!
//! The paper's analysis: for a two-class NN with k first-layer units
//! over X^{m×n}, each training iteration sends k·n·|w| bytes to the
//! authority and receives k·|sk| bytes. This binary prints the analytic
//! table and then *measures* the same quantities from the authority's
//! key-request log during a real encrypted training run.

use cryptonn_bench::fixture;
use cryptonn_core::{Client, CryptoMlp, CryptoNnConfig};
use cryptonn_fe::{KEY_BYTES, WEIGHT_BYTES};
use cryptonn_matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("COMMUNICATION OVERHEAD OF KEY GENERATION (paper §IV-B2)\n");
    println!("analytic model: per iteration the server sends k·n·|w| and receives k·|sk|");
    println!("with |w| = {WEIGHT_BYTES} B and |sk| = {KEY_BYTES} B\n");
    println!(
        "{:>6} {:>6} {:>14} {:>14}",
        "k", "n", "sent (B)", "received (B)"
    );
    for (k, n) in [(8usize, 16usize), (16, 64), (64, 256), (120, 784)] {
        println!(
            "{k:>6} {n:>6} {:>14} {:>14}",
            k * n * WEIGHT_BYTES as usize,
            k * KEY_BYTES as usize
        );
    }

    // Measured: one encrypted-training iteration of an 8-unit MLP on
    // 16-feature data (k = 8, n = 16).
    let (_, authority) = fixture(701);
    let config = CryptoNnConfig {
        level: cryptonn_bench::bench_level(),
        ..CryptoNnConfig::fast()
    };
    let (k, n, m) = (8usize, 16usize, 4usize);
    let mut client = Client::for_mlp(&authority, n, 1, config.fp, 702);
    let mut rng = StdRng::seed_from_u64(703);
    let mut model = CryptoMlp::binary(n, &[k], config, &mut rng);
    let x = Matrix::from_fn(m, n, |r, c| ((r + c) % 10) as f64 / 10.0);
    let y = Matrix::from_fn(m, 1, |r, _| (r % 2) as f64);
    let batch = client.encrypt_batch(&x, &y).unwrap();

    // First iteration includes the one-time unit-key derivation for the
    // secure gradient; iterate twice and report the steady state.
    model
        .train_encrypted_batch(&authority, &batch, 0.5)
        .unwrap();
    authority.reset_comm_log();
    model
        .train_encrypted_batch(&authority, &batch, 0.5)
        .unwrap();
    let log = authority.comm_log();

    println!("\nmeasured (k = {k}, n = {n}, batch = {m}, steady-state iteration):");
    println!("  FEIP key requests: {}", log.ip_requests);
    println!(
        "  FEBO key requests: {} (secure P − Y evaluation, one per output cell)",
        log.bo_requests
    );
    println!("  bytes sent to authority:   {}", log.bytes_received());
    println!("  bytes received from authority: {}", log.bytes_sent());
    println!(
        "\nanalytic k·n·|w| = {} B for the feed-forward keys — the measured total\n\
         adds the per-sample loss keys and per-cell evaluation keys that the\n\
         paper's simplified model omits.",
        k * n * WEIGHT_BYTES as usize
    );
}
