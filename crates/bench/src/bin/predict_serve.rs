//! Encrypted inference serving telemetry — throughput and latency of
//! the `InferenceServer` over TCP loopback, with the functional-key
//! cache on and off.
//!
//! For each grid point (`clients × batch-size`, per security level) the
//! harness spins up the real daemons (networked key authority +
//! inference server), pre-encrypts every request outside the timed
//! loop, then has each client thread run its requests synchronously,
//! recording per-request latency. Two arms per point:
//!
//! - **cache_off** — the status-quo serving path: coalescing window 1
//!   and a zero-capacity key cache, so every request is its own secure
//!   sweep and re-derives the frozen model's FEIP keys through the
//!   remote authority;
//! - **cache_on** — the serving subsystem: requests coalesce (window
//!   `B`) into shared `decrypt_cells` sweeps with a single batched
//!   inversion, and the key cache makes the steady state
//!   authority-free.
//!
//! Both arms serve **bit-identical predictions** (asserted: the
//! deterministic client seeds make the ciphertexts identical across
//! arms, and exact FE decryption makes the outputs identical).
//!
//! Reported per (level, clients, batch, arm): predictions/s, p50/p99
//! request latency, sweep and cache counters; plus the cache-on vs
//! cache-off speedup per point. Emits `BENCH_predict_serve.json`
//! (schema `cryptonn.bench.predict_serve/v3`).
//!
//! The off/on ratio is *bounded* on this workload: FEIP key derivation
//! costs one `q`-sized multiplication per weight element while the
//! decrypt sweep costs ~2 `p`-sized multiplications per element, so
//! even with the wire leg the uncached arm tops out near 2x the cached
//! one (DESIGN.md §12 quantifies this). `--check-speedup X` gates on
//! the measured Bits256 single-client point.
//!
//! The report also times a cold vs warm start of the persisted table
//! cache (generator comb + BSGS tables, DESIGN.md §13);
//! `--check-warm-speedup X` gates the warm-over-cold ratio.
//!
//! Schema v3 adds the **open-loop arm**: a seeded Poisson arrival
//! schedule over hundreds of live connections (thousands under
//! `CRYPTONN_BENCH_FULL=1`), replayed bit-identically against the
//! thread-per-connection `InferenceServer` and the reactor-driven
//! `InferenceFleet` (DESIGN.md §15). Latency is charged against each
//! request's *scheduled* arrival (no coordinated omission), reported as
//! p50/p99/p999; `--check-open-loop X` gates the fleet-over-threadpool
//! served-throughput ratio.
//!
//! Schema v4 adds the **wire arm** (DESIGN.md §16): a codec microbench
//! encodes and decodes the production Bits256 predict frame under both
//! wire formats (bytes/msg plus encode/decode µs — the byte-reduction
//! figure), and the open-loop schedule is replayed two more times
//! against the reactor fleet with the clients pinned to the binary
//! codec and to a mixed json/binary population — all three dialect
//! arms must serve bit-identical predictions. `--check-wire` gates on
//! binary ≥ 1.15x the json open-loop preds/s *or* ≥ 1.8x byte
//! reduction at Bits256.
//!
//! ```text
//! cargo run --release -p cryptonn-bench --bin predict_serve -- \
//!     [--out BENCH_predict_serve.json] [--check-speedup 1.5] \
//!     [--check-warm-speedup 5.0] [--check-open-loop 1.0] [--check-wire]
//! ```

use std::sync::Arc;
use std::time::Instant;

use cryptonn_core::{CryptoMlp, CryptoNnConfig, EncryptedBatch, Objective};
use cryptonn_fe::{KeyAuthority, PermittedFunctions};
use cryptonn_group::{SchnorrGroup, SecurityLevel};
use cryptonn_matrix::Matrix;
use cryptonn_net::{
    encode_frame_fmt, read_frame_sniff, AuthorityOptions, AuthorityServer, FleetOptions,
    InferenceClient, InferenceFleet, InferenceServer, InferenceServerOptions, NetMsg,
    RemoteAuthority, WireFormat, DEFAULT_MAX_FRAME,
};
use cryptonn_parallel::Parallelism;
use cryptonn_protocol::{
    ClientId, InferenceOptions, MlpSpec, ModelSpec, PredictRequest, SessionConfig, SessionId,
    WireMessage,
};
use cryptonn_smc::FixedPoint;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;

const FEATURE_DIM: usize = 784;
const HIDDEN: usize = 16;
const CLASSES: usize = 10;
/// Coalescing window of the cache-on arm.
const COALESCE: usize = 4;

fn serving_config(level: SecurityLevel) -> SessionConfig {
    SessionConfig {
        level,
        fp: FixedPoint::TWO_DECIMALS,
        grad_fp: FixedPoint::new(10_000),
        permitted: PermittedFunctions::all(),
        model: ModelSpec::Mlp(MlpSpec {
            feature_dim: FEATURE_DIM,
            hidden: vec![HIDDEN],
            classes: CLASSES,
            objective: Objective::SoftmaxCrossEntropy,
        }),
        lr: 0.5,
        epochs: 1,
        batch_size: 8,
        clients: 1,
        authority_seed: 7001,
        model_seed: 7002,
        client_seed_base: 7003,
        policy: cryptonn_protocol::SessionPolicy::FailFast,
    }
}

/// The frozen model under service. Serving cost is independent of the
/// weights' history, so the harness freezes an initialized model
/// rather than spending bench time on a training run.
fn frozen_model(config: &SessionConfig) -> CryptoMlp {
    let cc = CryptoNnConfig {
        level: config.level,
        fp: config.fp,
        grad_fp: config.grad_fp,
        parallelism: Parallelism::Serial,
    };
    let mut rng = StdRng::seed_from_u64(config.model_seed);
    CryptoMlp::new(
        FEATURE_DIM,
        &[HIDDEN],
        CLASSES,
        Objective::SoftmaxCrossEntropy,
        cc,
        &mut rng,
    )
}

fn input(client: usize, req: usize, rows: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, FEATURE_DIM, |r, c| {
        ((client * 131 + req * 17 + r * 3 + c) % 97) as f64 / 97.0
    })
}

#[derive(Debug, Clone, Serialize)]
struct Measurement {
    level: String,
    clients: usize,
    batch: usize,
    arm: String,
    requests: u64,
    predictions: u64,
    wall_ms: f64,
    predictions_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    sweeps: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
}

#[derive(Debug, Clone, Serialize)]
struct Speedup {
    level: String,
    clients: usize,
    batch: usize,
    speedup: f64,
}

/// Cold vs warm start of the persisted table cache: building the
/// generator comb + BSGS tables from scratch against reloading them
/// from the fingerprinted on-disk cache.
#[derive(Debug, Clone, Serialize)]
struct WarmStart {
    level: String,
    dlog_bound: u64,
    /// Median cold (build + persist) time across measurement rounds.
    cold_ms: f64,
    /// Median warm (reload) time across measurement rounds.
    warm_ms: f64,
    /// Median of the per-round cold/warm ratios (see
    /// [`measure_warm_start`]); not `cold_ms / warm_ms`.
    warm_speedup: f64,
}

/// One format's codec microbench: the production Bits256 predict frame
/// (one row, the full 784-feature serving geometry) encoded and decoded
/// through the real frame path.
#[derive(Debug, Clone, Serialize)]
struct WireCodecArm {
    format: String,
    /// Encoded frame payload size (the 4-byte length header excluded).
    payload_bytes: u64,
    /// Median single-frame encode time.
    encode_us: f64,
    /// Median single-frame decode time (sniff + parse back to the
    /// typed message).
    decode_us: f64,
}

/// One client-dialect replay of the open-loop schedule against the
/// reactor fleet: every client json, every client binary, or an
/// alternating mixed population on the one daemon.
#[derive(Debug, Clone, Serialize)]
struct WireServeArm {
    /// `"json"`, `"binary"`, or `"mixed"`.
    dialect: String,
    completed: u64,
    predictions_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// The wire-format comparison (schema v4, DESIGN.md §16).
#[derive(Debug, Serialize)]
struct WireBench {
    /// Security level of the codec microbench — the serving geometry's
    /// production level, where hex inflation is at its worst.
    codec_level: String,
    codec: Vec<WireCodecArm>,
    /// json over binary payload bytes on the Bits256 predict frame —
    /// the `--check-wire` byte-reduction leg.
    byte_reduction_bits256: f64,
    serve: Vec<WireServeArm>,
    /// Binary over json open-loop preds/s on the reactor fleet — the
    /// `--check-wire` throughput leg.
    binary_over_json: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    schema: String,
    generated_by: String,
    host: cryptonn_bench::HostInfo,
    feature_dim: usize,
    hidden: usize,
    classes: usize,
    coalesce_window: usize,
    requests_per_client: usize,
    measurements: Vec<Measurement>,
    speedups: Vec<Speedup>,
    /// Cache-on over cache-off predictions/s at Bits256, single
    /// synchronous client, batch 1 — the pure key-cache effect.
    headline_speedup_bits256: f64,
    warm_start: WarmStart,
    /// Poisson-arrival load over many live connections: the reactor
    /// fleet vs the thread-per-connection baseline (schema v3).
    open_loop: OpenLoop,
    /// json vs binary wire codec: frame bytes, codec µs, and the
    /// open-loop dialect replays (schema v4).
    wire: WireBench,
}

/// Stops glibc from returning freed heap pages to the kernel
/// (`mallopt(M_TRIM_THRESHOLD, …)`). The warm-start arms allocate and
/// free a few hundred KiB of table memory per measurement round; with
/// the default trim threshold every round's free shrinks the heap, so
/// the next round re-faults the same pages — and on a virtualized
/// 1-core host those minor faults cost as much as the table load being
/// measured. A long-running server's steady-state heap does not pay
/// them, so neither should the measurement. No-op off glibc.
fn disable_heap_trim() {
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    {
        unsafe extern "C" {
            fn mallopt(param: i32, value: i32) -> i32;
        }
        const M_TRIM_THRESHOLD: i32 = -1;
        unsafe {
            mallopt(M_TRIM_THRESHOLD, i32::MAX);
        }
    }
}

/// The middle element of `xs`, destructively.
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Times the serving-table construction path (generator comb + BSGS
/// table at the serving bound) cold — empty cache directory, tables
/// built and persisted — then warm — same directory, tables reloaded.
///
/// The table path is sub-millisecond, so the measurement defends
/// against system noise rather than averaging over it: heap trimming
/// is disabled (see [`disable_heap_trim`]), one untimed cold+warm
/// cycle warms the allocator and the page cache, the cold tables are
/// dropped before the warm arm so both arms allocate under the same
/// conditions, and the reported speedup is the *median of per-round
/// paired ratios* — cold and warm from the same round share scheduler
/// and allocator state, so a slow round cancels out of its own ratio
/// instead of skewing a cross-round quotient. `cold_ms`/`warm_ms` are
/// per-arm medians, reported for context.
fn measure_warm_start(level: SecurityLevel) -> WarmStart {
    use cryptonn_group::{DlogTable, SchnorrGroup};
    disable_heap_trim();
    // The first-layer serving bound at this geometry (dim-784 rows of
    // two-decimal fixed-point operands), power-of-two rounded the way
    // `DlogTableCache` rounds it.
    let bound = cryptonn_smc::dot_bound(100, 100, FEATURE_DIM).next_power_of_two();
    let base = std::env::temp_dir().join(format!("cryptonn-warmstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // One cold+warm cycle against a fresh directory; returns the two
    // timings with the cold-arm state dropped before the warm arm.
    let cycle = |dir: &std::path::Path| -> (f64, f64) {
        let t0 = Instant::now();
        let group = SchnorrGroup::precomputed_cached(level, dir);
        let table = DlogTable::load_or_build(&group, bound, dir);
        let cold = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(table.bound(), bound);
        drop(table);
        drop(group);

        let t1 = Instant::now();
        let warm_group = SchnorrGroup::precomputed_cached(level, dir);
        let warm_table = DlogTable::load_or_build(&warm_group, bound, dir);
        let warm = t1.elapsed().as_secs_f64() * 1e3;
        let probe = warm_group.exp(&warm_group.scalar_from_i64(-12345));
        assert_eq!(warm_table.solve(&warm_group, &probe), Ok(-12345));
        (cold, warm)
    };

    let (mut colds, mut warms, mut ratios) = (Vec::new(), Vec::new(), Vec::new());
    for round in 0..8 {
        let dir = base.join(format!("r{round}"));
        let (c, w) = cycle(&dir);
        if round > 0 {
            colds.push(c);
            warms.push(w);
            ratios.push(c / w);
        }
    }
    let _ = std::fs::remove_dir_all(&base);

    WarmStart {
        level: format!("{level:?}"),
        dlog_bound: bound,
        cold_ms: median(&mut colds),
        warm_ms: median(&mut warms),
        warm_speedup: median(&mut ratios),
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

struct ArmOutcome {
    m: Measurement,
    outputs: Vec<Vec<Matrix<f64>>>,
}

#[allow(clippy::too_many_arguments)]
fn run_arm(
    level: SecurityLevel,
    authority_addr: std::net::SocketAddr,
    session_id: SessionId,
    clients: usize,
    batch: usize,
    requests_per_client: usize,
    arm: &str,
    options: InferenceOptions,
) -> ArmOutcome {
    let config = serving_config(level);
    let server = InferenceServer::start(
        "127.0.0.1:0",
        session_id,
        &config,
        frozen_model(&config),
        Arc::new(RemoteAuthority::new(authority_addr)),
        InferenceServerOptions {
            session: options,
            pool_threads: clients + 4,
            ..InferenceServerOptions::default()
        },
    )
    .expect("inference server binds");
    let addr = server.local_addr();

    // Connect and pre-encrypt everything outside the timed region; the
    // deterministic seeds make the ciphertexts identical across arms.
    let mut handles = Vec::new();
    let barrier = Arc::new(std::sync::Barrier::new(clients + 1));
    for c in 0..clients {
        let config = config.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = InferenceClient::connect(
                addr,
                session_id,
                ClientId(c as u32),
                &config,
                9000 + c as u64,
                DEFAULT_MAX_FRAME,
            )
            .expect("predict client connects");
            let encrypted: Vec<EncryptedBatch> = (0..requests_per_client)
                .map(|r| {
                    client
                        .encryptor_mut()
                        .encrypt_features(&input(c, r, batch))
                        .expect("encrypt")
                })
                .collect();
            barrier.wait(); // measurement starts once everyone is ready
            let mut latencies = Vec::with_capacity(requests_per_client);
            let mut outputs = Vec::with_capacity(requests_per_client);
            for enc in encrypted {
                let t0 = Instant::now();
                let id = client.send_encrypted(enc).expect("send");
                let p = client.recv_prediction().expect("prediction");
                assert_eq!(p.id, id, "responses arrive in request order");
                latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                outputs.push(p.outputs);
            }
            (latencies, outputs)
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let mut latencies = Vec::new();
    let mut outputs = Vec::new();
    for h in handles {
        let (l, o) = h.join().expect("client thread");
        latencies.extend(l);
        outputs.push(o);
    }
    let wall = start.elapsed().as_secs_f64();

    let sweeps = server.sweeps();
    let cache = server.cache_stats();
    server.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let requests = (clients * requests_per_client) as u64;
    let predictions = requests * batch as u64;
    let m = Measurement {
        level: format!("{level:?}"),
        clients,
        batch,
        arm: arm.into(),
        requests,
        predictions,
        wall_ms: wall * 1e3,
        predictions_per_sec: predictions as f64 / wall,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        sweeps,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_evictions: cache.evictions,
    };
    println!(
        "{:8} C={clients} m={batch} {arm:9}: {:8.1} preds/s  p50 {:6.2} ms  p99 {:6.2} ms  (sweeps {sweeps}, hits {}, misses {})",
        m.level, m.predictions_per_sec, m.p50_ms, m.p99_ms, cache.hits, cache.misses
    );
    ArmOutcome { m, outputs }
}

// ---------------------------------------------------- wire codec arm

/// Encodes and decodes the production predict frame — one Bits256 row
/// of the 784-feature serving geometry, the exact message the grid
/// above moves — under both wire formats, through the real frame path
/// ([`encode_frame_fmt`] / [`read_frame_sniff`]). Returns the per-arm
/// stats and the json-over-binary payload byte ratio.
fn measure_wire_codec() -> (Vec<WireCodecArm>, f64) {
    let config = serving_config(SecurityLevel::Bits256);
    let group = SchnorrGroup::precomputed(config.level);
    let authority = KeyAuthority::with_seed(group, config.permitted, config.authority_seed);
    let mut encryptor = cryptonn_core::Client::for_mlp(
        &authority,
        FEATURE_DIM,
        CLASSES,
        config.fp,
        config.client_seed_base,
    );
    let batch = encryptor
        .encrypt_features(&input(0, 0, 1))
        .expect("encrypt the codec probe");
    let msg = NetMsg::Msg(WireMessage::Predict(PredictRequest { id: 0, batch }));

    let reps = 32;
    let mut arms = Vec::new();
    for format in [WireFormat::Json, WireFormat::Binary] {
        let frame = encode_frame_fmt(&msg, DEFAULT_MAX_FRAME, format).expect("encode probe");
        let payload_bytes = (frame.len() - 4) as u64;
        let mut encode_us = Vec::with_capacity(reps);
        let mut decode_us = Vec::with_capacity(reps);
        // One untimed round warms the allocator and the code paths.
        for timed in [false, true] {
            for _ in 0..reps {
                let t0 = Instant::now();
                let encoded =
                    encode_frame_fmt(&msg, DEFAULT_MAX_FRAME, format).expect("encode probe");
                let e = t0.elapsed().as_secs_f64() * 1e6;
                assert_eq!(encoded.len(), frame.len());
                let t1 = Instant::now();
                let decoded = read_frame_sniff::<_, NetMsg>(&mut &encoded[..], DEFAULT_MAX_FRAME)
                    .expect("decode probe")
                    .expect("one whole frame");
                let d = t1.elapsed().as_secs_f64() * 1e6;
                assert_eq!(decoded.1, format);
                assert_eq!(decoded.0, msg);
                if timed {
                    encode_us.push(e);
                    decode_us.push(d);
                }
            }
        }
        let arm = WireCodecArm {
            format: format.name().into(),
            payload_bytes,
            encode_us: median(&mut encode_us),
            decode_us: median(&mut decode_us),
        };
        println!(
            "wire codec Bits256 {:6}: {:6} bytes/msg  encode {:7.2} us  decode {:7.2} us",
            arm.format, arm.payload_bytes, arm.encode_us, arm.decode_us
        );
        arms.push(arm);
    }
    let reduction = arms[0].payload_bytes as f64 / arms[1].payload_bytes as f64;
    println!("wire codec Bits256: binary is {reduction:.2}x smaller on the predict frame");
    (arms, reduction)
}

// ----------------------------------------------------- open-loop arm

/// Feature width of the open-loop workload. Deliberately small: this
/// arm certifies the *transport* under heavy traffic (the closed-loop
/// grid above already measures the crypto), so the secure sweep is kept
/// cheap enough that connection handling is a visible fraction of the
/// request cost.
const OPEN_FEATURE_DIM: usize = 16;
const OPEN_HIDDEN: usize = 8;
const OPEN_CLASSES: usize = 4;

fn open_loop_config() -> SessionConfig {
    SessionConfig {
        level: SecurityLevel::Bits64,
        fp: FixedPoint::TWO_DECIMALS,
        grad_fp: FixedPoint::new(10_000),
        permitted: PermittedFunctions::all(),
        model: ModelSpec::Mlp(MlpSpec {
            feature_dim: OPEN_FEATURE_DIM,
            hidden: vec![OPEN_HIDDEN],
            classes: OPEN_CLASSES,
            objective: Objective::SoftmaxCrossEntropy,
        }),
        lr: 0.5,
        epochs: 1,
        batch_size: 8,
        clients: 1,
        authority_seed: 8001,
        model_seed: 8002,
        client_seed_base: 8003,
        policy: cryptonn_protocol::SessionPolicy::FailFast,
    }
}

fn open_frozen_model(config: &SessionConfig) -> CryptoMlp {
    let cc = CryptoNnConfig {
        level: config.level,
        fp: config.fp,
        grad_fp: config.grad_fp,
        parallelism: Parallelism::Serial,
    };
    let mut rng = StdRng::seed_from_u64(config.model_seed);
    CryptoMlp::new(
        OPEN_FEATURE_DIM,
        &[OPEN_HIDDEN],
        OPEN_CLASSES,
        Objective::SoftmaxCrossEntropy,
        cc,
        &mut rng,
    )
}

fn open_input(user: usize, req: usize) -> Matrix<f64> {
    Matrix::from_fn(1, OPEN_FEATURE_DIM, |_, c| {
        ((user * 131 + req * 17 + c) % 97) as f64 / 97.0
    })
}

/// One transport arm of the open-loop comparison.
#[derive(Debug, Clone, Serialize)]
struct OpenLoopArm {
    /// `"reactor"` (the sharded fleet) or `"threadpool"` (the seed's
    /// thread-per-connection server).
    transport: String,
    /// Readiness backend of the reactor arm (`"epoll"`/`"poll"`);
    /// `"threads"` for the baseline.
    backend: String,
    completed: u64,
    wall_ms: f64,
    predictions_per_sec: f64,
    /// Latency is measured against the request's *scheduled* Poisson
    /// arrival, not its actual send time, so queueing delay from a
    /// transport that falls behind is charged to the transport
    /// (no coordinated omission).
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    max_ms: f64,
}

#[derive(Debug, Serialize)]
struct OpenLoop {
    level: String,
    feature_dim: usize,
    /// Concurrent simulated users (one live connection each, held for
    /// the whole run). CI-sized by default; `CRYPTONN_BENCH_FULL=1`
    /// runs the thousands-of-users scale.
    users: usize,
    arrivals: usize,
    /// Single-connection closed-loop service rate measured against the
    /// threadpool baseline — the calibration anchor.
    calibration_rps: f64,
    /// Offered Poisson arrival rate (requests/s), identical for both
    /// arms: the same seeded schedule is replayed against each.
    offered_rps: f64,
    arms: Vec<OpenLoopArm>,
    /// Reactor-fleet over threadpool served-throughput ratio — the
    /// `--check-open-loop` gate.
    fleet_over_threadpool: f64,
}

/// Either serving daemon behind one address, torn down uniformly.
enum Daemon {
    Fleet(InferenceFleet),
    Threads(InferenceServer),
}

impl Daemon {
    fn addr(&self) -> std::net::SocketAddr {
        match self {
            Daemon::Fleet(f) => f.local_addr(),
            Daemon::Threads(s) => s.local_addr(),
        }
    }
    fn backend(&self) -> String {
        match self {
            Daemon::Fleet(f) => f.backend().to_string(),
            Daemon::Threads(_) => "threads".to_string(),
        }
    }
    fn shutdown(self) {
        match self {
            Daemon::Fleet(f) => f.shutdown(),
            Daemon::Threads(s) => s.shutdown(),
        }
    }
}

fn start_daemon(
    transport: &str,
    authority_addr: std::net::SocketAddr,
    session_id: SessionId,
    config: &SessionConfig,
    users: usize,
) -> Daemon {
    let session = InferenceOptions {
        max_batch: COALESCE,
        key_cache: 1024,
    };
    match transport {
        "reactor" => Daemon::Fleet(
            InferenceFleet::start(
                "127.0.0.1:0",
                session_id,
                config,
                open_frozen_model(config),
                Arc::new(RemoteAuthority::new(authority_addr)),
                FleetOptions {
                    shards: 2,
                    session,
                    ..FleetOptions::default()
                },
            )
            .expect("inference fleet binds"),
        ),
        _ => Daemon::Threads(
            InferenceServer::start(
                "127.0.0.1:0",
                session_id,
                config,
                open_frozen_model(config),
                Arc::new(RemoteAuthority::new(authority_addr)),
                InferenceServerOptions {
                    session,
                    // One handler per live connection, as the seed
                    // transport requires — this thread count *is* the
                    // baseline's scaling cost.
                    pool_threads: users + 8,
                    ..InferenceServerOptions::default()
                },
            )
            .expect("inference server binds"),
        ),
    }
}

/// Replays the seeded Poisson schedule against one daemon: `users`
/// connections held live for the whole run, each sending its
/// pre-encrypted requests at their scheduled arrivals and recording
/// completion against the schedule. `wire_of` picks each user's wire
/// format — the daemon mirrors every connection individually, so a
/// mixed population is just a non-constant function here.
fn run_open_loop_arm(
    transport: &str,
    authority_addr: std::net::SocketAddr,
    session_id: SessionId,
    config: &SessionConfig,
    schedule: &[Vec<f64>],
    wire_of: fn(usize) -> WireFormat,
) -> (OpenLoopArm, Vec<Vec<Matrix<f64>>>) {
    let users = schedule.len();
    let daemon = start_daemon(transport, authority_addr, session_id, config, users);
    let addr = daemon.addr();

    // Two barriers: everyone connected and pre-encrypted at the first,
    // the shared clock origin published between them, released at the
    // second — so every thread measures against the same instant.
    let ready = Arc::new(std::sync::Barrier::new(users + 1));
    let go = Arc::new(std::sync::Barrier::new(users + 1));
    let start_cell: Arc<std::sync::OnceLock<Instant>> = Arc::new(std::sync::OnceLock::new());

    let mut handles = Vec::with_capacity(users);
    for (u, arrivals) in schedule.iter().enumerate() {
        let config = config.clone();
        let arrivals = arrivals.clone();
        let ready = Arc::clone(&ready);
        let go = Arc::clone(&go);
        let start_cell = Arc::clone(&start_cell);
        handles.push(std::thread::spawn(move || {
            let mut client = InferenceClient::connect_with_wire(
                addr,
                session_id,
                ClientId(u as u32),
                &config,
                40_000 + u as u64,
                DEFAULT_MAX_FRAME,
                wire_of(u),
            )
            .expect("open-loop client connects");
            let encrypted: Vec<EncryptedBatch> = (0..arrivals.len())
                .map(|r| {
                    client
                        .encryptor_mut()
                        .encrypt_features(&open_input(u, r))
                        .expect("encrypt")
                })
                .collect();
            ready.wait();
            go.wait();
            let start = *start_cell.get().expect("clock origin published");
            let mut latencies = Vec::with_capacity(arrivals.len());
            let mut outputs = Vec::with_capacity(arrivals.len());
            let mut last_done = 0.0f64;
            for (enc, &at) in encrypted.into_iter().zip(&arrivals) {
                let target = start + std::time::Duration::from_secs_f64(at);
                let now = Instant::now();
                if now < target {
                    std::thread::sleep(target - now);
                }
                let id = client.send_encrypted(enc).expect("send");
                let p = client.recv_prediction().expect("prediction");
                assert_eq!(p.id, id);
                let done = start.elapsed().as_secs_f64();
                latencies.push((done - at) * 1e3);
                outputs.push(p.outputs);
                last_done = done;
            }
            (latencies, outputs, last_done)
        }));
    }
    ready.wait();
    start_cell.set(Instant::now()).expect("single origin");
    go.wait();

    let mut latencies = Vec::new();
    let mut outputs = Vec::new();
    let mut wall = 0.0f64;
    for h in handles {
        let (l, o, last) = h.join().expect("open-loop user thread");
        latencies.extend(l);
        outputs.push(o);
        wall = wall.max(last);
    }
    let backend = daemon.backend();
    daemon.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let completed = latencies.len() as u64;
    let arm = OpenLoopArm {
        transport: transport.into(),
        backend,
        completed,
        wall_ms: wall * 1e3,
        predictions_per_sec: completed as f64 / wall,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        p999_ms: percentile(&latencies, 0.999),
        max_ms: latencies.last().copied().unwrap_or(0.0),
    };
    println!(
        "open-loop {transport:10} ({:5}): {:8.1} preds/s  p50 {:7.2} ms  p99 {:7.2} ms  p999 {:7.2} ms",
        arm.backend, arm.predictions_per_sec, arm.p50_ms, arm.p99_ms, arm.p999_ms
    );
    (arm, outputs)
}

/// The open-loop comparison: a seeded Poisson arrival schedule over
/// many live connections, replayed against the thread-per-connection
/// baseline and the reactor fleet — then twice more against the fleet
/// under the binary and mixed client dialects (the wire arm). Every
/// replay must serve bit-identical predictions.
fn run_open_loop(authority_addr: std::net::SocketAddr) -> (OpenLoop, Vec<WireServeArm>, f64) {
    let config = open_loop_config();
    let (users, arrivals_n) = if cryptonn_bench::full_scale() {
        (2048usize, 8192usize)
    } else {
        (384usize, 1152usize)
    };

    // Calibrate: single-connection closed-loop rate against the
    // threadpool baseline fixes the offered load scale.
    let cal = start_daemon("threadpool", authority_addr, SessionId(6000), &config, 1);
    let mut client = InferenceClient::connect_with_wire(
        cal.addr(),
        SessionId(6000),
        ClientId(0),
        &config,
        39_999,
        DEFAULT_MAX_FRAME,
        WireFormat::Json,
    )
    .expect("calibration client connects");
    let x = open_input(0, 0);
    let warmup = 8;
    let measured = 48;
    for _ in 0..warmup {
        client.predict(&x).expect("calibration warmup");
    }
    let t0 = Instant::now();
    for _ in 0..measured {
        client.predict(&x).expect("calibration request");
    }
    let calibration_rps = measured as f64 / t0.elapsed().as_secs_f64();
    drop(client);
    cal.shutdown();

    // Offered load above the single-connection rate: coalescing and
    // sharding are exactly what the fleet claims to add, so the
    // schedule demands them. Same seed => both arms replay the
    // identical arrival sequence.
    let offered_rps = calibration_rps * 1.5;
    let mut rng = StdRng::seed_from_u64(0x9e37_79b9);
    let mut t = 0.0f64;
    let mut schedule: Vec<Vec<f64>> = vec![Vec::new(); users];
    for k in 0..arrivals_n {
        let u: f64 = rng.random();
        t += -(1.0 - u).ln() / offered_rps;
        schedule[k % users].push(t);
    }
    println!(
        "open-loop: {users} users, {arrivals_n} arrivals at {offered_rps:.1} req/s \
         (calibrated single-conn {calibration_rps:.1} req/s)"
    );

    let (threads_arm, threads_out) = run_open_loop_arm(
        "threadpool",
        authority_addr,
        SessionId(6001),
        &config,
        &schedule,
        |_| WireFormat::Json,
    );
    let (fleet_arm, fleet_out) = run_open_loop_arm(
        "reactor",
        authority_addr,
        SessionId(6002),
        &config,
        &schedule,
        |_| WireFormat::Json,
    );
    assert_eq!(
        fleet_out, threads_out,
        "open-loop arms must serve bit-identical predictions"
    );

    // The wire arm: the same schedule against the same fleet, with the
    // clients speaking binary, then a mixed half-and-half population on
    // one daemon. The json serve numbers are the fleet arm itself.
    let (binary_arm, binary_out) = run_open_loop_arm(
        "reactor",
        authority_addr,
        SessionId(6003),
        &config,
        &schedule,
        |_| WireFormat::Binary,
    );
    assert_eq!(
        binary_out, threads_out,
        "binary-dialect clients must be served bit-identical predictions"
    );
    let (mixed_arm, mixed_out) = run_open_loop_arm(
        "reactor",
        authority_addr,
        SessionId(6004),
        &config,
        &schedule,
        |u| {
            if u % 2 == 0 {
                WireFormat::Binary
            } else {
                WireFormat::Json
            }
        },
    );
    assert_eq!(
        mixed_out, threads_out,
        "a mixed-dialect population must be served bit-identical predictions"
    );
    let serve_arm = |dialect: &str, arm: &OpenLoopArm| WireServeArm {
        dialect: dialect.into(),
        completed: arm.completed,
        predictions_per_sec: arm.predictions_per_sec,
        p50_ms: arm.p50_ms,
        p99_ms: arm.p99_ms,
    };
    let serve = vec![
        serve_arm("json", &fleet_arm),
        serve_arm("binary", &binary_arm),
        serve_arm("mixed", &mixed_arm),
    ];
    let binary_over_json = binary_arm.predictions_per_sec / fleet_arm.predictions_per_sec;
    println!("open-loop: binary dialect at {binary_over_json:.2}x the json fleet arm");

    let ratio = fleet_arm.predictions_per_sec / threads_arm.predictions_per_sec;
    println!("open-loop: reactor fleet at {ratio:.2}x the threadpool baseline");
    let open_loop = OpenLoop {
        level: format!("{:?}", config.level),
        feature_dim: OPEN_FEATURE_DIM,
        users,
        arrivals: arrivals_n,
        calibration_rps,
        offered_rps,
        arms: vec![threads_arm, fleet_arm],
        fleet_over_threadpool: ratio,
    };
    (open_loop, serve, binary_over_json)
}

fn main() {
    let mut out_path = "BENCH_predict_serve.json".to_string();
    let mut check_speedup: Option<f64> = None;
    let mut check_warm_speedup: Option<f64> = None;
    let mut check_open_loop: Option<f64> = None;
    let mut check_wire = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out requires a path"),
            "--check-speedup" => {
                check_speedup = Some(
                    args.next()
                        .expect("--check-speedup requires a number")
                        .parse()
                        .expect("--check-speedup requires a number"),
                )
            }
            "--check-warm-speedup" => {
                check_warm_speedup = Some(
                    args.next()
                        .expect("--check-warm-speedup requires a number")
                        .parse()
                        .expect("--check-warm-speedup requires a number"),
                )
            }
            "--check-open-loop" => {
                check_open_loop = Some(
                    args.next()
                        .expect("--check-open-loop requires a number")
                        .parse()
                        .expect("--check-open-loop requires a number"),
                )
            }
            "--check-wire" => check_wire = true,
            other => panic!("unknown argument {other}"),
        }
    }

    let requests_per_client = if cryptonn_bench::full_scale() { 32 } else { 10 };
    let levels: &[SecurityLevel] = &[SecurityLevel::Bits64, SecurityLevel::Bits256];
    let grid: &[(usize, usize)] = if cryptonn_bench::full_scale() {
        &[(1, 1), (2, 1), (4, 1), (2, 4)]
    } else {
        &[(1, 1), (4, 1), (2, 4)]
    };

    let authority = AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default())
        .expect("authority daemon binds");

    let mut measurements = Vec::new();
    let mut speedups = Vec::new();
    let mut headline = 0.0f64;
    let mut next_session = 0u64;

    for &level in levels {
        for &(clients, batch) in grid {
            let off = run_arm(
                level,
                authority.local_addr(),
                SessionId(5000 + next_session),
                clients,
                batch,
                requests_per_client,
                "cache_off",
                InferenceOptions {
                    max_batch: 1,
                    key_cache: 0,
                },
            );
            let on = run_arm(
                level,
                authority.local_addr(),
                SessionId(5000 + next_session + 1),
                clients,
                batch,
                requests_per_client,
                "cache_on",
                InferenceOptions {
                    max_batch: COALESCE,
                    key_cache: 1024,
                },
            );
            next_session += 2;

            assert_eq!(
                off.outputs, on.outputs,
                "cache arms must serve bit-identical predictions \
                 ({level:?}, C={clients}, m={batch})"
            );
            assert!(
                on.m.cache_hits > 0,
                "the cache-on arm must actually hit its cache"
            );

            let speedup = on.m.predictions_per_sec / off.m.predictions_per_sec;
            println!("{level:?} C={clients} m={batch}: cache-on speedup {speedup:.2}x");
            if level == SecurityLevel::Bits256 && clients == 1 && batch == 1 {
                headline = speedup;
            }
            speedups.push(Speedup {
                level: format!("{level:?}"),
                clients,
                batch,
                speedup,
            });
            measurements.push(off.m);
            measurements.push(on.m);
        }
    }
    authority.shutdown();

    let warm_start = measure_warm_start(SecurityLevel::Bits256Fast);
    println!(
        "table cache {} bound {}: cold {:.2} ms, warm {:.2} ms ({:.1}x)",
        warm_start.level,
        warm_start.dlog_bound,
        warm_start.cold_ms,
        warm_start.warm_ms,
        warm_start.warm_speedup
    );

    let (codec, byte_reduction_bits256) = measure_wire_codec();

    let authority = AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default())
        .expect("authority daemon binds for the open-loop arm");
    let (open_loop, serve, binary_over_json) = run_open_loop(authority.local_addr());
    authority.shutdown();

    let wire = WireBench {
        codec_level: format!("{:?}", SecurityLevel::Bits256),
        codec,
        byte_reduction_bits256,
        serve,
        binary_over_json,
    };

    let report = Report {
        schema: "cryptonn.bench.predict_serve/v4".into(),
        generated_by: "cargo run --release -p cryptonn-bench --bin predict_serve".into(),
        host: cryptonn_bench::host_info(),
        feature_dim: FEATURE_DIM,
        hidden: HIDDEN,
        classes: CLASSES,
        coalesce_window: COALESCE,
        requests_per_client,
        measurements,
        speedups,
        headline_speedup_bits256: headline,
        warm_start,
        open_loop,
        wire,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write telemetry JSON");
    println!("wrote {out_path} (headline Bits256 speedup {headline:.2}x)");

    if let Some(min) = check_speedup {
        assert!(
            headline >= min,
            "Bits256 cache-on speedup {headline:.2}x below the {min:.2}x gate"
        );
    }
    if let Some(min) = check_warm_speedup {
        assert!(
            report.warm_start.warm_speedup >= min,
            "warm table-cache start {:.2}x below the {min:.2}x gate",
            report.warm_start.warm_speedup
        );
    }
    if let Some(min) = check_open_loop {
        assert!(
            report.open_loop.fleet_over_threadpool >= min,
            "open-loop reactor throughput {:.2}x the threadpool baseline, below the {min:.2}x gate",
            report.open_loop.fleet_over_threadpool
        );
    }
    if check_wire {
        assert!(
            report.wire.binary_over_json >= 1.15 || report.wire.byte_reduction_bits256 >= 1.8,
            "wire gate: binary at {:.2}x json open-loop preds/s and {:.2}x Bits256 byte \
             reduction — need ≥ 1.15x throughput or ≥ 1.8x bytes",
            report.wire.binary_over_json,
            report.wire.byte_reduction_bits256
        );
    }
}
