//! Encrypted inference serving telemetry — throughput and latency of
//! the `InferenceServer` over TCP loopback, with the functional-key
//! cache on and off.
//!
//! For each grid point (`clients × batch-size`, per security level) the
//! harness spins up the real daemons (networked key authority +
//! inference server), pre-encrypts every request outside the timed
//! loop, then has each client thread run its requests synchronously,
//! recording per-request latency. Two arms per point:
//!
//! - **cache_off** — the status-quo serving path: coalescing window 1
//!   and a zero-capacity key cache, so every request is its own secure
//!   sweep and re-derives the frozen model's FEIP keys through the
//!   remote authority;
//! - **cache_on** — the serving subsystem: requests coalesce (window
//!   `B`) into shared `decrypt_cells` sweeps with a single batched
//!   inversion, and the key cache makes the steady state
//!   authority-free.
//!
//! Both arms serve **bit-identical predictions** (asserted: the
//! deterministic client seeds make the ciphertexts identical across
//! arms, and exact FE decryption makes the outputs identical).
//!
//! Reported per (level, clients, batch, arm): predictions/s, p50/p99
//! request latency, sweep and cache counters; plus the cache-on vs
//! cache-off speedup per point. Emits `BENCH_predict_serve.json`
//! (schema `cryptonn.bench.predict_serve/v2`).
//!
//! The off/on ratio is *bounded* on this workload: FEIP key derivation
//! costs one `q`-sized multiplication per weight element while the
//! decrypt sweep costs ~2 `p`-sized multiplications per element, so
//! even with the wire leg the uncached arm tops out near 2x the cached
//! one (DESIGN.md §12 quantifies this). `--check-speedup X` gates on
//! the measured Bits256 single-client point.
//!
//! The report (schema `cryptonn.bench.predict_serve/v2`) also times a
//! cold vs warm start of the persisted table cache (generator comb +
//! BSGS tables, DESIGN.md §13); `--check-warm-speedup X` gates the
//! warm-over-cold ratio.
//!
//! ```text
//! cargo run --release -p cryptonn-bench --bin predict_serve -- \
//!     [--out BENCH_predict_serve.json] [--check-speedup 1.5] \
//!     [--check-warm-speedup 5.0]
//! ```

use std::sync::Arc;
use std::time::Instant;

use cryptonn_core::{CryptoMlp, CryptoNnConfig, EncryptedBatch, Objective};
use cryptonn_fe::PermittedFunctions;
use cryptonn_group::SecurityLevel;
use cryptonn_matrix::Matrix;
use cryptonn_net::{
    AuthorityOptions, AuthorityServer, InferenceClient, InferenceServer, InferenceServerOptions,
    RemoteAuthority, DEFAULT_MAX_FRAME,
};
use cryptonn_parallel::Parallelism;
use cryptonn_protocol::{ClientId, InferenceOptions, MlpSpec, ModelSpec, SessionConfig, SessionId};
use cryptonn_smc::FixedPoint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

const FEATURE_DIM: usize = 784;
const HIDDEN: usize = 16;
const CLASSES: usize = 10;
/// Coalescing window of the cache-on arm.
const COALESCE: usize = 4;

fn serving_config(level: SecurityLevel) -> SessionConfig {
    SessionConfig {
        level,
        fp: FixedPoint::TWO_DECIMALS,
        grad_fp: FixedPoint::new(10_000),
        permitted: PermittedFunctions::all(),
        model: ModelSpec::Mlp(MlpSpec {
            feature_dim: FEATURE_DIM,
            hidden: vec![HIDDEN],
            classes: CLASSES,
            objective: Objective::SoftmaxCrossEntropy,
        }),
        lr: 0.5,
        epochs: 1,
        batch_size: 8,
        clients: 1,
        authority_seed: 7001,
        model_seed: 7002,
        client_seed_base: 7003,
        policy: cryptonn_protocol::SessionPolicy::FailFast,
    }
}

/// The frozen model under service. Serving cost is independent of the
/// weights' history, so the harness freezes an initialized model
/// rather than spending bench time on a training run.
fn frozen_model(config: &SessionConfig) -> CryptoMlp {
    let cc = CryptoNnConfig {
        level: config.level,
        fp: config.fp,
        grad_fp: config.grad_fp,
        parallelism: Parallelism::Serial,
    };
    let mut rng = StdRng::seed_from_u64(config.model_seed);
    CryptoMlp::new(
        FEATURE_DIM,
        &[HIDDEN],
        CLASSES,
        Objective::SoftmaxCrossEntropy,
        cc,
        &mut rng,
    )
}

fn input(client: usize, req: usize, rows: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, FEATURE_DIM, |r, c| {
        ((client * 131 + req * 17 + r * 3 + c) % 97) as f64 / 97.0
    })
}

#[derive(Debug, Clone, Serialize)]
struct Measurement {
    level: String,
    clients: usize,
    batch: usize,
    arm: String,
    requests: u64,
    predictions: u64,
    wall_ms: f64,
    predictions_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    sweeps: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
}

#[derive(Debug, Clone, Serialize)]
struct Speedup {
    level: String,
    clients: usize,
    batch: usize,
    speedup: f64,
}

/// Cold vs warm start of the persisted table cache: building the
/// generator comb + BSGS tables from scratch against reloading them
/// from the fingerprinted on-disk cache.
#[derive(Debug, Clone, Serialize)]
struct WarmStart {
    level: String,
    dlog_bound: u64,
    /// Median cold (build + persist) time across measurement rounds.
    cold_ms: f64,
    /// Median warm (reload) time across measurement rounds.
    warm_ms: f64,
    /// Median of the per-round cold/warm ratios (see
    /// [`measure_warm_start`]); not `cold_ms / warm_ms`.
    warm_speedup: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    schema: String,
    generated_by: String,
    host: cryptonn_bench::HostInfo,
    feature_dim: usize,
    hidden: usize,
    classes: usize,
    coalesce_window: usize,
    requests_per_client: usize,
    measurements: Vec<Measurement>,
    speedups: Vec<Speedup>,
    /// Cache-on over cache-off predictions/s at Bits256, single
    /// synchronous client, batch 1 — the pure key-cache effect.
    headline_speedup_bits256: f64,
    warm_start: WarmStart,
}

/// Stops glibc from returning freed heap pages to the kernel
/// (`mallopt(M_TRIM_THRESHOLD, …)`). The warm-start arms allocate and
/// free a few hundred KiB of table memory per measurement round; with
/// the default trim threshold every round's free shrinks the heap, so
/// the next round re-faults the same pages — and on a virtualized
/// 1-core host those minor faults cost as much as the table load being
/// measured. A long-running server's steady-state heap does not pay
/// them, so neither should the measurement. No-op off glibc.
fn disable_heap_trim() {
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    {
        unsafe extern "C" {
            fn mallopt(param: i32, value: i32) -> i32;
        }
        const M_TRIM_THRESHOLD: i32 = -1;
        unsafe {
            mallopt(M_TRIM_THRESHOLD, i32::MAX);
        }
    }
}

/// The middle element of `xs`, destructively.
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Times the serving-table construction path (generator comb + BSGS
/// table at the serving bound) cold — empty cache directory, tables
/// built and persisted — then warm — same directory, tables reloaded.
///
/// The table path is sub-millisecond, so the measurement defends
/// against system noise rather than averaging over it: heap trimming
/// is disabled (see [`disable_heap_trim`]), one untimed cold+warm
/// cycle warms the allocator and the page cache, the cold tables are
/// dropped before the warm arm so both arms allocate under the same
/// conditions, and the reported speedup is the *median of per-round
/// paired ratios* — cold and warm from the same round share scheduler
/// and allocator state, so a slow round cancels out of its own ratio
/// instead of skewing a cross-round quotient. `cold_ms`/`warm_ms` are
/// per-arm medians, reported for context.
fn measure_warm_start(level: SecurityLevel) -> WarmStart {
    use cryptonn_group::{DlogTable, SchnorrGroup};
    disable_heap_trim();
    // The first-layer serving bound at this geometry (dim-784 rows of
    // two-decimal fixed-point operands), power-of-two rounded the way
    // `DlogTableCache` rounds it.
    let bound = cryptonn_smc::dot_bound(100, 100, FEATURE_DIM).next_power_of_two();
    let base = std::env::temp_dir().join(format!("cryptonn-warmstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // One cold+warm cycle against a fresh directory; returns the two
    // timings with the cold-arm state dropped before the warm arm.
    let cycle = |dir: &std::path::Path| -> (f64, f64) {
        let t0 = Instant::now();
        let group = SchnorrGroup::precomputed_cached(level, dir);
        let table = DlogTable::load_or_build(&group, bound, dir);
        let cold = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(table.bound(), bound);
        drop(table);
        drop(group);

        let t1 = Instant::now();
        let warm_group = SchnorrGroup::precomputed_cached(level, dir);
        let warm_table = DlogTable::load_or_build(&warm_group, bound, dir);
        let warm = t1.elapsed().as_secs_f64() * 1e3;
        let probe = warm_group.exp(&warm_group.scalar_from_i64(-12345));
        assert_eq!(warm_table.solve(&warm_group, &probe), Ok(-12345));
        (cold, warm)
    };

    let (mut colds, mut warms, mut ratios) = (Vec::new(), Vec::new(), Vec::new());
    for round in 0..8 {
        let dir = base.join(format!("r{round}"));
        let (c, w) = cycle(&dir);
        if round > 0 {
            colds.push(c);
            warms.push(w);
            ratios.push(c / w);
        }
    }
    let _ = std::fs::remove_dir_all(&base);

    WarmStart {
        level: format!("{level:?}"),
        dlog_bound: bound,
        cold_ms: median(&mut colds),
        warm_ms: median(&mut warms),
        warm_speedup: median(&mut ratios),
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

struct ArmOutcome {
    m: Measurement,
    outputs: Vec<Vec<Matrix<f64>>>,
}

#[allow(clippy::too_many_arguments)]
fn run_arm(
    level: SecurityLevel,
    authority_addr: std::net::SocketAddr,
    session_id: SessionId,
    clients: usize,
    batch: usize,
    requests_per_client: usize,
    arm: &str,
    options: InferenceOptions,
) -> ArmOutcome {
    let config = serving_config(level);
    let server = InferenceServer::start(
        "127.0.0.1:0",
        session_id,
        &config,
        frozen_model(&config),
        Arc::new(RemoteAuthority::new(authority_addr)),
        InferenceServerOptions {
            session: options,
            pool_threads: clients + 4,
            ..InferenceServerOptions::default()
        },
    )
    .expect("inference server binds");
    let addr = server.local_addr();

    // Connect and pre-encrypt everything outside the timed region; the
    // deterministic seeds make the ciphertexts identical across arms.
    let mut handles = Vec::new();
    let barrier = Arc::new(std::sync::Barrier::new(clients + 1));
    for c in 0..clients {
        let config = config.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = InferenceClient::connect(
                addr,
                session_id,
                ClientId(c as u32),
                &config,
                9000 + c as u64,
                DEFAULT_MAX_FRAME,
            )
            .expect("predict client connects");
            let encrypted: Vec<EncryptedBatch> = (0..requests_per_client)
                .map(|r| {
                    client
                        .encryptor_mut()
                        .encrypt_features(&input(c, r, batch))
                        .expect("encrypt")
                })
                .collect();
            barrier.wait(); // measurement starts once everyone is ready
            let mut latencies = Vec::with_capacity(requests_per_client);
            let mut outputs = Vec::with_capacity(requests_per_client);
            for enc in encrypted {
                let t0 = Instant::now();
                let id = client.send_encrypted(enc).expect("send");
                let p = client.recv_prediction().expect("prediction");
                assert_eq!(p.id, id, "responses arrive in request order");
                latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                outputs.push(p.outputs);
            }
            (latencies, outputs)
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let mut latencies = Vec::new();
    let mut outputs = Vec::new();
    for h in handles {
        let (l, o) = h.join().expect("client thread");
        latencies.extend(l);
        outputs.push(o);
    }
    let wall = start.elapsed().as_secs_f64();

    let sweeps = server.sweeps();
    let cache = server.cache_stats();
    server.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let requests = (clients * requests_per_client) as u64;
    let predictions = requests * batch as u64;
    let m = Measurement {
        level: format!("{level:?}"),
        clients,
        batch,
        arm: arm.into(),
        requests,
        predictions,
        wall_ms: wall * 1e3,
        predictions_per_sec: predictions as f64 / wall,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        sweeps,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_evictions: cache.evictions,
    };
    println!(
        "{:8} C={clients} m={batch} {arm:9}: {:8.1} preds/s  p50 {:6.2} ms  p99 {:6.2} ms  (sweeps {sweeps}, hits {}, misses {})",
        m.level, m.predictions_per_sec, m.p50_ms, m.p99_ms, cache.hits, cache.misses
    );
    ArmOutcome { m, outputs }
}

fn main() {
    let mut out_path = "BENCH_predict_serve.json".to_string();
    let mut check_speedup: Option<f64> = None;
    let mut check_warm_speedup: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out requires a path"),
            "--check-speedup" => {
                check_speedup = Some(
                    args.next()
                        .expect("--check-speedup requires a number")
                        .parse()
                        .expect("--check-speedup requires a number"),
                )
            }
            "--check-warm-speedup" => {
                check_warm_speedup = Some(
                    args.next()
                        .expect("--check-warm-speedup requires a number")
                        .parse()
                        .expect("--check-warm-speedup requires a number"),
                )
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let requests_per_client = if cryptonn_bench::full_scale() { 32 } else { 10 };
    let levels: &[SecurityLevel] = &[SecurityLevel::Bits64, SecurityLevel::Bits256];
    let grid: &[(usize, usize)] = if cryptonn_bench::full_scale() {
        &[(1, 1), (2, 1), (4, 1), (2, 4)]
    } else {
        &[(1, 1), (4, 1), (2, 4)]
    };

    let authority = AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default())
        .expect("authority daemon binds");

    let mut measurements = Vec::new();
    let mut speedups = Vec::new();
    let mut headline = 0.0f64;
    let mut next_session = 0u64;

    for &level in levels {
        for &(clients, batch) in grid {
            let off = run_arm(
                level,
                authority.local_addr(),
                SessionId(5000 + next_session),
                clients,
                batch,
                requests_per_client,
                "cache_off",
                InferenceOptions {
                    max_batch: 1,
                    key_cache: 0,
                },
            );
            let on = run_arm(
                level,
                authority.local_addr(),
                SessionId(5000 + next_session + 1),
                clients,
                batch,
                requests_per_client,
                "cache_on",
                InferenceOptions {
                    max_batch: COALESCE,
                    key_cache: 1024,
                },
            );
            next_session += 2;

            assert_eq!(
                off.outputs, on.outputs,
                "cache arms must serve bit-identical predictions \
                 ({level:?}, C={clients}, m={batch})"
            );
            assert!(
                on.m.cache_hits > 0,
                "the cache-on arm must actually hit its cache"
            );

            let speedup = on.m.predictions_per_sec / off.m.predictions_per_sec;
            println!("{level:?} C={clients} m={batch}: cache-on speedup {speedup:.2}x");
            if level == SecurityLevel::Bits256 && clients == 1 && batch == 1 {
                headline = speedup;
            }
            speedups.push(Speedup {
                level: format!("{level:?}"),
                clients,
                batch,
                speedup,
            });
            measurements.push(off.m);
            measurements.push(on.m);
        }
    }
    authority.shutdown();

    let warm_start = measure_warm_start(SecurityLevel::Bits256Fast);
    println!(
        "table cache {} bound {}: cold {:.2} ms, warm {:.2} ms ({:.1}x)",
        warm_start.level,
        warm_start.dlog_bound,
        warm_start.cold_ms,
        warm_start.warm_ms,
        warm_start.warm_speedup
    );

    let report = Report {
        schema: "cryptonn.bench.predict_serve/v2".into(),
        generated_by: "cargo run --release -p cryptonn-bench --bin predict_serve".into(),
        host: cryptonn_bench::host_info(),
        feature_dim: FEATURE_DIM,
        hidden: HIDDEN,
        classes: CLASSES,
        coalesce_window: COALESCE,
        requests_per_client,
        measurements,
        speedups,
        headline_speedup_bits256: headline,
        warm_start,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write telemetry JSON");
    println!("wrote {out_path} (headline Bits256 speedup {headline:.2}x)");

    if let Some(min) = check_speedup {
        assert!(
            headline >= min,
            "Bits256 cache-on speedup {headline:.2}x below the {min:.2}x gate"
        );
    }
    if let Some(min) = check_warm_speedup {
        assert!(
            report.warm_start.warm_speedup >= min,
            "warm table-cache start {:.2}x below the {min:.2}x gate",
            report.warm_start.warm_speedup
        );
    }
}
