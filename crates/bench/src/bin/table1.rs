//! Table I — comparison of privacy-preserving approaches in machine
//! learning models, reproduced verbatim from the paper (a qualitative
//! table; no measurement involved).

fn main() {
    println!("TABLE I: COMPARISON OF PRIVACY-PRESERVING APPROACHES IN ML MODELS");
    println!("(reproduced from the paper; ● = yes, ○ = no; privacy: ◐ mild, ● strong)\n");
    let rows = [
        (
            "Mirhoseini et al. [4]",
            "●",
            "●",
            "◐",
            "General",
            "Delegation",
        ),
        (
            "Shokri & Shmatikov [7]",
            "●",
            "○",
            "◐",
            "Deep Learning",
            "Distributed",
        ),
        (
            "Abadi et al. [8]",
            "●",
            "○",
            "◐",
            "Deep Learning",
            "Differential Privacy",
        ),
        (
            "SecureML [6]",
            "●",
            "●",
            "◑",
            "General",
            "Secure Protocol (SMC)",
        ),
        (
            "DeepSecure [5]",
            "●",
            "●",
            "◑",
            "Deep Learning",
            "Garbled Circuits",
        ),
        (
            "CryptoNets [3] et al.",
            "○",
            "●",
            "●",
            "Covers All",
            "Homomorphic Encryption",
        ),
        (
            "Bost et al. [2]",
            "●",
            "●",
            "●",
            "Limited ML",
            "HE + Secure Protocol",
        ),
        (
            "CryptoNN (this repo)",
            "●",
            "●",
            "●",
            "Neural Networks",
            "Functional Encryption",
        ),
    ];
    println!(
        "{:<24} {:^8} {:^10} {:^8} {:<16} Approach",
        "Proposed Work", "Training", "Prediction", "Privacy", "ML Model"
    );
    println!("{}", "-".repeat(96));
    for (work, train, pred, priv_, model, approach) in rows {
        println!("{work:<24} {train:^8} {pred:^10} {priv_:^8} {model:<16} {approach}");
    }
    println!(
        "\nCryptoNN row is validated by this repository: encrypted training\n\
         (tests/end_to_end.rs) and encrypted prediction (predict_encrypted)\n\
         both run over functional encryption with a strong crypto guarantee."
    );
}
