//! Server-side decrypt telemetry — the machine-readable perf trajectory
//! for the `secure-computation` hot path.
//!
//! Measures per-cell latency and throughput of `secure_dot` and
//! `secure_elementwise` cell decryption at the paper's dimensions
//! (dim-784 feature rows, MNIST geometry), on `Bits64` and `Bits256`,
//! with 1 and 4 decryption threads, for both arms:
//!
//! - **naive** — the pre-multi-scalar path: one full-width
//!   exponentiation per nonzero coefficient and an eager inversion per
//!   cell (`feip::decrypt_naive` / `febo::decrypt_naive`);
//! - **multi_scalar** — the Straus/wNAF shared-squaring pipeline with
//!   batched inversion (DESIGN.md §10).
//!
//! The `Bits256Fast` arms additionally run the full optimized kernel
//! stack — FastP64 reduction, lane-batched Montgomery multiplies and
//! lane-stepped BSGS — against the same naive reference, so the JSON
//! carries both the algorithmic (naive → multi-scalar) and the kernel
//! (v1 baseline → lanes + fast prime) trajectories.
//!
//! Emits `BENCH_server_decrypt.json` (schema v2, documented in
//! DESIGN.md §10.4 / §13) so future PRs can prove wins and regressions
//! mechanically. Exits nonzero under `--check-speedup <min>` if the
//! Bits256 dim-784 `secure_dot` single-thread speedup falls below
//! `<min>`, and under `--check-cell-speedup <min>` if the `Bits256Fast`
//! single-thread `secure_dot` per-cell latency is not at least `<min>`×
//! better than the recorded v1 baseline — the CI regression gates.
//!
//! ```text
//! cargo run --release -p cryptonn-bench --bin server_decrypt -- \
//!     [--out BENCH_server_decrypt.json] [--check-speedup 2.0] \
//!     [--check-cell-speedup 1.5]
//! ```

use std::time::Instant;

use cryptonn_bench::random_matrix;
use cryptonn_fe::{febo, feip, BasicOp, KeyAuthority, PermittedFunctions};
use cryptonn_group::{DlogTable, SchnorrGroup, SecurityLevel};
use cryptonn_matrix::Matrix;
use cryptonn_smc::{
    derive_dot_keys, derive_elementwise_keys, dot_bound, elementwise_bound, parallel_map,
    secure_dot, secure_elementwise, EncryptedMatrix, Parallelism,
};
use serde::Serialize;

/// The paper's first-layer geometry: 784 features (28×28 MNIST).
const DIM: usize = 784;
/// Output neurons (one FEIP key per row), as in the 10-class output.
const ROWS: usize = 10;
/// Encrypted sample columns per measured batch.
const COLS: usize = 4;
/// Element count for the element-wise workload (the paper's Figs. 3–4
/// sweep up to 1000 elements).
const ELEMS: usize = 1000;
/// Operand magnitude — two-decimal fixed-point weights/features land in
/// roughly this range after quantization.
const RANGE: i64 = 100;

#[derive(Debug, Clone, Serialize)]
struct Measurement {
    workload: String,
    level: String,
    threads: usize,
    cells: usize,
    naive_cell_us: f64,
    naive_ops_per_sec: f64,
    multi_scalar_cell_us: f64,
    multi_scalar_ops_per_sec: f64,
    speedup: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Acceptance {
    metric: String,
    value: f64,
    min_required: f64,
    pass: bool,
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    schema: String,
    generated_by: String,
    host: cryptonn_bench::HostInfo,
    dot_dim: usize,
    dot_rows: usize,
    dot_cols: usize,
    elementwise_elems: usize,
    operand_range: i64,
    /// The v1 report's secure_dot/Bits256/threads=1 per-cell latency,
    /// the fixed reference the kernel gate measures against.
    v1_baseline_cell_us: f64,
    measurements: Vec<Measurement>,
    acceptance: Vec<Acceptance>,
}

/// `multi_scalar_cell_us` for secure_dot/Bits256/threads=1 from the
/// last v1 `BENCH_server_decrypt.json` (the pre-kernel state of this
/// repo) — the denominator of the kernel-arm acceptance gate.
const V1_BASELINE_CELL_US: f64 = 223.43;

fn level_name(level: SecurityLevel) -> String {
    format!("{level:?}")
}

/// Times `f` over `reps` runs and returns the best per-run seconds —
/// minimum, not mean, so background noise cannot inflate a gate metric.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn reps() -> usize {
    if std::env::var("CRYPTONN_BENCH_FAST").is_ok_and(|v| v == "1") {
        1
    } else {
        3
    }
}

/// The dot workload at one (level, threads) point: naive vs multi-scalar
/// over the same ciphertexts, keys and weights.
fn measure_dot(level: SecurityLevel, threads: usize) -> Measurement {
    let group = SchnorrGroup::precomputed(level);
    let authority = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), 901);
    let x = random_matrix(DIM, COLS, -RANGE, RANGE, 902);
    let w = random_matrix(ROWS, DIM, -RANGE, RANGE, 903);
    let table = DlogTable::new(&group, dot_bound(RANGE as u64, RANGE as u64, DIM));
    let mpk = authority.feip_public_key(DIM);
    let mut rng = cryptonn_bench::bench_rng(904);
    let enc = EncryptedMatrix::encrypt_columns_with(&x, &mpk, &mut rng, Parallelism::available())
        .unwrap();
    let keys = derive_dot_keys(&authority, &w).unwrap();
    let columns = enc.feip_columns().unwrap();
    let parallelism = if threads <= 1 {
        Parallelism::Serial
    } else {
        Parallelism::Threads(threads)
    };
    let cells = ROWS * COLS;
    let reps = reps();

    // Naive arm: the exact pre-multi-scalar cell loop.
    let mut naive_out = Matrix::zeros(ROWS, COLS);
    let t_naive = time_best(reps, || {
        let values: Vec<i64> = parallel_map(cells, parallelism.thread_count(), |idx| {
            let (i, j) = (idx / COLS, idx % COLS);
            feip::decrypt_naive(&mpk, &columns[j], &keys[i], w.row(i), &table).unwrap()
        });
        naive_out = Matrix::from_vec(ROWS, COLS, values);
    });

    // Multi-scalar arm: the production batched path.
    let mut fast_out = Matrix::zeros(ROWS, COLS);
    let t_fast = time_best(reps, || {
        fast_out = secure_dot(&mpk, &enc, &keys, &w, &table, parallelism).unwrap();
    });
    assert_eq!(naive_out, fast_out, "arms must agree cell-for-cell");
    assert_eq!(fast_out, w.matmul(&x), "decryption must match plaintext");

    Measurement {
        workload: "secure_dot".into(),
        level: level_name(level),
        threads,
        cells,
        naive_cell_us: t_naive / cells as f64 * 1e6,
        naive_ops_per_sec: cells as f64 / t_naive,
        multi_scalar_cell_us: t_fast / cells as f64 * 1e6,
        multi_scalar_ops_per_sec: cells as f64 / t_fast,
        speedup: t_naive / t_fast,
    }
}

/// The element-wise workload (one op) at one (level, threads) point.
fn measure_elementwise(level: SecurityLevel, threads: usize, op: BasicOp) -> Measurement {
    let group = SchnorrGroup::precomputed(level);
    let authority = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), 905);
    let x = random_matrix(1, ELEMS, -RANGE, RANGE, 906);
    let y = random_matrix(1, ELEMS, -RANGE, RANGE, 907);
    let table = DlogTable::new(&group, elementwise_bound(op, RANGE as u64, RANGE as u64));
    let febo_mpk = authority.febo_public_key();
    let mut rng = cryptonn_bench::bench_rng(908);
    let enc =
        EncryptedMatrix::encrypt_elements_with(&x, &febo_mpk, &mut rng, Parallelism::available())
            .unwrap();
    let keys = derive_elementwise_keys(&authority, &enc, op, &y).unwrap();
    let parallelism = if threads <= 1 {
        Parallelism::Serial
    } else {
        Parallelism::Threads(threads)
    };
    let reps = reps();

    // Naive arm needs the raw ciphertext elements; re-derive them the
    // way secure_elementwise's pre-batch loop did.
    let mut naive_out = Matrix::zeros(1, ELEMS);
    let t_naive = time_best(reps, || {
        let values: Vec<i64> = parallel_map(ELEMS, parallelism.thread_count(), |j| {
            febo::decrypt_naive(
                &febo_mpk,
                &keys[(0, j)],
                enc_element(&enc, j),
                op,
                y[(0, j)],
                &table,
            )
            .unwrap()
        });
        naive_out = Matrix::from_vec(1, ELEMS, values);
    });

    let mut fast_out = Matrix::zeros(1, ELEMS);
    let t_fast = time_best(reps, || {
        fast_out = secure_elementwise(&febo_mpk, &enc, &keys, op, &y, &table, parallelism).unwrap();
    });
    assert_eq!(naive_out, fast_out, "arms must agree cell-for-cell");
    assert_eq!(fast_out, x.zip_map(&y, |a, b| op.apply(a, b)));

    Measurement {
        workload: format!("secure_elementwise_{}", op_slug(op)),
        level: level_name(level),
        threads,
        cells: ELEMS,
        naive_cell_us: t_naive / ELEMS as f64 * 1e6,
        naive_ops_per_sec: ELEMS as f64 / t_naive,
        multi_scalar_cell_us: t_fast / ELEMS as f64 * 1e6,
        multi_scalar_ops_per_sec: ELEMS as f64 / t_fast,
        speedup: t_naive / t_fast,
    }
}

fn op_slug(op: BasicOp) -> &'static str {
    match op {
        BasicOp::Add => "add",
        BasicOp::Sub => "sub",
        BasicOp::Mul => "mul",
        BasicOp::Div => "div",
    }
}

/// FEBO element access for the naive arm.
fn enc_element(enc: &EncryptedMatrix, j: usize) -> &cryptonn_fe::FeboCiphertext {
    &enc.febo_elements().expect("encrypted for element-wise")[(0, j)]
}

fn main() {
    let mut out_path = String::from("BENCH_server_decrypt.json");
    let mut check_speedup: Option<f64> = None;
    let mut check_cell_speedup: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out requires a path"),
            "--check-speedup" => {
                check_speedup = Some(
                    args.next()
                        .expect("--check-speedup requires a number")
                        .parse()
                        .expect("--check-speedup must be a float"),
                )
            }
            "--check-cell-speedup" => {
                check_cell_speedup = Some(
                    args.next()
                        .expect("--check-cell-speedup requires a number")
                        .parse()
                        .expect("--check-cell-speedup must be a float"),
                )
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    let mut measurements = Vec::new();
    println!(
        "{:<26} {:>12} {:>3} {:>14} {:>14} {:>9}",
        "workload", "level", "t", "naive µs/cell", "fast µs/cell", "speedup"
    );
    for level in [
        SecurityLevel::Bits64,
        SecurityLevel::Bits256,
        SecurityLevel::Bits256Fast,
    ] {
        for threads in [1usize, 4] {
            let mut batch = vec![measure_dot(level, threads)];
            for op in [BasicOp::Add, BasicOp::Mul] {
                batch.push(measure_elementwise(level, threads, op));
            }
            for m in batch {
                println!(
                    "{:<26} {:>12} {:>3} {:>14.1} {:>14.1} {:>8.1}x",
                    m.workload,
                    m.level,
                    m.threads,
                    m.naive_cell_us,
                    m.multi_scalar_cell_us,
                    m.speedup
                );
                measurements.push(m);
            }
        }
    }

    // Gate 1: Bits256 dim-784 secure_dot single thread, naive vs
    // multi-scalar (the algorithmic win, carried over from v1).
    let gate = measurements
        .iter()
        .find(|m| m.workload == "secure_dot" && m.level == "Bits256" && m.threads == 1)
        .expect("gate measurement always present");
    let min_required = check_speedup.unwrap_or(2.0);
    let mut acceptance = vec![Acceptance {
        metric: "secure_dot/Bits256/threads=1 multi-scalar vs naive speedup".into(),
        value: gate.speedup,
        min_required,
        pass: gate.speedup >= min_required,
    }];
    // Gate 2: the kernel arm — Bits256Fast single-thread per-cell
    // latency against the fixed v1 baseline. Same 256-bit class and
    // geometry, so the ratio isolates the lane kernel + fast-prime +
    // mont-domain-BSGS stack.
    let fast_gate = measurements
        .iter()
        .find(|m| m.workload == "secure_dot" && m.level == "Bits256Fast" && m.threads == 1)
        .expect("fast gate measurement always present");
    let cell_speedup = V1_BASELINE_CELL_US / fast_gate.multi_scalar_cell_us;
    let min_cell = check_cell_speedup.unwrap_or(1.5);
    acceptance.push(Acceptance {
        metric: format!(
            "secure_dot/Bits256Fast/threads=1 cell latency vs v1 baseline {V1_BASELINE_CELL_US}us"
        ),
        value: cell_speedup,
        min_required: min_cell,
        pass: cell_speedup >= min_cell,
    });
    let report = Report {
        schema: "cryptonn.bench.server_decrypt/v2".into(),
        generated_by: "cargo run --release -p cryptonn-bench --bin server_decrypt".into(),
        host: cryptonn_bench::host_info(),
        dot_dim: DIM,
        dot_rows: ROWS,
        dot_cols: COLS,
        elementwise_elems: ELEMS,
        operand_range: RANGE,
        v1_baseline_cell_us: V1_BASELINE_CELL_US,
        measurements,
        acceptance,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write telemetry JSON");
    println!("\nwrote {out_path}");

    let mut failed = false;
    if let Some(min) = check_speedup {
        let value = report.acceptance[0].value;
        if value < min {
            eprintln!("FAIL: multi-scalar speedup {value:.2}x below required {min:.2}x");
            failed = true;
        } else {
            println!("PASS: multi-scalar speedup {value:.2}x ≥ required {min:.2}x");
        }
    }
    if let Some(min) = check_cell_speedup {
        let value = report.acceptance[1].value;
        if value < min {
            eprintln!("FAIL: kernel-arm cell speedup {value:.2}x below required {min:.2}x");
            failed = true;
        } else {
            println!("PASS: kernel-arm cell speedup {value:.2}x ≥ required {min:.2}x");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
