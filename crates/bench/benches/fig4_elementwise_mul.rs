//! Fig. 4 — time cost of element-wise **multiplication** in the secure
//! matrix computation scheme. Same four panels and sweeps as Fig. 3;
//! the product range forces a much larger discrete-log search, which is
//! exactly why the paper's multiplication plots are minutes where the
//! addition plots are seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cryptonn_bench::{bench_rng, fixture, random_elements, sweep, ELEMENT_RANGES};
use cryptonn_fe::BasicOp;
use cryptonn_group::DlogTable;
use cryptonn_smc::{derive_elementwise_keys, secure_elementwise, EncryptedMatrix, Parallelism};
use std::hint::black_box;
use std::time::Duration;

fn fig4(c: &mut Criterion) {
    let (group, authority) = fixture(401);
    let febo_mpk = authority.febo_public_key();
    let sizes = sweep(&[128usize, 256], &[2_000, 4_000, 6_000, 8_000, 10_000]);
    // Products reach range² = 10^6.
    let table = DlogTable::new(&group, 1_100_000);

    let mut enc = c.benchmark_group("fig4a_preprocess_encryption");
    enc.sample_size(10);
    enc.measurement_time(Duration::from_secs(2));
    enc.warm_up_time(Duration::from_millis(500));
    for &k in &sizes {
        for (lo, hi, label) in ELEMENT_RANGES {
            let x = random_elements(k, lo, hi, 21);
            enc.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                let mut rng = bench_rng(22);
                b.iter(|| {
                    black_box(EncryptedMatrix::encrypt_elements(&x, &febo_mpk, &mut rng).unwrap())
                });
            });
        }
    }
    enc.finish();

    let mut kd = c.benchmark_group("fig4b_key_derive");
    kd.sample_size(10);
    kd.measurement_time(Duration::from_secs(2));
    kd.warm_up_time(Duration::from_millis(500));
    for &k in &sizes {
        for (lo, hi, label) in ELEMENT_RANGES {
            let x = random_elements(k, lo, hi, 23);
            let y = random_elements(k, lo, hi, 24);
            let mut rng = bench_rng(25);
            let enc_x = EncryptedMatrix::encrypt_elements(&x, &febo_mpk, &mut rng).unwrap();
            kd.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                b.iter(|| {
                    black_box(
                        derive_elementwise_keys(&authority, &enc_x, BasicOp::Mul, &y).unwrap(),
                    )
                });
            });
        }
    }
    kd.finish();

    for (panel, par) in [
        ("fig4c_secure_mul_serial", Parallelism::Serial),
        ("fig4d_secure_mul_parallel", Parallelism::available()),
    ] {
        let mut g = c.benchmark_group(panel);
        g.sample_size(10);
        g.measurement_time(Duration::from_secs(2));
        g.warm_up_time(Duration::from_millis(500));
        for &k in &sizes {
            for (lo, hi, label) in ELEMENT_RANGES {
                let x = random_elements(k, lo, hi, 26);
                let y = random_elements(k, lo, hi, 27);
                let mut rng = bench_rng(28);
                let enc_x = EncryptedMatrix::encrypt_elements(&x, &febo_mpk, &mut rng).unwrap();
                let keys = derive_elementwise_keys(&authority, &enc_x, BasicOp::Mul, &y).unwrap();
                g.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                    b.iter(|| {
                        black_box(
                            secure_elementwise(
                                &febo_mpk,
                                &enc_x,
                                &keys,
                                BasicOp::Mul,
                                &y,
                                &table,
                                par,
                            )
                            .unwrap(),
                        )
                    });
                });
            }
        }
        g.finish();
    }
}

criterion_group!(benches, fig4);
criterion_main!(benches);
