//! Fig. 5 — time cost of the secure **dot-product**.
//!
//! Panels: (a) pre-process encryption, (b) key-derive, (c) secure
//! computation serial, (d) parallelized. Sweep: number of dot-products
//! k, vector length l ∈ {10, 100}, value ranges [1,10] and [1,100] —
//! the paper's legends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cryptonn_bench::{bench_rng, fixture, random_matrix, sweep};
use cryptonn_group::DlogTable;
use cryptonn_smc::{derive_dot_keys, secure_dot, EncryptedMatrix, Parallelism};
use std::hint::black_box;
use std::time::Duration;

const CONFIGS: [(usize, i64, &str); 4] = [
    (10, 10, "l=10,v=[1,10]"),
    (10, 100, "l=10,v=[1,100]"),
    (100, 10, "l=100,v=[1,10]"),
    (100, 100, "l=100,v=[1,100]"),
];

fn fig5(c: &mut Criterion) {
    let (group, authority) = fixture(501);
    // Worst case: l=100, v=100 → <x,y> ≤ 100·100·100 = 10^6.
    let table = DlogTable::new(&group, 1_100_000);
    let counts = sweep(&[16usize, 32], &[2_000, 4_000, 6_000, 8_000, 10_000]);

    let mut enc = c.benchmark_group("fig5a_preprocess_encryption");
    enc.sample_size(10);
    enc.measurement_time(Duration::from_secs(2));
    enc.warm_up_time(Duration::from_millis(500));
    for &k in &counts {
        for (l, v, label) in CONFIGS {
            // k dot-products of l-long vectors = X with l rows, k cols.
            let x = random_matrix(l, k, 1, v, 31);
            let mpk = authority.feip_public_key(l);
            enc.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                let mut rng = bench_rng(32);
                b.iter(|| black_box(EncryptedMatrix::encrypt_columns(&x, &mpk, &mut rng).unwrap()));
            });
        }
    }
    enc.finish();

    let mut kd = c.benchmark_group("fig5b_key_derive");
    kd.sample_size(10);
    kd.measurement_time(Duration::from_secs(2));
    kd.warm_up_time(Duration::from_millis(500));
    for &k in &counts {
        for (l, v, label) in CONFIGS {
            // One weight row per dot-product batch; the paper derives a
            // key per server weight vector.
            let rows = (k / 8).max(1);
            let w = random_matrix(rows, l, 1, v, 33);
            kd.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                b.iter(|| black_box(derive_dot_keys(&authority, &w).unwrap()));
            });
        }
    }
    kd.finish();

    for (panel, par) in [
        ("fig5c_secure_dot_serial", Parallelism::Serial),
        ("fig5d_secure_dot_parallel", Parallelism::available()),
    ] {
        let mut g = c.benchmark_group(panel);
        g.sample_size(10);
        g.measurement_time(Duration::from_secs(2));
        g.warm_up_time(Duration::from_millis(500));
        for &k in &counts {
            for (l, v, label) in CONFIGS {
                // k total decryptions: 1 weight row × k encrypted columns.
                let x = random_matrix(l, k, 1, v, 34);
                let w = random_matrix(1, l, 1, v, 35);
                let mpk = authority.feip_public_key(l);
                let mut rng = bench_rng(36);
                let enc_x = EncryptedMatrix::encrypt_columns(&x, &mpk, &mut rng).unwrap();
                let keys = derive_dot_keys(&authority, &w).unwrap();
                g.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                    b.iter(|| black_box(secure_dot(&mpk, &enc_x, &keys, &w, &table, par).unwrap()));
                });
            }
        }
        g.finish();
    }
}

criterion_group!(benches, fig5);
criterion_main!(benches);
