//! Session-layer throughput: full federated training runs vs client
//! count and encrypt/train pipelining (DESIGN.md §9).
//!
//! Two claims are measured:
//!
//! - **Client-count neutrality** — because decryption is exact on
//!   quantized integers, sharding across K clients changes *who*
//!   encrypts, not *what* the server computes; wall-clock should be
//!   flat in K for a fixed schedule.
//! - **Pipelining** — overlapping client encryption of batch `t+1`
//!   with server training on batch `t` hides the encryption latency;
//!   the attainable speed-up is bounded by encryption's share of
//!   wall-clock (large when encryption rivals the server's decryption
//!   loops, small when BSGS decryption dominates, as it does for this
//!   workload at CI scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cryptonn_bench::{bench_level, sweep};
use cryptonn_core::Objective;
use cryptonn_data::clinic_dataset;
use cryptonn_fe::PermittedFunctions;
use cryptonn_parallel::Parallelism;
use cryptonn_protocol::{MlpSpec, ModelSpec, RunnerOptions, SessionConfig, TrainingSessionRunner};
use cryptonn_smc::FixedPoint;
use std::hint::black_box;
use std::time::Duration;

fn session_config(clients: u32, feature_dim: usize, classes: usize) -> SessionConfig {
    SessionConfig {
        level: bench_level(),
        fp: FixedPoint::TWO_DECIMALS,
        grad_fp: FixedPoint::new(10_000),
        permitted: PermittedFunctions::all(),
        model: ModelSpec::Mlp(MlpSpec {
            feature_dim,
            hidden: vec![6],
            classes,
            objective: Objective::SoftmaxCrossEntropy,
        }),
        lr: 1.0,
        epochs: 1,
        batch_size: 8,
        clients,
        authority_seed: 701,
        model_seed: 702,
        client_seed_base: 703,
        policy: cryptonn_protocol::SessionPolicy::FailFast,
    }
}

/// One full training session per iteration, swept over client count
/// and pipelining mode.
fn multiclient_throughput(c: &mut Criterion) {
    let samples = if cryptonn_bench::full_scale() { 64 } else { 32 };
    let data = clinic_dataset(samples, 201);
    let ks = sweep(&[1u32, 2, 4], &[1u32, 2, 4, 8]);

    let mut g = c.benchmark_group("session_throughput");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    for &k in &ks {
        for pipelined in [false, true] {
            let label = if pipelined { "pipelined" } else { "serial" };
            g.bench_with_input(
                BenchmarkId::new(label, format!("clients={k}")),
                &k,
                |b, &k| {
                    let runner = TrainingSessionRunner::new(session_config(
                        k,
                        data.feature_dim(),
                        data.classes(),
                    ))
                    .with_options(RunnerOptions {
                        pipelined,
                        parallelism: Parallelism::Serial,
                        record: false,
                    });
                    b.iter(|| black_box(runner.run_mlp(&data).expect("session").summary.steps));
                },
            );
        }
    }
    g.finish();
}

/// Transcript recording overhead: the same session with and without
/// the message recorder attached.
fn recording_overhead(c: &mut Criterion) {
    let data = clinic_dataset(16, 202);
    let mut g = c.benchmark_group("session_recording");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    for record in [false, true] {
        let label = if record { "recorded" } else { "bare" };
        g.bench_function(label, |b| {
            let runner =
                TrainingSessionRunner::new(session_config(2, data.feature_dim(), data.classes()))
                    .with_options(RunnerOptions {
                        pipelined: true,
                        parallelism: Parallelism::Serial,
                        record,
                    });
            b.iter(|| black_box(runner.run_mlp(&data).expect("session").transcript.len()));
        });
    }
    g.finish();
}

criterion_group!(benches, multiclient_throughput, recording_overhead);
criterion_main!(benches);
