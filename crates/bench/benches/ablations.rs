//! Ablation benches for the design decisions called out in DESIGN.md §7:
//!
//! - `ablation_dot_vs_febo`: FEIP dot-product vs element-wise FEBO
//!   multiply-then-sum (the paper separates dot-product "due to
//!   efficiency considerations" — this quantifies that choice).
//! - `ablation_bsgs_reuse`: reusing a precomputed BSGS table vs
//!   rebuilding per decryption.
//! - `ablation_threads`: decryption throughput vs thread count.
//! - `ablation_exponentiation`: the Montgomery + fixed-base pipeline
//!   (DESIGN.md §8) vs the pre-refactor generic exponentiation path,
//!   at the paper's 256-bit setting. The refactor's acceptance bar is
//!   ≥ 2× FEIP-encrypt throughput on `Bits256`.
//! - `ablation_multi_scalar_decrypt`: naive one-pow-per-term FEIP
//!   decryption vs the Straus/wNAF multi-scalar fast path
//!   (DESIGN.md §10), dim-784 at `Bits256`.
//! - `ablation_mont_lanes`: serial `mont_mul` vs the 4-wide lane
//!   kernel, on the generic and Montgomery-friendly 256-bit primes
//!   (DESIGN.md §13).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cryptonn_bench::{bench_rng, fixture, random_matrix, thread_counts};
use cryptonn_bigint::modular::{mod_mul, mod_pow_schoolbook};
use cryptonn_bigint::U256;
use cryptonn_fe::{feip, BasicOp, FeipPublicKey, KeyAuthority, PermittedFunctions};
use cryptonn_group::{solve_dlog, DlogTable, SchnorrGroup, SecurityLevel};
use cryptonn_smc::{
    derive_dot_keys, derive_elementwise_keys, secure_dot, secure_elementwise, EncryptedMatrix,
    Parallelism,
};
use rand::rngs::StdRng;
use std::hint::black_box;
use std::time::Duration;

/// Dot-product of length-l vectors: one FEIP decryption vs l FEBO
/// multiplications plus a plaintext sum.
fn dot_vs_febo(c: &mut Criterion) {
    let (group, authority) = fixture(601);
    let febo_mpk = authority.febo_public_key();
    let table = DlogTable::new(&group, 2_000_000);
    let l = 16;

    let x = random_matrix(l, 1, 1, 50, 41);
    let w = random_matrix(1, l, 1, 50, 42);
    let mpk = authority.feip_public_key(l);
    let mut rng = bench_rng(43);
    let enc_cols = EncryptedMatrix::encrypt_columns(&x, &mpk, &mut rng).unwrap();
    let ip_keys = derive_dot_keys(&authority, &w).unwrap();

    // Element-wise route: x as an l×1 FEBO matrix, multiply by wᵀ, sum.
    let enc_elems = EncryptedMatrix::encrypt_elements(&x, &febo_mpk, &mut rng).unwrap();
    let wt = w.transpose();
    let bo_keys = derive_elementwise_keys(&authority, &enc_elems, BasicOp::Mul, &wt).unwrap();

    let mut g = c.benchmark_group("ablation_dot_vs_febo");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("feip_dot", |b| {
        b.iter(|| {
            black_box(
                secure_dot(&mpk, &enc_cols, &ip_keys, &w, &table, Parallelism::Serial).unwrap(),
            )
        });
    });
    g.bench_function("febo_mul_then_sum", |b| {
        b.iter(|| {
            let products = secure_elementwise(
                &febo_mpk,
                &enc_elems,
                &bo_keys,
                BasicOp::Mul,
                &wt,
                &table,
                Parallelism::Serial,
            )
            .unwrap();
            black_box(products.sum())
        });
    });
    g.finish();
}

/// Amortized vs per-solve BSGS table construction.
fn bsgs_reuse(c: &mut Criterion) {
    let (group, _authority) = fixture(602);
    let bound = 100_000;
    let table = DlogTable::new(&group, bound);
    let targets: Vec<_> = (0..8)
        .map(|i| group.exp(&group.scalar_from_i64(i * 9_999 - 40_000)))
        .collect();

    let mut g = c.benchmark_group("ablation_bsgs_reuse");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("reused_table", |b| {
        b.iter(|| {
            for t in &targets {
                black_box(table.solve(&group, t).unwrap());
            }
        });
    });
    g.bench_function("rebuilt_per_solve", |b| {
        b.iter(|| {
            for t in &targets {
                black_box(solve_dlog(&group, t, bound).unwrap());
            }
        });
    });
    g.finish();
}

/// Secure dot-product throughput vs decryption thread count.
fn threads(c: &mut Criterion) {
    let (group, authority) = fixture(603);
    let table = DlogTable::new(&group, 1_000_000);
    let (l, k) = (10, 64);
    let x = random_matrix(l, k, 1, 50, 51);
    let w = random_matrix(4, l, 1, 50, 52);
    let mpk = authority.feip_public_key(l);
    let mut rng = bench_rng(53);
    let enc = EncryptedMatrix::encrypt_columns(&x, &mpk, &mut rng).unwrap();
    let keys = derive_dot_keys(&authority, &w).unwrap();

    let mut g = c.benchmark_group("ablation_threads");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    for t in thread_counts() {
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| {
                black_box(
                    secure_dot(&mpk, &enc, &keys, &w, &table, Parallelism::Threads(t)).unwrap(),
                )
            });
        });
    }
    g.finish();
}

/// The pre-refactor FEIP `Encrypt`: generic 4-bit-window schoolbook
/// exponentiation (one 512-bit Knuth division per product, no
/// precomputed bases), exactly as `cryptonn_bigint::modular::mod_pow`
/// and `SchnorrGroup::{exp, pow}` computed before the Montgomery
/// refactor. The table bases double as the public `hᵢ` values.
fn generic_feip_encrypt(mpk: &FeipPublicKey, x: &[i64], rng: &mut StdRng) -> (U256, Vec<U256>) {
    let group = mpk.group();
    let p = group.modulus();
    let g = group.generator();
    let r = group.random_scalar(rng);
    let ct0 = mod_pow_schoolbook(g.value(), r.value(), p);
    let cts = x
        .iter()
        .enumerate()
        .map(|(i, &xi)| {
            let hi = mpk.h_table(i).base();
            let hr = mod_pow_schoolbook(hi, r.value(), p);
            let gx = mod_pow_schoolbook(g.value(), group.scalar_from_i64(xi).value(), p);
            mod_mul(&hr, &gx, p)
        })
        .collect();
    (ct0, cts)
}

/// Generic schoolbook exponentiation vs the Montgomery + fixed-base
/// pipeline, on FEIP `Encrypt` at the paper's `Bits256` setting (the
/// perf-trajectory arm for the Montgomery refactor) and on the raw
/// `g^e` primitive underneath it.
fn exponentiation(c: &mut Criterion) {
    // Fixed at Bits256 regardless of CRYPTONN_BENCH_FULL: the
    // acceptance criterion is defined at the paper's setting.
    let group = SchnorrGroup::precomputed(SecurityLevel::Bits256);
    let authority = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), 604);
    let dim = 16;
    let mpk = authority.feip_public_key(dim);
    let x: Vec<i64> = (0..dim as i64).map(|i| i * 37 - 300).collect();

    let mut g = c.benchmark_group("ablation_exponentiation");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));

    g.bench_function("feip_encrypt_bits256/generic_schoolbook", |b| {
        let mut rng = bench_rng(61);
        b.iter(|| black_box(generic_feip_encrypt(&mpk, &x, &mut rng)));
    });
    g.bench_function("feip_encrypt_bits256/montgomery_fixed_base", |b| {
        let mut rng = bench_rng(61);
        b.iter(|| black_box(feip::encrypt(&mpk, &x, &mut rng).unwrap()));
    });

    // The raw primitive: one full-width g^e. The exponent rotates
    // through a pool per iteration so the loop-invariant call cannot be
    // hoisted out of the timing loop (black_box alone does not stop
    // that here).
    let mut rng = bench_rng(62);
    let exps: Vec<_> = (0..16).map(|_| group.random_scalar(&mut rng)).collect();
    g.bench_function("g_pow_e_bits256/generic_schoolbook", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % exps.len();
            black_box(mod_pow_schoolbook(
                group.generator().value(),
                exps[i].value(),
                group.modulus(),
            ))
        });
    });
    g.bench_function("g_pow_e_bits256/fixed_base_table", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % exps.len();
            black_box(group.exp(&exps[i]))
        });
    });
    g.finish();
}

/// Naive one-pow-per-term decryption vs the Straus/wNAF multi-scalar
/// path (DESIGN.md §10), on a dim-784 FEIP `Decrypt` at the paper's
/// `Bits256` setting — the perf-trajectory arm for the decrypt fast
/// path (acceptance ≥ 5× on the batched `secure_dot` cell loop, gated
/// at ≥ 2× in CI by the `server_decrypt` telemetry bin).
fn multi_scalar_decrypt(c: &mut Criterion) {
    // Fixed at Bits256 regardless of CRYPTONN_BENCH_FULL: the
    // acceptance criterion is defined at the paper's setting.
    let group = SchnorrGroup::precomputed(SecurityLevel::Bits256);
    let authority = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), 605);
    let dim = 784;
    let mpk = authority.feip_public_key(dim);
    let table = DlogTable::new(&group, 784 * 100 * 100);
    let mut rng = bench_rng(71);
    let x = random_matrix(dim, 1, -100, 100, 72);
    let y: Vec<i64> = random_matrix(1, dim, -100, 100, 73).into_vec();
    let enc = EncryptedMatrix::encrypt_columns_with(
        &x,
        &mpk,
        &mut rng,
        cryptonn_smc::Parallelism::available(),
    )
    .unwrap();
    let ct = &enc.feip_columns().unwrap()[0];
    let sk = authority.derive_ip_key(dim, &y).unwrap();

    let mut g = c.benchmark_group("ablation_multi_scalar_decrypt");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("feip_decrypt_bits256_dim784/naive", |b| {
        b.iter(|| black_box(feip::decrypt_naive(&mpk, ct, &sk, &y, &table).unwrap()));
    });
    g.bench_function("feip_decrypt_bits256_dim784/multi_scalar", |b| {
        b.iter(|| black_box(feip::decrypt(&mpk, ct, &sk, &y, &table).unwrap()));
    });
    g.finish();
}

/// Serial `mont_mul` vs the 4-wide lane kernel (`mont_mul_lanes`),
/// measured per Montgomery product, on the generic `Bits256` prime and
/// the Montgomery-friendly `Bits256Fast` prime (m′ = 1, one multiply
/// per reduction round shaved off). The interesting numbers are the
/// lane arm's per-mul amortization and the generic → fast-prime delta;
/// `CRYPTONN_FORCE_SCALAR=1` pins the scalar kernel for A/B runs.
fn mont_lanes(c: &mut Criterion) {
    use cryptonn_bigint::Montgomery;

    let mut g = c.benchmark_group("ablation_mont_lanes");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));

    for (label, level) in [
        ("bits256_generic", SecurityLevel::Bits256),
        ("bits256_fast", SecurityLevel::Bits256Fast),
    ] {
        let group = SchnorrGroup::precomputed(level);
        let ctx = Montgomery::new(group.modulus()).expect("odd modulus");
        let mut rng = bench_rng(81);
        // Random reduced residues; the chains below keep values live so
        // the multiplies cannot be hoisted or reassociated away.
        let seeds: [U256; 4] = core::array::from_fn(|_| {
            ctx.to_mont(group.exp(&group.random_scalar(&mut rng)).value())
        });

        g.bench_function(format!("{label}/serial_mont_mul"), |b| {
            let mut acc = seeds;
            b.iter(|| {
                for lane in 0..4 {
                    acc[lane] = ctx.mont_mul(&acc[lane], &seeds[lane]);
                }
                black_box(&mut acc);
            });
        });
        g.bench_function(format!("{label}/mont_mul_lanes"), |b| {
            let mut acc = seeds;
            b.iter(|| {
                acc = ctx.mont_mul_lanes(&acc, &seeds);
                black_box(&mut acc);
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    dot_vs_febo,
    bsgs_reuse,
    threads,
    exponentiation,
    multi_scalar_decrypt,
    mont_lanes
);
criterion_main!(benches);
