//! Ablation benches for the design decisions called out in DESIGN.md §7:
//!
//! - `ablation_dot_vs_febo`: FEIP dot-product vs element-wise FEBO
//!   multiply-then-sum (the paper separates dot-product "due to
//!   efficiency considerations" — this quantifies that choice).
//! - `ablation_bsgs_reuse`: reusing a precomputed BSGS table vs
//!   rebuilding per decryption.
//! - `ablation_threads`: decryption throughput vs thread count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cryptonn_bench::{bench_rng, fixture, random_matrix, thread_counts};
use cryptonn_fe::BasicOp;
use cryptonn_group::{solve_dlog, DlogTable};
use cryptonn_smc::{
    derive_dot_keys, derive_elementwise_keys, secure_dot, secure_elementwise,
    EncryptedMatrix, Parallelism,
};
use std::hint::black_box;
use std::time::Duration;

/// Dot-product of length-l vectors: one FEIP decryption vs l FEBO
/// multiplications plus a plaintext sum.
fn dot_vs_febo(c: &mut Criterion) {
    let (group, authority) = fixture(601);
    let febo_mpk = authority.febo_public_key();
    let table = DlogTable::new(&group, 2_000_000);
    let l = 16;

    let x = random_matrix(l, 1, 1, 50, 41);
    let w = random_matrix(1, l, 1, 50, 42);
    let mpk = authority.feip_public_key(l);
    let mut rng = bench_rng(43);
    let enc_cols = EncryptedMatrix::encrypt_columns(&x, &mpk, &mut rng).unwrap();
    let ip_keys = derive_dot_keys(&authority, &w).unwrap();

    // Element-wise route: x as an l×1 FEBO matrix, multiply by wᵀ, sum.
    let enc_elems = EncryptedMatrix::encrypt_elements(&x, &febo_mpk, &mut rng).unwrap();
    let wt = w.transpose();
    let bo_keys = derive_elementwise_keys(&authority, &enc_elems, BasicOp::Mul, &wt).unwrap();

    let mut g = c.benchmark_group("ablation_dot_vs_febo");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("feip_dot", |b| {
        b.iter(|| {
            black_box(
                secure_dot(&mpk, &enc_cols, &ip_keys, &w, &table, Parallelism::Serial).unwrap(),
            )
        });
    });
    g.bench_function("febo_mul_then_sum", |b| {
        b.iter(|| {
            let products = secure_elementwise(
                &febo_mpk,
                &enc_elems,
                &bo_keys,
                BasicOp::Mul,
                &wt,
                &table,
                Parallelism::Serial,
            )
            .unwrap();
            black_box(products.sum())
        });
    });
    g.finish();
}

/// Amortized vs per-solve BSGS table construction.
fn bsgs_reuse(c: &mut Criterion) {
    let (group, _authority) = fixture(602);
    let bound = 100_000;
    let table = DlogTable::new(&group, bound);
    let targets: Vec<_> = (0..8)
        .map(|i| group.exp(&group.scalar_from_i64(i * 9_999 - 40_000)))
        .collect();

    let mut g = c.benchmark_group("ablation_bsgs_reuse");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.bench_function("reused_table", |b| {
        b.iter(|| {
            for t in &targets {
                black_box(table.solve(&group, t).unwrap());
            }
        });
    });
    g.bench_function("rebuilt_per_solve", |b| {
        b.iter(|| {
            for t in &targets {
                black_box(solve_dlog(&group, t, bound).unwrap());
            }
        });
    });
    g.finish();
}

/// Secure dot-product throughput vs decryption thread count.
fn threads(c: &mut Criterion) {
    let (group, authority) = fixture(603);
    let table = DlogTable::new(&group, 1_000_000);
    let (l, k) = (10, 64);
    let x = random_matrix(l, k, 1, 50, 51);
    let w = random_matrix(4, l, 1, 50, 52);
    let mpk = authority.feip_public_key(l);
    let mut rng = bench_rng(53);
    let enc = EncryptedMatrix::encrypt_columns(&x, &mpk, &mut rng).unwrap();
    let keys = derive_dot_keys(&authority, &w).unwrap();

    let mut g = c.benchmark_group("ablation_threads");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    for t in thread_counts() {
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| {
                black_box(
                    secure_dot(&mpk, &enc, &keys, &w, &table, Parallelism::Threads(t)).unwrap(),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, dot_vs_febo, bsgs_reuse, threads);
criterion_main!(benches);
