//! Fig. 3 — time cost of element-wise **addition** in the secure matrix
//! computation scheme.
//!
//! Panels: (a) pre-process encryption, (b) pre-process key-derive,
//! (c) secure addition serial, (d) secure addition parallelized.
//! Sweep: element count k, value ranges [-10,10] / [-100,100] /
//! [-1000,1000], matching the paper's legends (paper k is 2,000–10,000;
//! default here is CI-sized — set CRYPTONN_BENCH_FULL=1 for full scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cryptonn_bench::{bench_rng, fixture, random_elements, sweep, ELEMENT_RANGES};
use cryptonn_fe::BasicOp;
use cryptonn_group::DlogTable;
use cryptonn_smc::{derive_elementwise_keys, secure_elementwise, EncryptedMatrix, Parallelism};
use std::hint::black_box;
use std::time::Duration;

fn fig3(c: &mut Criterion) {
    let (group, authority) = fixture(301);
    let febo_mpk = authority.febo_public_key();
    let sizes = sweep(&[256usize, 512], &[2_000, 4_000, 6_000, 8_000, 10_000]);
    // Addition results stay within ±2·range → one table covers all.
    let table = DlogTable::new(&group, 4_000);

    let mut enc = c.benchmark_group("fig3a_preprocess_encryption");
    enc.sample_size(10);
    enc.measurement_time(Duration::from_secs(2));
    enc.warm_up_time(Duration::from_millis(500));
    for &k in &sizes {
        for (lo, hi, label) in ELEMENT_RANGES {
            let x = random_elements(k, lo, hi, 11);
            enc.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                let mut rng = bench_rng(12);
                b.iter(|| {
                    black_box(EncryptedMatrix::encrypt_elements(&x, &febo_mpk, &mut rng).unwrap())
                });
            });
        }
    }
    enc.finish();

    let mut kd = c.benchmark_group("fig3b_key_derive");
    kd.sample_size(10);
    kd.measurement_time(Duration::from_secs(2));
    kd.warm_up_time(Duration::from_millis(500));
    for &k in &sizes {
        for (lo, hi, label) in ELEMENT_RANGES {
            let x = random_elements(k, lo, hi, 13);
            let y = random_elements(k, lo, hi, 14);
            let mut rng = bench_rng(15);
            let enc_x = EncryptedMatrix::encrypt_elements(&x, &febo_mpk, &mut rng).unwrap();
            kd.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                b.iter(|| {
                    black_box(
                        derive_elementwise_keys(&authority, &enc_x, BasicOp::Add, &y).unwrap(),
                    )
                });
            });
        }
    }
    kd.finish();

    for (panel, par) in [
        ("fig3c_secure_add_serial", Parallelism::Serial),
        ("fig3d_secure_add_parallel", Parallelism::available()),
    ] {
        let mut g = c.benchmark_group(panel);
        g.sample_size(10);
        g.measurement_time(Duration::from_secs(2));
        g.warm_up_time(Duration::from_millis(500));
        for &k in &sizes {
            for (lo, hi, label) in ELEMENT_RANGES {
                let x = random_elements(k, lo, hi, 16);
                let y = random_elements(k, lo, hi, 17);
                let mut rng = bench_rng(18);
                let enc_x = EncryptedMatrix::encrypt_elements(&x, &febo_mpk, &mut rng).unwrap();
                let keys = derive_elementwise_keys(&authority, &enc_x, BasicOp::Add, &y).unwrap();
                g.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                    b.iter(|| {
                        black_box(
                            secure_elementwise(
                                &febo_mpk,
                                &enc_x,
                                &keys,
                                BasicOp::Add,
                                &y,
                                &table,
                                par,
                            )
                            .unwrap(),
                        )
                    });
                });
            }
        }
        g.finish();
    }
}

criterion_group!(benches, fig3);
criterion_main!(benches);
