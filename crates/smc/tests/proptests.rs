//! Property-based tests for the secure-computation layer: quantization
//! laws and secure-vs-plaintext equivalence on randomized inputs.

use cryptonn_fe::{BasicOp, KeyAuthority, PermittedFunctions};
use cryptonn_group::{DlogTable, SchnorrGroup, SecurityLevel};
use cryptonn_matrix::Matrix;
use cryptonn_smc::{
    derive_dot_keys, derive_elementwise_keys, parallel_map, secure_dot, secure_elementwise,
    EncryptedMatrix, FixedPoint, Parallelism,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn group() -> &'static SchnorrGroup {
    static G: OnceLock<SchnorrGroup> = OnceLock::new();
    G.get_or_init(|| SchnorrGroup::precomputed(SecurityLevel::Bits64))
}

fn table() -> &'static DlogTable {
    static T: OnceLock<DlogTable> = OnceLock::new();
    T.get_or_init(|| DlogTable::new(group(), 3_000_000))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn quantization_error_is_half_step(v in -10_000.0f64..10_000.0, scale in 1u32..10_000) {
        let fp = FixedPoint::new(scale);
        let err = (fp.roundtrip(v) - v).abs();
        prop_assert!(err <= 0.5 / scale as f64 + 1e-9);
    }

    #[test]
    fn product_decode_is_exact_for_quantized_inputs(
        a in -100.0f64..100.0,
        b in -100.0f64..100.0,
    ) {
        let fp = FixedPoint::TWO_DECIMALS;
        let qa = fp.encode(a);
        let qb = fp.encode(b);
        let decoded = fp.decode_product(qa * qb);
        let exact = fp.decode(qa) * fp.decode(qb);
        prop_assert!((decoded - exact).abs() < 1e-9);
    }

    #[test]
    fn parallel_map_equals_serial_map(n in 0usize..64, threads in 1usize..8) {
        let serial: Vec<usize> = (0..n).map(|i| i * 3 + 1).collect();
        let parallel = parallel_map(n, threads, |i| i * 3 + 1);
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn secure_dot_equals_matmul(
        seed in any::<u64>(),
        n in 1usize..6,
        m in 1usize..5,
        k in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let auth = KeyAuthority::with_seed(group().clone(), PermittedFunctions::all(), seed);
        let x = Matrix::from_fn(n, m, |r, c| ((seed as usize + r * 31 + c * 17) % 201) as i64 - 100);
        let w = Matrix::from_fn(k, n, |r, c| ((seed as usize + r * 13 + c * 7) % 201) as i64 - 100);
        let mpk = auth.feip_public_key(n);
        let enc = EncryptedMatrix::encrypt_columns(&x, &mpk, &mut rng).unwrap();
        let keys = derive_dot_keys(&auth, &w).unwrap();
        let z = secure_dot(&mpk, &enc, &keys, &w, table(), Parallelism::Serial).unwrap();
        prop_assert_eq!(z, w.matmul(&x));
    }

    #[test]
    fn secure_elementwise_equals_plaintext(
        seed in any::<u64>(),
        rows in 1usize..4,
        cols in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let auth = KeyAuthority::with_seed(group().clone(), PermittedFunctions::all(), seed);
        let mpk = auth.febo_public_key();
        let x = Matrix::from_fn(rows, cols, |r, c| ((seed as usize + r * 5 + c) % 1001) as i64 - 500);
        let y = Matrix::from_fn(rows, cols, |r, c| ((seed as usize + r + c * 11) % 1001) as i64 - 500);
        let enc = EncryptedMatrix::encrypt_elements(&x, &mpk, &mut rng).unwrap();
        for op in [BasicOp::Add, BasicOp::Sub, BasicOp::Mul] {
            let keys = derive_elementwise_keys(&auth, &enc, op, &y).unwrap();
            let z = secure_elementwise(&mpk, &enc, &keys, op, &y, table(), Parallelism::Serial)
                .unwrap();
            prop_assert_eq!(z, x.zip_map(&y, |a, b| op.apply(a, b)));
        }
    }
}
