//! Secure matrix computation — Algorithm 1 of the paper.
//!
//! The scheme has three parts, mirrored here function-for-function:
//!
//! - **pre-process-encryption** (client): each *column* of `X` is
//!   encrypted under FEIP (for dot-products) and each *element* under
//!   FEBO (for element-wise arithmetic) →
//!   [`EncryptedMatrix::encrypt_full`] (or the cheaper single-purpose
//!   constructors).
//! - **pre-process-key-derivative** (server ↔ authority): one FEIP key
//!   per row of the server operand `Y` for dot-products
//!   ([`derive_dot_keys`]), or one FEBO key per element otherwise
//!   ([`derive_elementwise_keys`]).
//! - **secure-computation** (server): decrypt every output cell —
//!   `Z[i][j] = ⟨yᵢ, xⱼ⟩` for dot-products ([`secure_dot`]) or
//!   `Z[i][j] = X[i][j] Δ Y[i][j]` element-wise
//!   ([`secure_elementwise`]). Both decryption loops take a
//!   [`Parallelism`] policy (the paper's "(P)" arms).

use cryptonn_fe::{febo, feip, BasicOp, FeboKeyRequest, KeyService};
use cryptonn_fe::{FeboCiphertext, FeboFunctionKey, FeboPublicKey};
use cryptonn_fe::{FeipCiphertext, FeipFunctionKey, FeipPublicKey};
use cryptonn_group::DlogTable;
use cryptonn_matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::SmcError;
use cryptonn_parallel::Parallelism;

/// The permitted function set `F` of Algorithm 1: a dot-product or one
/// of the four element-wise operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SecureFunction {
    /// `Z = Y · X` via FEIP.
    DotProduct,
    /// `Z[i][j] = X[i][j] Δ Y[i][j]` via FEBO.
    Elementwise(BasicOp),
}

/// A matrix encrypted by a client for server-side secure computation.
///
/// Per Algorithm 1's `pre-process-encryption`, the FEIP part holds one
/// ciphertext per column (`[[x]]`) and the FEBO part one ciphertext per
/// element (`[[X]]`). Either part may be omitted when the workload only
/// needs the other.
///
/// Serializes as-is (ciphertexts are group elements); this is the
/// payload of the session layer's `EncryptedBatchMsg` wire message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncryptedMatrix {
    rows: usize,
    cols: usize,
    columns: Option<Vec<FeipCiphertext>>,
    elements: Option<Matrix<FeboCiphertext>>,
}

impl EncryptedMatrix {
    /// Encrypts for dot-products only (FEIP per column), serially.
    ///
    /// # Errors
    ///
    /// Returns [`SmcError::Fe`] if `mpk`'s dimension differs from the
    /// row count of `x`.
    pub fn encrypt_columns<R: Rng + ?Sized>(
        x: &Matrix<i64>,
        feip_mpk: &FeipPublicKey,
        rng: &mut R,
    ) -> Result<Self, SmcError> {
        Self::encrypt_columns_with(x, feip_mpk, rng, Parallelism::Serial)
    }

    /// Encrypts for dot-products only, fanning the column ciphertexts
    /// out over `parallelism` via [`feip::encrypt_batch`]. The output
    /// is bit-identical across thread counts for a given `rng` state.
    ///
    /// # Errors
    ///
    /// As [`encrypt_columns`](Self::encrypt_columns).
    pub fn encrypt_columns_with<R: Rng + ?Sized>(
        x: &Matrix<i64>,
        feip_mpk: &FeipPublicKey,
        rng: &mut R,
        parallelism: Parallelism,
    ) -> Result<Self, SmcError> {
        let cols: Vec<Vec<i64>> = (0..x.cols()).map(|j| x.col(j)).collect();
        let columns = feip::encrypt_batch(feip_mpk, &cols, rng, parallelism)?;
        Ok(Self {
            rows: x.rows(),
            cols: x.cols(),
            columns: Some(columns),
            elements: None,
        })
    }

    /// Encrypts for element-wise computation only (FEBO per element),
    /// serially.
    pub fn encrypt_elements<R: Rng + ?Sized>(
        x: &Matrix<i64>,
        febo_mpk: &FeboPublicKey,
        rng: &mut R,
    ) -> Result<Self, SmcError> {
        Self::encrypt_elements_with(x, febo_mpk, rng, Parallelism::Serial)
    }

    /// Encrypts for element-wise computation only, fanning the element
    /// ciphertexts out over `parallelism` via [`febo::encrypt_batch`].
    pub fn encrypt_elements_with<R: Rng + ?Sized>(
        x: &Matrix<i64>,
        febo_mpk: &FeboPublicKey,
        rng: &mut R,
        parallelism: Parallelism,
    ) -> Result<Self, SmcError> {
        let cts = febo::encrypt_batch(febo_mpk, x.as_slice(), rng, parallelism);
        let elements = Matrix::from_vec(x.rows(), x.cols(), cts);
        Ok(Self {
            rows: x.rows(),
            cols: x.cols(),
            columns: None,
            elements: Some(elements),
        })
    }

    /// Full Algorithm-1 encryption: both the FEIP and FEBO parts,
    /// serially.
    pub fn encrypt_full<R: Rng + ?Sized>(
        x: &Matrix<i64>,
        feip_mpk: &FeipPublicKey,
        febo_mpk: &FeboPublicKey,
        rng: &mut R,
    ) -> Result<Self, SmcError> {
        Self::encrypt_full_with(x, feip_mpk, febo_mpk, rng, Parallelism::Serial)
    }

    /// Full Algorithm-1 encryption with a parallel fan-out for both
    /// parts.
    pub fn encrypt_full_with<R: Rng + ?Sized>(
        x: &Matrix<i64>,
        feip_mpk: &FeipPublicKey,
        febo_mpk: &FeboPublicKey,
        rng: &mut R,
        parallelism: Parallelism,
    ) -> Result<Self, SmcError> {
        let with_cols = Self::encrypt_columns_with(x, feip_mpk, rng, parallelism)?;
        let with_elems = Self::encrypt_elements_with(x, febo_mpk, rng, parallelism)?;
        Ok(Self {
            rows: x.rows(),
            cols: x.cols(),
            columns: with_cols.columns,
            elements: with_elems.elements,
        })
    }

    /// Number of rows of the underlying plaintext.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the underlying plaintext.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` of the underlying plaintext.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True if the FEIP (dot-product) part is present.
    pub fn supports_dot(&self) -> bool {
        self.columns.is_some()
    }

    /// True if the FEBO (element-wise) part is present.
    pub fn supports_elementwise(&self) -> bool {
        self.elements.is_some()
    }

    /// The per-column FEIP ciphertexts, for callers that combine or
    /// decrypt them directly (e.g. CryptoNN's secure gradient step).
    ///
    /// # Errors
    ///
    /// Returns [`SmcError::NotEncryptedForDot`] if the FEIP part is
    /// absent.
    pub fn feip_columns(&self) -> Result<&[FeipCiphertext], SmcError> {
        self.columns()
    }

    /// The per-element FEBO ciphertexts, for callers that decrypt them
    /// directly (the naive arm of the decrypt telemetry, external
    /// pipelines).
    ///
    /// # Errors
    ///
    /// Returns [`SmcError::NotEncryptedForElementwise`] if the FEBO part
    /// is absent.
    pub fn febo_elements(&self) -> Result<&Matrix<FeboCiphertext>, SmcError> {
        self.elements()
    }

    fn columns(&self) -> Result<&[FeipCiphertext], SmcError> {
        self.columns.as_deref().ok_or(SmcError::NotEncryptedForDot)
    }

    fn elements(&self) -> Result<&Matrix<FeboCiphertext>, SmcError> {
        self.elements
            .as_ref()
            .ok_or(SmcError::NotEncryptedForElementwise)
    }
}

/// `pre-process-key-derivative`, dot-product branch: requests one FEIP
/// key per row of the server operand `y` (each row is one neuron's
/// weight vector).
///
/// # Errors
///
/// Propagates authority refusals
/// ([`FeError::FunctionNotPermitted`](cryptonn_fe::FeError::FunctionNotPermitted)) and
/// dimension mismatches.
pub fn derive_dot_keys<A: KeyService + ?Sized>(
    authority: &A,
    y: &Matrix<i64>,
) -> Result<Vec<FeipFunctionKey>, SmcError> {
    let rows: Vec<Vec<i64>> = (0..y.rows()).map(|i| y.row(i).to_vec()).collect();
    Ok(authority.derive_ip_keys(y.cols(), &rows)?)
}

/// `pre-process-key-derivative`, element-wise branch: requests one FEBO
/// key per element, bound to the matching ciphertext commitment.
///
/// # Errors
///
/// - [`SmcError::ShapeMismatch`] if `y`'s shape differs from the
///   encrypted matrix,
/// - [`SmcError::NotEncryptedForElementwise`] if the FEBO part is absent,
/// - authority refusals.
pub fn derive_elementwise_keys<A: KeyService + ?Sized>(
    authority: &A,
    enc: &EncryptedMatrix,
    op: BasicOp,
    y: &Matrix<i64>,
) -> Result<Matrix<FeboFunctionKey>, SmcError> {
    if y.shape() != enc.shape() {
        return Err(SmcError::ShapeMismatch {
            expected: enc.shape(),
            got: y.shape(),
        });
    }
    let elements = enc.elements()?;
    let mut reqs = Vec::with_capacity(y.rows() * y.cols());
    for i in 0..y.rows() {
        for j in 0..y.cols() {
            reqs.push(FeboKeyRequest {
                cmt: *elements[(i, j)].commitment(),
                op,
                y: y[(i, j)],
            });
        }
    }
    let keys = authority.derive_bo_keys(&reqs)?;
    Ok(Matrix::from_vec(y.rows(), y.cols(), keys))
}

/// `secure-computation`, dot-product branch: computes `Z = Y · X` with
/// `Z[i][j] = ⟨yᵢ, x_colⱼ⟩` by decrypting every cell (lines 4–8 of
/// Algorithm 1).
///
/// # Errors
///
/// - [`SmcError::NotEncryptedForDot`] if the FEIP part is absent,
/// - [`SmcError::KeyCountMismatch`] / [`SmcError::ShapeMismatch`] on
///   operand disagreement,
/// - [`FeError::Group`](cryptonn_fe::FeError::Group) (wrapped) if a result
///   exceeds the dlog bound.
pub fn secure_dot(
    feip_mpk: &FeipPublicKey,
    enc: &EncryptedMatrix,
    keys: &[FeipFunctionKey],
    y: &Matrix<i64>,
    table: &DlogTable,
    parallelism: Parallelism,
) -> Result<Matrix<i64>, SmcError> {
    let columns = enc.columns()?;
    if y.cols() != enc.rows() {
        return Err(SmcError::ShapeMismatch {
            expected: (y.rows(), enc.rows()),
            got: y.shape(),
        });
    }
    if keys.len() != y.rows() {
        return Err(SmcError::KeyCountMismatch {
            expected: y.rows(),
            got: keys.len(),
        });
    }

    let mut out = Matrix::zeros(y.rows(), enc.cols());
    crate::cells::decrypt_feip_cells(
        feip_mpk,
        columns,
        keys,
        y,
        table,
        parallelism,
        &mut out,
        // Cell (ciphertext column j, key row i) is output Z[i][j].
        |out, j, i, v| out[(i, j)] = v,
    )?;
    Ok(out)
}

/// Batched [`secure_dot`] over **several** encrypted matrices sharing
/// one server operand: computes `Zᵇ = Y · Xᵇ` for every batch `b` in a
/// single [`feip::decrypt_cells_refs`] sweep, so the whole coalesced
/// set shares the per-row wNAF recodings, the `ct₀` comb decision, and
/// **one** modular inversion — the decrypt core of the inference
/// serving layer's request batching.
///
/// Returns one result matrix per input, in order; each is bit-identical
/// to what a separate [`secure_dot`] call on that input produces.
///
/// # Errors
///
/// As [`secure_dot`], applied to each input matrix.
pub fn secure_dot_multi(
    feip_mpk: &FeipPublicKey,
    encs: &[&EncryptedMatrix],
    keys: &[FeipFunctionKey],
    y: &Matrix<i64>,
    table: &DlogTable,
    parallelism: Parallelism,
) -> Result<Vec<Matrix<i64>>, SmcError> {
    if keys.len() != y.rows() {
        return Err(SmcError::KeyCountMismatch {
            expected: y.rows(),
            got: keys.len(),
        });
    }
    let mut columns: Vec<&FeipCiphertext> = Vec::new();
    for enc in encs {
        if y.cols() != enc.rows() {
            return Err(SmcError::ShapeMismatch {
                expected: (y.rows(), enc.rows()),
                got: y.shape(),
            });
        }
        columns.extend(enc.columns()?.iter());
    }
    let rows: Vec<&[i64]> = (0..y.rows()).map(|r| y.row(r)).collect();
    let values = feip::decrypt_cells_refs(feip_mpk, &columns, keys, &rows, table, parallelism)?;
    // Values arrive ciphertext-major: consecutive runs of `nrows` cells
    // per column, columns in enc order.
    let nrows = y.rows();
    let mut out = Vec::with_capacity(encs.len());
    let mut offset = 0;
    for enc in encs {
        let mut z = Matrix::zeros(nrows, enc.cols());
        for j in 0..enc.cols() {
            for r in 0..nrows {
                z[(r, j)] = values[offset + j * nrows + r];
            }
        }
        offset += enc.cols() * nrows;
        out.push(z);
    }
    Ok(out)
}

/// `secure-computation`, element-wise branch: computes
/// `Z[i][j] = X[i][j] Δ Y[i][j]` by decrypting every cell (lines 9–12 of
/// Algorithm 1).
///
/// # Errors
///
/// As [`secure_dot`], with [`SmcError::NotEncryptedForElementwise`] when
/// the FEBO part is absent. Division results must be exact integers.
pub fn secure_elementwise(
    febo_mpk: &FeboPublicKey,
    enc: &EncryptedMatrix,
    keys: &Matrix<FeboFunctionKey>,
    op: BasicOp,
    y: &Matrix<i64>,
    table: &DlogTable,
    parallelism: Parallelism,
) -> Result<Matrix<i64>, SmcError> {
    let elements = enc.elements()?;
    if y.shape() != enc.shape() {
        return Err(SmcError::ShapeMismatch {
            expected: enc.shape(),
            got: y.shape(),
        });
    }
    if keys.shape() != enc.shape() {
        return Err(SmcError::KeyCountMismatch {
            expected: enc.rows * enc.cols,
            got: keys.len(),
        });
    }

    crate::cells::decrypt_febo_cells(febo_mpk, elements, keys, op, y, table, parallelism)
}

/// One-call facade over key derivation + secure computation, matching
/// the `secure-computation` dispatcher of Algorithm 1.
///
/// # Errors
///
/// As the underlying stage functions.
#[allow(clippy::too_many_arguments)]
pub fn secure_compute<A: KeyService + ?Sized>(
    authority: &A,
    feip_mpk: &FeipPublicKey,
    febo_mpk: &FeboPublicKey,
    enc: &EncryptedMatrix,
    f: SecureFunction,
    y: &Matrix<i64>,
    table: &DlogTable,
    parallelism: Parallelism,
) -> Result<Matrix<i64>, SmcError> {
    match f {
        SecureFunction::DotProduct => {
            let keys = derive_dot_keys(authority, y)?;
            secure_dot(feip_mpk, enc, &keys, y, table, parallelism)
        }
        SecureFunction::Elementwise(op) => {
            let keys = derive_elementwise_keys(authority, enc, op, y)?;
            secure_elementwise(febo_mpk, enc, &keys, op, y, table, parallelism)
        }
    }
}

/// A conservative signed dlog bound for dot-products of `len`-long
/// vectors with entries bounded by `max_x` and `max_y`.
pub fn dot_bound(max_x: u64, max_y: u64, len: usize) -> u64 {
    max_x
        .saturating_mul(max_y)
        .saturating_mul(len as u64)
        .max(1)
}

/// A conservative signed dlog bound for an element-wise operation with
/// operands bounded by `max_x` and `max_y`.
pub fn elementwise_bound(op: BasicOp, max_x: u64, max_y: u64) -> u64 {
    match op {
        BasicOp::Add | BasicOp::Sub => max_x.saturating_add(max_y).max(1),
        BasicOp::Mul => max_x.saturating_mul(max_y).max(1),
        BasicOp::Div => max_x.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptonn_fe::{KeyAuthority, PermittedFunctions};
    use cryptonn_group::{SchnorrGroup, SecurityLevel};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    struct Fixture {
        authority: KeyAuthority,
        table: DlogTable,
        rng: StdRng,
    }

    fn fixture() -> Fixture {
        let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
        let authority = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), 17);
        let table = DlogTable::new(&group, 2_000_000);
        Fixture {
            authority,
            table,
            rng: StdRng::seed_from_u64(18),
        }
    }

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize, range: i64) -> Matrix<i64> {
        Matrix::from_fn(rows, cols, |_, _| rng.random_range(-range..=range))
    }

    #[test]
    fn secure_dot_matches_plaintext() {
        let mut fx = fixture();
        let x = random_matrix(&mut fx.rng, 4, 3, 50); // features × samples
        let y = random_matrix(&mut fx.rng, 2, 4, 50); // neurons × features
        let feip_mpk = fx.authority.feip_public_key(4);
        let enc = EncryptedMatrix::encrypt_columns(&x, &feip_mpk, &mut fx.rng).unwrap();

        let keys = derive_dot_keys(&fx.authority, &y).unwrap();
        for par in [Parallelism::Serial, Parallelism::Threads(4)] {
            let z = secure_dot(&feip_mpk, &enc, &keys, &y, &fx.table, par).unwrap();
            assert_eq!(z, y.matmul(&x), "parallelism {par:?}");
        }
    }

    #[test]
    fn secure_elementwise_all_ops_match_plaintext() {
        let mut fx = fixture();
        let febo_mpk = fx.authority.febo_public_key();
        // Divisible pairs for Div: x = q*y.
        let q = random_matrix(&mut fx.rng, 3, 3, 30);
        let y = Matrix::from_fn(3, 3, |i, j| {
            let v: i64 = ((i * 3 + j) as i64 % 5) + 1;
            if (i + j) % 2 == 0 {
                v
            } else {
                -v
            }
        });
        let x = q.hadamard(&y);

        let enc = EncryptedMatrix::encrypt_elements(&x, &febo_mpk, &mut fx.rng).unwrap();
        for op in BasicOp::ALL {
            let keys = derive_elementwise_keys(&fx.authority, &enc, op, &y).unwrap();
            let z = secure_elementwise(
                &febo_mpk,
                &enc,
                &keys,
                op,
                &y,
                &fx.table,
                Parallelism::Threads(2),
            )
            .unwrap();
            let expect = x.zip_map(&y, |a, b| op.apply(a, b));
            assert_eq!(z, expect, "op {op}");
        }
    }

    #[test]
    fn facade_dispatches_both_branches() {
        let mut fx = fixture();
        let x = random_matrix(&mut fx.rng, 3, 2, 20);
        let feip_mpk = fx.authority.feip_public_key(3);
        let febo_mpk = fx.authority.febo_public_key();
        let enc = EncryptedMatrix::encrypt_full(&x, &feip_mpk, &febo_mpk, &mut fx.rng).unwrap();
        assert!(enc.supports_dot() && enc.supports_elementwise());

        let w = random_matrix(&mut fx.rng, 2, 3, 20);
        let z = secure_compute(
            &fx.authority,
            &feip_mpk,
            &febo_mpk,
            &enc,
            SecureFunction::DotProduct,
            &w,
            &fx.table,
            Parallelism::Serial,
        )
        .unwrap();
        assert_eq!(z, w.matmul(&x));

        let y = random_matrix(&mut fx.rng, 3, 2, 20);
        let z = secure_compute(
            &fx.authority,
            &feip_mpk,
            &febo_mpk,
            &enc,
            SecureFunction::Elementwise(BasicOp::Add),
            &y,
            &fx.table,
            Parallelism::Serial,
        )
        .unwrap();
        assert_eq!(z, x.add(&y));
    }

    #[test]
    fn missing_parts_are_reported() {
        let mut fx = fixture();
        let x = random_matrix(&mut fx.rng, 2, 2, 5);
        let feip_mpk = fx.authority.feip_public_key(2);
        let febo_mpk = fx.authority.febo_public_key();

        let dot_only = EncryptedMatrix::encrypt_columns(&x, &feip_mpk, &mut fx.rng).unwrap();
        assert_eq!(
            derive_elementwise_keys(&fx.authority, &dot_only, BasicOp::Add, &x).unwrap_err(),
            SmcError::NotEncryptedForElementwise
        );

        let elem_only = EncryptedMatrix::encrypt_elements(&x, &febo_mpk, &mut fx.rng).unwrap();
        let keys = derive_dot_keys(&fx.authority, &x).unwrap();
        assert_eq!(
            secure_dot(
                &feip_mpk,
                &elem_only,
                &keys,
                &x,
                &fx.table,
                Parallelism::Serial
            )
            .unwrap_err(),
            SmcError::NotEncryptedForDot
        );
    }

    #[test]
    fn shape_and_key_mismatches_are_reported() {
        let mut fx = fixture();
        let x = random_matrix(&mut fx.rng, 3, 2, 5);
        let feip_mpk = fx.authority.feip_public_key(3);
        let enc = EncryptedMatrix::encrypt_columns(&x, &feip_mpk, &mut fx.rng).unwrap();

        // y with wrong inner dimension.
        let bad_y = random_matrix(&mut fx.rng, 2, 4, 5);
        let keys = derive_dot_keys(&fx.authority, &random_matrix(&mut fx.rng, 2, 3, 5)).unwrap();
        assert!(matches!(
            secure_dot(
                &feip_mpk,
                &enc,
                &keys,
                &bad_y,
                &fx.table,
                Parallelism::Serial
            ),
            Err(SmcError::ShapeMismatch { .. })
        ));

        // Too few keys.
        let y = random_matrix(&mut fx.rng, 2, 3, 5);
        assert!(matches!(
            secure_dot(
                &feip_mpk,
                &enc,
                &keys[..1],
                &y,
                &fx.table,
                Parallelism::Serial
            ),
            Err(SmcError::KeyCountMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn bounds_helpers() {
        assert_eq!(dot_bound(10, 10, 5), 500);
        assert_eq!(elementwise_bound(BasicOp::Add, 100, 50), 150);
        assert_eq!(elementwise_bound(BasicOp::Mul, 100, 50), 5000);
        assert_eq!(elementwise_bound(BasicOp::Div, 100, 50), 100);
        // Saturation instead of overflow.
        assert_eq!(dot_bound(u64::MAX, 2, 3), u64::MAX);
        // Never zero.
        assert_eq!(dot_bound(0, 0, 0), 1);
    }
}
