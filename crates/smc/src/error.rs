//! Error types for the secure-computation layer.

use core::fmt;

use cryptonn_fe::FeError;

/// Errors from secure matrix computation and secure convolution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SmcError {
    /// Two matrices that must agree in shape do not.
    ShapeMismatch {
        /// The shape required by the operation.
        expected: (usize, usize),
        /// The shape that was supplied.
        got: (usize, usize),
    },
    /// The ciphertext was produced without the FEIP (per-column) part
    /// needed for dot-products.
    NotEncryptedForDot,
    /// The ciphertext was produced without the FEBO (per-element) part
    /// needed for element-wise operations.
    NotEncryptedForElementwise,
    /// A key batch does not match the operand it was derived for.
    KeyCountMismatch {
        /// Keys required.
        expected: usize,
        /// Keys supplied.
        got: usize,
    },
    /// An underlying FE operation failed.
    Fe(FeError),
}

impl fmt::Display for SmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmcError::ShapeMismatch { expected, got } => write!(
                f,
                "matrix shape mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            SmcError::NotEncryptedForDot => {
                write!(
                    f,
                    "matrix was not encrypted with the FEIP (dot-product) part"
                )
            }
            SmcError::NotEncryptedForElementwise => {
                write!(
                    f,
                    "matrix was not encrypted with the FEBO (element-wise) part"
                )
            }
            SmcError::KeyCountMismatch { expected, got } => {
                write!(
                    f,
                    "function key count mismatch: expected {expected}, got {got}"
                )
            }
            SmcError::Fe(e) => write!(f, "functional encryption failed: {e}"),
        }
    }
}

impl std::error::Error for SmcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SmcError::Fe(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FeError> for SmcError {
    fn from(e: FeError) -> Self {
        SmcError::Fe(e)
    }
}
