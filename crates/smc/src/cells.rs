//! The shared cell-decryption core of `secure-computation`.
//!
//! `secure_dot` (Algorithm 1, lines 4–8) and `secure_convolution`
//! (Algorithm 3) are the same computation with different bookkeeping: a
//! cross product of FEIP ciphertexts against server operand rows, one
//! bounded-dlog decryption per cell. This module holds that loop once,
//! on top of the batched [`feip::decrypt_cells`] fast path (wNAF
//! recoding shared across columns, odd-power tables shared across rows,
//! one batched inversion per matrix — DESIGN.md §10), so both entry
//! points land on exactly one implementation. The element-wise branch
//! gets the same treatment via [`febo::decrypt_ratio`].

use cryptonn_fe::{febo, feip, BasicOp, FeError};
use cryptonn_fe::{FeboCiphertext, FeboFunctionKey, FeboPublicKey};
use cryptonn_fe::{FeipCiphertext, FeipFunctionKey, FeipPublicKey};
use cryptonn_group::{DlogTable, ElementRatio, LANES};
use cryptonn_matrix::Matrix;
use cryptonn_parallel::{parallel_map, Parallelism};

use crate::error::SmcError;

/// Decrypts the full (ciphertext × key-row) cross product through the
/// multi-scalar fast path and hands each cell's value to `place`, which
/// writes it wherever the caller's output layout wants it:
/// `place(out, ct_index, row_index, value)`.
///
/// `y` supplies one operand row per key (`y.rows() == keys.len()`).
///
/// # Errors
///
/// Propagates dimension mismatches and dlog-range failures from
/// [`feip::decrypt_cells`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn decrypt_feip_cells<F>(
    mpk: &FeipPublicKey,
    cts: &[FeipCiphertext],
    keys: &[FeipFunctionKey],
    y: &Matrix<i64>,
    table: &DlogTable,
    parallelism: Parallelism,
    out: &mut Matrix<i64>,
    place: F,
) -> Result<(), SmcError>
where
    F: Fn(&mut Matrix<i64>, usize, usize, i64),
{
    let rows: Vec<&[i64]> = (0..y.rows()).map(|r| y.row(r)).collect();
    let values = feip::decrypt_cells(mpk, cts, keys, &rows, table, parallelism)?;
    let nrows = rows.len();
    for (idx, v) in values.into_iter().enumerate() {
        place(out, idx / nrows, idx % nrows, v);
    }
    Ok(())
}

/// Decrypts every element-wise cell `X[i][j] Δ Y[i][j]` through the
/// deferred-ratio path: per-cell ratios in parallel, **one** batched
/// inversion for the whole matrix, then parallel dlog recovery.
///
/// For `+`/`−` the per-cell work before the shared inversion is nothing
/// but the ratio bookkeeping — the entire cost of those ops collapses
/// into the batched inversion plus the dlog solve.
pub(crate) fn decrypt_febo_cells(
    mpk: &FeboPublicKey,
    elements: &Matrix<FeboCiphertext>,
    keys: &Matrix<FeboFunctionKey>,
    op: BasicOp,
    y: &Matrix<i64>,
    table: &DlogTable,
    parallelism: Parallelism,
) -> Result<Matrix<i64>, SmcError> {
    let (rows, cols) = y.shape();
    let total = rows * cols;
    let ratios: Vec<Result<ElementRatio, FeError>> =
        parallel_map(total, parallelism.thread_count(), |idx| {
            let (i, j) = (idx / cols, idx % cols);
            febo::decrypt_ratio(mpk, &keys[(i, j)], &elements[(i, j)], op, y[(i, j)])
        });
    let ratios = ratios
        .into_iter()
        .collect::<Result<Vec<ElementRatio>, FeError>>()?;
    let raws = mpk.group().resolve_ratios(&ratios);
    // Lane-stepped BSGS over chunks of cells, parallel across chunks.
    const SOLVE_CHUNK: usize = 8 * LANES;
    let nchunks = total.div_ceil(SOLVE_CHUNK);
    let values: Vec<Result<i64, cryptonn_group::GroupError>> =
        parallel_map(nchunks, parallelism.thread_count(), |k| {
            let lo = k * SOLVE_CHUNK;
            let hi = total.min(lo + SOLVE_CHUNK);
            table.solve_batch(mpk.group(), &raws[lo..hi])
        })
        .into_iter()
        .flatten()
        .collect();
    let values = values
        .into_iter()
        .map(|r| r.map_err(FeError::from))
        .collect::<Result<Vec<i64>, FeError>>()?;
    Ok(Matrix::from_vec(rows, cols, values))
}
