//! Fixed-point quantization.
//!
//! The underlying functional encryption works over small integers, so
//! the paper "keep[s] two-decimal places approximately and then
//! transfer[s] the floating point number to the integer" (§IV-B3).
//! [`FixedPoint`] is that codec, with a configurable scale so the
//! precision ablation can sweep it.

use cryptonn_matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A fixed-point codec mapping `f64 ↔ i64` by a decimal scale factor.
///
/// ```
/// use cryptonn_smc::FixedPoint;
///
/// let fp = FixedPoint::TWO_DECIMALS;
/// assert_eq!(fp.encode(3.14159), 314);
/// assert_eq!(fp.decode(314), 3.14);
/// // Products of two encoded values carry scale² and use decode_product.
/// assert_eq!(fp.decode_product(fp.encode(1.5) * fp.encode(2.0)), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FixedPoint {
    scale: u32,
}

impl FixedPoint {
    /// The paper's setting: two decimal places (scale 100).
    pub const TWO_DECIMALS: FixedPoint = FixedPoint { scale: 100 };
    /// One decimal place (scale 10).
    pub const ONE_DECIMAL: FixedPoint = FixedPoint { scale: 10 };
    /// Three decimal places (scale 1000).
    pub const THREE_DECIMALS: FixedPoint = FixedPoint { scale: 1000 };

    /// Creates a codec with an explicit scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn new(scale: u32) -> Self {
        assert!(scale > 0, "scale must be positive");
        Self { scale }
    }

    /// The scale factor.
    pub fn scale(&self) -> u32 {
        self.scale
    }

    /// Quantizes a float to the nearest scaled integer.
    pub fn encode(&self, v: f64) -> i64 {
        (v * self.scale as f64).round() as i64
    }

    /// Dequantizes a scaled integer.
    pub fn decode(&self, v: i64) -> f64 {
        v as f64 / self.scale as f64
    }

    /// Dequantizes the product of two encoded values (scale²) — the
    /// shape of every secure dot-product / multiplication result.
    pub fn decode_product(&self, v: i64) -> f64 {
        v as f64 / (self.scale as f64 * self.scale as f64)
    }

    /// Quantizes a matrix element-wise.
    pub fn encode_matrix(&self, m: &Matrix<f64>) -> Matrix<i64> {
        m.map(|v| self.encode(v))
    }

    /// Dequantizes a matrix element-wise.
    pub fn decode_matrix(&self, m: &Matrix<i64>) -> Matrix<f64> {
        m.map(|v| self.decode(v))
    }

    /// Dequantizes a matrix of products (scale²) element-wise.
    pub fn decode_product_matrix(&self, m: &Matrix<i64>) -> Matrix<f64> {
        m.map(|v| self.decode_product(v))
    }

    /// The quantization round-trip `decode(encode(v))`, i.e. the value
    /// the encrypted pipeline actually sees. Exposed so the plaintext
    /// baseline can be run on identically-quantized data.
    pub fn roundtrip(&self, v: f64) -> f64 {
        self.decode(self.encode(v))
    }

    /// Round-trips a matrix through quantization.
    pub fn roundtrip_matrix(&self, m: &Matrix<f64>) -> Matrix<f64> {
        m.map(|v| self.roundtrip(v))
    }
}

impl Default for FixedPoint {
    fn default() -> Self {
        Self::TWO_DECIMALS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_rounds_to_nearest() {
        let fp = FixedPoint::TWO_DECIMALS;
        assert_eq!(fp.encode(1.234), 123);
        assert_eq!(fp.encode(1.235), 124);
        assert_eq!(fp.encode(-1.234), -123);
        assert_eq!(fp.encode(-1.236), -124);
        assert_eq!(fp.encode(0.0), 0);
    }

    #[test]
    fn decode_inverts_encode_for_representable_values() {
        let fp = FixedPoint::TWO_DECIMALS;
        for v in [-5.25, -0.01, 0.0, 0.5, 123.45] {
            assert!((fp.roundtrip(v) - v).abs() < 1e-12, "{v}");
        }
    }

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let fp = FixedPoint::TWO_DECIMALS;
        for i in 0..1000 {
            let v = (i as f64) * 0.00317 - 1.5;
            assert!((fp.roundtrip(v) - v).abs() <= 0.005 + 1e-12);
        }
    }

    #[test]
    fn product_decoding() {
        let fp = FixedPoint::TWO_DECIMALS;
        let a = fp.encode(1.25);
        let b = fp.encode(-0.8);
        assert!((fp.decode_product(a * b) - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn matrix_roundtrip() {
        let fp = FixedPoint::new(10);
        let m = Matrix::from_rows(&[&[0.15, -0.24], &[1.0, 2.5]]);
        let q = fp.encode_matrix(&m);
        assert_eq!(q.as_slice(), &[2, -2, 10, 25]);
        let back = fp.decode_matrix(&q);
        assert!(back.approx_eq(&Matrix::from_rows(&[&[0.2, -0.2], &[1.0, 2.5]]), 1e-12));
        assert_eq!(back, fp.roundtrip_matrix(&m));
    }

    #[test]
    fn scales() {
        assert_eq!(FixedPoint::ONE_DECIMAL.scale(), 10);
        assert_eq!(FixedPoint::TWO_DECIMALS.scale(), 100);
        assert_eq!(FixedPoint::THREE_DECIMALS.scale(), 1000);
        assert_eq!(FixedPoint::default(), FixedPoint::TWO_DECIMALS);
    }
}
