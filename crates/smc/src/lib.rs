//! # cryptonn-smc
//!
//! Secure matrix computation over functional encryption — Algorithms 1
//! and 3 of the CryptoNN paper:
//!
//! - secure matrix computation: clients encrypt a matrix
//!   (FEIP per column + FEBO per element), servers derive function keys
//!   from the [`KeyAuthority`](cryptonn_fe::KeyAuthority) and decrypt
//!   dot-products or element-wise results — never the plaintext operand.
//! - secure convolution: the convolutional variant —
//!   padded sliding windows encrypted under FEIP, one key per filter.
//! - [`FixedPoint`]: the paper's two-decimal quantization between the
//!   float model domain and the integer encrypted domain.
//! - [`Parallelism`] / [`parallel_map`] (re-exported from
//!   `cryptonn-parallel`): the scoped-thread fan-out behind the "(P)"
//!   arms of Figs. 3–5, used both for decryption loops here and for
//!   the `encrypt_*_with` batch-encryption constructors.
//!
//! ## Example
//!
//! ```
//! use cryptonn_fe::{KeyAuthority, PermittedFunctions};
//! use cryptonn_group::{DlogTable, SchnorrGroup, SecurityLevel};
//! use cryptonn_matrix::Matrix;
//! use cryptonn_smc::{derive_dot_keys, secure_dot, EncryptedMatrix, Parallelism};
//!
//! let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
//! let authority = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), 5);
//! let table = DlogTable::new(&group, 10_000);
//!
//! // Client: encrypt X (features × samples) column-wise.
//! let x = Matrix::from_rows(&[&[1i64, 2], &[3, 4]]);
//! let mpk = authority.feip_public_key(2);
//! let enc = EncryptedMatrix::encrypt_columns(&x, &mpk, &mut rand::rng())?;
//!
//! // Server: W · X without ever seeing X.
//! let w = Matrix::from_rows(&[&[5i64, 6]]);
//! let keys = derive_dot_keys(&authority, &w)?;
//! let z = secure_dot(&mpk, &enc, &keys, &w, &table, Parallelism::Serial)?;
//! assert_eq!(z, w.matmul(&x));
//! # Ok::<(), cryptonn_smc::SmcError>(())
//! ```

mod cells;
mod error;
mod quantize;
mod secure_conv;
mod secure_matrix;

pub use cryptonn_parallel::{parallel_map, Parallelism};
pub use error::SmcError;
pub use quantize::FixedPoint;
pub use secure_conv::{
    derive_filter_keys, encrypt_windows, encrypt_windows_with, secure_convolution, EncryptedWindows,
};
pub use secure_matrix::{
    derive_dot_keys, derive_elementwise_keys, dot_bound, elementwise_bound, secure_compute,
    secure_dot, secure_dot_multi, secure_elementwise, EncryptedMatrix, SecureFunction,
};
