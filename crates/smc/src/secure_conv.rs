//! Secure convolution — Algorithm 3 of the paper.
//!
//! The client learns the padding strategy and filter size from the
//! server, pads its (quantized) image, extracts every sliding window,
//! flattens each to a vector and encrypts it under FEIP
//! ([`encrypt_windows`]). The server derives one FEIP key per filter
//! ([`derive_filter_keys`]) and decrypts each window's inner product
//! with the filter, recovering exactly the convolution outputs
//! ([`secure_convolution`]).
//!
//! Note that, as in the paper's Algorithm 3, *whole padded windows* are
//! encrypted — the plaintext zero padding is encrypted along with the
//! image pixels, so "partially encrypted" windows need no special case.

use cryptonn_fe::{feip, FeipCiphertext, FeipFunctionKey, FeipPublicKey, KeyService};
use cryptonn_group::DlogTable;
use cryptonn_matrix::{im2col, ConvSpec, Matrix, Tensor4};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::SmcError;
use crate::quantize::FixedPoint;
use cryptonn_parallel::Parallelism;

/// A batch of FEIP-encrypted sliding windows, ready for secure
/// convolution against any number of filters.
///
/// Serializable, so image batches travel over the session layer's wire
/// protocol like MLP batches do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncryptedWindows {
    windows: Vec<FeipCiphertext>,
    batch: usize,
    out_h: usize,
    out_w: usize,
    dim: usize,
}

impl EncryptedWindows {
    /// Number of images in the batch.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Output spatial size `(oh, ow)` of the convolution.
    pub fn output_size(&self) -> (usize, usize) {
        (self.out_h, self.out_w)
    }

    /// Window vector length (`c · kh · kw`).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total number of encrypted windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True if there are no windows (cannot happen for valid inputs).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The raw window ciphertexts in `(batch, oy, ox)` row-major order,
    /// for callers that combine or decrypt them directly (CryptoNN's
    /// secure convolution-gradient step).
    pub fn ciphertexts(&self) -> &[FeipCiphertext] {
        &self.windows
    }
}

/// Client-side `pre-process-encryption` of Algorithm 3: quantizes the
/// image batch, pads it, extracts every sliding window and encrypts each
/// as one FEIP vector.
///
/// # Errors
///
/// Returns [`SmcError::Fe`] if `feip_mpk`'s dimension does not equal
/// `channels · kh · kw`.
pub fn encrypt_windows<R: Rng + ?Sized>(
    images: &Tensor4,
    spec: &ConvSpec,
    fp: FixedPoint,
    feip_mpk: &FeipPublicKey,
    rng: &mut R,
) -> Result<EncryptedWindows, SmcError> {
    encrypt_windows_with(images, spec, fp, feip_mpk, rng, Parallelism::Serial)
}

/// As [`encrypt_windows`], fanning the window ciphertexts out over
/// `parallelism` via [`feip::encrypt_batch`]. The output is
/// bit-identical across thread counts for a given `rng` state.
///
/// # Errors
///
/// As [`encrypt_windows`].
pub fn encrypt_windows_with<R: Rng + ?Sized>(
    images: &Tensor4,
    spec: &ConvSpec,
    fp: FixedPoint,
    feip_mpk: &FeipPublicKey,
    rng: &mut R,
    parallelism: Parallelism,
) -> Result<EncryptedWindows, SmcError> {
    let (n, _c, h, w) = images.shape();
    let (oh, ow) = spec.output_size(h, w);
    // Quantize, then lower to windows. The quantized values are exact
    // integers stored in f64, so the cast below is lossless.
    let quantized = images.map(|v| fp.encode(v) as f64);
    let cols = im2col(&quantized, spec);
    let dim = cols.cols();
    let window_vecs: Vec<Vec<i64>> = (0..cols.rows())
        .map(|r| cols.row(r).iter().map(|&v| v as i64).collect())
        .collect();
    let windows = feip::encrypt_batch(feip_mpk, &window_vecs, rng, parallelism)?;
    Ok(EncryptedWindows {
        windows,
        batch: n,
        out_h: oh,
        out_w: ow,
        dim,
    })
}

/// Server-side `pre-process-key-derivative` of Algorithm 3: one FEIP key
/// per filter. `filters` is `out_c × (c·kh·kw)` with quantized integer
/// weights.
///
/// # Errors
///
/// Propagates authority refusals and dimension mismatches.
pub fn derive_filter_keys<A: KeyService + ?Sized>(
    authority: &A,
    filters: &Matrix<i64>,
) -> Result<Vec<FeipFunctionKey>, SmcError> {
    let rows: Vec<Vec<i64>> = (0..filters.rows())
        .map(|i| filters.row(i).to_vec())
        .collect();
    Ok(authority.derive_ip_keys(filters.cols(), &rows)?)
}

/// Server-side `secure-convolution` of Algorithm 3: decrypts the inner
/// product of every window with every filter.
///
/// Returns a `(batch, out_c·oh·ow)` integer matrix in the standard
/// layer layout (`(oc·oh + oy)·ow + ox` per row), carrying scale² from
/// the two quantized operands.
///
/// # Errors
///
/// - [`SmcError::KeyCountMismatch`] if `keys.len() != filters.rows()`,
/// - [`SmcError::ShapeMismatch`] if the filter width differs from the
///   window dimension,
/// - wrapped dlog-range errors if an output exceeds the table bound.
pub fn secure_convolution(
    feip_mpk: &FeipPublicKey,
    enc: &EncryptedWindows,
    keys: &[FeipFunctionKey],
    filters: &Matrix<i64>,
    table: &DlogTable,
    parallelism: Parallelism,
) -> Result<Matrix<i64>, SmcError> {
    if keys.len() != filters.rows() {
        return Err(SmcError::KeyCountMismatch {
            expected: filters.rows(),
            got: keys.len(),
        });
    }
    if filters.cols() != enc.dim {
        return Err(SmcError::ShapeMismatch {
            expected: (filters.rows(), enc.dim),
            got: filters.shape(),
        });
    }

    let out_c = filters.rows();
    let (oh, ow) = (enc.out_h, enc.out_w);
    let windows_per_image = oh * ow;

    let mut out = Matrix::zeros(enc.batch, out_c * windows_per_image);
    crate::cells::decrypt_feip_cells(
        feip_mpk,
        &enc.windows,
        keys,
        filters,
        table,
        parallelism,
        &mut out,
        // Cell (window b·wpi + pos, filter oc) lands at the standard
        // layer layout (oc·oh + oy)·ow + ox of image b.
        |out, w, oc, v| {
            let b = w / windows_per_image;
            let pos = w % windows_per_image;
            out[(b, oc * windows_per_image + pos)] = v;
        },
    )?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptonn_fe::{KeyAuthority, PermittedFunctions};
    use cryptonn_group::{SchnorrGroup, SecurityLevel};
    use cryptonn_matrix::conv2d_naive;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn fixture() -> (KeyAuthority, DlogTable, StdRng) {
        let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
        let authority = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), 23);
        let table = DlogTable::new(&group, 5_000_000);
        (authority, table, StdRng::seed_from_u64(24))
    }

    #[test]
    fn secure_convolution_matches_plaintext() {
        let (authority, table, mut rng) = fixture();
        let fp = FixedPoint::ONE_DECIMAL;
        let spec = ConvSpec::square(3, 2, 1); // the paper's Fig. 2 geometry
        let images = Tensor4::from_vec(
            2,
            1,
            5,
            5,
            (0..50)
                .map(|_| (rng.random_range(-20i32..=20) as f64) / 10.0)
                .collect(),
        );
        let filters_f = Matrix::from_fn(2, 9, |r, c| ((r * 5 + c) % 7) as f64 / 10.0 - 0.3);
        let filters_q = fp.encode_matrix(&filters_f);

        let feip_mpk = authority.feip_public_key(9);
        let enc = encrypt_windows(&images, &spec, fp, &feip_mpk, &mut rng).unwrap();
        assert_eq!(enc.batch(), 2);
        assert_eq!(enc.output_size(), (3, 3));
        assert_eq!(enc.dim(), 9);
        assert_eq!(enc.len(), 2 * 9);

        let keys = derive_filter_keys(&authority, &filters_q).unwrap();
        let out = secure_convolution(
            &feip_mpk,
            &enc,
            &keys,
            &filters_q,
            &table,
            Parallelism::Threads(4),
        )
        .unwrap();

        // Reference: plaintext convolution over quantized values.
        let images_q = images.map(|v| fp.encode(v) as f64);
        let filters_qf = filters_q.map(|v| v as f64);
        let reference = conv2d_naive(&images_q, &filters_qf, &[0.0, 0.0], &spec);
        let out_f = out.map(|v| v as f64);
        assert!(
            Tensor4::from_flat(&out_f, 2, 3, 3).approx_eq(&reference, 1e-9),
            "secure convolution must equal the plaintext convolution"
        );
    }

    #[test]
    fn key_and_shape_mismatches() {
        let (authority, table, mut rng) = fixture();
        let fp = FixedPoint::ONE_DECIMAL;
        let spec = ConvSpec::square(2, 1, 0);
        let images = Tensor4::zeros(1, 1, 3, 3);
        let feip_mpk = authority.feip_public_key(4);
        let enc = encrypt_windows(&images, &spec, fp, &feip_mpk, &mut rng).unwrap();

        let filters = Matrix::from_fn(2, 4, |_, _| 1i64);
        let keys = derive_filter_keys(&authority, &filters).unwrap();
        assert!(matches!(
            secure_convolution(
                &feip_mpk,
                &enc,
                &keys[..1],
                &filters,
                &table,
                Parallelism::Serial
            ),
            Err(SmcError::KeyCountMismatch {
                expected: 2,
                got: 1
            })
        ));

        let wrong_width = Matrix::from_fn(2, 5, |_, _| 1i64);
        let keys5 = derive_filter_keys(&authority, &wrong_width).unwrap();
        assert!(matches!(
            secure_convolution(
                &feip_mpk,
                &enc,
                &keys5,
                &wrong_width,
                &table,
                Parallelism::Serial
            ),
            Err(SmcError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn zero_image_convolves_to_zero() {
        let (authority, table, mut rng) = fixture();
        let fp = FixedPoint::TWO_DECIMALS;
        let spec = ConvSpec::square(2, 1, 0);
        let images = Tensor4::zeros(1, 1, 3, 3);
        let feip_mpk = authority.feip_public_key(4);
        let enc = encrypt_windows(&images, &spec, fp, &feip_mpk, &mut rng).unwrap();
        let filters = Matrix::from_fn(1, 4, |_, c| c as i64 + 1);
        let keys = derive_filter_keys(&authority, &filters).unwrap();
        let out = secure_convolution(
            &feip_mpk,
            &enc,
            &keys,
            &filters,
            &table,
            Parallelism::Serial,
        )
        .unwrap();
        assert!(out.as_slice().iter().all(|&v| v == 0));
    }
}
