//! Property-based tests: FEIP and FEBO decryption must equal the
//! plaintext function on random inputs, and must be randomized.

use cryptonn_fe::{febo, feip, BasicOp, KeyAuthority, PermittedFunctions};
use cryptonn_group::{DlogTable, SchnorrGroup, SecurityLevel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn group() -> &'static SchnorrGroup {
    static GROUP: OnceLock<SchnorrGroup> = OnceLock::new();
    GROUP.get_or_init(|| SchnorrGroup::precomputed(SecurityLevel::Bits64))
}

fn table() -> &'static DlogTable {
    static TABLE: OnceLock<DlogTable> = OnceLock::new();
    // Bound covers |<x,y>| for 8-dim vectors of |v| <= 300, and all FEBO
    // results for |x|,|y| <= 1000.
    TABLE.get_or_init(|| DlogTable::new(group(), 1_100_000))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn feip_decrypts_inner_product(
        x in proptest::collection::vec(-300i64..=300, 1..8),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = x.len();
        let y: Vec<i64> = (0..dim).map(|i| ((seed >> (i % 48)) as i64 % 300) - 150).collect();
        let (mpk, msk) = feip::setup(group().clone(), dim, &mut rng);
        let ct = feip::encrypt(&mpk, &x, &mut rng).unwrap();
        let sk = feip::key_derive(group(), &msk, &y).unwrap();
        let expected: i64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        prop_assert_eq!(feip::decrypt(&mpk, &ct, &sk, &y, table()).unwrap(), expected);
    }

    #[test]
    fn febo_add_sub_mul_decrypt(
        x in -1000i64..=1000,
        y in -1000i64..=1000,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mpk, msk) = febo::setup(group().clone(), &mut rng);
        for op in [BasicOp::Add, BasicOp::Sub, BasicOp::Mul] {
            let ct = febo::encrypt(&mpk, x, &mut rng);
            let sk = febo::key_derive(group(), &msk, ct.commitment(), op, y).unwrap();
            prop_assert_eq!(
                febo::decrypt(&mpk, &sk, &ct, op, y, table()).unwrap(),
                op.apply(x, y)
            );
        }
    }

    #[test]
    fn febo_exact_division(
        quotient in -1000i64..=1000,
        y in prop_oneof![1i64..=30, -30i64..=-1],
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mpk, msk) = febo::setup(group().clone(), &mut rng);
        let x = quotient * y;
        let ct = febo::encrypt(&mpk, x, &mut rng);
        let sk = febo::key_derive(group(), &msk, ct.commitment(), BasicOp::Div, y).unwrap();
        prop_assert_eq!(
            febo::decrypt(&mpk, &sk, &ct, BasicOp::Div, y, table()).unwrap(),
            quotient
        );
    }

    #[test]
    fn authority_roundtrip_matches_direct_scheme(
        x in proptest::collection::vec(-100i64..=100, 3),
        y in proptest::collection::vec(-100i64..=100, 3),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let auth = KeyAuthority::with_seed(group().clone(), PermittedFunctions::all(), seed);
        let mpk = auth.feip_public_key(3);
        let ct = feip::encrypt(&mpk, &x, &mut rng).unwrap();
        let sk = auth.derive_ip_key(3, &y).unwrap();
        let expected: i64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        prop_assert_eq!(feip::decrypt(&mpk, &ct, &sk, &y, table()).unwrap(), expected);
    }
}

/// Every embedded security level — the multi-scalar ≡ naive equivalence
/// must hold at each one (different moduli exercise different carry and
/// reduction paths).
const ALL_LEVELS: [SecurityLevel; 6] = [
    SecurityLevel::Bits32,
    SecurityLevel::Bits64,
    SecurityLevel::Bits128,
    SecurityLevel::Bits192,
    SecurityLevel::Bits224,
    SecurityLevel::Bits256,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The Straus/wNAF FEIP decrypt path is bit-identical to the naive
    /// one-pow-per-term reference for random signed weight rows —
    /// including all-zero and all-negative rows — at every level.
    #[test]
    fn feip_multi_scalar_equals_naive_at_all_levels(
        x in proptest::collection::vec(-200i64..=200, 4),
        y in prop_oneof![
            proptest::collection::vec(-200i64..=200, 4),
            proptest::collection::vec(Just(0i64), 4),
            proptest::collection::vec(-200i64..=-1, 4),
        ],
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for level in ALL_LEVELS {
            let g = SchnorrGroup::precomputed(level);
            let (mpk, msk) = feip::setup(g.clone(), 4, &mut rng);
            let ct = feip::encrypt(&mpk, &x, &mut rng).unwrap();
            let sk = feip::key_derive(&g, &msk, &y).unwrap();
            prop_assert_eq!(
                feip::decrypt_raw(&mpk, &ct, &sk, &y).unwrap(),
                feip::decrypt_raw_naive(&mpk, &ct, &sk, &y).unwrap(),
                "level {:?}", level
            );
        }
    }

    /// Same equivalence for the FEBO fast path, across all four ops.
    #[test]
    fn febo_multi_scalar_equals_naive_at_all_levels(
        x in -500i64..=500,
        y in prop_oneof![-500i64..=-1, 1i64..=500, Just(0i64)],
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for level in ALL_LEVELS {
            let g = SchnorrGroup::precomputed(level);
            let (mpk, msk) = febo::setup(g.clone(), &mut rng);
            for op in BasicOp::ALL {
                if op == BasicOp::Div && y == 0 {
                    continue;
                }
                let ct = febo::encrypt(&mpk, x, &mut rng);
                let sk = febo::key_derive(&g, &msk, ct.commitment(), op, y).unwrap();
                prop_assert_eq!(
                    febo::decrypt_raw(&mpk, &sk, &ct, op, y).unwrap(),
                    febo::decrypt_raw_naive(&mpk, &sk, &ct, op, y).unwrap(),
                    "level {:?} op {}", level, op
                );
            }
        }
    }
}
