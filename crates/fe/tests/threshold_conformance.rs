//! Threshold-authority conformance: every t-subset of share-holders
//! must recombine to keys bit-identical to the single authority's,
//! below quorum the combiner must fail with a typed error, and a
//! corrupted partial must be detected, retried around, and pinned in
//! the fault counters (DESIGN.md §17).

use cryptonn_fe::threshold::{deal_authorities, lagrange_at_zero, recombine_scalars};
use cryptonn_fe::{
    febo, local_threshold_service, BasicOp, FeError, FeboKeyRequest, FeboPartial, FeipPublicKey,
    KeyAuthority, KeyService, LocalShareClient, PermittedFunctions, ShareClient, ShareClientError,
    ThresholdKeyService, ThresholdSetup, ThresholdStats,
};
use cryptonn_group::{Scalar, SchnorrGroup, SecurityLevel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn group() -> SchnorrGroup {
    SchnorrGroup::precomputed(SecurityLevel::Bits64)
}

/// All size-`t` subsets of the 1-based node indices `1..=n`.
fn index_subsets(n: usize, t: usize) -> Vec<Vec<u32>> {
    (0u32..1 << n)
        .filter(|mask| mask.count_ones() as usize == t)
        .map(|mask| {
            (1..=n as u32)
                .filter(|i| mask & (1 << (i - 1)) != 0)
                .collect()
        })
        .collect()
}

/// Builds a combiner over exactly the nodes in `subset` (1-based
/// indices) of an already-dealt deployment.
fn service_over_subset(
    group: &SchnorrGroup,
    seed: u64,
    setup: ThresholdSetup,
    subset: &[u32],
) -> ThresholdKeyService {
    let authorities = deal_authorities(group.clone(), PermittedFunctions::all(), seed, setup);
    let febo_mpk = authorities[0].febo_public_key();
    let commitments = authorities[0].febo_commitments().to_vec();
    let nodes = subset
        .iter()
        .map(|&i| {
            Box::new(LocalShareClient::new(authorities[(i - 1) as usize].clone()))
                as Box<dyn ShareClient>
        })
        .collect();
    ThresholdKeyService::new(group.clone(), setup, febo_mpk, commitments, nodes)
        .expect("freshly dealt commitments anchor")
}

/// One FEBO request per operation against a fresh commitment under the
/// deployment's common public key.
fn febo_requests(single: &KeyAuthority, seed: u64) -> Vec<FeboKeyRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mpk = single.febo_public_key();
    [
        (BasicOp::Add, 9),
        (BasicOp::Sub, -4),
        (BasicOp::Mul, 3),
        (BasicOp::Div, 5),
    ]
    .into_iter()
    .map(|(op, y)| FeboKeyRequest {
        cmt: *febo::encrypt(&mpk, 30, &mut rng).commitment(),
        op,
        y,
    })
    .collect()
}

/// The tentpole identity, exhaustively: for every `1 ≤ t ≤ n ≤ 5` and
/// every one of the C(n, t) live-node subsets, the recombined FEIP and
/// FEBO keys are bit-identical to the single authority's.
#[test]
fn every_t_subset_recombines_to_the_single_authority_keys() {
    let group = group();
    let seed = 9001;
    let ys = vec![vec![3, -1, 2], vec![0, 5, -7]];
    for n in 1..=5u32 {
        for t in 1..=n {
            let single = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), seed);
            let expected_mpk = single.feip_public_key(3);
            let expected_ip = KeyService::derive_ip_keys(&single, 3, &ys).unwrap();
            let reqs = febo_requests(&single, seed ^ u64::from(n * 8 + t));
            let expected_bo = KeyService::derive_bo_keys(&single, &reqs).unwrap();

            let setup = ThresholdSetup::new(n, t).unwrap();
            for subset in index_subsets(n as usize, t as usize) {
                let service = service_over_subset(&group, seed, setup, &subset);
                assert_eq!(
                    KeyService::feip_public_key(&service, 3).unwrap(),
                    expected_mpk,
                    "n={n} t={t} subset {subset:?}"
                );
                assert_eq!(
                    service.derive_ip_keys(3, &ys).unwrap(),
                    expected_ip,
                    "n={n} t={t} subset {subset:?}"
                );
                assert_eq!(
                    service.derive_bo_keys(&reqs).unwrap(),
                    expected_bo,
                    "n={n} t={t} subset {subset:?}"
                );
                assert_eq!(service.stats(), ThresholdStats::default());
            }
        }
    }
}

/// Every embedded security level: recombination is exact under each
/// modulus (different carry/reduction paths must not perturb a single
/// bit of the aggregated key).
const ALL_LEVELS: [SecurityLevel; 7] = [
    SecurityLevel::Bits32,
    SecurityLevel::Bits64,
    SecurityLevel::Bits128,
    SecurityLevel::Bits192,
    SecurityLevel::Bits224,
    SecurityLevel::Bits256,
    SecurityLevel::Bits256Fast,
];

#[test]
fn recombination_is_exact_at_every_security_level() {
    for level in ALL_LEVELS {
        let group = SchnorrGroup::precomputed(level);
        let seed = 0xBEEF ^ level as u64;
        let single = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), seed);
        let service = local_threshold_service(
            group.clone(),
            PermittedFunctions::all(),
            seed,
            ThresholdSetup::new(3, 2).unwrap(),
        );
        let ys = vec![vec![4, -3]];
        assert_eq!(
            service.derive_ip_keys(2, &ys).unwrap(),
            KeyService::derive_ip_keys(&single, 2, &ys).unwrap(),
            "level {level:?}"
        );
        let reqs = febo_requests(&single, seed);
        assert_eq!(
            service.derive_bo_keys(&reqs).unwrap(),
            KeyService::derive_bo_keys(&single, &reqs).unwrap(),
            "level {level:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random `(n, t)` deployments and weight vectors: the combiner
    /// over a full in-process fleet always reproduces the single
    /// authority bit-for-bit.
    #[test]
    fn random_grid_matches_single_authority(
        n in 1u32..=5,
        t_sel in 0u32..5,
        y in proptest::collection::vec(-200i64..=200, 1..6),
        seed in any::<u64>(),
    ) {
        let t = 1 + t_sel % n;
        let group = group();
        let single = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), seed);
        let service = local_threshold_service(
            group.clone(),
            PermittedFunctions::all(),
            seed,
            ThresholdSetup::new(n, t).unwrap(),
        );
        let dim = y.len();
        prop_assert_eq!(
            service.derive_ip_key(dim, &y).unwrap(),
            single.derive_ip_key(dim, &y).unwrap()
        );
        let reqs = febo_requests(&single, seed);
        prop_assert_eq!(
            service.derive_bo_keys(&reqs).unwrap(),
            KeyService::derive_bo_keys(&single, &reqs).unwrap()
        );
    }

    /// `t − 1` shares reveal nothing that recombines to the secret:
    /// interpolating any deficient subset yields a scalar different
    /// from the full-quorum key.
    #[test]
    fn deficient_subsets_do_not_recombine(seed in any::<u64>()) {
        let group = group();
        let setup = ThresholdSetup::new(4, 3).unwrap();
        let authorities =
            deal_authorities(group.clone(), PermittedFunctions::all(), seed, setup);
        let y = vec![2i64, -5, 1];
        let quorum: Vec<Scalar> = (0..3)
            .map(|i| authorities[i].feip_partials(3, std::slice::from_ref(&y)).unwrap()[0])
            .collect();
        let xs = [1u32, 2, 3];
        let truth = recombine_scalars(&group, &xs, &quorum);
        // Every 2-subset (t − 1) misses the polynomial's constant term.
        for pair in [[0usize, 1], [0, 2], [1, 2]] {
            let xs: Vec<u32> = pair.iter().map(|&i| i as u32 + 1).collect();
            let partials: Vec<Scalar> = pair.iter().map(|&i| quorum[i]).collect();
            let lam = lagrange_at_zero(&group, &xs);
            prop_assert_eq!(lam.len(), 2);
            prop_assert_ne!(recombine_scalars(&group, &xs, &partials), truth);
        }
    }
}

/// Below quorum the combiner fails closed with the typed
/// [`FeError::InsufficientShares`] — never a silently wrong key.
#[test]
fn below_quorum_fails_with_typed_error() {
    let group = group();
    let setup = ThresholdSetup::new(3, 2).unwrap();
    let service = service_over_subset(&group, 31337, setup, &[2]);
    match service.derive_ip_keys(3, &[vec![1, 2, 3]]) {
        Err(FeError::InsufficientShares { have, need }) => {
            assert_eq!((have, need), (1, 2));
        }
        other => panic!("expected InsufficientShares, got {other:?}"),
    }
    assert_eq!(service.stats().quorum_failures, 1);

    // The FEBO path fails closed the same way.
    let single = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), 31337);
    let service = service_over_subset(&group, 31337, setup, &[3]);
    match service.derive_bo_keys(&febo_requests(&single, 1)) {
        Err(FeError::InsufficientShares { have, need }) => {
            assert_eq!((have, need), (1, 2));
        }
        other => panic!("expected InsufficientShares, got {other:?}"),
    }
}

/// A [`ShareClient`] that tampers with its partials — the adversarial
/// node of the conformance suite.
struct CorruptClient {
    inner: LocalShareClient,
    group: SchnorrGroup,
    corrupt_feip: bool,
    corrupt_febo: bool,
}

impl ShareClient for CorruptClient {
    fn index(&self) -> u32 {
        self.inner.index()
    }

    fn feip_public_key(&mut self, dim: usize) -> Result<FeipPublicKey, ShareClientError> {
        self.inner.feip_public_key(dim)
    }

    fn feip_partials(
        &mut self,
        dim: usize,
        ys: &[Vec<i64>],
    ) -> Result<Vec<Scalar>, ShareClientError> {
        let mut partials = self.inner.feip_partials(dim, ys)?;
        if self.corrupt_feip {
            for p in &mut partials {
                *p = self.group.scalar_add(p, &Scalar::ONE);
            }
        }
        Ok(partials)
    }

    fn febo_partials(
        &mut self,
        reqs: &[FeboKeyRequest],
    ) -> Result<Vec<FeboPartial>, ShareClientError> {
        let mut partials = self.inner.febo_partials(reqs)?;
        if self.corrupt_febo {
            for p in &mut partials {
                p.d = self.group.mul(&p.d, &self.group.generator());
            }
        }
        Ok(partials)
    }
}

fn service_with_corrupt_node(
    group: &SchnorrGroup,
    seed: u64,
    bad_index: u32,
    corrupt_feip: bool,
    corrupt_febo: bool,
) -> ThresholdKeyService {
    let setup = ThresholdSetup::new(3, 2).unwrap();
    let authorities = deal_authorities(group.clone(), PermittedFunctions::all(), seed, setup);
    let febo_mpk = authorities[0].febo_public_key();
    let commitments = authorities[0].febo_commitments().to_vec();
    let nodes = authorities
        .into_iter()
        .map(|a| {
            let inner = LocalShareClient::new(a);
            if inner.index() == bad_index {
                Box::new(CorruptClient {
                    inner,
                    group: group.clone(),
                    corrupt_feip,
                    corrupt_febo,
                }) as Box<dyn ShareClient>
            } else {
                Box::new(inner) as Box<dyn ShareClient>
            }
        })
        .collect();
    ThresholdKeyService::new(group.clone(), setup, febo_mpk, commitments, nodes).unwrap()
}

/// A corrupted FEIP partial: the tampered subsets fail the public
/// commitment check, the honest quorum validates on retry, the cheater
/// is identified off the quorum polynomial and evicted — and the final
/// key is still bit-identical to the single authority's. The counters
/// are pinned: with the cheater at index 1, the two subsets containing
/// it fail (`validation_retries = 2`) before `{2, 3}` validates.
#[test]
fn corrupt_feip_partial_is_detected_retried_and_evicted() {
    let group = group();
    let seed = 777;
    let single = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), seed);
    let service = service_with_corrupt_node(&group, seed, 1, true, false);
    let ys = vec![vec![6, -2, 9], vec![1, 1, -1]];
    assert_eq!(
        service.derive_ip_keys(3, &ys).unwrap(),
        KeyService::derive_ip_keys(&single, 3, &ys).unwrap()
    );
    assert_eq!(
        service.stats(),
        ThresholdStats {
            nodes_evicted: 1,
            invalid_partials: 1,
            validation_retries: 2,
            quorum_failures: 0,
        }
    );
    assert_eq!(service.live_nodes(), 2);
    // Eviction is permanent; the surviving exact-quorum still derives
    // correct keys with no further retries.
    let more = vec![vec![-3, 0, 4]];
    assert_eq!(
        service.derive_ip_keys(3, &more).unwrap(),
        KeyService::derive_ip_keys(&single, 3, &more).unwrap()
    );
    assert_eq!(service.stats().validation_retries, 2);
}

/// A corrupted FEBO partial fails its DLEQ proof against the published
/// share commitment, the node is evicted up front, and the key
/// recombined from the honest pair matches the single authority's.
#[test]
fn corrupt_febo_partial_fails_dleq_and_is_evicted() {
    let group = group();
    let seed = 778;
    let single = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), seed);
    let service = service_with_corrupt_node(&group, seed, 2, false, true);
    let reqs = febo_requests(&single, seed);
    assert_eq!(
        service.derive_bo_keys(&reqs).unwrap(),
        KeyService::derive_bo_keys(&single, &reqs).unwrap()
    );
    assert_eq!(
        service.stats(),
        ThresholdStats {
            nodes_evicted: 1,
            invalid_partials: 1,
            validation_retries: 1,
            quorum_failures: 0,
        }
    );
    assert_eq!(service.live_nodes(), 2);
}

/// With more cheaters than the deployment can absorb, no subset
/// validates and the FEIP combiner reports the typed
/// [`FeError::SharesTampered`] rather than returning a wrong key.
#[test]
fn too_many_corrupt_shares_fail_closed() {
    let group = group();
    let setup = ThresholdSetup::new(2, 2).unwrap();
    let authorities = deal_authorities(group.clone(), PermittedFunctions::all(), 779, setup);
    let febo_mpk = authorities[0].febo_public_key();
    let commitments = authorities[0].febo_commitments().to_vec();
    let nodes = authorities
        .into_iter()
        .map(|a| {
            Box::new(CorruptClient {
                inner: LocalShareClient::new(a),
                group: group.clone(),
                corrupt_feip: true,
                corrupt_febo: false,
            }) as Box<dyn ShareClient>
        })
        .collect();
    let service =
        ThresholdKeyService::new(group.clone(), setup, febo_mpk, commitments, nodes).unwrap();
    match service.derive_ip_keys(2, &[vec![1, -1]]) {
        Err(FeError::SharesTampered { subsets_tried }) => assert_eq!(subsets_tried, 1),
        other => panic!("expected SharesTampered, got {other:?}"),
    }
}
