//! Equivalence tests for the batched encryption fan-out: under a seeded
//! RNG, `encrypt_batch` must be reproducible, bit-identical across
//! thread counts, and exactly equal to sequentially encrypting each
//! sample with the documented seed-forking scheme.

use cryptonn_fe::{febo, feip, BasicOp, KeyAuthority, PermittedFunctions};
use cryptonn_group::{DlogTable, SchnorrGroup, SecurityLevel};
use cryptonn_parallel::Parallelism;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Replays the documented fork: one 32-byte seed per sample, in order.
fn fork(rng: &mut StdRng) -> StdRng {
    let mut seed = [0u8; 32];
    rng.fill_bytes(&mut seed);
    StdRng::from_seed(seed)
}
use std::sync::OnceLock;

fn authority() -> &'static KeyAuthority {
    static A: OnceLock<KeyAuthority> = OnceLock::new();
    A.get_or_init(|| {
        let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
        KeyAuthority::with_seed(group, PermittedFunctions::all(), 77)
    })
}

fn table() -> &'static DlogTable {
    static T: OnceLock<DlogTable> = OnceLock::new();
    T.get_or_init(|| DlogTable::new(authority().group(), 2_000_000))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `feip::encrypt_batch` equals per-sample sequential `encrypt`
    /// under the documented RNG forking (one 32-byte `fill_bytes` seed
    /// per sample, drawn in order), and is invariant to the thread
    /// count.
    #[test]
    fn feip_batch_equals_sequential(
        seed in any::<u64>(),
        dim in 1usize..5,
        samples in 1usize..7,
    ) {
        let mpk = authority().feip_public_key(dim);
        let xs: Vec<Vec<i64>> = (0..samples)
            .map(|s| (0..dim).map(|i| ((seed >> (i % 48)) as i64 % 200) - 100 + s as i64).collect())
            .collect();

        let mut batch_rng = StdRng::seed_from_u64(seed);
        let batch =
            feip::encrypt_batch(&mpk, &xs, &mut batch_rng, Parallelism::Serial).unwrap();

        // Reference: replay the seed fork by hand, sequentially.
        let mut seq_rng = StdRng::seed_from_u64(seed);
        for (i, x) in xs.iter().enumerate() {
            let mut sample_rng = fork(&mut seq_rng);
            let expect = feip::encrypt(&mpk, x, &mut sample_rng).unwrap();
            prop_assert_eq!(&batch[i], &expect, "sample {}", i);
        }

        // Thread-count invariance, bit for bit.
        for threads in [2usize, 4] {
            let mut rng = StdRng::seed_from_u64(seed);
            let parallel =
                feip::encrypt_batch(&mpk, &xs, &mut rng, Parallelism::Threads(threads)).unwrap();
            prop_assert_eq!(&parallel, &batch, "threads = {}", threads);
        }

        // And the ciphertexts are genuine: decrypt one inner product.
        let y: Vec<i64> = (0..dim).map(|i| (i as i64 % 7) - 3).collect();
        let sk = authority().derive_ip_key(dim, &y).unwrap();
        let expect: i64 = xs[0].iter().zip(&y).map(|(a, b)| a * b).sum();
        prop_assert_eq!(
            feip::decrypt(&mpk, &batch[0], &sk, &y, table()).unwrap(),
            expect
        );
    }

    /// `febo::encrypt_batch` has the same three properties.
    #[test]
    fn febo_batch_equals_sequential(seed in any::<u64>(), samples in 1usize..10) {
        let mpk = authority().febo_public_key();
        let xs: Vec<i64> = (0..samples)
            .map(|s| ((seed >> (s % 48)) as i64 % 500) - 250)
            .collect();

        let mut batch_rng = StdRng::seed_from_u64(seed);
        let batch = febo::encrypt_batch(&mpk, &xs, &mut batch_rng, Parallelism::Serial);

        let mut seq_rng = StdRng::seed_from_u64(seed);
        for (i, &x) in xs.iter().enumerate() {
            let mut sample_rng = fork(&mut seq_rng);
            let expect = febo::encrypt(&mpk, x, &mut sample_rng);
            prop_assert_eq!(&batch[i], &expect, "sample {}", i);
        }

        for threads in [2usize, 4] {
            let mut rng = StdRng::seed_from_u64(seed);
            let parallel = febo::encrypt_batch(&mpk, &xs, &mut rng, Parallelism::Threads(threads));
            prop_assert_eq!(&parallel, &batch, "threads = {}", threads);
        }

        let sk = authority()
            .derive_bo_key(batch[0].commitment(), BasicOp::Add, 40)
            .unwrap();
        prop_assert_eq!(
            febo::decrypt(&mpk, &sk, &batch[0], BasicOp::Add, 40, table()).unwrap(),
            xs[0] + 40
        );
    }
}

#[test]
fn empty_batches_are_fine() {
    let mpk = authority().feip_public_key(3);
    let mut rng = StdRng::seed_from_u64(1);
    let none: Vec<Vec<i64>> = Vec::new();
    assert!(
        feip::encrypt_batch(&mpk, &none, &mut rng, Parallelism::Threads(4))
            .unwrap()
            .is_empty()
    );
    let febo_mpk = authority().febo_public_key();
    assert!(febo::encrypt_batch(&febo_mpk, &[], &mut rng, Parallelism::Threads(4)).is_empty());
}

#[test]
fn batch_dimension_mismatch_is_reported() {
    let mpk = authority().feip_public_key(3);
    let mut rng = StdRng::seed_from_u64(2);
    let xs = vec![vec![1i64, 2, 3], vec![4, 5]]; // second sample wrong
    assert!(feip::encrypt_batch(&mpk, &xs, &mut rng, Parallelism::Serial).is_err());
}
