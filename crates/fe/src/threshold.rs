//! t-of-n threshold key authority: Shamir-shared master keys with
//! exact Lagrange recombination.
//!
//! The single [`KeyAuthority`](crate::KeyAuthority) is the paper's
//! strongest caveat — one node holds every FEIP/FEBO master secret.
//! This module splits that trust across `n` share-holders so that any
//! `t` of them can jointly derive function keys, while `t − 1` learn
//! nothing actionable and reconstruct nothing.
//!
//! ## Why recombination is *exact* (DESIGN.md §17)
//!
//! Everything lives in `Z_q`, the scalar field of the Schnorr group,
//! which is a finite field — Shamir sharing and Lagrange interpolation
//! are exact, not approximate:
//!
//! - **FEIP** keys are linear in the master key: `sk_y = ⟨s, y⟩ mod q`.
//!   Share each coordinate `sᵢ` with a degree-`(t−1)` polynomial
//!   `fᵢ(x)`; node `j` holds `fᵢ(j)`. Its partial is
//!   `pⱼ = ⟨f(j), y⟩ mod q`, and for any t-subset `S`,
//!   `Σ_{j∈S} λⱼ·pⱼ = ⟨Σ λⱼ f(j), y⟩ = ⟨s, y⟩ = sk_y` where `λⱼ` are
//!   the Lagrange coefficients of `S` at `x = 0`. Canonical residues in
//!   `[0, q)` mean the recombined scalar is **bit-identical** to the
//!   single-authority derivation — for *every* t-subset.
//! - **FEBO** keys need `cmt^s`; node `j` returns `dⱼ = cmt^{uⱼ}` for
//!   its share `uⱼ` of the FEBO secret, and
//!   `Π_{j∈S} dⱼ^{λⱼ} = cmt^{Σ λⱼ uⱼ} = cmt^s` — again exact, with the
//!   operand adjustment (`· g^{∓y}`, `^y`, `^{y⁻¹}`) applied once by
//!   the combiner via the same code path as the single authority.
//!
//! ## Validation — no silent wrong key
//!
//! Partials are validated against *public* commitments before a key is
//! ever released:
//!
//! - FEIP: the recombined key must satisfy `g^{sk} = Π hᵢ^{yᵢ}` against
//!   the published `hᵢ = g^{sᵢ}` of the FEIP public key. On mismatch
//!   the combiner walks the other t-subsets (retry-on-surviving-quorum)
//!   and identifies the corrupt node by interpolating the validated
//!   polynomial at the suspect's abscissa.
//! - FEBO: each partial carries a Chaum–Pedersen [`DleqProof`] that
//!   `log_g Fⱼ = log_cmt dⱼ` against the published share commitment
//!   `Fⱼ = g^{uⱼ}`, so a corrupt partial is rejected *before*
//!   recombination. The commitment vector itself is anchored at
//!   construction: `Π Fⱼ^{λⱼ} = h` (the FEBO public key) for the base
//!   subset, and every further `F_u` must lie on the same polynomial.
//!
//! Below quorum the combiner fails closed with
//! [`FeError::InsufficientShares`]; when corruption exhausts every
//! t-subset it fails with [`FeError::SharesTampered`].
//!
//! ## Deployment model
//!
//! Share-holders are *dealer replicas*: every node derives the same
//! master keys from the same session seed (exactly replicating
//! [`KeyAuthority`](crate::KeyAuthority)'s RNG evolution) and then
//! keeps only its own share — the sharing polynomials come from a
//! *separate* RNG stream so the master keys are untouched by the
//! sharing. This keeps the single authority as the `n = t = 1` special
//! case of the same construction, bit-for-bit. The trust win is at
//! *serving* time: compromise of up to `t − 1` running nodes reveals
//! only Shamir shares. All nodes must see the same request stream in
//! the same order (the combiner fans every request out to every live
//! node), which the per-session total order of the protocol layer
//! provides.

use std::collections::HashMap;
use std::sync::Arc;

use cryptonn_group::{Element, Scalar, SchnorrGroup};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::authority::PermittedFunctions;
use crate::error::FeError;
use crate::febo::{self, FeboFunctionKey, FeboPublicKey};
use crate::feip::{self, FeipFunctionKey, FeipPublicKey};
use crate::service::{FeboKeyRequest, KeyService};

/// Domain-separating salt for the sharing-polynomial RNG stream, so the
/// master-key stream of the dealer replica is bit-identical to the
/// single authority's.
const SHARE_RNG_SALT: u64 = 0x7368_6172_655f_706f;
/// Salt for the per-node DLEQ-nonce RNG stream.
const PROOF_RNG_SALT: u64 = 0x646c_6571_5f6e_6f6e;

/// The `(n, t)` shape of a threshold deployment: `n` share-holders, any
/// `t` of which form a quorum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThresholdSetup {
    n: u32,
    t: u32,
}

impl ThresholdSetup {
    /// Creates a setup with `n` share-holders and quorum `t`.
    ///
    /// # Errors
    ///
    /// [`FeError::InvalidOperand`] unless `1 ≤ t ≤ n`.
    pub fn new(n: u32, t: u32) -> Result<Self, FeError> {
        if n == 0 || t == 0 || t > n {
            return Err(FeError::InvalidOperand(
                "threshold setup requires 1 <= t <= n",
            ));
        }
        Ok(Self { n, t })
    }

    /// The degenerate `n = t = 1` setup — the single authority as a
    /// special case of the threshold construction.
    pub fn single() -> Self {
        Self { n: 1, t: 1 }
    }

    /// Number of share-holders.
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Quorum size.
    pub fn t(&self) -> usize {
        self.t as usize
    }
}

/// One node's place in a threshold deployment: the common setup plus
/// this node's 1-based share index (its Shamir abscissa).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShareSpec {
    setup: ThresholdSetup,
    index: u32,
}

impl ShareSpec {
    /// Creates a spec for share-holder `index` (1-based).
    ///
    /// # Errors
    ///
    /// [`FeError::InvalidOperand`] unless `1 ≤ index ≤ n`.
    pub fn new(setup: ThresholdSetup, index: u32) -> Result<Self, FeError> {
        if index == 0 || index as usize > setup.n() {
            return Err(FeError::InvalidOperand("share index out of range"));
        }
        Ok(Self { setup, index })
    }

    /// The common `(n, t)` setup.
    pub fn setup(&self) -> ThresholdSetup {
        self.setup
    }

    /// This node's 1-based share index.
    pub fn index(&self) -> u32 {
        self.index
    }
}

// ---------------------------------------------------------------------------
// Shamir sharing and Lagrange recombination over Z_q
// ---------------------------------------------------------------------------

/// Evaluates `coeffs[0] + coeffs[1]·x + …` by Horner's rule in `Z_q`.
fn poly_eval(group: &SchnorrGroup, coeffs: &[Scalar], x: &Scalar) -> Scalar {
    let mut acc = Scalar::ZERO;
    for c in coeffs.iter().rev() {
        acc = group.scalar_mul(&acc, x);
        acc = group.scalar_add(&acc, c);
    }
    acc
}

/// Shamir-shares `secret` into `n` shares with quorum `t`: share `j`
/// (1-based) is `f(j)` for a degree-`(t−1)` polynomial with constant
/// term `secret` and the remaining coefficients drawn from `rng`.
pub fn share_scalar<R: Rng + ?Sized>(
    group: &SchnorrGroup,
    secret: &Scalar,
    setup: ThresholdSetup,
    rng: &mut R,
) -> Vec<Scalar> {
    let mut coeffs = Vec::with_capacity(setup.t());
    coeffs.push(*secret);
    for _ in 1..setup.t() {
        coeffs.push(group.random_scalar(rng));
    }
    (1..=setup.n() as u64)
        .map(|j| poly_eval(group, &coeffs, &group.scalar_from_u64(j)))
        .collect()
}

/// The Lagrange basis coefficients `Lⱼ(at)` for the abscissas `xs`,
/// evaluated at `at`, all in `Z_q`.
///
/// With `at = 0` these are the recombination weights `λⱼ`; with
/// `at = x_u` they interpolate the quorum's polynomial at a suspect
/// node's abscissa (corrupt-share identification).
///
/// # Panics
///
/// Panics if `xs` contains duplicates (the basis is undefined).
pub fn lagrange_at(group: &SchnorrGroup, xs: &[u32], at: u64) -> Vec<Scalar> {
    let at = group.scalar_from_u64(at);
    xs.iter()
        .map(|&xj| {
            let xj_s = group.scalar_from_u64(u64::from(xj));
            let mut num = Scalar::ONE;
            let mut den = Scalar::ONE;
            for &xk in xs {
                if xk == xj {
                    continue;
                }
                let xk_s = group.scalar_from_u64(u64::from(xk));
                num = group.scalar_mul(&num, &group.scalar_sub(&at, &xk_s));
                den = group.scalar_mul(&den, &group.scalar_sub(&xj_s, &xk_s));
            }
            let den_inv = group
                .scalar_inv(&den)
                .expect("distinct abscissas give a nonzero denominator");
            group.scalar_mul(&num, &den_inv)
        })
        .collect()
}

/// The recombination weights `λⱼ = Lⱼ(0)` for the t-subset `xs`.
pub fn lagrange_at_zero(group: &SchnorrGroup, xs: &[u32]) -> Vec<Scalar> {
    lagrange_at(group, xs, 0)
}

/// Recombines scalar partials: `Σ λⱼ·pⱼ mod q` for the t-subset with
/// abscissas `xs`. For FEIP partials this *is* the function key scalar.
pub fn recombine_scalars(group: &SchnorrGroup, xs: &[u32], partials: &[Scalar]) -> Scalar {
    group.scalar_dot(&lagrange_at_zero(group, xs), partials)
}

/// Recombines element partials in the exponent: `Π eⱼ^{λⱼ}` for the
/// t-subset with abscissas `xs`. For FEBO partials `dⱼ = cmt^{uⱼ}` this
/// reconstructs `cmt^s`.
pub fn recombine_elements(group: &SchnorrGroup, xs: &[u32], partials: &[Element]) -> Element {
    let lam = lagrange_at_zero(group, xs);
    let mut acc: Option<Element> = None;
    for (l, e) in lam.iter().zip(partials) {
        let term = group.pow(e, l);
        acc = Some(match acc {
            Some(a) => group.mul(&a, &term),
            None => term,
        });
    }
    acc.expect("recombination requires at least one partial")
}

// ---------------------------------------------------------------------------
// Chaum–Pedersen DLEQ proofs for FEBO partials
// ---------------------------------------------------------------------------

/// A Chaum–Pedersen proof that `log_g F = log_cmt d` — i.e. that a FEBO
/// partial `d = cmt^u` was computed with the same share `u` that the
/// public commitment `F = g^u` binds the node to.
///
/// Fiat–Shamir is instantiated with a four-lane FNV-1a hash folded into
/// `Z_q` — a deterministic, dependency-free stand-in with the right
/// interface shape, **not** a cryptographic hash (the repo ships no
/// crypto-hash primitive; swapping one in changes only
/// `dleq_challenge`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DleqProof {
    /// First commitment `a = g^k`.
    pub a: Element,
    /// Second commitment `b = cmt^k`.
    pub b: Element,
    /// Response `z = k + c·u mod q`.
    pub z: Scalar,
}

/// Folds the proof transcript into a challenge scalar: four FNV-1a
/// lanes over the minimal little-endian encodings of the statement and
/// commitments, composed base-2⁶⁴ and reduced into `Z_q`.
fn dleq_challenge(
    group: &SchnorrGroup,
    f: &Element,
    cmt: &Element,
    d: &Element,
    a: &Element,
    b: &Element,
) -> Scalar {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut lanes = [
        FNV_OFFSET,
        FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15,
        FNV_OFFSET ^ 0xc2b2_ae3d_27d4_eb4f,
        FNV_OFFSET ^ 0x1656_67b1_9e37_79f9,
    ];
    let mut absorb = |bytes: &[u8]| {
        for &byte in bytes {
            for lane in &mut lanes {
                *lane ^= u64::from(byte);
                *lane = lane.wrapping_mul(FNV_PRIME);
            }
        }
    };
    absorb(b"cryptonn.dleq.v1");
    for e in [f, cmt, d, a, b] {
        let bytes = e.value().to_le_bytes_min();
        absorb(&[bytes.len() as u8]);
        absorb(&bytes);
    }
    // Compose the lanes base-2^64 into Z_q.
    let shift = {
        let half = group.scalar_from_u64(1 << 32);
        group.scalar_mul(&half, &half)
    };
    let mut c = Scalar::ZERO;
    for lane in lanes.iter().rev() {
        c = group.scalar_mul(&c, &shift);
        c = group.scalar_add(&c, &group.scalar_from_u64(*lane));
    }
    c
}

/// Produces a DLEQ proof for the partial `d = cmt^u` under commitment
/// `F = g^u`.
pub(crate) fn dleq_prove<R: Rng + ?Sized>(
    group: &SchnorrGroup,
    u: &Scalar,
    f: &Element,
    cmt: &Element,
    d: &Element,
    rng: &mut R,
) -> DleqProof {
    let k = group.random_scalar(rng);
    let a = group.exp(&k);
    let b = group.pow(cmt, &k);
    let c = dleq_challenge(group, f, cmt, d, &a, &b);
    let z = group.scalar_add(&k, &group.scalar_mul(&c, u));
    DleqProof { a, b, z }
}

/// Verifies a DLEQ proof: `g^z = a·F^c` and `cmt^z = b·d^c`.
pub fn dleq_verify(
    group: &SchnorrGroup,
    f: &Element,
    cmt: &Element,
    d: &Element,
    proof: &DleqProof,
) -> bool {
    let c = dleq_challenge(group, f, cmt, d, &proof.a, &proof.b);
    group.exp(&proof.z) == group.mul(&proof.a, &group.pow(f, &c))
        && group.pow(cmt, &proof.z) == group.mul(&proof.b, &group.pow(d, &c))
}

/// One node's FEBO partial: `d = cmt^{uⱼ}` plus the DLEQ proof binding
/// it to the node's public share commitment `Fⱼ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeboPartial {
    /// The partial `d = cmt^{uⱼ}`.
    pub d: Element,
    /// Proof that `d` uses the committed share.
    pub proof: DleqProof,
}

// ---------------------------------------------------------------------------
// The share-holder node
// ---------------------------------------------------------------------------

/// One share-holder of a threshold deployment.
///
/// A dealer replica: from the session's authority seed it derives the
/// exact master keys the single [`KeyAuthority`](crate::KeyAuthority)
/// would (same RNG stream, same draw order), Shamir-shares them with a
/// domain-separated second RNG stream, and keeps its own share. It
/// serves *partial* derivations only — it never assembles a full
/// function key, and it refuses full-key requests at the protocol
/// layer.
#[derive(Debug)]
pub struct ShareAuthority {
    group: SchnorrGroup,
    permitted: PermittedFunctions,
    spec: ShareSpec,
    febo_mpk: FeboPublicKey,
    /// This node's share `uⱼ` of the FEBO master scalar.
    febo_share: Scalar,
    /// Public share commitments `F_k = g^{u_k}` for every node `k`.
    febo_commitments: Vec<Element>,
    feip: Mutex<HashMap<usize, Arc<FeipShareInstance>>>,
    /// Replicates the single authority's master-key RNG evolution.
    master_rng: Mutex<StdRng>,
    /// Sharing-polynomial coefficients — identical on every replica.
    share_rng: Mutex<StdRng>,
    /// DLEQ nonces — per-node, never needs cross-node agreement.
    proof_rng: Mutex<StdRng>,
}

#[derive(Debug)]
struct FeipShareInstance {
    mpk: FeipPublicKey,
    /// This node's share `fᵢ(j)` of each master coordinate `sᵢ`.
    share: Vec<Scalar>,
}

impl ShareAuthority {
    /// Creates share-holder `spec.index()` of a threshold deployment
    /// keyed by `seed` — the same seed a single
    /// [`KeyAuthority::with_seed`](crate::KeyAuthority::with_seed)
    /// would use, so recombined keys are bit-identical to it.
    pub fn with_seed(
        group: SchnorrGroup,
        permitted: PermittedFunctions,
        seed: u64,
        spec: ShareSpec,
    ) -> Self {
        let mut master_rng = StdRng::seed_from_u64(seed);
        let mut share_rng = StdRng::seed_from_u64(seed ^ SHARE_RNG_SALT);
        let proof_rng = StdRng::seed_from_u64(
            seed ^ PROOF_RNG_SALT ^ u64::from(spec.index()).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        // Mirror KeyAuthority::from_rng: FEBO setup is the first draw.
        let (febo_mpk, febo_msk) = febo::setup(group.clone(), &mut master_rng);
        let shares = share_scalar(&group, febo_msk.scalar(), spec.setup(), &mut share_rng);
        let febo_commitments = shares.iter().map(|u| group.exp(u)).collect();
        let febo_share = shares[(spec.index() - 1) as usize];
        Self {
            group,
            permitted,
            spec,
            febo_mpk,
            febo_share,
            febo_commitments,
            feip: Mutex::new(HashMap::new()),
            master_rng: Mutex::new(master_rng),
            share_rng: Mutex::new(share_rng),
            proof_rng: Mutex::new(proof_rng),
        }
    }

    /// The group all schemes operate in.
    pub fn group(&self) -> &SchnorrGroup {
        &self.group
    }

    /// This node's place in the deployment.
    pub fn spec(&self) -> ShareSpec {
        self.spec
    }

    /// This node's 1-based share index.
    pub fn index(&self) -> u32 {
        self.spec.index()
    }

    /// The common FEBO public key (identical on every replica).
    pub fn febo_public_key(&self) -> FeboPublicKey {
        self.febo_mpk.clone()
    }

    /// The public share commitments `F_k = g^{u_k}`, one per node
    /// (identical on every replica).
    pub fn febo_commitments(&self) -> &[Element] {
        &self.febo_commitments
    }

    /// The FEIP public key for dimension `dim`, creating the shared
    /// instance on first use (identical on every replica that has seen
    /// the same request order).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero, as the single authority does.
    pub fn feip_public_key(&self, dim: usize) -> FeipPublicKey {
        self.feip_instance(dim).mpk.clone()
    }

    fn feip_instance(&self, dim: usize) -> Arc<FeipShareInstance> {
        let mut map = self.feip.lock();
        map.entry(dim)
            .or_insert_with(|| {
                // Master draw order matches KeyAuthority::feip_instance;
                // the sharing draws come from the separate stream so the
                // master keys are unaffected by the sharing.
                let mut master_rng = self.master_rng.lock();
                let (mpk, msk) = feip::setup(self.group.clone(), dim, &mut *master_rng);
                drop(master_rng);
                let mut share_rng = self.share_rng.lock();
                let j = (self.spec.index() - 1) as usize;
                let share = msk
                    .coordinates()
                    .iter()
                    .map(|s| share_scalar(&self.group, s, self.spec.setup(), &mut *share_rng)[j])
                    .collect();
                Arc::new(FeipShareInstance { mpk, share })
            })
            .clone()
    }

    /// Serves a batch of FEIP partial derivations: one partial
    /// `⟨f(j), y⟩ mod q` per weight vector.
    ///
    /// # Errors
    ///
    /// As [`KeyAuthority::derive_ip_key`](crate::KeyAuthority::derive_ip_key):
    /// [`FeError::FunctionNotPermitted`] and [`FeError::DimensionMismatch`].
    pub fn feip_partials(&self, dim: usize, ys: &[Vec<i64>]) -> Result<Vec<Scalar>, FeError> {
        if !self.permitted.dot_product {
            return Err(FeError::FunctionNotPermitted("dot-product"));
        }
        let instance = self.feip_instance(dim);
        ys.iter()
            .map(|y| {
                if y.len() != dim {
                    return Err(FeError::DimensionMismatch {
                        expected: dim,
                        got: y.len(),
                    });
                }
                let y_scalars: Vec<Scalar> =
                    y.iter().map(|&v| self.group.scalar_from_i64(v)).collect();
                Ok(self.group.scalar_dot(&y_scalars, &instance.share))
            })
            .collect()
    }

    /// Serves a batch of FEBO partial derivations: `dⱼ = cmt^{uⱼ}` plus
    /// a DLEQ proof per request.
    ///
    /// # Errors
    ///
    /// As [`KeyAuthority::derive_bo_key`](crate::KeyAuthority::derive_bo_key):
    /// [`FeError::FunctionNotPermitted`] and [`FeError::InvalidOperand`]
    /// for division by zero (refused up front, before any partial is
    /// computed).
    pub fn febo_partials(&self, reqs: &[FeboKeyRequest]) -> Result<Vec<FeboPartial>, FeError> {
        for req in reqs {
            if !self.permitted.allows_op(req.op) {
                return Err(FeError::FunctionNotPermitted(req.op.symbol()));
            }
            if req.op == crate::febo::BasicOp::Div && req.y == 0 {
                return Err(FeError::InvalidOperand("division by zero"));
            }
        }
        let f = &self.febo_commitments[(self.spec.index() - 1) as usize];
        Ok(reqs
            .iter()
            .map(|req| {
                let d = self.group.pow(&req.cmt, &self.febo_share);
                let mut rng = self.proof_rng.lock();
                let proof = dleq_prove(&self.group, &self.febo_share, f, &req.cmt, &d, &mut *rng);
                FeboPartial { d, proof }
            })
            .collect())
    }
}

/// Deals the full node set of a threshold deployment in-process: one
/// [`ShareAuthority`] per index, all replicating the same dealer.
pub fn deal_authorities(
    group: SchnorrGroup,
    permitted: PermittedFunctions,
    seed: u64,
    setup: ThresholdSetup,
) -> Vec<Arc<ShareAuthority>> {
    (1..=setup.n() as u32)
        .map(|index| {
            let spec = ShareSpec::new(setup, index).expect("index in range by construction");
            Arc::new(ShareAuthority::with_seed(
                group.clone(),
                permitted,
                seed,
                spec,
            ))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The combiner: ShareClient + ThresholdKeyService
// ---------------------------------------------------------------------------

/// How a share-holder call failed, from the combiner's point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShareClientError {
    /// The node answered and refused — a policy decision
    /// (permitted-set, dimension, operand). Every honest replica
    /// refuses identically, so the refusal propagates to the caller.
    Refused(FeError),
    /// The node failed to answer — transport error, timeout, crash. The
    /// combiner evicts it and continues on the surviving quorum.
    Failed(FeError),
}

impl core::fmt::Display for ShareClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShareClientError::Refused(e) => write!(f, "share node refused: {e}"),
            ShareClientError::Failed(e) => write!(f, "share node failed: {e}"),
        }
    }
}

impl std::error::Error for ShareClientError {}

/// A connection to one share-holder, as the combiner sees it.
///
/// Implementations: [`LocalShareClient`] (in-process) and the
/// `cryptonn-net` TCP client. Methods take `&mut self` because wire
/// implementations own a connection.
pub trait ShareClient: Send {
    /// The node's 1-based share index.
    fn index(&self) -> u32;

    /// The node's FEIP public key for dimension `dim`.
    ///
    /// # Errors
    ///
    /// [`ShareClientError`] on refusal or transport failure.
    fn feip_public_key(&mut self, dim: usize) -> Result<FeipPublicKey, ShareClientError>;

    /// A batch of FEIP partials.
    ///
    /// # Errors
    ///
    /// [`ShareClientError`] on refusal or transport failure.
    fn feip_partials(
        &mut self,
        dim: usize,
        ys: &[Vec<i64>],
    ) -> Result<Vec<Scalar>, ShareClientError>;

    /// A batch of FEBO partials with DLEQ proofs.
    ///
    /// # Errors
    ///
    /// [`ShareClientError`] on refusal or transport failure.
    fn febo_partials(
        &mut self,
        reqs: &[FeboKeyRequest],
    ) -> Result<Vec<FeboPartial>, ShareClientError>;
}

/// An in-process [`ShareClient`] over a co-located [`ShareAuthority`] —
/// the threshold analogue of running against a local
/// [`KeyAuthority`](crate::KeyAuthority).
#[derive(Debug, Clone)]
pub struct LocalShareClient {
    node: Arc<ShareAuthority>,
}

impl LocalShareClient {
    /// Wraps a co-located share-holder.
    pub fn new(node: Arc<ShareAuthority>) -> Self {
        Self { node }
    }
}

impl ShareClient for LocalShareClient {
    fn index(&self) -> u32 {
        self.node.index()
    }

    fn feip_public_key(&mut self, dim: usize) -> Result<FeipPublicKey, ShareClientError> {
        Ok(self.node.feip_public_key(dim))
    }

    fn feip_partials(
        &mut self,
        dim: usize,
        ys: &[Vec<i64>],
    ) -> Result<Vec<Scalar>, ShareClientError> {
        self.node
            .feip_partials(dim, ys)
            .map_err(ShareClientError::Refused)
    }

    fn febo_partials(
        &mut self,
        reqs: &[FeboKeyRequest],
    ) -> Result<Vec<FeboPartial>, ShareClientError> {
        self.node
            .febo_partials(reqs)
            .map_err(ShareClientError::Refused)
    }
}

/// Counters for the combiner's fault handling — pinned by the
/// adversarial-share conformance tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThresholdStats {
    /// Nodes evicted after a transport failure or a detected corrupt
    /// partial. Eviction is permanent for the service's lifetime.
    pub nodes_evicted: u64,
    /// Partial-key batches discarded as invalid: a failed DLEQ proof, a
    /// malformed batch, or a FEIP share identified as off-polynomial.
    pub invalid_partials: u64,
    /// Retries against the surviving quorum: FEIP t-subsets that failed
    /// commitment validation, plus FEBO derivations that had to discard
    /// an invalid node before recombining.
    pub validation_retries: u64,
    /// Derivations that failed closed below quorum
    /// ([`FeError::InsufficientShares`]).
    pub quorum_failures: u64,
}

struct ThresholdState {
    /// Live nodes, ascending share index. Evicted nodes are removed.
    nodes: Vec<Box<dyn ShareClient>>,
    /// Consensus-checked FEIP public keys, one per dimension.
    mpks: HashMap<usize, FeipPublicKey>,
}

/// A [`KeyService`] that fans every request out to `n` share-holders
/// and Lagrange-recombines any validating t-subset of partials —
/// tolerating up to `n − t` node failures, evicting nodes that fail or
/// cheat, and failing closed below quorum.
///
/// Sits *under*
/// [`CachingKeyService`](crate::CachingKeyService) in the server stack,
/// so only the aggregated key is cached — partials never leave this
/// type.
///
/// Every request goes to **every** live node (not just a t-subset):
/// dealer replicas must see an identical request stream to keep their
/// master-RNG evolution aligned, and the surplus partials are what the
/// corrupt-share detection and failover feed on.
pub struct ThresholdKeyService {
    group: SchnorrGroup,
    setup: ThresholdSetup,
    febo_mpk: FeboPublicKey,
    febo_commitments: Vec<Element>,
    state: Mutex<ThresholdState>,
    stats: Mutex<ThresholdStats>,
}

impl ThresholdKeyService {
    /// Builds the combiner over a set of share-holder connections.
    ///
    /// Anchors the public share commitments before accepting them: the
    /// base subset must recombine to the FEBO public key
    /// (`Π Fⱼ^{λⱼ} = h`), and every further commitment must lie on the
    /// same degree-`(t−1)` polynomial — so a tampered commitment vector
    /// is rejected at construction, not at first use.
    ///
    /// # Errors
    ///
    /// [`FeError::Protocol`] on malformed inputs (wrong commitment
    /// count, duplicate or out-of-range node indices, commitments that
    /// do not anchor to the public key).
    pub fn new(
        group: SchnorrGroup,
        setup: ThresholdSetup,
        febo_mpk: FeboPublicKey,
        febo_commitments: Vec<Element>,
        nodes: Vec<Box<dyn ShareClient>>,
    ) -> Result<Self, FeError> {
        if febo_commitments.len() != setup.n() {
            return Err(FeError::Protocol(format!(
                "expected {} share commitments, got {}",
                setup.n(),
                febo_commitments.len()
            )));
        }
        let mut nodes = nodes;
        nodes.sort_by_key(|a| a.index());
        let mut seen = std::collections::HashSet::new();
        for node in &nodes {
            let index = node.index();
            if index == 0 || index as usize > setup.n() || !seen.insert(index) {
                return Err(FeError::Protocol(format!(
                    "share index {index} duplicate or out of range for n = {}",
                    setup.n()
                )));
            }
        }
        // Anchor the commitment vector to the common public key.
        let base: Vec<u32> = (1..=setup.t() as u32).collect();
        let anchored = recombine_elements(&group, &base, &febo_commitments[..setup.t()]);
        if anchored != *febo_mpk.element() {
            return Err(FeError::Protocol(
                "share commitments do not anchor to the FEBO public key".into(),
            ));
        }
        for u in setup.t()..setup.n() {
            let basis = lagrange_at(&group, &base, (u + 1) as u64);
            let mut expected: Option<Element> = None;
            for (l, f) in basis.iter().zip(&febo_commitments[..setup.t()]) {
                let term = group.pow(f, l);
                expected = Some(match expected {
                    Some(a) => group.mul(&a, &term),
                    None => term,
                });
            }
            if expected != Some(febo_commitments[u]) {
                return Err(FeError::Protocol(format!(
                    "share commitment {} is off the quorum polynomial",
                    u + 1
                )));
            }
        }
        Ok(Self {
            group,
            setup,
            febo_mpk,
            febo_commitments,
            state: Mutex::new(ThresholdState {
                nodes,
                mpks: HashMap::new(),
            }),
            stats: Mutex::new(ThresholdStats::default()),
        })
    }

    /// The `(n, t)` shape of the deployment.
    pub fn setup(&self) -> ThresholdSetup {
        self.setup
    }

    /// Number of nodes still live (not evicted).
    pub fn live_nodes(&self) -> usize {
        self.state.lock().nodes.len()
    }

    /// A snapshot of the fault-handling counters.
    pub fn stats(&self) -> ThresholdStats {
        *self.stats.lock()
    }

    /// Fans one call out to every live node. Nodes that fail transport
    /// are evicted; a refusal is collected and propagated only after
    /// every node has seen the request (so surviving replicas stay in
    /// RNG lockstep). Fails closed below quorum.
    fn fan_out<T>(
        &self,
        state: &mut ThresholdState,
        mut call: impl FnMut(&mut Box<dyn ShareClient>) -> Result<T, ShareClientError>,
    ) -> Result<Vec<(u32, T)>, FeError> {
        let mut answers = Vec::new();
        let mut refusal: Option<FeError> = None;
        let mut survivors = Vec::new();
        for mut node in state.nodes.drain(..) {
            let index = node.index();
            match call(&mut node) {
                Ok(v) => {
                    answers.push((index, v));
                    survivors.push(node);
                }
                Err(ShareClientError::Refused(e)) => {
                    refusal.get_or_insert(e);
                    survivors.push(node);
                }
                Err(ShareClientError::Failed(_)) => {
                    self.stats.lock().nodes_evicted += 1;
                }
            }
        }
        state.nodes = survivors;
        if let Some(e) = refusal {
            return Err(e);
        }
        if answers.len() < self.setup.t() {
            self.stats.lock().quorum_failures += 1;
            return Err(FeError::InsufficientShares {
                have: answers.len(),
                need: self.setup.t(),
            });
        }
        Ok(answers)
    }

    /// The consensus-checked FEIP public key for `dim`, fetched from
    /// every live node on first use. Replicas derive it from the same
    /// seed, so any disagreement marks a desynced or corrupt node.
    fn feip_mpk(&self, state: &mut ThresholdState, dim: usize) -> Result<FeipPublicKey, FeError> {
        if let Some(mpk) = state.mpks.get(&dim) {
            return Ok(mpk.clone());
        }
        let answers = self.fan_out(state, |c| c.feip_public_key(dim))?;
        let (_, first) = &answers[0];
        if answers.iter().any(|(_, mpk)| mpk != first) {
            return Err(FeError::Protocol(format!(
                "share nodes disagree on the dimension-{dim} FEIP public key"
            )));
        }
        state.mpks.insert(dim, first.clone());
        Ok(first.clone())
    }

    /// Evicts `index` from the live set (corrupt partial detected).
    fn evict(&self, state: &mut ThresholdState, index: u32) {
        state.nodes.retain(|n| n.index() != index);
        let mut stats = self.stats.lock();
        stats.nodes_evicted += 1;
        stats.invalid_partials += 1;
    }
}

/// Lexicographic k-subsets of `0..m` (positions, not abscissas).
fn k_subsets(m: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = (0..k).collect();
    if k == 0 || k > m {
        return if k == 0 { vec![vec![]] } else { out };
    }
    loop {
        out.push(cur.clone());
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if cur[i] != i + m - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        cur[i] += 1;
        for j in i + 1..k {
            cur[j] = cur[j - 1] + 1;
        }
    }
}

impl KeyService for ThresholdKeyService {
    fn feip_public_key(&self, dim: usize) -> Result<FeipPublicKey, FeError> {
        let mut state = self.state.lock();
        self.feip_mpk(&mut state, dim)
    }

    fn febo_public_key(&self) -> Result<FeboPublicKey, FeError> {
        Ok(self.febo_mpk.clone())
    }

    fn derive_ip_keys(&self, dim: usize, ys: &[Vec<i64>]) -> Result<Vec<FeipFunctionKey>, FeError> {
        let mut state = self.state.lock();
        let mpk = self.feip_mpk(&mut state, dim)?;
        let mut answers = self.fan_out(&mut state, |c| c.feip_partials(dim, ys))?;
        // A malformed batch length is a corrupt answer, not a refusal.
        answers.retain(|(index, partials)| {
            let ok = partials.len() == ys.len();
            if !ok {
                self.evict(&mut state, *index);
            }
            ok
        });
        let t = self.setup.t();
        if answers.len() < t {
            self.stats.lock().quorum_failures += 1;
            return Err(FeError::InsufficientShares {
                have: answers.len(),
                need: t,
            });
        }
        // The public check values: g^{sk_k} must equal Π hᵢ^{y_k,i}.
        let rhs: Vec<Element> = ys
            .iter()
            .map(|y| self.group.multi_scalar_pow(mpk.coordinates(), y))
            .collect();
        let mut subsets_tried = 0;
        for subset in k_subsets(answers.len(), t) {
            let xs: Vec<u32> = subset.iter().map(|&i| answers[i].0).collect();
            let lam = lagrange_at_zero(&self.group, &xs);
            let keys: Vec<Scalar> = (0..ys.len())
                .map(|k| {
                    let partials: Vec<Scalar> = subset.iter().map(|&i| answers[i].1[k]).collect();
                    self.group.scalar_dot(&lam, &partials)
                })
                .collect();
            subsets_tried += 1;
            if keys
                .iter()
                .zip(&rhs)
                .all(|(sk, check)| self.group.exp(sk) == *check)
            {
                // The quorum validates. Audit the surplus responders
                // against the quorum's polynomial and evict any that
                // are off it — the corrupt-share identification.
                for (pos, (index, partials)) in answers.iter().enumerate() {
                    if subset.contains(&pos) {
                        continue;
                    }
                    let basis = lagrange_at(&self.group, &xs, u64::from(*index));
                    let consistent = (0..ys.len()).all(|k| {
                        let quorum: Vec<Scalar> = subset.iter().map(|&i| answers[i].1[k]).collect();
                        self.group.scalar_dot(&basis, &quorum) == partials[k]
                    });
                    if !consistent {
                        self.evict(&mut state, *index);
                    }
                }
                return Ok(keys.into_iter().map(FeipFunctionKey::from_scalar).collect());
            }
            self.stats.lock().validation_retries += 1;
        }
        Err(FeError::SharesTampered { subsets_tried })
    }

    fn derive_bo_keys(&self, reqs: &[FeboKeyRequest]) -> Result<Vec<FeboFunctionKey>, FeError> {
        let mut state = self.state.lock();
        let answers = self.fan_out(&mut state, |c| c.febo_partials(reqs))?;
        // Verify every node's DLEQ proofs; discard cheaters up front.
        let mut valid: Vec<(u32, Vec<FeboPartial>)> = Vec::new();
        for (index, partials) in answers {
            let f = &self.febo_commitments[(index - 1) as usize];
            let sound = partials.len() == reqs.len()
                && partials
                    .iter()
                    .zip(reqs)
                    .all(|(p, req)| dleq_verify(&self.group, f, &req.cmt, &p.d, &p.proof));
            if sound {
                valid.push((index, partials));
            } else {
                self.evict(&mut state, index);
                self.stats.lock().validation_retries += 1;
            }
        }
        let t = self.setup.t();
        if valid.len() < t {
            self.stats.lock().quorum_failures += 1;
            return Err(FeError::InsufficientShares {
                have: valid.len(),
                need: t,
            });
        }
        let xs: Vec<u32> = valid[..t].iter().map(|(i, _)| *i).collect();
        let lam = lagrange_at_zero(&self.group, &xs);
        reqs.iter()
            .enumerate()
            .map(|(k, req)| {
                let mut cmt_s: Option<Element> = None;
                for (l, (_, partials)) in lam.iter().zip(&valid[..t]) {
                    let term = self.group.pow(&partials[k].d, l);
                    cmt_s = Some(match cmt_s {
                        Some(a) => self.group.mul(&a, &term),
                        None => term,
                    });
                }
                let cmt_s = cmt_s.expect("quorum is nonempty");
                febo::finish_key(&self.group, cmt_s, req.op, req.y)
            })
            .collect()
    }
}

/// Deals a full in-process threshold deployment and wires a combiner
/// over it — the threshold analogue of
/// [`KeyAuthority::with_seed`](crate::KeyAuthority::with_seed).
pub fn local_threshold_service(
    group: SchnorrGroup,
    permitted: PermittedFunctions,
    seed: u64,
    setup: ThresholdSetup,
) -> ThresholdKeyService {
    let authorities = deal_authorities(group.clone(), permitted, seed, setup);
    let febo_mpk = authorities[0].febo_public_key();
    let febo_commitments = authorities[0].febo_commitments().to_vec();
    let nodes = authorities
        .into_iter()
        .map(|a| Box::new(LocalShareClient::new(a)) as Box<dyn ShareClient>)
        .collect();
    ThresholdKeyService::new(group, setup, febo_mpk, febo_commitments, nodes)
        .expect("a freshly dealt deployment always anchors")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::febo::BasicOp;
    use crate::KeyAuthority;
    use cryptonn_group::SecurityLevel;

    fn group() -> SchnorrGroup {
        SchnorrGroup::precomputed(SecurityLevel::Bits64)
    }

    #[test]
    fn setup_validation() {
        assert!(ThresholdSetup::new(3, 2).is_ok());
        assert!(ThresholdSetup::new(0, 0).is_err());
        assert!(ThresholdSetup::new(2, 3).is_err());
        assert!(ShareSpec::new(ThresholdSetup::new(3, 2).unwrap(), 4).is_err());
        assert!(ShareSpec::new(ThresholdSetup::new(3, 2).unwrap(), 0).is_err());
    }

    #[test]
    fn shamir_recombines_from_every_t_subset() {
        let group = group();
        let mut rng = StdRng::seed_from_u64(7);
        let secret = group.random_scalar(&mut rng);
        let setup = ThresholdSetup::new(5, 3).unwrap();
        let shares = share_scalar(&group, &secret, setup, &mut rng);
        for subset in k_subsets(5, 3) {
            let xs: Vec<u32> = subset.iter().map(|&i| (i + 1) as u32).collect();
            let picked: Vec<Scalar> = subset.iter().map(|&i| shares[i]).collect();
            assert_eq!(recombine_scalars(&group, &xs, &picked), secret);
        }
        // Two shares of a 3-quorum do NOT recombine to the secret.
        assert_ne!(
            recombine_scalars(&group, &[1, 2], &shares[..2]),
            secret
        );
    }

    #[test]
    fn element_recombination_matches_exponent_recombination() {
        let group = group();
        let mut rng = StdRng::seed_from_u64(8);
        let secret = group.random_scalar(&mut rng);
        let base = group.exp(&group.random_scalar(&mut rng));
        let setup = ThresholdSetup::new(4, 2).unwrap();
        let shares = share_scalar(&group, &secret, setup, &mut rng);
        let partials: Vec<Element> = shares.iter().map(|u| group.pow(&base, u)).collect();
        let expected = group.pow(&base, &secret);
        assert_eq!(
            recombine_elements(&group, &[2, 4], &[partials[1], partials[3]]),
            expected
        );
    }

    #[test]
    fn dleq_roundtrip_and_tamper() {
        let group = group();
        let mut rng = StdRng::seed_from_u64(9);
        let u = group.random_scalar(&mut rng);
        let f = group.exp(&u);
        let cmt = group.exp(&group.random_scalar(&mut rng));
        let d = group.pow(&cmt, &u);
        let proof = dleq_prove(&group, &u, &f, &cmt, &d, &mut rng);
        assert!(dleq_verify(&group, &f, &cmt, &d, &proof));
        // A tampered partial fails against the same proof.
        let bad = group.mul(&d, &group.generator());
        assert!(!dleq_verify(&group, &f, &cmt, &bad, &proof));
    }

    #[test]
    fn k_subsets_enumerates_lexicographically() {
        assert_eq!(
            k_subsets(4, 2),
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
        assert_eq!(k_subsets(3, 3), vec![vec![0, 1, 2]]);
        assert_eq!(k_subsets(2, 3), Vec::<Vec<usize>>::new());
    }

    #[test]
    fn threshold_service_matches_single_authority() {
        let group = group();
        let seed = 4242;
        let single = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), seed);
        let setup = ThresholdSetup::new(3, 2).unwrap();
        let service =
            local_threshold_service(group.clone(), PermittedFunctions::all(), seed, setup);

        assert_eq!(
            KeyService::feip_public_key(&service, 4).unwrap(),
            KeyAuthority::feip_public_key(&single, 4)
        );
        assert_eq!(
            KeyService::febo_public_key(&service).unwrap(),
            single.febo_public_key()
        );
        let ys = vec![vec![3, -1, 2, 7], vec![0, 5, -4, 1]];
        assert_eq!(
            service.derive_ip_keys(4, &ys).unwrap(),
            KeyService::derive_ip_keys(&single, 4, &ys).unwrap()
        );

        let mut rng = StdRng::seed_from_u64(10);
        let mpk = single.febo_public_key();
        let ct = febo::encrypt(&mpk, 30, &mut rng);
        let req = FeboKeyRequest {
            cmt: *ct.commitment(),
            op: BasicOp::Sub,
            y: 12,
        };
        assert_eq!(
            service.derive_bo_keys(&[req]).unwrap(),
            KeyService::derive_bo_keys(&single, &[req]).unwrap()
        );
        assert_eq!(service.stats(), ThresholdStats::default());
    }

    #[test]
    fn single_node_setup_degenerates_to_single_authority() {
        let group = group();
        let seed = 17;
        let single = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), seed);
        let service = local_threshold_service(
            group.clone(),
            PermittedFunctions::all(),
            seed,
            ThresholdSetup::single(),
        );
        assert_eq!(
            service.derive_ip_key(3, &[1, -2, 3]).unwrap(),
            KeyAuthority::derive_ip_key(&single, 3, &[1, -2, 3]).unwrap()
        );
    }
}
