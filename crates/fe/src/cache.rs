//! The functional-key cache: an LRU layer over any [`KeyService`].
//!
//! Training re-derives its FEIP keys every iteration because the
//! weights move; *inference* reuses one frozen model, so every request
//! would hit the authority with an identical derivation. The cache
//! exploits the determinism of FEIP key derivation — `sk_y = ⟨y, s⟩` is
//! a pure function of the exact integer weight vector `y` — to make a
//! frozen model's key traffic a one-time cost: the first request per
//! weight row goes to the inner service, every later one is served
//! locally, bit-identical (the correctness argument is DESIGN.md §12).
//!
//! FEBO keys are deliberately **not** cached: a FEBO key binds to a
//! specific ciphertext commitment `cmt = g^r`, so it can never be
//! reused across requests — those derivations pass straight through.

use std::collections::{BTreeMap, HashMap};

use parking_lot::Mutex;

use crate::error::FeError;
use crate::febo::{FeboFunctionKey, FeboPublicKey};
use crate::feip::{FeipFunctionKey, FeipPublicKey};
use crate::service::{FeboKeyRequest, KeyService};

/// A snapshot of the cache's hit/miss/eviction counters.
///
/// One FEIP key request counts as one hit or one miss; a batched
/// [`derive_ip_keys`](KeyService::derive_ip_keys) call contributes one
/// count per requested row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyCacheStats {
    /// Requested keys served from the cache.
    pub hits: u64,
    /// Requested keys that had to be derived by the inner service.
    pub misses: u64,
    /// Cached keys dropped to make room (never counted for a
    /// zero-capacity cache, which stores nothing).
    pub evictions: u64,
    /// Keys currently resident.
    pub entries: usize,
}

impl KeyCacheStats {
    /// Hit fraction over all requests so far (0 when nothing was
    /// requested yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The cache key: an FEIP derivation is identified by the instance
/// dimension and the exact quantized weight vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FeipKeyId {
    dim: usize,
    y: Vec<i64>,
}

#[derive(Debug)]
struct Entry {
    key: FeipFunctionKey,
    /// Recency stamp; doubles as the entry's handle in the LRU index.
    tick: u64,
}

/// Interior state behind one mutex: the key map, the recency index
/// (tick → id, ordered oldest-first), and the counters.
#[derive(Debug, Default)]
struct State {
    keys: HashMap<FeipKeyId, Entry>,
    lru: BTreeMap<u64, FeipKeyId>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl State {
    fn touch(&mut self, id: &FeipKeyId) -> Option<FeipFunctionKey> {
        let next = self.tick + 1;
        let entry = self.keys.get_mut(id)?;
        self.lru.remove(&entry.tick);
        entry.tick = next;
        self.tick = next;
        self.lru.insert(next, id.clone());
        Some(entry.key)
    }

    fn insert(&mut self, id: FeipKeyId, key: FeipFunctionKey, capacity: usize) {
        if self.keys.len() >= capacity && !self.keys.contains_key(&id) {
            // Evict the least recently used entry.
            if let Some((&oldest, _)) = self.lru.iter().next() {
                if let Some(victim) = self.lru.remove(&oldest) {
                    self.keys.remove(&victim);
                    self.evictions += 1;
                }
            }
        }
        self.tick += 1;
        if let Some(old) = self.keys.insert(
            id.clone(),
            Entry {
                key,
                tick: self.tick,
            },
        ) {
            self.lru.remove(&old.tick);
        }
        self.lru.insert(self.tick, id);
    }
}

/// An LRU functional-key cache implementing [`KeyService`] by wrapping
/// any inner service — a co-located
/// [`KeyAuthority`](crate::KeyAuthority) or a wire-backed channel to a
/// remote authority.
///
/// FEIP function keys are cached by `(dimension, exact weight vector)`;
/// public keys are cached unboundedly (there are only a handful of
/// instances per deployment); FEBO keys pass through uncached (they
/// bind to per-ciphertext commitments). A capacity of zero disables
/// storage entirely — every request is a recorded miss — which is the
/// "cache off" arm of the serving benchmarks.
///
/// ```
/// use cryptonn_fe::{CachingKeyService, KeyAuthority, KeyService, PermittedFunctions};
/// use cryptonn_group::{SchnorrGroup, SecurityLevel};
///
/// let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
/// let authority = KeyAuthority::with_seed(group, PermittedFunctions::all(), 9);
/// let cached = CachingKeyService::new(authority, 64);
///
/// let first = cached.derive_ip_key(3, &[1, -2, 3])?;
/// let again = cached.derive_ip_key(3, &[1, -2, 3])?;
/// assert_eq!(first, again);
/// assert_eq!(cached.stats().hits, 1);
/// assert_eq!(cached.stats().misses, 1);
/// # Ok::<(), cryptonn_fe::FeError>(())
/// ```
pub struct CachingKeyService<S> {
    inner: S,
    capacity: usize,
    state: Mutex<State>,
    mpks: Mutex<HashMap<usize, FeipPublicKey>>,
    febo_mpk: Mutex<Option<FeboPublicKey>>,
}

impl<S> CachingKeyService<S> {
    /// Wraps `inner` with room for `capacity` FEIP keys. A capacity of
    /// zero stores nothing (every derivation forwards to `inner`).
    pub fn new(inner: S, capacity: usize) -> Self {
        Self {
            inner,
            capacity,
            state: Mutex::new(State::default()),
            mpks: Mutex::new(HashMap::new()),
            febo_mpk: Mutex::new(None),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> KeyCacheStats {
        let state = self.state.lock();
        KeyCacheStats {
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
            entries: state.keys.len(),
        }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the cache, dropping all cached keys.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: KeyService> KeyService for CachingKeyService<S> {
    fn feip_public_key(&self, dim: usize) -> Result<FeipPublicKey, FeError> {
        if let Some(mpk) = self.mpks.lock().get(&dim) {
            return Ok(mpk.clone());
        }
        let mpk = self.inner.feip_public_key(dim)?;
        self.mpks.lock().insert(dim, mpk.clone());
        Ok(mpk)
    }

    fn febo_public_key(&self) -> Result<FeboPublicKey, FeError> {
        if let Some(mpk) = self.febo_mpk.lock().as_ref() {
            return Ok(mpk.clone());
        }
        let mpk = self.inner.febo_public_key()?;
        *self.febo_mpk.lock() = Some(mpk.clone());
        Ok(mpk)
    }

    fn derive_ip_keys(&self, dim: usize, ys: &[Vec<i64>]) -> Result<Vec<FeipFunctionKey>, FeError> {
        if self.capacity == 0 {
            self.state.lock().misses += ys.len() as u64;
            return self.inner.derive_ip_keys(dim, ys);
        }
        // Resolve hits under the lock, collecting the misses in request
        // order so the inner service sees one batched call for exactly
        // the keys the cache lacks.
        let mut resolved: Vec<Option<FeipFunctionKey>> = Vec::with_capacity(ys.len());
        let mut miss_idx: Vec<usize> = Vec::new();
        {
            let mut state = self.state.lock();
            for (i, y) in ys.iter().enumerate() {
                let id = FeipKeyId { dim, y: y.clone() };
                match state.touch(&id) {
                    Some(key) => {
                        state.hits += 1;
                        resolved.push(Some(key));
                    }
                    None => {
                        state.misses += 1;
                        miss_idx.push(i);
                        resolved.push(None);
                    }
                }
            }
        }
        if !miss_idx.is_empty() {
            let miss_ys: Vec<Vec<i64>> = miss_idx.iter().map(|&i| ys[i].clone()).collect();
            let derived = self.inner.derive_ip_keys(dim, &miss_ys)?;
            if derived.len() != miss_ys.len() {
                return Err(FeError::Protocol(format!(
                    "requested {} FEIP keys, inner service returned {}",
                    miss_ys.len(),
                    derived.len()
                )));
            }
            let mut state = self.state.lock();
            for (&i, key) in miss_idx.iter().zip(&derived) {
                state.insert(
                    FeipKeyId {
                        dim,
                        y: ys[i].clone(),
                    },
                    *key,
                    self.capacity,
                );
                resolved[i] = Some(*key);
            }
        }
        Ok(resolved
            .into_iter()
            .map(|k| k.expect("every slot resolved"))
            .collect())
    }

    fn derive_bo_keys(&self, reqs: &[FeboKeyRequest]) -> Result<Vec<FeboFunctionKey>, FeError> {
        // Commitment-bound: never reusable, never cached.
        self.inner.derive_bo_keys(reqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::{KeyAuthority, PermittedFunctions};
    use crate::febo::BasicOp;
    use cryptonn_group::{SchnorrGroup, SecurityLevel};

    fn authority(level: SecurityLevel) -> KeyAuthority {
        let group = SchnorrGroup::precomputed(level);
        KeyAuthority::with_seed(group, PermittedFunctions::all(), 123)
    }

    /// Hit-path keys must be bit-identical to uncached derivation, at
    /// every security level.
    #[test]
    fn hits_are_bit_identical_to_uncached_at_every_level() {
        for level in [
            SecurityLevel::Bits64,
            SecurityLevel::Bits128,
            SecurityLevel::Bits256,
        ] {
            let plain = authority(level);
            let cached = CachingKeyService::new(authority(level), 16);
            let ys = vec![vec![3, -7, 11], vec![0, 0, 1], vec![-100, 50, 25]];

            let direct = plain.derive_ip_keys(3, &ys).unwrap();
            let via_miss = cached.derive_ip_keys(3, &ys).unwrap();
            let via_hit = cached.derive_ip_keys(3, &ys).unwrap();
            assert_eq!(direct, via_miss, "{level:?}: miss path diverged");
            assert_eq!(direct, via_hit, "{level:?}: hit path diverged");

            let stats = cached.stats();
            assert_eq!(stats.misses, 3, "{level:?}");
            assert_eq!(stats.hits, 3, "{level:?}");
            assert_eq!(stats.entries, 3, "{level:?}");
        }
    }

    /// A tiny capacity evicts in LRU order: the least recently touched
    /// key is re-derived, the recently touched one still hits.
    #[test]
    fn evicts_least_recently_used_under_tiny_capacity() {
        let cached = CachingKeyService::new(authority(SecurityLevel::Bits64), 2);
        let (a, b, c) = (vec![1i64, 2], vec![3i64, 4], vec![5i64, 6]);

        cached.derive_ip_key(2, &a).unwrap(); // miss: {a}
        cached.derive_ip_key(2, &b).unwrap(); // miss: {a, b}
        cached.derive_ip_key(2, &a).unwrap(); // hit: a is now newest
        cached.derive_ip_key(2, &c).unwrap(); // miss: evicts b -> {a, c}

        let before = cached.stats();
        assert_eq!(before.evictions, 1);
        assert_eq!(before.entries, 2);

        cached.derive_ip_key(2, &a).unwrap(); // still resident
        assert_eq!(cached.stats().hits, before.hits + 1);
        cached.derive_ip_key(2, &b).unwrap(); // evicted: re-derived
        assert_eq!(cached.stats().misses, before.misses + 1);
        assert_eq!(cached.stats().evictions, 2); // a or c made room for b
    }

    /// The counters account exactly: batched requests count per row,
    /// and a re-request after eviction is a miss again.
    #[test]
    fn counters_are_exact() {
        let cached = CachingKeyService::new(authority(SecurityLevel::Bits64), 8);
        // A batch with a duplicated row: both copies resolve against
        // the pre-call cache state (both miss), and both must still get
        // the same derived key.
        let ys = vec![vec![1i64, 1], vec![2, 2], vec![1, 1]];
        let keys = cached.derive_ip_keys(2, &ys).unwrap();
        assert_eq!(keys[0], keys[2], "duplicate rows get the same key");
        let s = cached.stats();
        assert_eq!(s.hits + s.misses, 3, "every row counted exactly once");
        assert_eq!(s.entries, 2, "two distinct rows resident");

        let again = cached.derive_ip_keys(2, &ys).unwrap();
        assert_eq!(again, keys);
        let s2 = cached.stats();
        assert_eq!(s2.hits, s.hits + 3, "all three rows hit the second time");
        assert_eq!(s2.misses, s.misses);
    }

    /// Capacity zero stores nothing and forwards everything.
    #[test]
    fn zero_capacity_is_a_counting_pass_through() {
        let cached = CachingKeyService::new(authority(SecurityLevel::Bits64), 0);
        let y = vec![7i64, -7];
        let k1 = cached.derive_ip_key(2, &y).unwrap();
        let k2 = cached.derive_ip_key(2, &y).unwrap();
        assert_eq!(k1, k2);
        let s = cached.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 2);
        assert_eq!(s.entries, 0);
        assert_eq!(s.evictions, 0);
    }

    /// Public keys are cached; FEBO derivations pass through and still
    /// work.
    #[test]
    fn public_keys_cached_and_febo_passes_through() {
        let inner = authority(SecurityLevel::Bits64);
        let reference = authority(SecurityLevel::Bits64);
        let cached = CachingKeyService::new(inner, 4);

        let mpk = cached.feip_public_key(5).unwrap();
        assert_eq!(mpk, cached.feip_public_key(5).unwrap());
        assert_eq!(mpk, reference.feip_public_key(5));
        assert_eq!(
            cached.febo_public_key().unwrap(),
            reference.febo_public_key()
        );

        let mut rng = rand::rng();
        let ct = crate::febo::encrypt(&cached.febo_public_key().unwrap(), 10, &mut rng);
        let key = cached
            .derive_bo_key(ct.commitment(), BasicOp::Add, 5)
            .unwrap();
        // The FEBO pass-through derives against the inner authority's
        // master key — same as asking it directly.
        let direct = cached
            .inner()
            .derive_bo_key(ct.commitment(), BasicOp::Add, 5)
            .unwrap();
        assert_eq!(key, direct);
    }

    /// The hit rate helper.
    #[test]
    fn hit_rate_reflects_counters() {
        let cached = CachingKeyService::new(authority(SecurityLevel::Bits64), 4);
        assert_eq!(cached.stats().hit_rate(), 0.0);
        cached.derive_ip_key(2, &[1, 2]).unwrap();
        cached.derive_ip_key(2, &[1, 2]).unwrap();
        cached.derive_ip_key(2, &[1, 2]).unwrap();
        let rate = cached.stats().hit_rate();
        assert!((rate - 2.0 / 3.0).abs() < 1e-12, "rate {rate}");
    }
}
