//! The key-service abstraction: what a CryptoNN *server* needs from the
//! key authority, as an interface.
//!
//! The secure computations of Algorithms 1–3 consume exactly four
//! capabilities of the authority: the two public keys and the two
//! key-derivation oracles. [`KeyService`] captures them so the same
//! server code runs against
//!
//! - a co-located [`KeyAuthority`] (the in-process, single-machine
//!   special case used by tests and benches), or
//! - a message channel to a remote authority (the `cryptonn-protocol`
//!   session layer), where every request/response pair is a
//!   serializable wire message that can be recorded and replayed.
//!
//! Requests are *batched*: one [`derive_ip_keys`](KeyService::derive_ip_keys)
//! call covers a whole layer's weight rows, so a wire-backed
//! implementation sends one message per Algorithm-2 step rather than
//! one per neuron.

use cryptonn_group::Element;
use serde::{Deserialize, Serialize};

use crate::authority::KeyAuthority;
use crate::error::FeError;
use crate::febo::{BasicOp, FeboFunctionKey, FeboPublicKey};
use crate::feip::{FeipFunctionKey, FeipPublicKey};

/// One FEBO key request: the ciphertext commitment the key binds to,
/// the operation, and the server operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeboKeyRequest {
    /// The commitment `cmt = g^r` of the target ciphertext.
    pub cmt: Element,
    /// The requested operation `Δ`.
    pub op: BasicOp,
    /// The server operand `y`.
    pub y: i64,
}

/// The authority capabilities a CryptoNN server consumes, served either
/// in-process by [`KeyAuthority`] or across a recorded message channel
/// by the session layer.
pub trait KeyService {
    /// The FEIP public key for dimension `dim`.
    ///
    /// # Errors
    ///
    /// Wire-backed implementations fail with [`FeError::Protocol`] when
    /// no instance of that dimension was published to the session.
    fn feip_public_key(&self, dim: usize) -> Result<FeipPublicKey, FeError>;

    /// The FEBO public key.
    ///
    /// # Errors
    ///
    /// As [`feip_public_key`](Self::feip_public_key).
    fn febo_public_key(&self) -> Result<FeboPublicKey, FeError>;

    /// Derives one FEIP key per weight vector in `ys`, all against the
    /// dimension-`dim` instance.
    ///
    /// # Errors
    ///
    /// Authority refusals ([`FeError::FunctionNotPermitted`],
    /// [`FeError::DimensionMismatch`]) and transport failures.
    fn derive_ip_keys(&self, dim: usize, ys: &[Vec<i64>]) -> Result<Vec<FeipFunctionKey>, FeError>;

    /// Derives one FEBO key per `(cmt, Δ, y)` request.
    ///
    /// # Errors
    ///
    /// As [`derive_ip_keys`](Self::derive_ip_keys), plus
    /// [`FeError::InvalidOperand`] for division by zero.
    fn derive_bo_keys(&self, reqs: &[FeboKeyRequest]) -> Result<Vec<FeboFunctionKey>, FeError>;

    /// Convenience single-key form of [`derive_ip_keys`](Self::derive_ip_keys).
    ///
    /// # Errors
    ///
    /// As the batched form.
    fn derive_ip_key(&self, dim: usize, y: &[i64]) -> Result<FeipFunctionKey, FeError> {
        let mut keys = self.derive_ip_keys(dim, std::slice::from_ref(&y.to_vec()))?;
        keys.pop().ok_or_else(|| {
            FeError::Protocol("empty key batch returned for a one-key request".into())
        })
    }

    /// Convenience single-key form of [`derive_bo_keys`](Self::derive_bo_keys).
    ///
    /// # Errors
    ///
    /// As the batched form.
    fn derive_bo_key(
        &self,
        cmt: &Element,
        op: BasicOp,
        y: i64,
    ) -> Result<FeboFunctionKey, FeError> {
        let mut keys = self.derive_bo_keys(&[FeboKeyRequest { cmt: *cmt, op, y }])?;
        keys.pop().ok_or_else(|| {
            FeError::Protocol("empty key batch returned for a one-key request".into())
        })
    }
}

impl KeyService for KeyAuthority {
    fn feip_public_key(&self, dim: usize) -> Result<FeipPublicKey, FeError> {
        Ok(KeyAuthority::feip_public_key(self, dim))
    }

    fn febo_public_key(&self) -> Result<FeboPublicKey, FeError> {
        Ok(KeyAuthority::febo_public_key(self))
    }

    fn derive_ip_keys(&self, dim: usize, ys: &[Vec<i64>]) -> Result<Vec<FeipFunctionKey>, FeError> {
        ys.iter()
            .map(|y| KeyAuthority::derive_ip_key(self, dim, y))
            .collect()
    }

    fn derive_bo_keys(&self, reqs: &[FeboKeyRequest]) -> Result<Vec<FeboFunctionKey>, FeError> {
        reqs.iter()
            .map(|r| KeyAuthority::derive_bo_key(self, &r.cmt, r.op, r.y))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{febo, PermittedFunctions};
    use cryptonn_group::{DlogTable, SchnorrGroup, SecurityLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn authority() -> KeyAuthority {
        let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
        KeyAuthority::with_seed(group, PermittedFunctions::all(), 77)
    }

    /// The trait impl must be observationally identical to the inherent
    /// authority methods (same keys, same logging).
    #[test]
    fn trait_impl_matches_inherent_methods() {
        let auth = authority();
        let direct = KeyAuthority::derive_ip_key(&auth, 3, &[1, -2, 3]).unwrap();
        let via_trait = KeyService::derive_ip_key(&auth, 3, &[1, -2, 3]).unwrap();
        assert_eq!(direct, via_trait);
        assert_eq!(auth.comm_log().ip_requests, 2);

        let batched = auth
            .derive_ip_keys(3, &[vec![1, -2, 3], vec![0, 0, 1]])
            .unwrap();
        assert_eq!(batched.len(), 2);
        assert_eq!(batched[0], direct);
        assert_eq!(auth.comm_log().ip_requests, 4);
    }

    #[test]
    fn batched_bo_keys_decrypt() {
        let auth = authority();
        let mut rng = StdRng::seed_from_u64(3);
        let mpk = KeyService::febo_public_key(&auth).unwrap();
        let table = DlogTable::new(auth.group(), 1_000);
        let cts: Vec<_> = [10i64, 20]
            .iter()
            .map(|&x| febo::encrypt(&mpk, x, &mut rng))
            .collect();
        let reqs: Vec<FeboKeyRequest> = cts
            .iter()
            .map(|ct| FeboKeyRequest {
                cmt: *ct.commitment(),
                op: BasicOp::Sub,
                y: 4,
            })
            .collect();
        let keys = auth.derive_bo_keys(&reqs).unwrap();
        for (ct, key) in cts.iter().zip(&keys) {
            let z = febo::decrypt(&mpk, key, ct, BasicOp::Sub, 4, &table).unwrap();
            assert!(z == 6 || z == 16);
        }
    }

    #[test]
    fn dyn_compatible() {
        let auth = authority();
        let service: &dyn KeyService = &auth;
        assert_eq!(service.feip_public_key(2).unwrap().dimension(), 2);
    }
}
