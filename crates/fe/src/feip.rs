//! FEIP: functional encryption for inner products.
//!
//! The construction of Abdalla, Bourse, De Caro and Pointcheval
//! ("Simple functional encryption schemes for inner products", PKC 2015),
//! exactly as restated in §II-B of the CryptoNN paper:
//!
//! - `Setup(1^λ, 1^η)`: sample `s = (s₁…s_η) ∈ Z_q^η`; publish
//!   `mpk = (g, hᵢ = g^{sᵢ})`.
//! - `KeyDerive(msk, y)`: `sk_f = ⟨y, s⟩ mod q`.
//! - `Encrypt(mpk, x)`: sample `r`; `ct₀ = g^r`, `ctᵢ = hᵢ^r · g^{xᵢ}`.
//! - `Decrypt`: `∏ ctᵢ^{yᵢ} / ct₀^{sk_f} = g^{⟨x,y⟩}`, recovered by
//!   baby-step giant-step.

use std::sync::{Arc, OnceLock};

use cryptonn_group::{
    DlogTable, Element, ElementRatio, FixedBaseTable, OddPowerTables, Scalar, SchnorrGroup,
    WnafScalars, LANES,
};
use cryptonn_parallel::{parallel_map, Parallelism};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::FeError;

/// Public parameters of an FEIP instance: the group and `hᵢ = g^{sᵢ}`.
///
/// The key carries one fixed-base comb table per `hᵢ` — derived state
/// that travels with the key (including across serialization, where it
/// is rebuilt rather than shipped; DESIGN.md §8). Tables are built
/// lazily on the first [`encrypt`], so decrypt-/combine-only consumers
/// of a deserialized key (which never exponentiate the `hᵢ`) pay
/// neither the ~30 KiB per coordinate nor the build cost. Clones share
/// the tables via `Arc`.
#[derive(Clone)]
pub struct FeipPublicKey {
    group: SchnorrGroup,
    h: Vec<Element>,
    /// `h_tables[i]` is the comb table for `hᵢ`; lazily built, never
    /// serialized.
    h_tables: Arc<OnceLock<Vec<FixedBaseTable>>>,
}

impl FeipPublicKey {
    /// Assembles a public key from its parts.
    fn assemble(group: SchnorrGroup, h: Vec<Element>) -> Self {
        Self {
            group,
            h,
            h_tables: Arc::new(OnceLock::new()),
        }
    }

    /// The vector dimension `η` this instance supports.
    pub fn dimension(&self) -> usize {
        self.h.len()
    }

    /// The public commitments `hᵢ = g^{sᵢ}` — the check values a
    /// threshold combiner validates recombined keys against
    /// (`g^{sk_y} = Π hᵢ^{yᵢ}`).
    pub fn coordinates(&self) -> &[Element] {
        &self.h
    }

    /// The underlying group.
    pub fn group(&self) -> &SchnorrGroup {
        &self.group
    }

    /// The comb table for `hᵢ`, building the full table set on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dimension()`.
    pub fn h_table(&self, i: usize) -> &FixedBaseTable {
        let tables = self.h_tables.get_or_init(|| {
            self.h
                .iter()
                .map(|hi| self.group.fixed_base_table(hi))
                .collect()
        });
        &tables[i]
    }
}

impl core::fmt::Debug for FeipPublicKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FeipPublicKey")
            .field("group", &self.group)
            .field("h", &self.h)
            .finish()
    }
}

impl PartialEq for FeipPublicKey {
    fn eq(&self, other: &Self) -> bool {
        // Tables are a pure function of (group, h).
        self.group == other.group && self.h == other.h
    }
}

impl Eq for FeipPublicKey {}

impl Serialize for FeipPublicKey {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(serde::Value::Map(vec![
            ("group".to_string(), serde::ser::to_value(&self.group)),
            ("h".to_string(), serde::ser::to_value(&self.h)),
        ]))
    }
}

impl<'de> Deserialize<'de> for FeipPublicKey {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error;
        let value = deserializer.deserialize_value()?;
        let entries = value
            .as_map()
            .ok_or_else(|| D::Error::custom("expected map for FeipPublicKey"))?;
        let group: SchnorrGroup = serde::de::field(entries, "group").map_err(D::Error::custom)?;
        let h: Vec<Element> = serde::de::field(entries, "h").map_err(D::Error::custom)?;
        Ok(Self::assemble(group, h))
    }
}

/// The master secret key `s ∈ Z_q^η`. Held only by the authority.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeipMasterKey {
    s: Vec<Scalar>,
}

impl FeipMasterKey {
    /// The vector dimension `η`.
    pub fn dimension(&self) -> usize {
        self.s.len()
    }

    /// The secret coordinates `s₁…s_η` — crate-internal, so the
    /// threshold dealer can Shamir-share each coordinate without the
    /// secret ever crossing the crate boundary.
    pub(crate) fn coordinates(&self) -> &[Scalar] {
        &self.s
    }
}

/// A function-derived key `sk_f = ⟨y, s⟩` for a specific weight vector `y`.
///
/// The decryptor must supply the same `y` at decryption time; the scheme
/// does not bind `y` into the key (as in the paper, the server knows its
/// own weights).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeipFunctionKey {
    sk: Scalar,
}

impl FeipFunctionKey {
    /// Raw scalar, exposed for size accounting in the authority's
    /// communication log.
    pub fn scalar(&self) -> &Scalar {
        &self.sk
    }

    /// Assembles a key from a recombined scalar (threshold Lagrange
    /// aggregation lands on exactly the scalar `key_derive` computes).
    pub(crate) fn from_scalar(sk: Scalar) -> Self {
        Self { sk }
    }
}

/// Ciphertext `(ct₀, ct₁…ct_η)` of a vector `x`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeipCiphertext {
    ct0: Element,
    cts: Vec<Element>,
}

impl FeipCiphertext {
    /// The vector dimension `η` of the encrypted plaintext.
    pub fn dimension(&self) -> usize {
        self.cts.len()
    }
}

/// `Setup(1^λ, 1^η)`: creates an FEIP instance of dimension `dim` over
/// `group`.
///
/// # Panics
///
/// Panics if `dim` is zero.
pub fn setup<R: Rng + ?Sized>(
    group: SchnorrGroup,
    dim: usize,
    rng: &mut R,
) -> (FeipPublicKey, FeipMasterKey) {
    assert!(dim > 0, "FEIP dimension must be positive");
    let s: Vec<Scalar> = (0..dim).map(|_| group.random_scalar(rng)).collect();
    let h: Vec<Element> = s.iter().map(|si| group.exp(si)).collect();
    (FeipPublicKey::assemble(group, h), FeipMasterKey { s })
}

/// `KeyDerive(msk, y)`: returns `sk_f = ⟨y, s⟩ mod q`.
///
/// # Errors
///
/// Returns [`FeError::DimensionMismatch`] if `y` has the wrong length.
pub fn key_derive(
    group: &SchnorrGroup,
    msk: &FeipMasterKey,
    y: &[i64],
) -> Result<FeipFunctionKey, FeError> {
    if y.len() != msk.s.len() {
        return Err(FeError::DimensionMismatch {
            expected: msk.s.len(),
            got: y.len(),
        });
    }
    let y_scalars: Vec<Scalar> = y.iter().map(|&v| group.scalar_from_i64(v)).collect();
    Ok(FeipFunctionKey {
        sk: group.scalar_dot(&y_scalars, &msk.s),
    })
}

/// `Encrypt(mpk, x)`: encrypts a signed integer vector.
///
/// Every exponentiation runs against a precomputed fixed-base table:
/// `ct₀ = g^r` through the group's generator table and each
/// `ctᵢ = hᵢ^r · g^{xᵢ}` as one fused two-factor multi-exponentiation
/// through the key's `hᵢ` table.
///
/// # Errors
///
/// Returns [`FeError::DimensionMismatch`] if `x` has the wrong length.
pub fn encrypt<R: Rng + ?Sized>(
    mpk: &FeipPublicKey,
    x: &[i64],
    rng: &mut R,
) -> Result<FeipCiphertext, FeError> {
    if x.len() != mpk.h.len() {
        return Err(FeError::DimensionMismatch {
            expected: mpk.h.len(),
            got: x.len(),
        });
    }
    let group = &mpk.group;
    let g_table = group.generator_table();
    let r = group.random_scalar(rng);
    let ct0 = group.exp(&r);
    let cts = x
        .iter()
        .enumerate()
        .map(|(i, &xi)| {
            let xi = group.scalar_from_i64(xi);
            group.multi_pow(&[(mpk.h_table(i), &r), (g_table, &xi)])
        })
        .collect();
    Ok(FeipCiphertext { ct0, cts })
}

/// Batched `Encrypt`: encrypts each vector in `xs`, fanning the samples
/// out over `parallelism`.
///
/// Randomness is forked deterministically: one full-width (256-bit)
/// seed per sample is drawn from `rng` up front (in order, via
/// `fill_bytes`), and sample `i` is encrypted with
/// `StdRng::from_seed(seedᵢ)`. The output is therefore **bit-identical
/// across thread counts** for a given `rng` state, and reproducible
/// from a seeded `rng` — the property the batch/sequential equivalence
/// tests pin down. Full-width forking keeps the per-ciphertext
/// randomness at the caller RNG's entropy (a 64-bit seed would cap
/// every `r` at 2⁶⁴ regardless of `SecurityLevel`, and risk birthday
/// collisions — hence reused nonces — in large batches).
///
/// # Errors
///
/// Returns [`FeError::DimensionMismatch`] if any vector has the wrong
/// length.
pub fn encrypt_batch<R, V>(
    mpk: &FeipPublicKey,
    xs: &[V],
    rng: &mut R,
    parallelism: Parallelism,
) -> Result<Vec<FeipCiphertext>, FeError>
where
    R: Rng + ?Sized,
    V: AsRef<[i64]> + Sync,
{
    let seeds: Vec<[u8; 32]> = (0..xs.len())
        .map(|_| {
            let mut seed = [0u8; 32];
            rng.fill_bytes(&mut seed);
            seed
        })
        .collect();
    parallel_map(xs.len(), parallelism.thread_count(), |i| {
        let mut sample_rng = StdRng::from_seed(seeds[i]);
        encrypt(mpk, xs[i].as_ref(), &mut sample_rng)
    })
    .into_iter()
    .collect()
}

/// Linearly combines ciphertexts: given encryptions of vectors
/// `x_1 … x_k` and integer weights `w_1 … w_k`, produces a valid
/// encryption of `Σ w_j · x_j` (under randomness `Σ w_j · r_j`).
///
/// This homomorphism is what lets the CryptoNN server evaluate the
/// first-layer weight gradient `δ · Xᵀ` without learning `X`: each
/// gradient row is a weighted sum of the encrypted sample columns (see
/// DESIGN.md §4 for the security discussion).
///
/// # Errors
///
/// Returns [`FeError::DimensionMismatch`] if the ciphertext dimensions
/// disagree or `weights.len() != cts.len()`.
///
/// # Panics
///
/// Panics if `cts` is empty.
pub fn combine(
    mpk: &FeipPublicKey,
    cts: &[&FeipCiphertext],
    weights: &[i64],
) -> Result<FeipCiphertext, FeError> {
    assert!(!cts.is_empty(), "combine requires at least one ciphertext");
    if weights.len() != cts.len() {
        return Err(FeError::DimensionMismatch {
            expected: cts.len(),
            got: weights.len(),
        });
    }
    let dim = cts[0].dimension();
    for ct in cts {
        if ct.dimension() != dim {
            return Err(FeError::DimensionMismatch {
                expected: dim,
                got: ct.dimension(),
            });
        }
    }
    let group = &mpk.group;
    let mut ct0 = group.identity();
    let mut cts_out = vec![group.identity(); dim];
    for (ct, &w) in cts.iter().zip(weights) {
        if w == 0 {
            continue;
        }
        let e = group.scalar_from_i64(w);
        ct0 = group.mul(&ct0, &group.pow(&ct.ct0, &e));
        for (acc, cti) in cts_out.iter_mut().zip(&ct.cts) {
            *acc = group.mul(acc, &group.pow(cti, &e));
        }
    }
    Ok(FeipCiphertext { ct0, cts: cts_out })
}

/// Computes the raw decryption `g^{⟨x,y⟩} = ∏ ctᵢ^{yᵢ} / ct₀^{sk_f}`
/// without solving the discrete log.
///
/// The numerator runs through the Straus/wNAF multi-scalar subsystem
/// (`cryptonn_group::multi_scalar`): one shared squaring chain of
/// height `log₂(max|yᵢ|)` across all bases instead of one full-width
/// exponentiation per nonzero `yᵢ`. Batch callers should prefer
/// [`decrypt_ratio`] + [`SchnorrGroup::resolve_ratios`] so the final
/// division amortizes too.
///
/// # Errors
///
/// Returns [`FeError::DimensionMismatch`] if `y` does not match the
/// ciphertext dimension.
pub fn decrypt_raw(
    mpk: &FeipPublicKey,
    ct: &FeipCiphertext,
    sk: &FeipFunctionKey,
    y: &[i64],
) -> Result<Element, FeError> {
    Ok(decrypt_ratio(mpk, ct, sk, y)?.resolve(&mpk.group))
}

/// As [`decrypt_raw`], but returns the deferred ratio
/// `(∏ ctᵢ^{yᵢ}) / (den · ct₀^{sk_f})` so many cells can be resolved
/// with one batched inversion.
///
/// Bases with `yᵢ = 0` are filtered out before any table is built, and
/// an all-zero `y` skips the numerator entirely (the ratio is
/// `1 / ct₀^{sk_f}`).
///
/// # Errors
///
/// Returns [`FeError::DimensionMismatch`] if `y` does not match the
/// ciphertext dimension.
pub fn decrypt_ratio(
    mpk: &FeipPublicKey,
    ct: &FeipCiphertext,
    sk: &FeipFunctionKey,
    y: &[i64],
) -> Result<ElementRatio, FeError> {
    if y.len() != ct.cts.len() {
        return Err(FeError::DimensionMismatch {
            expected: ct.cts.len(),
            got: y.len(),
        });
    }
    let group = &mpk.group;
    let denom = group.pow(&ct.ct0, &sk.sk);
    // Single-cell call: drop the zero-exponent bases so their odd-power
    // tables are never built (batch callers keep full-width tables and
    // amortize them across rows instead).
    let (bases, nonzero): (Vec<Element>, Vec<i64>) = ct
        .cts
        .iter()
        .zip(y)
        .filter(|(_, &yi)| yi != 0)
        .map(|(cti, &yi)| (*cti, yi))
        .unzip();
    if bases.is_empty() {
        return Ok(ElementRatio::from_element(group, group.identity()).div_by(group, &denom));
    }
    let scalars = WnafScalars::recode(&nonzero);
    let tables = group.odd_power_tables(&bases);
    Ok(group
        .multi_scalar_ratio(&tables, &scalars)
        .div_by(group, &denom))
}

/// The pre-multi-scalar reference decryption: one full-width
/// exponentiation per nonzero `yᵢ`. Kept public as the baseline arm of
/// the `server_decrypt` telemetry and the equivalence property tests;
/// production callers use [`decrypt_raw`].
///
/// # Errors
///
/// Returns [`FeError::DimensionMismatch`] if `y` does not match the
/// ciphertext dimension.
pub fn decrypt_raw_naive(
    mpk: &FeipPublicKey,
    ct: &FeipCiphertext,
    sk: &FeipFunctionKey,
    y: &[i64],
) -> Result<Element, FeError> {
    if y.len() != ct.cts.len() {
        return Err(FeError::DimensionMismatch {
            expected: ct.cts.len(),
            got: y.len(),
        });
    }
    let group = &mpk.group;
    // Start the accumulator at the first nonzero term instead of the
    // identity — the identity start paid one wasted group.mul per cell.
    let mut terms = ct.cts.iter().zip(y).filter(|(_, &yi)| yi != 0);
    let num = match terms.next() {
        None => group.identity(),
        Some((ct0, &y0)) => {
            let mut acc = group.pow(ct0, &group.scalar_from_i64(y0));
            for (cti, &yi) in terms {
                acc = group.mul(&acc, &group.pow(cti, &group.scalar_from_i64(yi)));
            }
            acc
        }
    };
    let denom = group.pow(&ct.ct0, &sk.sk);
    Ok(group.div(&num, &denom))
}

/// Reference `Decrypt` on top of [`decrypt_raw_naive`] — the "naive" arm
/// of the decrypt ablations.
///
/// # Errors
///
/// As [`decrypt`].
pub fn decrypt_naive(
    mpk: &FeipPublicKey,
    ct: &FeipCiphertext,
    sk: &FeipFunctionKey,
    y: &[i64],
    table: &DlogTable,
) -> Result<i64, FeError> {
    let raw = decrypt_raw_naive(mpk, ct, sk, y)?;
    Ok(table.solve(&mpk.group, &raw)?)
}

/// How many reuses of one fixed base justify building a comb table for
/// it: the build costs ~960 Montgomery products, a direct 256-bit `pow`
/// ~320, a table-backed one ≤ 64.
const FIXED_BASE_THRESHOLD: usize = 4;

/// Batched cross-product decryption: recovers
/// `⟨xᶜ, yʳ⟩` for **every** (ciphertext `c`, key row `r`) pair — the
/// cell loop of Algorithm 1's `secure-computation`, with every
/// amortization the batch shape allows:
///
/// - each `y` row is wNAF-recoded **once** and shared across all
///   ciphertexts;
/// - each ciphertext's odd-power tables are built **once** and shared
///   across all rows;
/// - each `ct₀` gets a fixed-base comb table when enough rows reuse it;
/// - all `nrows × ncts` divisions resolve through **one** batched
///   inversion.
///
/// Returns values in ciphertext-major order:
/// `out[c * rows.len() + r]`.
///
/// # Errors
///
/// - [`FeError::DimensionMismatch`] if `keys` and `rows` disagree in
///   length, or any row/ciphertext does not match the first
///   ciphertext's dimension,
/// - [`FeError::Group`] wrapping `DlogOutOfRange` if any cell exceeds
///   the table bound.
pub fn decrypt_cells(
    mpk: &FeipPublicKey,
    cts: &[FeipCiphertext],
    keys: &[FeipFunctionKey],
    rows: &[&[i64]],
    table: &DlogTable,
    parallelism: Parallelism,
) -> Result<Vec<i64>, FeError> {
    let refs: Vec<&FeipCiphertext> = cts.iter().collect();
    decrypt_cells_refs(mpk, &refs, keys, rows, table, parallelism)
}

/// As [`decrypt_cells`], over borrowed ciphertexts — the form the
/// inference serving layer uses to sweep the ciphertext columns of
/// **several coalesced requests** in one call (shared row recodings,
/// shared `ct₀` comb decision, and one batched inversion across every
/// request in flight) without cloning a single ciphertext.
///
/// # Errors
///
/// As [`decrypt_cells`].
pub fn decrypt_cells_refs(
    mpk: &FeipPublicKey,
    cts: &[&FeipCiphertext],
    keys: &[FeipFunctionKey],
    rows: &[&[i64]],
    table: &DlogTable,
    parallelism: Parallelism,
) -> Result<Vec<i64>, FeError> {
    if keys.len() != rows.len() {
        return Err(FeError::DimensionMismatch {
            expected: rows.len(),
            got: keys.len(),
        });
    }
    if cts.is_empty() || rows.is_empty() {
        return Ok(Vec::new());
    }
    let dim = cts[0].dimension();
    for ct in cts {
        if ct.dimension() != dim {
            return Err(FeError::DimensionMismatch {
                expected: dim,
                got: ct.dimension(),
            });
        }
    }
    for row in rows {
        if row.len() != dim {
            return Err(FeError::DimensionMismatch {
                expected: dim,
                got: row.len(),
            });
        }
    }
    let group = &mpk.group;
    let threads = parallelism.thread_count();
    // Recode every row once, up front (cheap, integer-only).
    let recoded: Vec<WnafScalars> = rows.iter().map(|row| WnafScalars::recode(row)).collect();

    // Phase 1 — per-ciphertext precomputation (odd-power tables, ct₀
    // comb table), parallel across ciphertexts.
    let precomp: Vec<(OddPowerTables, Option<FixedBaseTable>)> =
        parallel_map(cts.len(), threads, |c| {
            let ct = &cts[c];
            let tables = group.odd_power_tables(&ct.cts);
            let ct0_table =
                (keys.len() >= FIXED_BASE_THRESHOLD).then(|| group.fixed_base_table(&ct.ct0));
            (tables, ct0_table)
        });

    // Phase 2 — deferred ratios, one work unit per (key row, stride of
    // four ciphertexts): every row's recoding is shared by all its
    // lanes, and each full stride advances through the shared Straus
    // digit schedule four cells per Montgomery kernel call
    // (`multi_scalar_ratio_lanes` for the numerators,
    // `exp_tables_lanes` for the `ct0^sk` denominators). Work units
    // still cover the full `ncts × nrows` grid, so a single-column
    // batch with many key rows occupies every thread.
    let nrows = rows.len();
    let nstrides = cts.len().div_ceil(LANES);
    let stride_ratios: Vec<Vec<ElementRatio>> = parallel_map(nrows * nstrides, threads, |idx| {
        let (r, s) = (idx / nstrides, idx % nstrides);
        let c0 = s * LANES;
        let width = LANES.min(cts.len() - c0);
        let (scalars, key) = (&recoded[r], &keys[r]);
        if width == LANES {
            let tables: [&OddPowerTables; LANES] = core::array::from_fn(|i| &precomp[c0 + i].0);
            let denoms: [Element; LANES] =
                match core::array::from_fn(|i| precomp[c0 + i].1.as_ref()) {
                    // The comb decision is uniform across ciphertexts, so a
                    // stride is all-Some or all-None.
                    [Some(t0), Some(t1), Some(t2), Some(t3)] => {
                        group.exp_tables_lanes([t0, t1, t2, t3], &key.sk)
                    }
                    _ => core::array::from_fn(|i| group.pow(&cts[c0 + i].ct0, &key.sk)),
                };
            let nums: [ElementRatio; LANES] = if scalars.is_all_zero() {
                core::array::from_fn(|_| ElementRatio::from_element(group, group.identity()))
            } else {
                group.multi_scalar_ratio_lanes(tables, scalars)
            };
            (0..LANES)
                .map(|i| nums[i].div_by(group, &denoms[i]))
                .collect()
        } else {
            // Remainder stride (< 4 ciphertexts): the serial path.
            (0..width)
                .map(|i| {
                    let c = c0 + i;
                    let (tables, ct0_table) = &precomp[c];
                    let denom = match ct0_table {
                        Some(t) => group.exp_table(t, &key.sk),
                        None => group.pow(&cts[c].ct0, &key.sk),
                    };
                    if scalars.is_all_zero() {
                        ElementRatio::from_element(group, group.identity()).div_by(group, &denom)
                    } else {
                        group
                            .multi_scalar_ratio(tables, scalars)
                            .div_by(group, &denom)
                    }
                })
                .collect()
        }
    });
    // Reassemble ciphertext-major: cell (c, r) at index c*nrows + r.
    let mut ratios = vec![ElementRatio::from_element(group, group.identity()); cts.len() * nrows];
    for (idx, unit) in stride_ratios.iter().enumerate() {
        let (r, s) = (idx / nstrides, idx % nstrides);
        for (i, ratio) in unit.iter().enumerate() {
            ratios[(s * LANES + i) * nrows + r] = *ratio;
        }
    }

    // Phase 3 — one batched inversion for the whole matrix of cells.
    let raws = group.resolve_ratios(&ratios);

    // Phase 4 — discrete logs: lane-stepped BSGS over chunks of cells,
    // parallel across chunks.
    const SOLVE_CHUNK: usize = 8 * LANES;
    let nchunks = raws.len().div_ceil(SOLVE_CHUNK);
    parallel_map(nchunks, threads, |k| {
        let lo = k * SOLVE_CHUNK;
        let hi = raws.len().min(lo + SOLVE_CHUNK);
        table.solve_batch(group, &raws[lo..hi])
    })
    .into_iter()
    .flatten()
    .map(|r| r.map_err(FeError::from))
    .collect()
}

/// Reads every coordinate of a (typically [`combine`]d) ciphertext with
/// the caller's cached unit-vector keys: returns `x_j` for each `j`.
///
/// The unit numerators are just `ctⱼ` (no exponentiation at all), the
/// `ct₀^{sk_j}` denominators share one comb table on `ct₀`, and all
/// `dim` divisions resolve through one batched inversion — this is the
/// fast path under the secure first-layer gradient's coordinate reads.
///
/// # Errors
///
/// - [`FeError::DimensionMismatch`] if `unit_keys` does not match the
///   ciphertext dimension,
/// - [`FeError::Group`] wrapping `DlogOutOfRange` if any coordinate
///   exceeds the table bound.
pub fn decrypt_coordinates(
    mpk: &FeipPublicKey,
    ct: &FeipCiphertext,
    unit_keys: &[FeipFunctionKey],
    table: &DlogTable,
) -> Result<Vec<i64>, FeError> {
    if unit_keys.len() != ct.cts.len() {
        return Err(FeError::DimensionMismatch {
            expected: ct.cts.len(),
            got: unit_keys.len(),
        });
    }
    let group = &mpk.group;
    let ct0_table =
        (unit_keys.len() >= FIXED_BASE_THRESHOLD).then(|| group.fixed_base_table(&ct.ct0));
    // `ct0^{sk_j}` denominators: with the shared comb table, four
    // distinct exponents walk the table in lockstep per kernel call.
    let mut denoms: Vec<Element> = Vec::with_capacity(unit_keys.len());
    match &ct0_table {
        Some(t) => {
            let mut chunks = unit_keys.chunks_exact(LANES);
            for keys in chunks.by_ref() {
                let es: [&Scalar; LANES] = core::array::from_fn(|i| &keys[i].sk);
                denoms.extend(group.exp_table_many(t, es));
            }
            denoms.extend(chunks.remainder().iter().map(|k| group.exp_table(t, &k.sk)));
        }
        None => denoms.extend(unit_keys.iter().map(|k| group.pow(&ct.ct0, &k.sk))),
    }
    let ratios: Vec<ElementRatio> = ct
        .cts
        .iter()
        .zip(&denoms)
        .map(|(cti, denom)| ElementRatio::from_element(group, *cti).div_by(group, denom))
        .collect();
    let raws = group.resolve_ratios(&ratios);
    table
        .solve_batch(group, &raws)
        .into_iter()
        .map(|r| r.map_err(FeError::from))
        .collect()
}

/// `Decrypt(mpk, ct, sk_f, y)`: recovers `⟨x, y⟩` as a signed integer
/// using the supplied BSGS table.
///
/// # Errors
///
/// - [`FeError::DimensionMismatch`] if `y` has the wrong length,
/// - [`FeError::Group`] wrapping `DlogOutOfRange` if `|⟨x,y⟩|` exceeds
///   the table bound.
pub fn decrypt(
    mpk: &FeipPublicKey,
    ct: &FeipCiphertext,
    sk: &FeipFunctionKey,
    y: &[i64],
    table: &DlogTable,
) -> Result<i64, FeError> {
    let raw = decrypt_raw(mpk, ct, sk, y)?;
    Ok(table.solve(&mpk.group, &raw)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptonn_group::{GroupError, SecurityLevel};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn setup_small(dim: usize) -> (FeipPublicKey, FeipMasterKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(42);
        let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
        let (mpk, msk) = setup(group, dim, &mut rng);
        (mpk, msk, rng)
    }

    #[test]
    fn roundtrip_inner_product() {
        let (mpk, msk, mut rng) = setup_small(5);
        let table = DlogTable::new(mpk.group(), 100_000);
        let x = [1i64, -2, 3, 0, 7];
        let y = [10i64, 20, -30, 40, 5];
        let expected: i64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();

        let ct = encrypt(&mpk, &x, &mut rng).unwrap();
        let sk = key_derive(mpk.group(), &msk, &y).unwrap();
        let got = decrypt(&mpk, &ct, &sk, &y, &table).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn random_vectors() {
        let (mpk, msk, mut rng) = setup_small(8);
        let table = DlogTable::new(mpk.group(), 1_000_000);
        for _ in 0..16 {
            let x: Vec<i64> = (0..8).map(|_| rng.random_range(-100..=100)).collect();
            let y: Vec<i64> = (0..8).map(|_| rng.random_range(-100..=100)).collect();
            let expected: i64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            let ct = encrypt(&mpk, &x, &mut rng).unwrap();
            let sk = key_derive(mpk.group(), &msk, &y).unwrap();
            assert_eq!(decrypt(&mpk, &ct, &sk, &y, &table).unwrap(), expected);
        }
    }

    #[test]
    fn zero_vectors() {
        let (mpk, msk, mut rng) = setup_small(3);
        let table = DlogTable::new(mpk.group(), 10);
        let ct = encrypt(&mpk, &[0, 0, 0], &mut rng).unwrap();
        let sk = key_derive(mpk.group(), &msk, &[1, 2, 3]).unwrap();
        assert_eq!(decrypt(&mpk, &ct, &sk, &[1, 2, 3], &table).unwrap(), 0);
        // All-zero y also works (key is the zero scalar).
        let sk0 = key_derive(mpk.group(), &msk, &[0, 0, 0]).unwrap();
        let ct2 = encrypt(&mpk, &[5, -6, 7], &mut rng).unwrap();
        assert_eq!(decrypt(&mpk, &ct2, &sk0, &[0, 0, 0], &table).unwrap(), 0);
    }

    #[test]
    fn dimension_mismatches() {
        let (mpk, msk, mut rng) = setup_small(4);
        assert_eq!(
            encrypt(&mpk, &[1, 2, 3], &mut rng),
            Err(FeError::DimensionMismatch {
                expected: 4,
                got: 3
            })
        );
        assert_eq!(
            key_derive(mpk.group(), &msk, &[1; 5]).unwrap_err(),
            FeError::DimensionMismatch {
                expected: 4,
                got: 5
            }
        );
        let ct = encrypt(&mpk, &[1, 2, 3, 4], &mut rng).unwrap();
        let sk = key_derive(mpk.group(), &msk, &[1; 4]).unwrap();
        assert!(decrypt_raw(&mpk, &ct, &sk, &[1; 2]).is_err());
    }

    #[test]
    fn wrong_key_gives_wrong_or_no_result() {
        let (mpk, msk, mut rng) = setup_small(3);
        let table = DlogTable::new(mpk.group(), 1000);
        let x = [3i64, 4, 5];
        let y = [1i64, 1, 1];
        let y_other = [2i64, 0, 1];
        let ct = encrypt(&mpk, &x, &mut rng).unwrap();
        let sk_other = key_derive(mpk.group(), &msk, &y_other).unwrap();
        // Decrypting y's product with y_other's key must not yield <x,y>.
        match decrypt(&mpk, &ct, &sk_other, &y, &table) {
            Ok(v) => assert_ne!(v, 12),
            Err(FeError::Group(GroupError::DlogOutOfRange { .. })) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn out_of_range_result_is_detected() {
        let (mpk, msk, mut rng) = setup_small(2);
        let table = DlogTable::new(mpk.group(), 10);
        let ct = encrypt(&mpk, &[100, 100], &mut rng).unwrap();
        let sk = key_derive(mpk.group(), &msk, &[1, 1]).unwrap();
        assert_eq!(
            decrypt(&mpk, &ct, &sk, &[1, 1], &table),
            Err(FeError::Group(GroupError::DlogOutOfRange { bound: 10 }))
        );
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let (mpk, _msk, mut rng) = setup_small(2);
        let a = encrypt(&mpk, &[7, 7], &mut rng).unwrap();
        let b = encrypt(&mpk, &[7, 7], &mut rng).unwrap();
        assert_ne!(a, b, "two encryptions of the same plaintext must differ");
    }

    #[test]
    fn combine_is_linearly_homomorphic() {
        let (mpk, msk, mut rng) = setup_small(3);
        let table = DlogTable::new(mpk.group(), 100_000);
        let x1 = [1i64, -2, 3];
        let x2 = [10i64, 20, -30];
        let x3 = [0i64, 5, 7];
        let w = [4i64, -3, 2];
        let cts = [
            encrypt(&mpk, &x1, &mut rng).unwrap(),
            encrypt(&mpk, &x2, &mut rng).unwrap(),
            encrypt(&mpk, &x3, &mut rng).unwrap(),
        ];
        let combined = combine(&mpk, &[&cts[0], &cts[1], &cts[2]], &w).unwrap();
        // Decrypt each coordinate of the combination with a unit-vector key.
        for i in 0..3 {
            let mut unit = [0i64; 3];
            unit[i] = 1;
            let sk = key_derive(mpk.group(), &msk, &unit).unwrap();
            let got = decrypt(&mpk, &combined, &sk, &unit, &table).unwrap();
            let expect = w[0] * x1[i] + w[1] * x2[i] + w[2] * x3[i];
            assert_eq!(got, expect, "coordinate {i}");
        }
        // And with a full weight vector key.
        let y = [1i64, 1, 1];
        let sk = key_derive(mpk.group(), &msk, &y).unwrap();
        let got = decrypt(&mpk, &combined, &sk, &y, &table).unwrap();
        let expect: i64 = (0..3)
            .map(|i| w[0] * x1[i] + w[1] * x2[i] + w[2] * x3[i])
            .sum();
        assert_eq!(got, expect);
    }

    #[test]
    fn multi_scalar_decrypt_matches_naive_reference() {
        let (mpk, msk, mut rng) = setup_small(6);
        for _ in 0..8 {
            let x: Vec<i64> = (0..6).map(|_| rng.random_range(-200..=200)).collect();
            let y: Vec<i64> = (0..6).map(|_| rng.random_range(-200..=200)).collect();
            let ct = encrypt(&mpk, &x, &mut rng).unwrap();
            let sk = key_derive(mpk.group(), &msk, &y).unwrap();
            assert_eq!(
                decrypt_raw(&mpk, &ct, &sk, &y).unwrap(),
                decrypt_raw_naive(&mpk, &ct, &sk, &y).unwrap()
            );
        }
        // All-zero y takes the numerator-skip path in both.
        let ct = encrypt(&mpk, &[1, 2, 3, 4, 5, 6], &mut rng).unwrap();
        let zero = [0i64; 6];
        let sk = key_derive(mpk.group(), &msk, &zero).unwrap();
        assert_eq!(
            decrypt_raw(&mpk, &ct, &sk, &zero).unwrap(),
            decrypt_raw_naive(&mpk, &ct, &sk, &zero).unwrap()
        );
    }

    #[test]
    fn decrypt_cells_matches_per_cell_decrypt() {
        let (mpk, msk, mut rng) = setup_small(5);
        let table = DlogTable::new(mpk.group(), 1_000_000);
        let cts: Vec<FeipCiphertext> = (0..3)
            .map(|_| {
                let x: Vec<i64> = (0..5).map(|_| rng.random_range(-100..=100)).collect();
                encrypt(&mpk, &x, &mut rng).unwrap()
            })
            .collect();
        // Rows exercise dense, sparse, all-zero and all-negative shapes
        // (row count ≥ FIXED_BASE_THRESHOLD hits the ct₀ comb path).
        let rows: Vec<Vec<i64>> = vec![
            (0..5).map(|_| rng.random_range(-100..=100)).collect(),
            vec![0, 7, 0, 0, -3],
            vec![0; 5],
            vec![-9, -1, -50, -2, -13],
        ];
        let keys: Vec<FeipFunctionKey> = rows
            .iter()
            .map(|r| key_derive(mpk.group(), &msk, r).unwrap())
            .collect();
        let row_refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
        for par in [Parallelism::Serial, Parallelism::Threads(3)] {
            let got = decrypt_cells(&mpk, &cts, &keys, &row_refs, &table, par).unwrap();
            for (c, ct) in cts.iter().enumerate() {
                for (r, row) in rows.iter().enumerate() {
                    assert_eq!(
                        got[c * rows.len() + r],
                        decrypt(&mpk, ct, &keys[r], row, &table).unwrap(),
                        "cell ({c},{r}) under {par:?}"
                    );
                }
            }
        }
        // Degenerate shapes.
        assert!(
            decrypt_cells(&mpk, &[], &keys, &row_refs, &table, Parallelism::Serial)
                .unwrap()
                .is_empty()
        );
        assert!(decrypt_cells(
            &mpk,
            &cts,
            &keys[..1],
            &row_refs,
            &table,
            Parallelism::Serial
        )
        .is_err());
    }

    #[test]
    fn decrypt_cells_bit_identical_at_fast_level() {
        // The full optimized stack — FastP64 reducer, lane-batched
        // Montgomery kernel, lane-stepped BSGS — must be bit-identical
        // to the naive reference arm at `Bits256Fast`. Six ciphertexts
        // cover one full 4-wide stride plus a serial remainder.
        let mut rng = StdRng::seed_from_u64(0x2019);
        let group = SchnorrGroup::precomputed(SecurityLevel::Bits256Fast);
        let (mpk, msk) = setup(group, 4, &mut rng);
        let table = DlogTable::new(mpk.group(), 500_000);
        let xs: Vec<Vec<i64>> = (0..6)
            .map(|_| (0..4).map(|_| rng.random_range(-150..=150)).collect())
            .collect();
        let cts: Vec<FeipCiphertext> = xs
            .iter()
            .map(|x| encrypt(&mpk, x, &mut rng).unwrap())
            .collect();
        let rows: Vec<Vec<i64>> = vec![
            (0..4).map(|_| rng.random_range(-150..=150)).collect(),
            vec![0, 11, 0, -5],
            vec![0; 4],
            vec![-3, -70, -1, -8],
            (0..4).map(|_| rng.random_range(-150..=150)).collect(),
        ];
        let keys: Vec<FeipFunctionKey> = rows
            .iter()
            .map(|r| key_derive(mpk.group(), &msk, r).unwrap())
            .collect();
        let row_refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
        let got = decrypt_cells(&mpk, &cts, &keys, &row_refs, &table, Parallelism::Serial).unwrap();
        for (c, ct) in cts.iter().enumerate() {
            for (r, row) in rows.iter().enumerate() {
                // Element-level identity (before the dlog), then the
                // recovered integer against the naive arm.
                assert_eq!(
                    decrypt_raw(&mpk, ct, &keys[r], row).unwrap(),
                    decrypt_raw_naive(&mpk, ct, &keys[r], row).unwrap(),
                    "raw element for cell ({c},{r})"
                );
                assert_eq!(
                    got[c * rows.len() + r],
                    decrypt_naive(&mpk, ct, &keys[r], row, &table).unwrap(),
                    "cell ({c},{r})"
                );
            }
        }
    }

    #[test]
    fn decrypt_coordinates_reads_combined_ciphertexts() {
        let (mpk, msk, mut rng) = setup_small(4);
        let table = DlogTable::new(mpk.group(), 100_000);
        let x1 = [3i64, -4, 5, 0];
        let x2 = [-1i64, 2, -3, 4];
        let cts = [
            encrypt(&mpk, &x1, &mut rng).unwrap(),
            encrypt(&mpk, &x2, &mut rng).unwrap(),
        ];
        let combined = combine(&mpk, &[&cts[0], &cts[1]], &[5, -2]).unwrap();
        let unit_keys: Vec<FeipFunctionKey> = (0..4)
            .map(|j| {
                let mut unit = [0i64; 4];
                unit[j] = 1;
                key_derive(mpk.group(), &msk, &unit).unwrap()
            })
            .collect();
        let coords = decrypt_coordinates(&mpk, &combined, &unit_keys, &table).unwrap();
        for j in 0..4 {
            assert_eq!(coords[j], 5 * x1[j] - 2 * x2[j], "coordinate {j}");
        }
        assert!(decrypt_coordinates(&mpk, &combined, &unit_keys[..2], &table).is_err());
    }

    #[test]
    fn combine_rejects_mismatches() {
        let (mpk, _msk, mut rng) = setup_small(2);
        let ct = encrypt(&mpk, &[1, 2], &mut rng).unwrap();
        assert!(combine(&mpk, &[&ct], &[1, 2]).is_err());
    }
}
