//! Error types for the functional-encryption layer.

use core::fmt;

use cryptonn_group::GroupError;

/// Errors from FEIP/FEBO operations and the key authority.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FeError {
    /// A vector's length does not match the scheme dimension.
    DimensionMismatch {
        /// The dimension the scheme was set up with.
        expected: usize,
        /// The dimension that was supplied.
        got: usize,
    },
    /// Division key requested for `y = 0`, or another operand outside the
    /// scheme's domain.
    InvalidOperand(&'static str),
    /// The requested function is not in the authority's permitted set `F`.
    FunctionNotPermitted(&'static str),
    /// An underlying group operation failed (typically a discrete log out
    /// of range, meaning the plaintext result exceeded the search bound).
    Group(GroupError),
    /// A wire-backed key service failed: transport error, replay
    /// divergence, or a request for material the session never
    /// published.
    Protocol(String),
    /// A threshold derivation could not gather a quorum: fewer than `t`
    /// share-holders answered, so no key can be reconstructed. Never a
    /// silent wrong key — below quorum the combiner fails closed.
    InsufficientShares {
        /// Partials actually gathered.
        have: usize,
        /// The quorum threshold `t`.
        need: usize,
    },
    /// Every t-subset of the gathered partials failed validation against
    /// the common public commitments — more shares are corrupted than
    /// the quorum can route around.
    SharesTampered {
        /// Number of t-subsets tried before giving up.
        subsets_tried: usize,
    },
}

impl fmt::Display for FeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "vector dimension mismatch: expected {expected}, got {got}"
                )
            }
            FeError::InvalidOperand(what) => write!(f, "invalid operand: {what}"),
            FeError::FunctionNotPermitted(what) => {
                write!(f, "function not in the permitted set: {what}")
            }
            FeError::Group(e) => write!(f, "group operation failed: {e}"),
            FeError::Protocol(what) => write!(f, "key-service protocol failure: {what}"),
            FeError::InsufficientShares { have, need } => {
                write!(
                    f,
                    "insufficient shares for quorum: have {have}, need {need}"
                )
            }
            FeError::SharesTampered { subsets_tried } => {
                write!(
                    f,
                    "no t-subset of partial keys validates against the public \
                     commitments ({subsets_tried} subsets tried)"
                )
            }
        }
    }
}

impl std::error::Error for FeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FeError::Group(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GroupError> for FeError {
    fn from(e: GroupError) -> Self {
        FeError::Group(e)
    }
}
