//! Error types for the functional-encryption layer.

use core::fmt;

use cryptonn_group::GroupError;

/// Errors from FEIP/FEBO operations and the key authority.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FeError {
    /// A vector's length does not match the scheme dimension.
    DimensionMismatch {
        /// The dimension the scheme was set up with.
        expected: usize,
        /// The dimension that was supplied.
        got: usize,
    },
    /// Division key requested for `y = 0`, or another operand outside the
    /// scheme's domain.
    InvalidOperand(&'static str),
    /// The requested function is not in the authority's permitted set `F`.
    FunctionNotPermitted(&'static str),
    /// An underlying group operation failed (typically a discrete log out
    /// of range, meaning the plaintext result exceeded the search bound).
    Group(GroupError),
    /// A wire-backed key service failed: transport error, replay
    /// divergence, or a request for material the session never
    /// published.
    Protocol(String),
}

impl fmt::Display for FeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "vector dimension mismatch: expected {expected}, got {got}"
                )
            }
            FeError::InvalidOperand(what) => write!(f, "invalid operand: {what}"),
            FeError::FunctionNotPermitted(what) => {
                write!(f, "function not in the permitted set: {what}")
            }
            FeError::Group(e) => write!(f, "group operation failed: {e}"),
            FeError::Protocol(what) => write!(f, "key-service protocol failure: {what}"),
        }
    }
}

impl std::error::Error for FeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FeError::Group(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GroupError> for FeError {
    fn from(e: GroupError) -> Self {
        FeError::Group(e)
    }
}
