//! # cryptonn-fe
//!
//! Functional encryption for the CryptoNN framework:
//!
//! - [`feip`] — functional encryption for **inner products** (Abdalla et
//!   al., PKC 2015), restated in §II-B of the paper; used for secure
//!   dot-products and secure convolution.
//! - [`febo`] — functional encryption for **basic operations**
//!   (+, −, ×, ÷), the paper's novel ElGamal-derived construction
//!   (§III-B); used for element-wise secure computation.
//! - [`KeyAuthority`] — the trusted third party of Fig. 1: holds master
//!   keys, distributes public keys, enforces the permitted-function set
//!   `F`, and logs key-request traffic for the §IV-B2 communication
//!   analysis.
//!
//! Unlike homomorphic encryption, decryption with a function-derived key
//! reveals `f(x)` in plaintext — which is exactly what lets CryptoNN
//! *train* (not just predict) over encrypted data.
//!
//! ## Example
//!
//! ```
//! use cryptonn_fe::{feip, KeyAuthority, PermittedFunctions};
//! use cryptonn_group::{DlogTable, SchnorrGroup, SecurityLevel};
//!
//! let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
//! let authority = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), 42);
//!
//! // A client encrypts its feature vector.
//! let mpk = authority.feip_public_key(3);
//! let ct = feip::encrypt(&mpk, &[5, -3, 2], &mut rand::rng())?;
//!
//! // The server obtains a key for its weights and learns only <x, w>.
//! let w = [2i64, 4, 10];
//! let sk = authority.derive_ip_key(3, &w)?;
//! let table = DlogTable::new(&group, 1_000);
//! assert_eq!(feip::decrypt(&mpk, &ct, &sk, &w, &table)?, 18);
//! # Ok::<(), cryptonn_fe::FeError>(())
//! ```

#![warn(missing_docs)]

mod authority;
mod cache;
mod error;
pub mod febo;
pub mod feip;
mod service;
pub mod threshold;

pub use authority::{
    CommLog, KeyAuthority, PermittedFunctions, COMMITMENT_BYTES, KEY_BYTES, WEIGHT_BYTES,
};
pub use cache::{CachingKeyService, KeyCacheStats};
pub use error::FeError;
pub use febo::{BasicOp, FeboCiphertext, FeboFunctionKey, FeboMasterKey, FeboPublicKey};
pub use feip::{
    combine as feip_combine, FeipCiphertext, FeipFunctionKey, FeipMasterKey, FeipPublicKey,
};
pub use service::{FeboKeyRequest, KeyService};
pub use threshold::{
    local_threshold_service, DleqProof, FeboPartial, LocalShareClient, ShareAuthority, ShareClient,
    ShareClientError, ShareSpec, ThresholdKeyService, ThresholdSetup, ThresholdStats,
};
