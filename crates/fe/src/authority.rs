//! The trusted key authority of the CryptoNN architecture (Fig. 1).
//!
//! The authority holds every master secret key, distributes public keys
//! to clients and servers, and answers function-key requests — enforcing
//! the permitted-function set `F` from Algorithms 1–2. It also keeps a
//! communication log so the key-generation overhead analysis of §IV-B2
//! ("the server sends `k·n·|w|` and receives `k·|sk|` per iteration")
//! can be measured rather than estimated.

use std::collections::HashMap;
use std::sync::Arc;

use cryptonn_group::{Element, SchnorrGroup};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::error::FeError;
use crate::febo::{self, BasicOp, FeboFunctionKey, FeboMasterKey, FeboPublicKey};
use crate::feip::{self, FeipFunctionKey, FeipMasterKey, FeipPublicKey};

/// The permitted-function set `F` enforced at key-derivation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PermittedFunctions {
    /// FEIP inner-product keys may be issued.
    pub dot_product: bool,
    /// FEBO addition keys may be issued.
    pub add: bool,
    /// FEBO subtraction keys may be issued.
    pub sub: bool,
    /// FEBO multiplication keys may be issued.
    pub mul: bool,
    /// FEBO division keys may be issued.
    pub div: bool,
}

impl PermittedFunctions {
    /// Permits every supported function.
    pub fn all() -> Self {
        Self {
            dot_product: true,
            add: true,
            sub: true,
            mul: true,
            div: true,
        }
    }

    /// Permits nothing; enable functions individually.
    pub fn none() -> Self {
        Self {
            dot_product: false,
            add: false,
            sub: false,
            mul: false,
            div: false,
        }
    }

    /// The minimal set CryptoNN training needs: dot-product for the
    /// secure feed-forward and subtraction for the secure evaluation.
    pub fn cryptonn_training() -> Self {
        Self {
            dot_product: true,
            add: false,
            sub: true,
            mul: false,
            div: false,
        }
    }

    pub(crate) fn allows_op(&self, op: BasicOp) -> bool {
        match op {
            BasicOp::Add => self.add,
            BasicOp::Sub => self.sub,
            BasicOp::Mul => self.mul,
            BasicOp::Div => self.div,
        }
    }
}

impl Default for PermittedFunctions {
    fn default() -> Self {
        Self::all()
    }
}

/// Byte sizes used in the communication accounting, mirroring §IV-B2:
/// a weight `|w|` is one `i64`, a derived key `|sk|` is one 256-bit value.
pub const WEIGHT_BYTES: u64 = 8;
/// Size of one derived key in bytes (a 256-bit scalar or element).
pub const KEY_BYTES: u64 = 32;
/// Size of one FEBO commitment in bytes.
pub const COMMITMENT_BYTES: u64 = 32;

/// A snapshot of the authority's communication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommLog {
    /// Number of FEIP (dot-product) key requests served.
    pub ip_requests: u64,
    /// Total weight values received across FEIP requests.
    pub ip_weights_received: u64,
    /// Number of FEBO key requests served.
    pub bo_requests: u64,
}

impl CommLog {
    /// Bytes the servers sent to the authority
    /// (`Σ n·|w|` for FEIP plus `|cmt| + |w|` per FEBO request).
    pub fn bytes_received(&self) -> u64 {
        self.ip_weights_received * WEIGHT_BYTES
            + self.bo_requests * (COMMITMENT_BYTES + WEIGHT_BYTES)
    }

    /// Bytes the authority sent back (`|sk|` per request).
    pub fn bytes_sent(&self) -> u64 {
        (self.ip_requests + self.bo_requests) * KEY_BYTES
    }
}

/// The trusted authority: master-key holder and key-derivation oracle.
///
/// The authority is `Sync`; servers may request keys from multiple
/// threads.
///
/// ```
/// use cryptonn_fe::{KeyAuthority, PermittedFunctions};
/// use cryptonn_group::{DlogTable, SchnorrGroup, SecurityLevel};
///
/// let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
/// let authority = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), 1);
///
/// // Client side: encrypt x = [3, 4] under the FEIP public key.
/// let mpk = authority.feip_public_key(2);
/// let mut rng = rand::rng();
/// let ct = cryptonn_fe::feip::encrypt(&mpk, &[3, 4], &mut rng)?;
///
/// // Server side: request a key for y = [10, 1] and decrypt <x, y> = 34.
/// let sk = authority.derive_ip_key(2, &[10, 1])?;
/// let table = DlogTable::new(&group, 1_000);
/// assert_eq!(cryptonn_fe::feip::decrypt(&mpk, &ct, &sk, &[10, 1], &table)?, 34);
/// # Ok::<(), cryptonn_fe::FeError>(())
/// ```
#[derive(Debug)]
pub struct KeyAuthority {
    group: SchnorrGroup,
    permitted: PermittedFunctions,
    febo_mpk: FeboPublicKey,
    febo_msk: FeboMasterKey,
    feip: Mutex<HashMap<usize, Arc<FeipInstance>>>,
    log: Mutex<CommLog>,
    rng: Mutex<StdRng>,
}

#[derive(Debug)]
struct FeipInstance {
    mpk: FeipPublicKey,
    msk: FeipMasterKey,
}

impl KeyAuthority {
    /// Creates an authority with OS-sourced randomness.
    pub fn new(group: SchnorrGroup, permitted: PermittedFunctions) -> Self {
        Self::from_rng(group, permitted, StdRng::from_rng(&mut rand::rng()))
    }

    /// Creates an authority with a deterministic seed (tests, benches).
    pub fn with_seed(group: SchnorrGroup, permitted: PermittedFunctions, seed: u64) -> Self {
        Self::from_rng(group, permitted, StdRng::seed_from_u64(seed))
    }

    fn from_rng(group: SchnorrGroup, permitted: PermittedFunctions, mut rng: StdRng) -> Self {
        let (febo_mpk, febo_msk) = febo::setup(group.clone(), &mut rng);
        Self {
            group,
            permitted,
            febo_mpk,
            febo_msk,
            feip: Mutex::new(HashMap::new()),
            log: Mutex::new(CommLog::default()),
            rng: Mutex::new(rng),
        }
    }

    /// The group all schemes operate in.
    pub fn group(&self) -> &SchnorrGroup {
        &self.group
    }

    /// The permitted-function set `F`.
    pub fn permitted(&self) -> &PermittedFunctions {
        &self.permitted
    }

    /// The FEBO public key, distributed to clients.
    pub fn febo_public_key(&self) -> FeboPublicKey {
        self.febo_mpk.clone()
    }

    /// The FEIP public key for vectors of length `dim`, creating the
    /// instance on first use.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn feip_public_key(&self, dim: usize) -> FeipPublicKey {
        self.feip_instance(dim).mpk.clone()
    }

    fn feip_instance(&self, dim: usize) -> Arc<FeipInstance> {
        let mut map = self.feip.lock();
        map.entry(dim)
            .or_insert_with(|| {
                let mut rng = self.rng.lock();
                let (mpk, msk) = feip::setup(self.group.clone(), dim, &mut *rng);
                Arc::new(FeipInstance { mpk, msk })
            })
            .clone()
    }

    /// Serves a dot-product key request for weight vector `y` against the
    /// dimension-`dim` FEIP instance.
    ///
    /// # Errors
    ///
    /// - [`FeError::FunctionNotPermitted`] if `F` excludes dot-product,
    /// - [`FeError::DimensionMismatch`] if `y.len() != dim`.
    pub fn derive_ip_key(&self, dim: usize, y: &[i64]) -> Result<FeipFunctionKey, FeError> {
        if !self.permitted.dot_product {
            return Err(FeError::FunctionNotPermitted("dot-product"));
        }
        let instance = self.feip_instance(dim);
        let key = feip::key_derive(&self.group, &instance.msk, y)?;
        let mut log = self.log.lock();
        log.ip_requests += 1;
        log.ip_weights_received += y.len() as u64;
        Ok(key)
    }

    /// Serves a basic-operation key request for commitment `cmt`,
    /// operation `op` and server operand `y`.
    ///
    /// # Errors
    ///
    /// - [`FeError::FunctionNotPermitted`] if `F` excludes `op`,
    /// - [`FeError::InvalidOperand`] for division by zero.
    pub fn derive_bo_key(
        &self,
        cmt: &Element,
        op: BasicOp,
        y: i64,
    ) -> Result<FeboFunctionKey, FeError> {
        if !self.permitted.allows_op(op) {
            return Err(FeError::FunctionNotPermitted(op.symbol()));
        }
        let key = febo::key_derive(&self.group, &self.febo_msk, cmt, op, y)?;
        self.log.lock().bo_requests += 1;
        Ok(key)
    }

    /// A snapshot of the communication counters.
    pub fn comm_log(&self) -> CommLog {
        *self.log.lock()
    }

    /// Resets the communication counters (e.g. between training epochs).
    pub fn reset_comm_log(&self) {
        *self.log.lock() = CommLog::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptonn_group::{DlogTable, SecurityLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn authority(permitted: PermittedFunctions) -> KeyAuthority {
        let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
        KeyAuthority::with_seed(group, permitted, 99)
    }

    #[test]
    fn end_to_end_ip_through_authority() {
        let auth = authority(PermittedFunctions::all());
        let mut rng = StdRng::seed_from_u64(5);
        let mpk = auth.feip_public_key(3);
        let table = DlogTable::new(auth.group(), 1000);
        let ct = feip::encrypt(&mpk, &[1, 2, 3], &mut rng).unwrap();
        let sk = auth.derive_ip_key(3, &[4, 5, 6]).unwrap();
        assert_eq!(
            feip::decrypt(&mpk, &ct, &sk, &[4, 5, 6], &table).unwrap(),
            32
        );
    }

    #[test]
    fn end_to_end_bo_through_authority() {
        let auth = authority(PermittedFunctions::all());
        let mut rng = StdRng::seed_from_u64(6);
        let mpk = auth.febo_public_key();
        let table = DlogTable::new(auth.group(), 1000);
        let ct = febo::encrypt(&mpk, 30, &mut rng);
        let sk = auth
            .derive_bo_key(ct.commitment(), BasicOp::Sub, 12)
            .unwrap();
        assert_eq!(
            febo::decrypt(&mpk, &sk, &ct, BasicOp::Sub, 12, &table).unwrap(),
            18
        );
    }

    #[test]
    fn permitted_set_is_enforced() {
        let auth = authority(PermittedFunctions::cryptonn_training());
        let mut rng = StdRng::seed_from_u64(7);
        let mpk = auth.febo_public_key();
        let ct = febo::encrypt(&mpk, 5, &mut rng);
        // Sub and dot-product allowed.
        assert!(auth.derive_bo_key(ct.commitment(), BasicOp::Sub, 1).is_ok());
        assert!(auth.derive_ip_key(2, &[1, 2]).is_ok());
        // Mul, Add, Div denied.
        for op in [BasicOp::Add, BasicOp::Mul, BasicOp::Div] {
            assert!(matches!(
                auth.derive_bo_key(ct.commitment(), op, 1),
                Err(FeError::FunctionNotPermitted(_))
            ));
        }
    }

    #[test]
    fn nothing_permitted() {
        let auth = authority(PermittedFunctions::none());
        assert!(matches!(
            auth.derive_ip_key(2, &[1, 2]),
            Err(FeError::FunctionNotPermitted("dot-product"))
        ));
    }

    #[test]
    fn feip_instances_are_cached_per_dimension() {
        let auth = authority(PermittedFunctions::all());
        let a = auth.feip_public_key(4);
        let b = auth.feip_public_key(4);
        assert_eq!(a, b, "same dimension must return the same instance");
        let c = auth.feip_public_key(5);
        assert_eq!(c.dimension(), 5);
    }

    #[test]
    fn comm_log_accounts_bytes() {
        let auth = authority(PermittedFunctions::all());
        let mut rng = StdRng::seed_from_u64(8);
        auth.derive_ip_key(10, &[1; 10]).unwrap();
        auth.derive_ip_key(10, &[2; 10]).unwrap();
        let ct = febo::encrypt(&auth.febo_public_key(), 1, &mut rng);
        auth.derive_bo_key(ct.commitment(), BasicOp::Add, 2)
            .unwrap();

        let log = auth.comm_log();
        assert_eq!(log.ip_requests, 2);
        assert_eq!(log.ip_weights_received, 20);
        assert_eq!(log.bo_requests, 1);
        assert_eq!(
            log.bytes_received(),
            20 * WEIGHT_BYTES + (COMMITMENT_BYTES + WEIGHT_BYTES)
        );
        assert_eq!(log.bytes_sent(), 3 * KEY_BYTES);

        auth.reset_comm_log();
        assert_eq!(auth.comm_log(), CommLog::default());
    }

    #[test]
    fn authority_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<KeyAuthority>();
    }
}
