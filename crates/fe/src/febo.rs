//! FEBO: functional encryption for basic arithmetic operations.
//!
//! The CryptoNN paper's novel construction (§III-B), derived from ElGamal
//! encryption: for `f_Δ(x, y) = x Δ y` with `Δ ∈ {+, −, ×, ÷}`:
//!
//! - `Setup(1^λ)`: `msk = s`, `mpk = (g, h = g^s)`.
//! - `Encrypt(mpk, x)`: nonce `r`; commitment `cmt = g^r`,
//!   ciphertext `ct = h^r · g^x`.
//! - `KeyDerive(msk, cmt, Δ, y)`:
//!   `cmt^s · g^{∓y}` for ±, `(cmt^s)^y` for ×, `(cmt^s)^{y⁻¹}` for ÷.
//! - `Decrypt`: `ct / sk`, `ct^y / sk`, or `ct^{y⁻¹} / sk` respectively,
//!   yielding `g^{f_Δ(x,y)}`, recovered by BSGS.
//!
//! ## Division caveat
//!
//! For `Δ = ÷` the exponent is `x · y⁻¹ mod q`, which equals the integer
//! quotient only when `y` divides `x`; otherwise it is a full-size field
//! element and [`decrypt`] reports `DlogOutOfRange`. This is inherent to
//! the paper's construction (see DESIGN.md §3.4).

use std::sync::{Arc, OnceLock};

use cryptonn_group::{DlogTable, Element, ElementRatio, FixedBaseTable, Scalar, SchnorrGroup};
use cryptonn_parallel::{parallel_map, Parallelism};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::FeError;

/// The four basic arithmetic operations supported by FEBO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BasicOp {
    /// `x + y`
    Add,
    /// `x - y`
    Sub,
    /// `x * y`
    Mul,
    /// `x / y` (exact only when `y | x`; see module docs)
    Div,
}

impl BasicOp {
    /// All four operations, for exhaustive tests and benches.
    pub const ALL: [BasicOp; 4] = [BasicOp::Add, BasicOp::Sub, BasicOp::Mul, BasicOp::Div];

    /// Applies the operation to plaintext operands (reference semantics
    /// for tests). Division is Euclidean and only meaningful when exact.
    pub fn apply(&self, x: i64, y: i64) -> i64 {
        match self {
            BasicOp::Add => x + y,
            BasicOp::Sub => x - y,
            BasicOp::Mul => x * y,
            BasicOp::Div => x / y,
        }
    }

    /// The operator symbol, for diagnostics.
    pub fn symbol(&self) -> &'static str {
        match self {
            BasicOp::Add => "+",
            BasicOp::Sub => "-",
            BasicOp::Mul => "*",
            BasicOp::Div => "/",
        }
    }
}

impl core::fmt::Display for BasicOp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.symbol())
    }
}

/// FEBO public key `(g, h = g^s)` plus the group.
///
/// Carries a fixed-base comb table for `h` — derived state that
/// travels with the key and is rebuilt (lazily, on first [`encrypt`])
/// rather than shipped across serialization (DESIGN.md §8). Clones
/// share the table via `Arc`.
#[derive(Clone)]
pub struct FeboPublicKey {
    group: SchnorrGroup,
    h: Element,
    /// Comb table for `h`; lazily built, never serialized.
    h_table: Arc<OnceLock<FixedBaseTable>>,
}

impl FeboPublicKey {
    /// Assembles a public key from its parts.
    fn assemble(group: SchnorrGroup, h: Element) -> Self {
        Self {
            group,
            h,
            h_table: Arc::new(OnceLock::new()),
        }
    }

    /// The underlying group.
    pub fn group(&self) -> &SchnorrGroup {
        &self.group
    }

    /// The comb table for `h`, built on first use.
    pub fn h_table(&self) -> &FixedBaseTable {
        self.h_table
            .get_or_init(|| self.group.fixed_base_table(&self.h))
    }

    /// The public element `h = g^s` — the common commitment a threshold
    /// combiner anchors its share commitments against
    /// (`Π Fⱼ^{λⱼ} = h` for any t-subset).
    pub fn element(&self) -> &Element {
        &self.h
    }
}

impl core::fmt::Debug for FeboPublicKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FeboPublicKey")
            .field("group", &self.group)
            .field("h", &self.h)
            .finish()
    }
}

impl PartialEq for FeboPublicKey {
    fn eq(&self, other: &Self) -> bool {
        // The table is a pure function of (group, h).
        self.group == other.group && self.h == other.h
    }
}

impl Eq for FeboPublicKey {}

impl Serialize for FeboPublicKey {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(serde::Value::Map(vec![
            ("group".to_string(), serde::ser::to_value(&self.group)),
            ("h".to_string(), serde::ser::to_value(&self.h)),
        ]))
    }
}

impl<'de> Deserialize<'de> for FeboPublicKey {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error;
        let value = deserializer.deserialize_value()?;
        let entries = value
            .as_map()
            .ok_or_else(|| D::Error::custom("expected map for FeboPublicKey"))?;
        let group: SchnorrGroup = serde::de::field(entries, "group").map_err(D::Error::custom)?;
        let h: Element = serde::de::field(entries, "h").map_err(D::Error::custom)?;
        Ok(Self::assemble(group, h))
    }
}

/// FEBO master secret key `s`. Held only by the authority.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeboMasterKey {
    s: Scalar,
}

impl FeboMasterKey {
    /// The raw secret — crate-internal, so the threshold dealer can
    /// Shamir-share it without exposing it outside the crate.
    pub(crate) fn scalar(&self) -> &Scalar {
        &self.s
    }
}

/// A FEBO ciphertext: the commitment `cmt = g^r` (sent to the authority
/// for key derivation) and the payload `ct = h^r · g^x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeboCiphertext {
    cmt: Element,
    ct: Element,
}

impl FeboCiphertext {
    /// The commitment `cmt = g^r`, which the server forwards to the
    /// authority when requesting an operation key.
    pub fn commitment(&self) -> &Element {
        &self.cmt
    }
}

/// A function-derived key for one `(cmt, Δ, y)` triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeboFunctionKey {
    sk: Element,
    op: BasicOp,
}

impl FeboFunctionKey {
    /// The operation this key was derived for.
    pub fn op(&self) -> BasicOp {
        self.op
    }

    /// Raw element, exposed for size accounting in the authority's
    /// communication log.
    pub fn element(&self) -> &Element {
        &self.sk
    }
}

/// `Setup(1^λ)`: creates a FEBO instance over `group`.
pub fn setup<R: Rng + ?Sized>(group: SchnorrGroup, rng: &mut R) -> (FeboPublicKey, FeboMasterKey) {
    let s = group.random_scalar(rng);
    let h = group.exp(&s);
    (FeboPublicKey::assemble(group, h), FeboMasterKey { s })
}

/// `Encrypt(mpk, x)`: encrypts a signed integer.
///
/// Both exponentiations run against precomputed fixed-base tables:
/// `cmt = g^r` through the generator table and `ct = h^r · g^x` as one
/// fused two-factor multi-exponentiation through the key's `h` table.
pub fn encrypt<R: Rng + ?Sized>(mpk: &FeboPublicKey, x: i64, rng: &mut R) -> FeboCiphertext {
    let group = &mpk.group;
    let r = group.random_scalar(rng);
    let cmt = group.exp(&r);
    let x = group.scalar_from_i64(x);
    let ct = group.multi_pow(&[(mpk.h_table(), &r), (group.generator_table(), &x)]);
    FeboCiphertext { cmt, ct }
}

/// Batched `Encrypt`: encrypts each value in `xs`, fanning the samples
/// out over `parallelism`.
///
/// Randomness is forked exactly as in
/// [`feip::encrypt_batch`](crate::feip::encrypt_batch): one full-width
/// 256-bit seed per sample drawn from `rng` up front, so the output is
/// bit-identical across thread counts without capping the
/// per-ciphertext randomness.
pub fn encrypt_batch<R: Rng + ?Sized>(
    mpk: &FeboPublicKey,
    xs: &[i64],
    rng: &mut R,
    parallelism: Parallelism,
) -> Vec<FeboCiphertext> {
    let seeds: Vec<[u8; 32]> = (0..xs.len())
        .map(|_| {
            let mut seed = [0u8; 32];
            rng.fill_bytes(&mut seed);
            seed
        })
        .collect();
    parallel_map(xs.len(), parallelism.thread_count(), |i| {
        let mut sample_rng = StdRng::from_seed(seeds[i]);
        encrypt(mpk, xs[i], &mut sample_rng)
    })
}

/// `KeyDerive(msk, cmt, Δ, y)`: derives the operation key for a specific
/// ciphertext commitment and server operand `y`.
///
/// # Errors
///
/// Returns [`FeError::InvalidOperand`] for `Δ = ÷` with `y = 0`.
pub fn key_derive(
    group: &SchnorrGroup,
    msk: &FeboMasterKey,
    cmt: &Element,
    op: BasicOp,
    y: i64,
) -> Result<FeboFunctionKey, FeError> {
    finish_key(group, group.pow(cmt, &msk.s), op, y)
}

/// Applies the operand adjustment to a computed `cmt^s`, producing the
/// final operation key. Split out of [`key_derive`] so the threshold
/// combiner — which reconstructs `cmt^s` from Lagrange-weighted
/// partials instead of holding `s` — lands on the identical key bits.
pub(crate) fn finish_key(
    group: &SchnorrGroup,
    cmt_s: Element,
    op: BasicOp,
    y: i64,
) -> Result<FeboFunctionKey, FeError> {
    let sk = match op {
        BasicOp::Add => {
            // cmt^s · g^{-y}
            group.mul(&cmt_s, &group.exp(&group.scalar_from_i64(-y)))
        }
        BasicOp::Sub => {
            // cmt^s · g^{y}
            group.mul(&cmt_s, &group.exp(&group.scalar_from_i64(y)))
        }
        BasicOp::Mul => {
            // (cmt^s)^y
            group.pow(&cmt_s, &group.scalar_from_i64(y))
        }
        BasicOp::Div => {
            let y_scalar = group.scalar_from_i64(y);
            let y_inv = group
                .scalar_inv(&y_scalar)
                .ok_or(FeError::InvalidOperand("division by zero"))?;
            group.pow(&cmt_s, &y_inv)
        }
    };
    Ok(FeboFunctionKey { sk, op })
}

/// Computes the raw decryption `g^{f_Δ(x,y)}` without solving the
/// discrete log.
///
/// The multiply branch runs `ct^y` through the wNAF signed-digit path
/// (`SchnorrGroup::pow_signed_ratio`), so its cost scales with
/// `log₂|y|` instead of the full 256-bit chain. Batch callers should
/// prefer [`decrypt_ratio`] + `SchnorrGroup::resolve_ratios` so the
/// `/ sk` division amortizes across a whole matrix of cells.
///
/// # Errors
///
/// Returns [`FeError::InvalidOperand`] if the key's operation disagrees
/// with `op`, or for `Δ = ÷` with `y = 0`.
pub fn decrypt_raw(
    mpk: &FeboPublicKey,
    sk: &FeboFunctionKey,
    ct: &FeboCiphertext,
    op: BasicOp,
    y: i64,
) -> Result<Element, FeError> {
    Ok(decrypt_ratio(mpk, sk, ct, op, y)?.resolve(&mpk.group))
}

/// As [`decrypt_raw`], but returns the deferred ratio so many cells can
/// be resolved with one batched inversion (for `+`/`−` the numerator is
/// just `ct` — the whole per-cell cost collapses into the shared
/// inversion).
///
/// # Errors
///
/// As [`decrypt_raw`].
pub fn decrypt_ratio(
    mpk: &FeboPublicKey,
    sk: &FeboFunctionKey,
    ct: &FeboCiphertext,
    op: BasicOp,
    y: i64,
) -> Result<ElementRatio, FeError> {
    if sk.op != op {
        return Err(FeError::InvalidOperand(
            "function key derived for a different operation",
        ));
    }
    let group = &mpk.group;
    let ratio = match op {
        BasicOp::Add | BasicOp::Sub => ElementRatio::from_element(group, ct.ct),
        BasicOp::Mul => group.pow_signed_ratio(&ct.ct, y),
        BasicOp::Div => {
            let y_scalar = group.scalar_from_i64(y);
            let y_inv = group
                .scalar_inv(&y_scalar)
                .ok_or(FeError::InvalidOperand("division by zero"))?;
            ElementRatio::from_element(group, group.pow(&ct.ct, &y_inv))
        }
    };
    Ok(ratio.div_by(group, &sk.sk))
}

/// The pre-multi-scalar reference decryption: a full-width
/// exponentiation for `×` and an eager inversion per cell. Kept public
/// as the baseline arm of the `server_decrypt` telemetry and the
/// equivalence property tests.
///
/// # Errors
///
/// As [`decrypt_raw`].
pub fn decrypt_raw_naive(
    mpk: &FeboPublicKey,
    sk: &FeboFunctionKey,
    ct: &FeboCiphertext,
    op: BasicOp,
    y: i64,
) -> Result<Element, FeError> {
    if sk.op != op {
        return Err(FeError::InvalidOperand(
            "function key derived for a different operation",
        ));
    }
    let group = &mpk.group;
    let raw = match op {
        BasicOp::Add | BasicOp::Sub => group.div(&ct.ct, &sk.sk),
        BasicOp::Mul => {
            let ct_y = group.pow(&ct.ct, &group.scalar_from_i64(y));
            group.div(&ct_y, &sk.sk)
        }
        BasicOp::Div => {
            let y_scalar = group.scalar_from_i64(y);
            let y_inv = group
                .scalar_inv(&y_scalar)
                .ok_or(FeError::InvalidOperand("division by zero"))?;
            let ct_y = group.pow(&ct.ct, &y_inv);
            group.div(&ct_y, &sk.sk)
        }
    };
    Ok(raw)
}

/// Reference `Decrypt` on top of [`decrypt_raw_naive`] — the "naive" arm
/// of the decrypt ablations.
///
/// # Errors
///
/// As [`decrypt`].
pub fn decrypt_naive(
    mpk: &FeboPublicKey,
    sk: &FeboFunctionKey,
    ct: &FeboCiphertext,
    op: BasicOp,
    y: i64,
    table: &DlogTable,
) -> Result<i64, FeError> {
    let raw = decrypt_raw_naive(mpk, sk, ct, op, y)?;
    Ok(table.solve(&mpk.group, &raw)?)
}

/// `Decrypt(mpk, sk_fΔ, ct, Δ, y)`: recovers `x Δ y` as a signed integer
/// using the supplied BSGS table.
///
/// # Errors
///
/// - [`FeError::InvalidOperand`] on operation mismatch or `y = 0`
///   division,
/// - [`FeError::Group`] wrapping `DlogOutOfRange` if the result exceeds
///   the table bound (always the case for inexact division).
pub fn decrypt(
    mpk: &FeboPublicKey,
    sk: &FeboFunctionKey,
    ct: &FeboCiphertext,
    op: BasicOp,
    y: i64,
    table: &DlogTable,
) -> Result<i64, FeError> {
    let raw = decrypt_raw(mpk, sk, ct, op, y)?;
    Ok(table.solve(&mpk.group, &raw)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptonn_group::{GroupError, SecurityLevel};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn setup_small() -> (FeboPublicKey, FeboMasterKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(7);
        let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
        let (mpk, msk) = setup(group, &mut rng);
        (mpk, msk, rng)
    }

    #[test]
    fn all_ops_roundtrip() {
        let (mpk, msk, mut rng) = setup_small();
        let table = DlogTable::new(mpk.group(), 100_000);
        let cases = [
            (BasicOp::Add, 17, 25),
            (BasicOp::Add, -17, 25),
            (BasicOp::Sub, 9, 30),
            (BasicOp::Sub, -9, -30),
            (BasicOp::Mul, 12, 11),
            (BasicOp::Mul, -12, 11),
            (BasicOp::Mul, 12, -11),
            (BasicOp::Div, 144, 12),
            (BasicOp::Div, -144, 12),
            (BasicOp::Div, 144, -12),
        ];
        for (op, x, y) in cases {
            let ct = encrypt(&mpk, x, &mut rng);
            let sk = key_derive(mpk.group(), &msk, ct.commitment(), op, y).unwrap();
            let got = decrypt(&mpk, &sk, &ct, op, y, &table).unwrap();
            assert_eq!(got, op.apply(x, y), "{x} {op} {y}");
        }
    }

    #[test]
    fn random_add_sub_mul() {
        let (mpk, msk, mut rng) = setup_small();
        let table = DlogTable::new(mpk.group(), 1_000_000);
        for _ in 0..32 {
            let x = rng.random_range(-500i64..=500);
            let y = rng.random_range(-500i64..=500);
            for op in [BasicOp::Add, BasicOp::Sub, BasicOp::Mul] {
                let ct = encrypt(&mpk, x, &mut rng);
                let sk = key_derive(mpk.group(), &msk, ct.commitment(), op, y).unwrap();
                assert_eq!(
                    decrypt(&mpk, &sk, &ct, op, y, &table).unwrap(),
                    op.apply(x, y),
                    "{x} {op} {y}"
                );
            }
        }
    }

    #[test]
    fn exact_division_only() {
        let (mpk, msk, mut rng) = setup_small();
        let table = DlogTable::new(mpk.group(), 1000);
        // Exact: 84 / 7 = 12.
        let ct = encrypt(&mpk, 84, &mut rng);
        let sk = key_derive(mpk.group(), &msk, ct.commitment(), BasicOp::Div, 7).unwrap();
        assert_eq!(
            decrypt(&mpk, &sk, &ct, BasicOp::Div, 7, &table).unwrap(),
            12
        );
        // Inexact: 85 / 7 — exponent is a field element, dlog must fail.
        let ct = encrypt(&mpk, 85, &mut rng);
        let sk = key_derive(mpk.group(), &msk, ct.commitment(), BasicOp::Div, 7).unwrap();
        assert_eq!(
            decrypt(&mpk, &sk, &ct, BasicOp::Div, 7, &table),
            Err(FeError::Group(GroupError::DlogOutOfRange { bound: 1000 }))
        );
    }

    #[test]
    fn fast_decrypt_matches_naive_reference() {
        let (mpk, msk, mut rng) = setup_small();
        for _ in 0..16 {
            let x = rng.random_range(-500i64..=500);
            let y = rng.random_range(-500i64..=500);
            for op in [BasicOp::Add, BasicOp::Sub, BasicOp::Mul] {
                let ct = encrypt(&mpk, x, &mut rng);
                let sk = key_derive(mpk.group(), &msk, ct.commitment(), op, y).unwrap();
                assert_eq!(
                    decrypt_raw(&mpk, &sk, &ct, op, y).unwrap(),
                    decrypt_raw_naive(&mpk, &sk, &ct, op, y).unwrap(),
                    "{x} {op} {y}"
                );
            }
        }
        // Division (exact and inexact raw forms agree too) and y = 0 mul.
        let ct = encrypt(&mpk, 84, &mut rng);
        let sk = key_derive(mpk.group(), &msk, ct.commitment(), BasicOp::Div, 7).unwrap();
        assert_eq!(
            decrypt_raw(&mpk, &sk, &ct, BasicOp::Div, 7).unwrap(),
            decrypt_raw_naive(&mpk, &sk, &ct, BasicOp::Div, 7).unwrap()
        );
        let ct = encrypt(&mpk, 9, &mut rng);
        let sk = key_derive(mpk.group(), &msk, ct.commitment(), BasicOp::Mul, 0).unwrap();
        assert_eq!(
            decrypt_raw(&mpk, &sk, &ct, BasicOp::Mul, 0).unwrap(),
            decrypt_raw_naive(&mpk, &sk, &ct, BasicOp::Mul, 0).unwrap()
        );
    }

    #[test]
    fn division_by_zero_rejected() {
        let (mpk, msk, mut rng) = setup_small();
        let ct = encrypt(&mpk, 10, &mut rng);
        assert_eq!(
            key_derive(mpk.group(), &msk, ct.commitment(), BasicOp::Div, 0),
            Err(FeError::InvalidOperand("division by zero"))
        );
    }

    #[test]
    fn op_mismatch_rejected() {
        let (mpk, msk, mut rng) = setup_small();
        let table = DlogTable::new(mpk.group(), 1000);
        let ct = encrypt(&mpk, 10, &mut rng);
        let sk = key_derive(mpk.group(), &msk, ct.commitment(), BasicOp::Add, 5).unwrap();
        assert!(matches!(
            decrypt(&mpk, &sk, &ct, BasicOp::Mul, 5, &table),
            Err(FeError::InvalidOperand(_))
        ));
    }

    #[test]
    fn key_is_bound_to_commitment() {
        // A key derived for ciphertext A must not decrypt ciphertext B
        // (the commitment randomness differs).
        let (mpk, msk, mut rng) = setup_small();
        let table = DlogTable::new(mpk.group(), 1000);
        let ct_a = encrypt(&mpk, 10, &mut rng);
        let ct_b = encrypt(&mpk, 10, &mut rng);
        let sk_a = key_derive(mpk.group(), &msk, ct_a.commitment(), BasicOp::Add, 5).unwrap();
        match decrypt(&mpk, &sk_a, &ct_b, BasicOp::Add, 5, &table) {
            Ok(v) => assert_ne!(v, 15),
            Err(FeError::Group(GroupError::DlogOutOfRange { .. })) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let (mpk, _msk, mut rng) = setup_small();
        let a = encrypt(&mpk, 3, &mut rng);
        let b = encrypt(&mpk, 3, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_operands() {
        let (mpk, msk, mut rng) = setup_small();
        let table = DlogTable::new(mpk.group(), 100);
        // x = 0 works for every op with nonzero y.
        for op in [BasicOp::Add, BasicOp::Sub, BasicOp::Mul, BasicOp::Div] {
            let ct = encrypt(&mpk, 0, &mut rng);
            let sk = key_derive(mpk.group(), &msk, ct.commitment(), op, 4).unwrap();
            assert_eq!(
                decrypt(&mpk, &sk, &ct, op, 4, &table).unwrap(),
                op.apply(0, 4)
            );
        }
        // y = 0 works for add/sub/mul.
        for op in [BasicOp::Add, BasicOp::Sub, BasicOp::Mul] {
            let ct = encrypt(&mpk, 9, &mut rng);
            let sk = key_derive(mpk.group(), &msk, ct.commitment(), op, 0).unwrap();
            assert_eq!(
                decrypt(&mpk, &sk, &ct, op, 0, &table).unwrap(),
                op.apply(9, 0)
            );
        }
    }
}
