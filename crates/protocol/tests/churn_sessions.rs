//! Client churn at the protocol layer: drop, rejoin, and re-shard
//! scenarios driven through the role state machines by an in-process
//! harness with explicit fault injection points.
//!
//! The core claim (DESIGN.md §14): where the deterministic schedule
//! survives churn — every dropped client rejoins — the final weights
//! are **bit-identical** to an uninterrupted golden run, because a
//! rejoining client is rewound to the server's `delivered` cursor and
//! FEIP/FEBO decryption is exact (re-encryption randomness never
//! reaches the trained weights). Where the schedule is re-cut (a
//! permanent departure under the re-sharding policy), the re-shard
//! itself is asserted deterministic and explicit.

use std::collections::VecDeque;
use std::sync::Arc;

use cryptonn_core::Objective;
use cryptonn_data::clinic_dataset;
use cryptonn_matrix::Matrix;
use cryptonn_parallel::Parallelism;
use cryptonn_protocol::{
    mlp_session_config, round_robin_shards, AuthorityChannel, AuthoritySession, ClientId,
    ClientSession, KeyRequest, KeyResponse, MlpSpec, Party, ProtocolError, PublicParams,
    ServerSession, SessionConfig, SessionPolicy, SessionSummary, TrainingSessionRunner,
    WireMessage,
};
use proptest::prelude::*;

fn churn_config(feature_dim: usize, classes: usize, clients: u32, epochs: u32) -> SessionConfig {
    let mut config = mlp_session_config(
        MlpSpec {
            feature_dim,
            hidden: vec![3],
            classes,
            objective: Objective::SoftmaxCrossEntropy,
        },
        clients,
        epochs,
        3,
        0.7,
    );
    config.policy = SessionPolicy::resume();
    config
}

/// The uninterrupted reference run: same config (policy included — the
/// policy never reaches the arithmetic), same dataset, no churn.
fn golden(config: &SessionConfig, data: &cryptonn_data::Dataset) -> SessionSummary {
    TrainingSessionRunner::new(config.clone())
        .run_mlp(data)
        .expect("golden run")
        .summary
}

struct DirectChannel(Arc<AuthoritySession>);

impl AuthorityChannel for DirectChannel {
    fn exchange(&mut self, req: KeyRequest) -> Result<KeyResponse, ProtocolError> {
        Ok(self.0.handle(&req))
    }
}

/// One client's slot in the harness: its state machine survives a drop
/// (the process is still alive; only its connection died), exactly as
/// `run_client_resumable` keeps the state machine across attempts.
struct ClientSlot {
    sm: ClientSession,
    connected: bool,
}

/// An in-process pump with fault injection points: drop a client
/// (losing its in-flight messages), rejoin it through the repeat
/// Register → `Resume` re-sync, and observe the server's schedule.
struct ChurnHarness {
    config: SessionConfig,
    params: PublicParams,
    server: ServerSession,
    clients: Vec<ClientSlot>,
    queue: VecDeque<(ClientId, WireMessage)>,
    summary: Option<SessionSummary>,
}

impl ChurnHarness {
    fn new(config: &SessionConfig, shards: Vec<Vec<(Matrix<f64>, Matrix<f64>)>>) -> Self {
        let authority = Arc::new(AuthoritySession::new(config));
        let params = authority.public_params_for(config);
        let server = ServerSession::new(
            config,
            &params,
            Box::new(DirectChannel(authority)),
            Parallelism::Serial,
        );
        let clients = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| ClientSlot {
                sm: ClientSession::new(
                    ClientId(i as u32),
                    config.client_seed_base + i as u64,
                    Parallelism::Serial,
                    shard,
                ),
                connected: true,
            })
            .collect();
        let mut harness = Self {
            config: config.clone(),
            params,
            server,
            clients,
            queue: VecDeque::new(),
            summary: None,
        };
        for i in 0..harness.clients.len() {
            harness.handshake(i);
        }
        harness
    }

    /// Feeds one client the session handshake (what a fresh or re-made
    /// connection delivers) and queues whatever it emits.
    fn handshake(&mut self, i: usize) {
        let config_msg = WireMessage::Config(self.config.clone());
        let params_msg = WireMessage::PublicParams(self.params.clone());
        for msg in [config_msg, params_msg] {
            let slot = &mut self.clients[i];
            let id = slot.sm.id();
            for ob in slot.sm.handle_message(&msg).expect("client handshake") {
                self.queue.push_back((id, ob.msg));
            }
        }
    }

    /// Routes one server outbound: addressed frames to their recipient,
    /// broadcasts to every *connected* client — a dropped client's
    /// connection no longer exists, so frames to it fall on the floor.
    fn route(&mut self, to: Party, msg: &WireMessage) {
        if let WireMessage::Summary(s) = msg {
            self.summary = Some(s.clone());
        }
        for slot in &mut self.clients {
            let deliver = match to {
                Party::Client(i) => slot.sm.id() == ClientId(i),
                _ => true,
            };
            if !deliver || !slot.connected {
                continue;
            }
            let id = slot.sm.id();
            for ob in slot.sm.handle_message(msg).expect("client pump") {
                self.queue.push_back((id, ob.msg));
            }
        }
    }

    /// Pumps queued client→server messages until the queue drains (a
    /// stall: the schedule waits on a dropped client) or the summary
    /// fires, or `stop` says to pause (the fault injection point).
    fn pump_until(&mut self, mut stop: impl FnMut(&ServerSession) -> bool) {
        while let Some((from, msg)) = self.queue.pop_front() {
            if !self.clients[from.0 as usize].connected {
                // In-flight frames from a dead connection are lost.
                continue;
            }
            let outs = self.server.handle_message(&msg).expect("server pump");
            for ob in outs {
                self.route(ob.to, &ob.msg);
            }
            if self.summary.is_some() || stop(&self.server) {
                return;
            }
        }
    }

    fn pump_to_quiescence(&mut self) {
        self.pump_until(|_| false);
    }

    /// Severs client `i`: its queued in-flight messages are lost and
    /// the server gets the transport-level notice.
    fn drop_client(&mut self, i: usize) {
        self.clients[i].connected = false;
        let id = self.clients[i].sm.id();
        self.queue.retain(|(from, _)| *from != id);
        let outs = self.server.client_gone(id).expect("resume policy");
        for ob in outs {
            self.route(ob.to, &ob.msg);
        }
    }

    /// Reconnects client `i`: the surviving state machine parks its
    /// emitter (its local cursor is stale) and redoes the handshake;
    /// the repeat Register draws the server's `Resume` (or the `Start`
    /// barrier, if the schedule was never fixed).
    fn rejoin_client(&mut self, i: usize) {
        self.clients[i].sm.park_until_resume();
        self.clients[i].connected = true;
        self.handshake(i);
    }

    fn finish(&mut self) -> SessionSummary {
        self.pump_to_quiescence();
        self.summary.clone().expect("session must complete")
    }
}

/// A rejoin whose disconnect notice never reached the server (the
/// fresh connection voided the stale notice): the repeat Register
/// alone must purge the dead connection's buffered batches, or the
/// rewound client's re-sent steps collide with the duplicate-step
/// check as substitutions and the session fails.
#[test]
fn rejoin_without_disconnect_notice_purges_buffered_batches() {
    let data = clinic_dataset(12, 5);
    let config = churn_config(data.feature_dim(), data.classes(), 2, 2);
    let reference = golden(&config, &data);

    let shards = round_robin_shards(&data, 3, 2);
    let mut harness = ChurnHarness::new(&config, shards);
    // Run until client 0's step-ahead batch sits in the reorder buffer
    // (the handshake order makes its second emission the first
    // buffered frame), then lose its connection without the server
    // ever hearing about it.
    harness.pump_until(|s| s.pending_batches() > 0);
    assert!(harness.server.pending_batches() > 0);

    // Over a real transport the rejoin can beat the dead connection's
    // EOF notice (whose stale epoch the fresh writer then voids), so
    // `client_gone` never runs. Model the racing interleaving
    // directly: the rejoined connection's repeat Register and rewound
    // re-sends reach the server *before* any other client's queued
    // frame, while the dead connection's buffered batch still sits in
    // the reorder buffer.
    let id = harness.clients[0].sm.id();
    harness.queue.retain(|(from, _)| *from != id);
    harness.clients[0].sm.park_until_resume();
    let mut to_server = VecDeque::new();
    for msg in [
        WireMessage::Config(harness.config.clone()),
        WireMessage::PublicParams(harness.params.clone()),
    ] {
        to_server.extend(
            harness.clients[0]
                .sm
                .handle_message(&msg)
                .expect("rejoin handshake"),
        );
    }
    while let Some(ob) = to_server.pop_front() {
        let outs = harness
            .server
            .handle_message(&ob.msg)
            .expect("a notice-less rejoin must not trip the duplicate-step check");
        for out in outs {
            match out.to {
                // The addressed Resume (and any delta) comes straight
                // back to the rejoined client; its replies stay ahead
                // of the other clients' queued frames.
                Party::Client(i) if ClientId(i) == id => {
                    to_server.extend(
                        harness.clients[0]
                            .sm
                            .handle_message(&out.msg)
                            .expect("client resync"),
                    );
                }
                _ => harness.route(out.to, &out.msg),
            }
        }
    }
    let resumed = harness.finish();
    assert_eq!(
        resumed, reference,
        "a notice-less rejoin must still converge to the golden run"
    );
}

/// A client dropped mid-epoch — with batches both consumed and
/// in-flight — rejoins and the run completes bit-identical to the
/// uninterrupted golden run.
#[test]
fn dropped_client_rejoins_and_completes_bit_identically() {
    let data = clinic_dataset(12, 5);
    let config = churn_config(data.feature_dim(), data.classes(), 2, 2);
    let reference = golden(&config, &data);
    assert_eq!(reference.steps, 8);

    let shards = round_robin_shards(&data, 3, 2);
    let mut harness = ChurnHarness::new(&config, shards);
    // Train into the schedule, then sever client 1 mid-epoch.
    harness.pump_until(|s| s.steps() >= 3);
    assert!(harness.server.steps() >= 3);
    harness.drop_client(1);
    // The survivors run the schedule to its stall point.
    harness.pump_to_quiescence();
    assert!(
        harness.summary.is_none(),
        "the schedule must stall on the dropped client, not finish without it"
    );
    let stalled_at = harness.server.steps();
    assert!(stalled_at < reference.steps);

    harness.rejoin_client(1);
    let resumed = harness.finish();
    assert_eq!(
        resumed, reference,
        "resumed run must match the golden run bit-for-bit"
    );
}

/// A client dropped *before the schedule is fixed* gets no `Resume` on
/// rejoin (nothing was delivered); the `Start` barrier is its re-sync
/// point, and the run still completes bit-identical.
#[test]
fn drop_before_schedule_fixed_resyncs_via_start_barrier() {
    let data = clinic_dataset(12, 5);
    let config = churn_config(data.feature_dim(), data.classes(), 2, 1);
    let reference = golden(&config, &data);

    let shards = round_robin_shards(&data, 3, 2);
    let mut harness = ChurnHarness::new(&config, shards);
    // Sever client 1 while its Register is still in flight: the
    // schedule never fixes, so the session stalls pre-Start.
    harness.drop_client(1);
    harness.pump_to_quiescence();
    assert!(harness.summary.is_none());
    assert_eq!(harness.server.steps(), 0);

    harness.rejoin_client(1);
    let resumed = harness.finish();
    assert_eq!(resumed, reference);
}

/// Repeated churn of the same client — drop, rejoin, drop again later,
/// rejoin again — still lands on the golden weights.
#[test]
fn repeated_churn_of_one_client_still_matches_golden() {
    let data = clinic_dataset(12, 5);
    let config = churn_config(data.feature_dim(), data.classes(), 2, 2);
    let reference = golden(&config, &data);

    let shards = round_robin_shards(&data, 3, 2);
    let mut harness = ChurnHarness::new(&config, shards);
    harness.pump_until(|s| s.steps() >= 2);
    harness.drop_client(1);
    harness.pump_to_quiescence();
    harness.rejoin_client(1);
    harness.pump_until(|s| s.steps() >= 5);
    harness.drop_client(1);
    harness.pump_to_quiescence();
    harness.rejoin_client(1);
    assert_eq!(harness.finish(), reference);
}

/// A permanent departure under the re-sharding policy: the schedule is
/// re-cut onto the survivors. Bit-identity with the golden run is off
/// the table (the dropped client's unsent data leaves the run), so the
/// re-shard itself is asserted explicitly — who survives, where the
/// cut lands, what the shrunken schedule trains — and the whole
/// scenario is asserted deterministic by running it twice.
#[test]
fn permanent_departure_reshards_deterministically_onto_survivors() {
    let data = clinic_dataset(12, 5);
    let mut config = churn_config(data.feature_dim(), data.classes(), 2, 2);
    config.policy = SessionPolicy::resume_resharding();

    let run_scenario = || {
        let shards = round_robin_shards(&data, 3, 2);
        let mut harness = ChurnHarness::new(&config, shards);
        harness.pump_until(|s| s.steps() >= 3);
        let before_total = harness.server.total_steps().expect("schedule fixed");
        assert_eq!(before_total, 8);
        harness.drop_client(1);
        // The drop alone need not re-shard (the cut happens when the
        // schedule stalls on the departed owner); pumping to
        // quiescence drives the survivor through the re-cut schedule.
        let summary = harness.finish();

        let spec = harness
            .server
            .reshard_spec()
            .expect("a re-shard must have been cut")
            .clone();
        assert_eq!(harness.server.generation(), 1);
        assert_eq!(spec.gen, 1);
        // Explicit schedule assertions: only client 0 survives, its
        // cursor at the cut equals what the server had consumed of it,
        // and the re-cut run is exactly base-stake minus what left.
        assert_eq!(spec.survivors.len(), 1);
        assert_eq!(spec.survivors[0].client, ClientId(0));
        assert_eq!(
            spec.survivors[0].delivered + spec.survivors[0].remaining,
            harness.server.delivered(ClientId(0)),
            "the survivor finished exactly its re-cut stake"
        );
        let new_total = harness.server.total_steps().expect("schedule still fixed");
        assert_eq!(
            new_total,
            spec.from_step + spec.survivors[0].remaining,
            "re-cut run = steps before the cut + survivor's remaining stake"
        );
        assert!(new_total < before_total);
        assert_eq!(summary.steps, new_total);
        (summary, spec)
    };

    let (summary_a, spec_a) = run_scenario();
    let (summary_b, spec_b) = run_scenario();
    assert_eq!(summary_a, summary_b, "re-shard must be deterministic");
    assert_eq!(spec_a, spec_b, "re-cut schedule must be deterministic");
}

// Seeded-random churn: for K ∈ {2, 4} and an arbitrary drop point,
// dropping an arbitrary client mid-run and rejoining it after the
// stall always completes — bit-identical to the golden run. Heavy
// (two full runs per case), so release-only like the other training
// equivalence suites.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    #[cfg_attr(debug_assertions, ignore = "training sessions are slow in debug")]
    fn seeded_random_churn_always_rejoins_to_golden_weights(
        k in prop_oneof![Just(2u32), Just(4u32)],
        victim_seed in any::<u64>(),
        drop_at in any::<u64>(),
    ) {
        let data = clinic_dataset(24, 5);
        let config = churn_config(data.feature_dim(), data.classes(), k, 1);
        let reference = golden(&config, &data);
        let total = reference.steps;

        let victim = (victim_seed % u64::from(k)) as usize;
        let drop_step = drop_at % total;
        let shards = round_robin_shards(&data, 3, k as usize);
        let mut harness = ChurnHarness::new(&config, shards);
        harness.pump_until(|s| s.steps() >= drop_step);
        harness.drop_client(victim);
        harness.pump_to_quiescence();
        if harness.summary.is_none() {
            harness.rejoin_client(victim);
        }
        let resumed = harness.finish();
        prop_assert_eq!(resumed, reference);
    }
}
