//! Serde roundtrips for every wire message type: anything the session
//! layer can put on the wire must survive JSON and come back equal —
//! including the ciphertext-bearing payloads, whose group elements are
//! the actual serialized surface. Every roundtrip here runs through
//! *both* wire formats — the seed JSON and the binary codec — and
//! cross-format (encode one, the typed result equals the other's), so
//! the two stay interchangeable dialects of one frozen alphabet.

use cryptonn_core::{Client, Objective};
use cryptonn_fe::threshold::{ShareAuthority, ShareSpec, ThresholdSetup};
use cryptonn_fe::{BasicOp, FeboKeyRequest, KeyAuthority, KeyService, PermittedFunctions};
use cryptonn_group::{SchnorrGroup, SecurityLevel};
use cryptonn_matrix::{ConvSpec, Matrix, Tensor4};
use cryptonn_protocol::{
    mlp_session_config, ClientId, CnnArch, EncryptedBatchMsg, EncryptedImageBatchMsg, EpochBarrier,
    FeboKeysRequest, FeipKeysRequest, KeyRequest, KeyResponse, MlpSpec, ModelDelta, ModelSpec,
    PartialKey, Party, PredictRequest, Prediction, PublicParams, RegisterClient, SessionSummary,
    ShareInfo, ShareRequest, TrainingStart, Transcript, WireMessage,
};
use cryptonn_smc::FixedPoint;
use proptest::prelude::*;
use std::sync::OnceLock;

fn authority() -> &'static KeyAuthority {
    static AUTH: OnceLock<KeyAuthority> = OnceLock::new();
    AUTH.get_or_init(|| {
        let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
        KeyAuthority::with_seed(group, PermittedFunctions::all(), 55)
    })
}

fn roundtrip(msg: &WireMessage) {
    let json = serde_json::to_string(msg).expect("serialize");
    let from_json: WireMessage = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(&from_json, msg);
    let bin = cryptonn_wire::to_vec(msg).expect("binary serialize");
    let from_bin: WireMessage = cryptonn_wire::from_slice(&bin).expect("binary deserialize");
    assert_eq!(&from_bin, msg);
    // Cross-format equivalence: both decodes land on the identical
    // typed message, so a JSON client and a binary client of one
    // daemon observe the same protocol.
    assert_eq!(from_json, from_bin);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn config_roundtrips(clients in 1u32..8, epochs in 1u32..5, hidden in 1usize..9) {
        let spec = MlpSpec {
            feature_dim: 7,
            hidden: vec![hidden, hidden + 1],
            classes: 3,
            objective: Objective::SoftmaxCrossEntropy,
        };
        roundtrip(&WireMessage::Config(mlp_session_config(spec, clients, epochs, 4, 0.25)));
    }

    #[test]
    fn register_and_metrics_roundtrip(client in 0u32..32, step in 0u64..1000, loss in -10.0f64..10.0) {
        roundtrip(&WireMessage::Register(RegisterClient {
            client: ClientId(client),
            batches_per_epoch: step,
        }));
        roundtrip(&WireMessage::Delta(ModelDelta {
            step,
            client: ClientId(client),
            loss,
        }));
        roundtrip(&WireMessage::Epoch(EpochBarrier { epoch: client }));
        roundtrip(&WireMessage::Start(TrainingStart {
            batches_per_epoch: step,
        }));
    }

    #[test]
    fn public_params_roundtrip(dim in 1usize..5, classes in 1usize..4) {
        let auth = authority();
        roundtrip(&WireMessage::PublicParams(PublicParams {
            x_mpk: KeyAuthority::feip_public_key(auth, dim),
            y_mpk: KeyAuthority::feip_public_key(auth, classes),
            febo_mpk: KeyAuthority::febo_public_key(auth),
            fp: FixedPoint::TWO_DECIMALS,
        }));
    }

    #[test]
    fn encrypted_batch_roundtrips(seed in 0u64..1000, rows in 1usize..4) {
        let auth = authority();
        let mut client = Client::for_mlp(auth, 3, 2, FixedPoint::TWO_DECIMALS, seed);
        let x = Matrix::from_fn(rows, 3, |r, c| ((r * 3 + c + seed as usize) % 10) as f64 / 10.0);
        let y = Matrix::from_fn(rows, 2, |r, c| if r % 2 == c { 1.0 } else { 0.0 });
        let batch = client.encrypt_batch(&x, &y).unwrap();
        let msg = WireMessage::Batch(EncryptedBatchMsg {
            client: ClientId(seed as u32 % 4),
            step: seed,
            gen: 0,
            batch,
        });
        roundtrip(&msg);
        // Label-free prediction batches serialize too.
        let pred = client.encrypt_features(&x).unwrap();
        roundtrip(&WireMessage::Batch(EncryptedBatchMsg {
            client: ClientId(0),
            step: seed,
            gen: 0,
            batch: pred,
        }));
    }

    #[test]
    fn encrypted_image_batch_roundtrips(seed in 0u64..1000) {
        let auth = authority();
        let spec = ConvSpec::square(3, 1, 1);
        let mut client = Client::for_cnn(auth, &spec, 1, 2, FixedPoint::TWO_DECIMALS, seed);
        let images = Tensor4::from_vec(
            1, 1, 4, 4,
            (0..16).map(|v| ((v + seed as usize) % 7) as f64 / 7.0).collect(),
        );
        let y = Matrix::from_rows(&[&[1.0, 0.0]]);
        let batch = client.encrypt_image_batch(&images, &y, &spec).unwrap();
        let msg = WireMessage::ImageBatch(EncryptedImageBatchMsg {
            client: ClientId(1),
            step: seed,
            gen: 0,
            batch,
        });
        roundtrip(&msg);
    }

    #[test]
    fn key_traffic_roundtrips(dim in 1usize..4, y in -50i64..50) {
        let auth = authority();
        let ys: Vec<Vec<i64>> = (0..2).map(|i| (0..dim).map(|j| y + (i * dim + j) as i64).collect()).collect();
        roundtrip(&WireMessage::KeyRequest(KeyRequest::FeipMpk(dim)));
        roundtrip(&WireMessage::KeyRequest(KeyRequest::Feip(FeipKeysRequest {
            dim,
            ys: ys.clone(),
        })));
        let keys = auth.derive_ip_keys(dim, &ys).unwrap();
        roundtrip(&WireMessage::KeyResponse(KeyResponse::Feip(keys)));
        roundtrip(&WireMessage::KeyResponse(KeyResponse::FeipMpk(
            KeyAuthority::feip_public_key(auth, dim),
        )));

        let mut rng = rand::rngs::StdRng::seed_from_u64(y.unsigned_abs());
        let ct = cryptonn_fe::febo::encrypt(&KeyAuthority::febo_public_key(auth), y, &mut rng);
        let reqs = vec![FeboKeyRequest { cmt: *ct.commitment(), op: BasicOp::Sub, y }];
        roundtrip(&WireMessage::KeyRequest(KeyRequest::Febo(FeboKeysRequest {
            reqs: reqs.clone(),
        })));
        let keys = auth.derive_bo_keys(&reqs).unwrap();
        roundtrip(&WireMessage::KeyResponse(KeyResponse::Febo(keys)));
        roundtrip(&WireMessage::KeyResponse(KeyResponse::Denied("refused".into())));
    }

    #[test]
    fn share_traffic_roundtrips(dim in 1usize..4, y in -50i64..50, index in 1u32..4) {
        let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
        let setup = ThresholdSetup::new(3, 2).unwrap();
        let spec = ShareSpec::new(setup, index).unwrap();
        let node = ShareAuthority::with_seed(group, PermittedFunctions::all(), 55, spec);

        roundtrip(&WireMessage::ShareRequest(ShareRequest::Info));
        roundtrip(&WireMessage::PartialKey(PartialKey::Info(ShareInfo {
            index,
            n: 3,
            t: 2,
            febo_commitments: node.febo_commitments().to_vec(),
        })));

        let ys: Vec<Vec<i64>> = (0..2).map(|i| (0..dim).map(|j| y + (i * dim + j) as i64).collect()).collect();
        roundtrip(&WireMessage::ShareRequest(ShareRequest::Feip(FeipKeysRequest {
            dim,
            ys: ys.clone(),
        })));
        roundtrip(&WireMessage::PartialKey(PartialKey::Feip(
            node.feip_partials(dim, &ys).unwrap(),
        )));

        let mut rng = rand::rngs::StdRng::seed_from_u64(y.unsigned_abs());
        let ct = cryptonn_fe::febo::encrypt(&node.febo_public_key(), y, &mut rng);
        let reqs = vec![FeboKeyRequest { cmt: *ct.commitment(), op: BasicOp::Sub, y }];
        roundtrip(&WireMessage::ShareRequest(ShareRequest::Febo(FeboKeysRequest {
            reqs: reqs.clone(),
        })));
        roundtrip(&WireMessage::PartialKey(PartialKey::Febo(
            node.febo_partials(&reqs).unwrap(),
        )));
        roundtrip(&WireMessage::PartialKey(PartialKey::Denied("refused".into())));
    }

    #[test]
    fn predict_traffic_roundtrips(seed in 0u64..1000, rows in 1usize..4) {
        let auth = authority();
        let mut client = Client::for_mlp(auth, 3, 2, FixedPoint::TWO_DECIMALS, seed);
        let x = Matrix::from_fn(rows, 3, |r, c| ((r * 3 + c + seed as usize) % 10) as f64 / 10.0);
        let predict = WireMessage::Predict(PredictRequest {
            id: seed,
            batch: client.encrypt_features(&x).unwrap(),
        });
        roundtrip(&predict);
        roundtrip(&WireMessage::Prediction(Prediction {
            id: seed,
            outputs: Matrix::from_fn(rows, 2, |r, c| (r as f64 + seed as f64) / (c as f64 + 2.0)),
        }));
    }

    #[test]
    fn summary_roundtrips(rows in 1usize..4, cols in 1usize..4) {
        roundtrip(&WireMessage::Summary(SessionSummary {
            steps: (rows * cols) as u64,
            losses: (0..rows).map(|i| i as f64 / 3.0).collect(),
            final_w1: Matrix::from_fn(rows, cols, |r, c| (r as f64) - (c as f64) / 7.0),
            final_b1: Matrix::from_fn(1, cols, |_, c| c as f64 * 0.125),
        }));
    }
}

use rand::SeedableRng;

/// A transcript with one envelope of every party pairing survives the
/// JSON roundtrip with sequence numbers and addressing intact.
#[test]
fn transcript_envelopes_roundtrip() {
    let mut t = Transcript::new();
    t.push(
        Party::Scheduler,
        Party::Broadcast,
        WireMessage::Epoch(EpochBarrier { epoch: 0 }),
    );
    t.push(
        Party::Client(3),
        Party::Server,
        WireMessage::Register(RegisterClient {
            client: ClientId(3),
            batches_per_epoch: 2,
        }),
    );
    t.push(
        Party::Server,
        Party::Authority,
        WireMessage::KeyRequest(KeyRequest::FeipMpk(5)),
    );
    let json = t.to_json().unwrap();
    let back = Transcript::from_json(&json).unwrap();
    assert_eq!(back, t);
    assert_eq!(back.entries[2].seq, 2);
    assert_eq!(back.of_kind("key-request").count(), 1);
}

/// The CNN model specs serialize (they ride in `SessionConfig`).
#[test]
fn cnn_specs_roundtrip() {
    for model in [
        ModelSpec::Cnn(CnnArch::Lenet5),
        ModelSpec::Cnn(CnnArch::LenetSmall(4)),
    ] {
        let json = serde_json::to_string(&model).unwrap();
        let back: ModelSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, model);
    }
}

/// The wire alphabet is frozen: transport-layer work (the reactor, the
/// inference fleet) must ride the protocol unchanged. The wildcard-free
/// match makes adding or removing a `WireMessage` variant a compile
/// error here, and the serde envelope of a representative frame pins
/// the external tag shape byte-for-byte.
#[test]
fn wire_alphabet_is_frozen() {
    fn serde_tag(msg: &WireMessage) -> &'static str {
        match msg {
            WireMessage::Config(_) => "Config",
            WireMessage::Register(_) => "Register",
            WireMessage::PublicParams(_) => "PublicParams",
            WireMessage::Start(_) => "Start",
            WireMessage::Batch(_) => "Batch",
            WireMessage::ImageBatch(_) => "ImageBatch",
            WireMessage::KeyRequest(_) => "KeyRequest",
            WireMessage::KeyResponse(_) => "KeyResponse",
            WireMessage::ShareRequest(_) => "ShareRequest",
            WireMessage::PartialKey(_) => "PartialKey",
            WireMessage::Delta(_) => "Delta",
            WireMessage::Epoch(_) => "Epoch",
            WireMessage::Summary(_) => "Summary",
            WireMessage::Predict(_) => "Predict",
            WireMessage::Prediction(_) => "Prediction",
            WireMessage::Resume(_) => "Resume",
            WireMessage::Reshard(_) => "Reshard",
        }
    }
    // Cheaply-constructible variants double-check that the serde tag
    // really is the variant name (externally tagged, no renames).
    let samples = [
        WireMessage::Start(TrainingStart {
            batches_per_epoch: 3,
        }),
        WireMessage::Epoch(EpochBarrier { epoch: 1 }),
        WireMessage::Delta(ModelDelta {
            step: 0,
            client: ClientId(0),
            loss: 0.0,
        }),
    ];
    for msg in &samples {
        let json = serde_json::to_string(msg).unwrap();
        let envelope = format!("{{\"{}\":", serde_tag(msg));
        assert!(
            json.starts_with(&envelope),
            "tag drifted for {msg:?}: {json}"
        );
    }
    assert_eq!(
        serde_json::to_string(&samples[1]).unwrap(),
        r#"{"Epoch":{"epoch":1}}"#
    );
}

/// At the paper's production group width, the binary encoding of an
/// encrypted batch is strictly — and substantially — smaller than the
/// JSON one: every 256-bit group element costs 64 hex digits plus
/// quotes under JSON but `tag + u32 len + ≤32` raw limb bytes under
/// binary. (At the tiny `Bits64` test group the fixed-width integer
/// tags can outweigh the hex savings, which is why this check pins
/// `Bits256` specifically — the bench gate's level.)
#[test]
fn binary_encrypted_batch_is_smaller_at_bits256() {
    let group = SchnorrGroup::precomputed(SecurityLevel::Bits256);
    let auth = KeyAuthority::with_seed(group, PermittedFunctions::all(), 77);
    let mut client = Client::for_mlp(&auth, 4, 3, FixedPoint::TWO_DECIMALS, 9);
    let x = Matrix::from_fn(2, 4, |r, c| ((r * 4 + c) % 10) as f64 / 10.0);
    let y = Matrix::from_fn(2, 3, |r, c| if r == c { 1.0 } else { 0.0 });
    let msg = WireMessage::Batch(EncryptedBatchMsg {
        client: ClientId(0),
        step: 0,
        gen: 0,
        batch: client.encrypt_batch(&x, &y).unwrap(),
    });
    roundtrip(&msg);
    let json = serde_json::to_string(&msg).unwrap();
    let bin = cryptonn_wire::to_vec(&msg).unwrap();
    assert!(
        bin.len() < json.len(),
        "binary ({}) not smaller than JSON ({})",
        bin.len(),
        json.len()
    );
}

/// The binary twin of [`wire_alphabet_is_frozen`]: the binary codec's
/// bytes are pinned at the same granularity — one full frame payload
/// byte-for-byte, plus the envelope prefix (magic, version, outer map,
/// tag string) of a frame of each cheap variant. Any change to the
/// magic, version, tag bytes, or field layout fails here before it
/// silently strands persisted ledgers and checkpoints.
#[test]
fn binary_wire_fixture_is_frozen() {
    // `{"Epoch":{"epoch":1}}`, in full.
    let msg = WireMessage::Epoch(EpochBarrier { epoch: 1 });
    let bytes = cryptonn_wire::to_vec(&msg).unwrap();
    let mut expect = vec![
        0xb1, 0x01, // magic, version
        0x0a, 1, 0, 0, 0, // map, 1 entry
        0x06, 5, 0, 0, 0, // inline str, 5 bytes
    ];
    expect.extend_from_slice(b"Epoch");
    expect.extend_from_slice(&[0x0a, 1, 0, 0, 0, 0x06, 5, 0, 0, 0]);
    expect.extend_from_slice(b"epoch");
    expect.push(0x04); // u64
    expect.extend_from_slice(&1u64.to_le_bytes());
    assert_eq!(bytes, expect, "binary Epoch frame drifted");
    let back: WireMessage = cryptonn_wire::from_slice(&bytes).unwrap();
    assert_eq!(back, msg);

    // Every cheap variant's envelope: magic, version, a 1-entry outer
    // map whose key is the inline variant tag.
    for (msg, tag) in [
        (
            WireMessage::Start(TrainingStart {
                batches_per_epoch: 3,
            }),
            "Start",
        ),
        (WireMessage::Epoch(EpochBarrier { epoch: 1 }), "Epoch"),
        (
            WireMessage::Delta(ModelDelta {
                step: 0,
                client: ClientId(0),
                loss: 0.0,
            }),
            "Delta",
        ),
    ] {
        let bytes = cryptonn_wire::to_vec(&msg).unwrap();
        let mut envelope = vec![0xb1, 0x01, 0x0a, 1, 0, 0, 0, 0x06];
        envelope.extend_from_slice(&(tag.len() as u32).to_le_bytes());
        envelope.extend_from_slice(tag.as_bytes());
        assert!(
            bytes.starts_with(&envelope),
            "binary envelope drifted for {msg:?}: {bytes:02x?}"
        );
    }
}
