//! Checkpoint durability: serde roundtrips, typed corruption
//! rejection, and crash-resume correctness — a checkpoint plus the
//! recorded suffix reconstructs the uninterrupted run bit-for-bit
//! (DESIGN.md §14).

use std::path::PathBuf;
use std::sync::OnceLock;

use cryptonn_core::Objective;
use cryptonn_data::clinic_dataset;
use cryptonn_protocol::{
    mlp_session_config, replay_server_prefix, resume_from_checkpoint, CheckpointError,
    CheckpointStore, MlpSpec, ReplayResolution, SessionCheckpoint, SessionConfig, SessionId,
    SessionSummary, TrainingSessionRunner, Transcript, CHECKPOINT_SCHEMA,
};
use proptest::prelude::*;

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cryptonn-ckpt-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tempdir");
    dir
}

fn small_config(feature_dim: usize, classes: usize) -> SessionConfig {
    mlp_session_config(
        MlpSpec {
            feature_dim,
            hidden: vec![3],
            classes,
            objective: Objective::SoftmaxCrossEntropy,
        },
        2,
        2,
        3,
        0.7,
    )
}

struct Recorded {
    config: SessionConfig,
    transcript: Transcript,
    summary: SessionSummary,
    checkpoint: SessionCheckpoint,
}

/// One recorded 8-step session with a mid-run checkpoint, shared by
/// every test (training is the expensive part; the assertions are
/// cheap).
fn recorded() -> &'static Recorded {
    static RECORDED: OnceLock<Recorded> = OnceLock::new();
    RECORDED.get_or_init(|| {
        let data = clinic_dataset(12, 5);
        let config = small_config(data.feature_dim(), data.classes());
        let store = CheckpointStore::new(tempdir("record"));
        let session = SessionId(7);
        let outcome = TrainingSessionRunner::new(config.clone())
            .with_checkpoints(store.clone(), session, 3)
            .run_mlp(&data)
            .expect("recorded session");
        let checkpoint = store.load(session, &config).expect("checkpoint on disk");
        Recorded {
            config,
            transcript: outcome.transcript,
            summary: outcome.summary,
            checkpoint,
        }
    })
}

#[test]
fn checkpoint_roundtrips_bit_identically_through_the_store() {
    let r = recorded();
    let store = CheckpointStore::new(tempdir("roundtrip"));
    store
        .save(SessionId(3), &r.config, &r.checkpoint)
        .expect("save");
    let loaded = store.load(SessionId(3), &r.config).expect("load");
    assert_eq!(loaded, r.checkpoint);
    assert_eq!(loaded.schema, CHECKPOINT_SCHEMA);
    assert!(loaded.next_step >= 3, "cut after the cadence step");
    assert!(loaded.transcript_offset > 0);
}

/// The resume equation: restoring the checkpoint and replaying only
/// the transcript suffix completes the run with weights and losses
/// bit-identical to the uninterrupted recording.
#[test]
fn checkpoint_plus_suffix_resumes_bit_identical_to_recording() {
    let r = recorded();
    let outcome = match resume_from_checkpoint(&r.transcript, &r.checkpoint) {
        Ok(ReplayResolution::Completed(outcome)) => outcome,
        other => panic!("full-suffix resume must complete, got {other:?}"),
    };
    assert!(outcome.matches_recording());
    assert_eq!(outcome.replayed, r.summary);
}

/// A transcript cut at the checkpoint's boundary is a verified prefix:
/// replay resolves to a typed [`ResumePoint`] aligned with the
/// checkpoint — not a stall error, not a bogus completion.
#[test]
fn prefix_ending_at_checkpoint_boundary_yields_a_resume_point() {
    let r = recorded();
    let mut prefix = r.transcript.clone();
    prefix
        .entries
        .truncate(r.checkpoint.transcript_offset as usize);
    match replay_server_prefix(&prefix) {
        Ok(ReplayResolution::Resume(rp)) => {
            assert_eq!(rp.next_step, r.checkpoint.next_step);
            assert_eq!(
                rp.pending_batches, 0,
                "a checkpoint cut is clean: nothing parked in the reorder buffer"
            );
            assert_eq!(rp.server.losses(), &r.checkpoint.losses[..]);
        }
        other => panic!("prefix at a checkpoint boundary must resume, got {other:?}"),
    }
}

#[test]
fn missing_checkpoint_is_a_typed_miss() {
    let r = recorded();
    let store = CheckpointStore::new(tempdir("missing"));
    assert_eq!(
        store.load(SessionId(99), &r.config).unwrap_err(),
        CheckpointError::Missing
    );
}

#[test]
fn checkpoint_for_a_different_config_is_rejected_by_fingerprint() {
    let r = recorded();
    let store = CheckpointStore::new(tempdir("fingerprint"));
    store
        .save(SessionId(1), &r.config, &r.checkpoint)
        .expect("save");
    let mut other = r.config.clone();
    other.lr += 0.05;
    assert_eq!(
        store.load(SessionId(1), &other).unwrap_err(),
        CheckpointError::FingerprintMismatch
    );
}

#[test]
fn stale_schema_is_rejected_by_variant() {
    let r = recorded();
    let store = CheckpointStore::new(tempdir("schema"));
    let mut stale = r.checkpoint.clone();
    stale.schema = CHECKPOINT_SCHEMA + 1;
    store.save(SessionId(1), &r.config, &stale).expect("save");
    assert_eq!(
        store.load(SessionId(1), &r.config).unwrap_err(),
        CheckpointError::StaleSchema {
            found: CHECKPOINT_SCHEMA + 1,
            expected: CHECKPOINT_SCHEMA,
        }
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Mutating the checkpoint's scalar state arbitrarily still
    /// roundtrips bit-identically through the store — the frame is
    /// content-agnostic about the payload it protects.
    #[test]
    fn mutated_checkpoints_roundtrip_bit_identically(
        next_step in 0u64..10_000,
        offset in 0u64..10_000,
        gen in 0u32..16,
        losses in proptest::collection::vec(-1.0e6f64..1.0e6, 0..24),
    ) {
        let r = recorded();
        let mut ckpt = r.checkpoint.clone();
        ckpt.next_step = next_step;
        ckpt.transcript_offset = offset;
        ckpt.gen = gen;
        ckpt.losses = losses;
        let store = CheckpointStore::new(tempdir("prop-roundtrip"));
        store.save(SessionId(2), &r.config, &ckpt).expect("save");
        let loaded = store.load(SessionId(2), &r.config).expect("load");
        prop_assert_eq!(loaded, ckpt);
    }

    /// Truncating the file anywhere — including mid-payload and inside
    /// the checksum — is a typed rejection, never a silent resume.
    #[test]
    fn truncated_checkpoint_files_are_rejected(cut in any::<u64>()) {
        let r = recorded();
        let store = CheckpointStore::new(tempdir("prop-truncate"));
        store.save(SessionId(2), &r.config, &r.checkpoint).expect("save");
        let path = store.path(SessionId(2));
        let bytes = std::fs::read(&path).expect("read back");
        let keep = (cut % bytes.len() as u64) as usize; // 0..len-1: always a strict prefix
        std::fs::write(&path, &bytes[..keep]).expect("truncate");
        let err = store.load(SessionId(2), &r.config).unwrap_err();
        prop_assert!(
            matches!(err, CheckpointError::Corrupt(_)),
            "truncation to {} of {} bytes must be Corrupt, got {:?}",
            keep, bytes.len(), err
        );
    }

    /// Flipping any single byte — header, fingerprint, payload, or
    /// checksum — is a typed rejection.
    #[test]
    fn corrupted_checkpoint_bytes_are_rejected(
        at in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let r = recorded();
        let store = CheckpointStore::new(tempdir("prop-flip"));
        store.save(SessionId(2), &r.config, &r.checkpoint).expect("save");
        let path = store.path(SessionId(2));
        let mut bytes = std::fs::read(&path).expect("read back");
        let i = (at % bytes.len() as u64) as usize;
        bytes[i] ^= flip;
        std::fs::write(&path, &bytes).expect("corrupt");
        let err = store.load(SessionId(2), &r.config).unwrap_err();
        prop_assert!(
            matches!(
                err,
                CheckpointError::Corrupt(_)
                    | CheckpointError::FingerprintMismatch
                    | CheckpointError::StaleSchema { .. }
            ),
            "byte {} flipped by {:#04x} must be rejected, got {:?}",
            i, flip, err
        );
    }
}
