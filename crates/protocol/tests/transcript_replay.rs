//! Transcript recording and replay: a recorded session must re-execute
//! bit-for-bit from its message stream alone, through JSON and back,
//! and tampering must be detected — plus the checked-in golden
//! transcript, which pins both the wire format and the training
//! numerics across commits.

use cryptonn_core::Objective;
use cryptonn_data::clinic_dataset;
use cryptonn_protocol::{
    mlp_session_config, replay_server, MlpSpec, ProtocolError, ReplayError, SessionConfig,
    TrainingSessionRunner, Transcript, WireMessage,
};

/// The golden session: 2 clients, 2 batches of 3 over the 6-sample
/// clinic set, one epoch. Regenerate the checked-in JSON with
/// `cargo run --release -p cryptonn-suite --example record_transcript`.
pub fn golden_config(feature_dim: usize, classes: usize) -> SessionConfig {
    mlp_session_config(
        MlpSpec {
            feature_dim,
            hidden: vec![3],
            classes,
            objective: Objective::SoftmaxCrossEntropy,
        },
        2,
        1,
        3,
        0.7,
    )
}

fn record_small_session() -> (cryptonn_protocol::SessionSummary, Transcript) {
    let data = clinic_dataset(6, 71);
    let config = golden_config(data.feature_dim(), data.classes());
    let outcome = TrainingSessionRunner::new(config)
        .run_mlp(&data)
        .expect("session must run");
    (outcome.summary, outcome.transcript)
}

#[test]
fn replay_reproduces_the_recorded_run() {
    let (summary, transcript) = record_small_session();
    let replayed = replay_server(&transcript).expect("replay must run");
    assert!(replayed.matches_recording());
    assert_eq!(replayed.replayed, summary);
}

#[test]
fn replay_survives_json_roundtrip() {
    let (_, transcript) = record_small_session();
    let json = transcript.to_json().unwrap();
    let parsed = Transcript::from_json(&json).unwrap();
    assert_eq!(parsed, transcript);
    let replayed = replay_server(&parsed).expect("replay after JSON roundtrip");
    assert!(replayed.matches_recording());
}

#[test]
fn tampered_key_response_is_detected() {
    let (_, mut transcript) = record_small_session();
    // Corrupt the first recorded FEIP key response by dropping a key:
    // the replayed server must either diverge or fail, never silently
    // reproduce the recording.
    let tampered = transcript
        .entries
        .iter_mut()
        .find_map(|e| match &mut e.msg {
            WireMessage::KeyResponse(cryptonn_protocol::KeyResponse::Feip(keys))
                if !keys.is_empty() =>
            {
                keys.pop();
                Some(())
            }
            _ => None,
        });
    assert!(tampered.is_some(), "no FEIP response to tamper with");
    match replay_server(&transcript) {
        Err(_) => {}
        Ok(outcome) => assert!(!outcome.matches_recording()),
    }
}

/// A forged trailing metric — attesting a training step that never
/// happened — must not pass adversarial replay, and must be rejected
/// by variant, naming the forged step.
#[test]
fn forged_trailing_delta_is_detected() {
    let (_, mut transcript) = record_small_session();
    transcript.push(
        cryptonn_protocol::Party::Server,
        cryptonn_protocol::Party::Broadcast,
        WireMessage::Delta(cryptonn_protocol::ModelDelta {
            step: 99,
            client: cryptonn_protocol::ClientId(0),
            loss: -1.0,
        }),
    );
    assert_eq!(
        replay_server(&transcript).unwrap_err(),
        ProtocolError::Replay(ReplayError::ForgedDelta { step: 99 })
    );
}

/// Editing a recorded loss in place is caught at the diverging step.
#[test]
fn edited_delta_loss_is_detected() {
    let (_, mut transcript) = record_small_session();
    let step = transcript
        .entries
        .iter_mut()
        .find_map(|e| match &mut e.msg {
            WireMessage::Delta(d) => {
                d.loss += 0.25;
                Some(d.step)
            }
            _ => None,
        })
        .expect("a delta to tamper with");
    assert!(matches!(
        replay_server(&transcript).unwrap_err(),
        ProtocolError::Replay(ReplayError::DeltaMismatch { step: s, .. }) if s == step
    ));
}

/// Extra recorded key exchanges the replayed server never asks for are
/// equally a forgery.
#[test]
fn unconsumed_key_exchange_is_detected() {
    let (_, mut transcript) = record_small_session();
    transcript.push(
        cryptonn_protocol::Party::Server,
        cryptonn_protocol::Party::Authority,
        WireMessage::KeyRequest(cryptonn_protocol::KeyRequest::FeipMpk(7)),
    );
    transcript.push(
        cryptonn_protocol::Party::Authority,
        cryptonn_protocol::Party::Server,
        WireMessage::KeyResponse(cryptonn_protocol::KeyResponse::Denied("x".into())),
    );
    assert_eq!(
        replay_server(&transcript).unwrap_err(),
        ProtocolError::Replay(ReplayError::UnconsumedKeyExchanges { count: 1 })
    );
}

/// A transcript whose key traffic does not alternate request/response
/// is structurally forged and named as such.
#[test]
fn unpaired_key_traffic_is_detected() {
    let (_, mut transcript) = record_small_session();
    transcript.push(
        cryptonn_protocol::Party::Server,
        cryptonn_protocol::Party::Authority,
        WireMessage::KeyRequest(cryptonn_protocol::KeyRequest::FeipMpk(7)),
    );
    assert_eq!(
        replay_server(&transcript).unwrap_err(),
        ProtocolError::Replay(ReplayError::DanglingRequest)
    );

    let (_, mut transcript) = record_small_session();
    let seq = transcript.entries.len() as u64;
    transcript.push(
        cryptonn_protocol::Party::Authority,
        cryptonn_protocol::Party::Server,
        WireMessage::KeyResponse(cryptonn_protocol::KeyResponse::Denied("x".into())),
    );
    assert_eq!(
        replay_server(&transcript).unwrap_err(),
        ProtocolError::Replay(ReplayError::ResponseWithoutRequest { seq })
    );
}

/// Malformed wire requests are refused, never panicking the authority.
#[test]
fn zero_dimension_key_requests_are_denied() {
    let data = clinic_dataset(6, 71);
    let config = golden_config(data.feature_dim(), data.classes());
    let authority = cryptonn_protocol::AuthoritySession::new(&config);
    for req in [
        cryptonn_protocol::KeyRequest::FeipMpk(0),
        cryptonn_protocol::KeyRequest::Feip(cryptonn_protocol::FeipKeysRequest {
            dim: 0,
            ys: vec![vec![]],
        }),
    ] {
        assert!(matches!(
            authority.handle(&req),
            cryptonn_protocol::KeyResponse::Denied(_)
        ));
    }
}

/// Stripping the per-step metric stream is tampering, not a weaker
/// recording: replay must refuse rather than skip the cross-check.
#[test]
fn stripped_delta_stream_is_detected() {
    let (_, mut transcript) = record_small_session();
    transcript.entries.retain(|e| e.msg.kind() != "delta");
    assert_eq!(
        replay_server(&transcript).unwrap_err(),
        ProtocolError::Replay(ReplayError::MissingDelta { step: 0 })
    );
}

#[test]
fn tampered_batch_step_is_rejected() {
    let (_, mut transcript) = record_small_session();
    for e in &mut transcript.entries {
        if let WireMessage::Batch(msg) = &mut e.msg {
            msg.step += 1; // break schedule order
            break;
        }
    }
    assert!(replay_server(&transcript).is_err());
}

/// A batch whose step tag leaves a permanent hole in the schedule sits
/// in the reorder buffer until the transcript runs out — a stalled
/// batch, not a silent skip.
#[test]
fn stalled_batch_is_detected() {
    let (_, mut transcript) = record_small_session();
    // Retag the *last* batch far beyond the schedule; its slot never
    // arrives. Deltas for it also never fire, so the recording's delta
    // stream goes unconsumed first or the stall is reported — either
    // way a typed replay error, never success.
    let mut last_batch = None;
    for (i, e) in transcript.entries.iter().enumerate() {
        if matches!(e.msg, WireMessage::Batch(_)) {
            last_batch = Some(i);
        }
    }
    let i = last_batch.expect("a batch to tamper with");
    if let WireMessage::Batch(msg) = &mut transcript.entries[i].msg {
        msg.step = 500;
    }
    assert!(matches!(
        replay_server(&transcript).unwrap_err(),
        ProtocolError::Replay(ReplayError::ForgedDelta { .. } | ReplayError::StalledBatches { .. })
    ));
}

/// The checked-in golden transcript replays to its recorded weights.
/// This is the cross-commit guarantee: any change to quantization, key
/// derivation, message layout, or training order breaks this test.
///
/// The recording pins bit-exact `f64` training numerics, which pass
/// through `exp`/`ln` in the softmax path — so a libm whose
/// transcendentals differ by an ulp from the recording platform can
/// fail this test without any code change. If that is the only
/// failure on a new platform, regenerate the fixture with the
/// `record_transcript` example and inspect the diff.
#[test]
fn golden_transcript_replays_to_identical_weights() {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/golden_2client_mlp.json");
    let transcript = Transcript::load(&path).expect("golden transcript must parse");
    let replayed = replay_server(&transcript).expect("golden transcript must replay");
    assert!(
        replayed.matches_recording(),
        "replayed weights/losses diverged from the checked-in recording"
    );
    // And the recording is what the current code would produce live.
    let (summary, _) = record_small_session();
    assert_eq!(
        replayed.replayed, summary,
        "live run diverged from the golden recording"
    );
}
