//! Client-count invariance: training with K clients on a sharded
//! dataset is bit-identical to the single-client run on the same
//! batches — the session-layer extension of PR 1's thread-count
//! invariance guarantee.
//!
//! The fast checks run everywhere; the heavier sweeps are `#[ignore]`d
//! in debug builds and run by the release CI job
//! (`cargo test --release`).

use cryptonn_core::Objective;
use cryptonn_data::{clinic_dataset, synthetic_digits, DigitConfig};
use cryptonn_parallel::Parallelism;
use cryptonn_protocol::{
    mlp_session_config, MlpSpec, RunnerOptions, SessionSummary, TrainingSessionRunner,
};

fn spec_for(data: &cryptonn_data::Dataset, hidden: Vec<usize>) -> MlpSpec {
    MlpSpec {
        feature_dim: data.feature_dim(),
        hidden,
        classes: data.classes(),
        objective: Objective::SoftmaxCrossEntropy,
    }
}

fn run(
    data: &cryptonn_data::Dataset,
    spec: MlpSpec,
    clients: u32,
    epochs: u32,
    batch: u32,
    options: RunnerOptions,
) -> SessionSummary {
    let config = mlp_session_config(spec, clients, epochs, batch, 0.8);
    TrainingSessionRunner::new(config)
        .with_options(options)
        .run_mlp(data)
        .expect("session must run")
        .summary
}

/// Bit-identical across K — the fast always-on check (1 vs 2 clients,
/// one epoch, tiny model).
#[test]
fn two_clients_match_single_client_exactly() {
    let data = clinic_dataset(12, 31);
    let spec = spec_for(&data, vec![3]);
    let options = RunnerOptions {
        record: false,
        ..RunnerOptions::default()
    };
    let one = run(&data, spec.clone(), 1, 1, 3, options);
    let two = run(&data, spec, 2, 1, 3, options);
    // Same losses, same weights, to the last bit.
    assert_eq!(one, two);
}

/// Pipelining must not change a single bit either.
#[test]
fn pipelining_is_bit_invariant() {
    let data = clinic_dataset(12, 32);
    let spec = spec_for(&data, vec![3]);
    let base = RunnerOptions {
        record: false,
        pipelined: false,
        parallelism: Parallelism::Serial,
    };
    let piped = RunnerOptions {
        record: false,
        pipelined: true,
        parallelism: Parallelism::Threads(4),
    };
    let a = run(&data, spec.clone(), 2, 1, 3, base);
    let b = run(&data, spec, 2, 1, 3, piped);
    assert_eq!(a, b);
}

/// The full sweep of the ISSUE's acceptance property: K ∈ {1, 2, 4}
/// over several epochs on both synthetic workloads, all bit-identical,
/// with pipelining and threading exercised.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow: release CI runs the full K sweep")]
fn k_client_sweep_is_bit_identical() {
    let workloads = [
        (clinic_dataset(32, 33), vec![6usize], 4u32, 2u32),
        (
            synthetic_digits(24, DigitConfig::small(), 34),
            vec![8],
            6,
            2,
        ),
    ];
    for (data, hidden, batch, epochs) in workloads {
        let spec = spec_for(&data, hidden);
        let baseline = run(
            &data,
            spec.clone(),
            1,
            epochs,
            batch,
            RunnerOptions {
                record: false,
                pipelined: false,
                parallelism: Parallelism::Serial,
            },
        );
        for k in [2u32, 4] {
            let sharded = run(
                &data,
                spec.clone(),
                k,
                epochs,
                batch,
                RunnerOptions {
                    record: false,
                    pipelined: true,
                    parallelism: Parallelism::Threads(4),
                },
            );
            assert_eq!(
                baseline, sharded,
                "K={k} diverged from the single-client run"
            );
        }
    }
}

/// A mid-session training failure (here: the authority refusing Sub
/// keys) surfaces as a typed error and aborts the remaining schedule —
/// the producer must not keep encrypting batches nobody will train on.
#[test]
fn training_failure_aborts_the_session() {
    let data = clinic_dataset(30, 36);
    let spec = spec_for(&data, vec![3]);
    let mut config = mlp_session_config(spec, 2, 1, 3, 0.5);
    config.permitted = cryptonn_fe::PermittedFunctions {
        dot_product: true,
        add: false,
        sub: false,
        mul: false,
        div: false,
    };
    let start = std::time::Instant::now();
    let err = TrainingSessionRunner::new(config)
        .run_mlp(&data)
        .unwrap_err();
    assert!(matches!(err, cryptonn_protocol::ProtocolError::Training(_)));
    // 10 batches were scheduled but the first step already fails; the
    // abort path means we never pay for the other nine encryptions
    // (loose wall-clock bound just to catch a fully-run schedule).
    assert!(start.elapsed() < std::time::Duration::from_secs(30));
}

/// More clients than batches is a typed config error, not a panic.
#[test]
fn too_many_clients_is_reported() {
    let data = clinic_dataset(6, 35);
    let spec = spec_for(&data, vec![2]);
    let config = mlp_session_config(spec, 5, 1, 3, 0.5);
    let err = TrainingSessionRunner::new(config)
        .run_mlp(&data)
        .unwrap_err();
    assert!(matches!(
        err,
        cryptonn_protocol::ProtocolError::InvalidConfig(_)
    ));
}
