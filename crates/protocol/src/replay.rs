//! Re-executing the server side of a session from its transcript.
//!
//! A [`Transcript`] contains everything the server consumed — config,
//! public parameters, registrations, encrypted batches, and every
//! authority response — so the server's computation can be re-run
//! *without* the dataset, the clients, or the authority's master keys.
//! The replay drives the same [`ServerSession`] state machine as the
//! live runner and the networked daemon, and verifies, message by
//! message, that the re-executed server emits the recorded traffic:
//! each key request must match the recorded one before its recorded
//! response is released, each step's loss must equal the recorded
//! [`ModelDelta`], and the final weights must equal the recorded
//! [`SessionSummary`] bit-for-bit. Every way a forged transcript can
//! fail is a typed [`ReplayError`] variant.
//!
//! [`ModelDelta`]: crate::ModelDelta

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{ProtocolError, ReplayError};
use crate::messages::{KeyRequest, KeyResponse, SessionSummary, WireMessage};
use crate::session::{AuthorityChannel, ServerSession};
use crate::transcript::Transcript;

/// An [`AuthorityChannel`] fed from recorded traffic: requests are
/// matched against the transcript and answered with the recorded
/// responses, never touching a live authority.
///
/// Clones share the same queue, so a caller can keep a handle and
/// assert every recorded exchange was consumed after the replay (a
/// transcript with *extra* recorded key traffic is as tampered as one
/// with missing traffic).
#[derive(Clone)]
pub struct ReplayChannel {
    exchanges: Arc<Mutex<VecDeque<(KeyRequest, KeyResponse)>>>,
}

impl ReplayChannel {
    /// Collects the request/response pairs of `transcript`.
    ///
    /// # Errors
    ///
    /// [`ReplayError`] variants if requests and responses do not
    /// alternate cleanly.
    pub fn from_transcript(transcript: &Transcript) -> Result<Self, ProtocolError> {
        let mut exchanges = VecDeque::new();
        let mut pending: Option<KeyRequest> = None;
        for e in &transcript.entries {
            match &e.msg {
                WireMessage::KeyRequest(req) => {
                    if pending.is_some() {
                        return Err(ReplayError::RequestWithoutResponse { seq: e.seq }.into());
                    }
                    pending = Some(req.clone());
                }
                WireMessage::KeyResponse(resp) => {
                    let req = pending
                        .take()
                        .ok_or(ReplayError::ResponseWithoutRequest { seq: e.seq })?;
                    exchanges.push_back((req, resp.clone()));
                }
                _ => {}
            }
        }
        if pending.is_some() {
            return Err(ReplayError::DanglingRequest.into());
        }
        Ok(Self {
            exchanges: Arc::new(Mutex::new(exchanges)),
        })
    }

    /// Recorded exchanges not yet consumed.
    pub fn remaining(&self) -> usize {
        self.exchanges.lock().len()
    }
}

impl AuthorityChannel for ReplayChannel {
    fn exchange(&mut self, req: KeyRequest) -> Result<KeyResponse, ProtocolError> {
        let (recorded_req, resp) =
            self.exchanges
                .lock()
                .pop_front()
                .ok_or(ReplayError::ExtraKeyRequest {
                    replayed: describe(&req),
                })?;
        if recorded_req != req {
            return Err(ReplayError::RequestMismatch {
                recorded: describe(&recorded_req),
                replayed: describe(&req),
            }
            .into());
        }
        Ok(resp)
    }
}

fn describe(req: &KeyRequest) -> String {
    match req {
        KeyRequest::FeipMpk(dim) => format!("FeipMpk(dim={dim})"),
        KeyRequest::Feip(r) => format!("Feip(dim={}, {} vectors)", r.dim, r.ys.len()),
        KeyRequest::Febo(r) => format!("Febo({} triples)", r.reqs.len()),
    }
}

/// The result of a successful replay.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The summary the re-executed server produced.
    pub replayed: SessionSummary,
    /// The summary the transcript recorded, if any.
    pub recorded: Option<SessionSummary>,
    /// The re-executed server (trained model inside).
    pub server: ServerSession,
}

impl ReplayOutcome {
    /// True if the re-executed server reproduced the recorded final
    /// weights and losses exactly (bit-for-bit on every `f64`).
    pub fn matches_recording(&self) -> bool {
        match &self.recorded {
            Some(recorded) => recorded == &self.replayed,
            None => false,
        }
    }
}

/// Re-executes the server side of `transcript` and cross-checks every
/// recorded observable along the way.
///
/// Registrations and batches are fed to the same [`ServerSession`]
/// state machine the live paths drive, in recorded order — batches
/// recorded ahead of schedule (a concurrent recording) are reordered by
/// the server exactly as they were live.
///
/// # Errors
///
/// - [`ProtocolError::MissingMessage`] if the transcript lacks the
///   config or public parameters;
/// - [`ProtocolError::Replay`] with the precise [`ReplayError`] variant
///   if the re-executed server's key traffic, per-step losses, or
///   schedule coverage differ from the recording;
/// - training failures from the re-executed steps.
pub fn replay_server(transcript: &Transcript) -> Result<ReplayOutcome, ProtocolError> {
    let config = transcript
        .entries
        .iter()
        .find_map(|e| match &e.msg {
            WireMessage::Config(c) => Some(c.clone()),
            _ => None,
        })
        .ok_or(ProtocolError::MissingMessage("SessionConfig"))?;
    let params = transcript
        .entries
        .iter()
        .find_map(|e| match &e.msg {
            WireMessage::PublicParams(p) => Some(p.clone()),
            _ => None,
        })
        .ok_or(ProtocolError::MissingMessage("PublicParams"))?;

    let channel = ReplayChannel::from_transcript(transcript)?;
    let channel_handle = channel.clone();
    let mut server = ServerSession::new(
        &config,
        &params,
        Box::new(channel),
        cryptonn_parallel::Parallelism::Serial,
    );

    // Feed registrations and batches in recorded order, checking every
    // delta the re-executed server emits against the recorded stream.
    let mut recorded_deltas = transcript.entries.iter().filter_map(|e| match &e.msg {
        WireMessage::Delta(d) => Some(d),
        _ => None,
    });
    for e in &transcript.entries {
        let outs = match &e.msg {
            WireMessage::Register(_) | WireMessage::Batch(_) | WireMessage::ImageBatch(_) => {
                server.handle_message(&e.msg)?
            }
            _ => continue,
        };
        for ob in outs {
            let delta = match ob.msg {
                WireMessage::Delta(d) => d,
                // Start / Epoch / Summary broadcasts carry no training
                // observable beyond what the summary check covers.
                _ => continue,
            };
            // Every replayed step must have its recorded delta: a
            // transcript with the Delta stream stripped or truncated is
            // a tampered recording, not a weaker recording.
            let recorded = recorded_deltas
                .next()
                .ok_or(ReplayError::MissingDelta { step: delta.step })?;
            if recorded != &delta {
                return Err(ReplayError::DeltaMismatch {
                    step: delta.step,
                    recorded: recorded.loss,
                    replayed: delta.loss,
                }
                .into());
            }
        }
    }

    // Full consumption: recorded observables the replay never produced
    // (trailing deltas, extra key exchanges, stalled batches) are
    // forgeries, not slack.
    if let Some(extra) = recorded_deltas.next() {
        return Err(ReplayError::ForgedDelta { step: extra.step }.into());
    }
    if channel_handle.remaining() != 0 {
        return Err(ReplayError::UnconsumedKeyExchanges {
            count: channel_handle.remaining(),
        }
        .into());
    }
    if server.pending_batches() != 0 {
        return Err(ReplayError::StalledBatches {
            count: server.pending_batches(),
        }
        .into());
    }

    let recorded = transcript.entries.iter().rev().find_map(|e| match &e.msg {
        WireMessage::Summary(s) => Some(s.clone()),
        _ => None,
    });
    Ok(ReplayOutcome {
        replayed: server.summary(),
        recorded,
        server,
    })
}
