//! Re-executing the server side of a session from its transcript.
//!
//! A [`Transcript`] contains everything the server consumed — config,
//! public parameters, encrypted batches, and every authority response —
//! so the server's computation can be re-run *without* the dataset,
//! the clients, or the authority's master keys. The replay verifies,
//! message by message, that the re-executed server emits the recorded
//! traffic: each key request must match the recorded one before its
//! recorded response is released, each step's loss must equal the
//! recorded [`ModelDelta`], and the final weights must equal the
//! recorded [`SessionSummary`] bit-for-bit.
//!
//! [`ModelDelta`]: crate::ModelDelta

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::error::ProtocolError;
use crate::messages::{KeyRequest, KeyResponse, SessionSummary, WireMessage};
use crate::session::{AuthorityChannel, ServerSession};
use crate::transcript::Transcript;

/// An [`AuthorityChannel`] fed from recorded traffic: requests are
/// matched against the transcript and answered with the recorded
/// responses, never touching a live authority.
///
/// Clones share the same queue, so a caller can keep a handle and
/// assert every recorded exchange was consumed after the replay (a
/// transcript with *extra* recorded key traffic is as tampered as one
/// with missing traffic).
#[derive(Clone)]
pub struct ReplayChannel {
    exchanges: Rc<RefCell<VecDeque<(KeyRequest, KeyResponse)>>>,
}

impl ReplayChannel {
    /// Collects the request/response pairs of `transcript`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::ReplayDivergence`] if requests and responses do
    /// not alternate cleanly.
    pub fn from_transcript(transcript: &Transcript) -> Result<Self, ProtocolError> {
        let mut exchanges = VecDeque::new();
        let mut pending: Option<KeyRequest> = None;
        for e in &transcript.entries {
            match &e.msg {
                WireMessage::KeyRequest(req) => {
                    if pending.is_some() {
                        return Err(ProtocolError::ReplayDivergence(format!(
                            "two key requests without a response (seq {})",
                            e.seq
                        )));
                    }
                    pending = Some(req.clone());
                }
                WireMessage::KeyResponse(resp) => {
                    let req = pending.take().ok_or_else(|| {
                        ProtocolError::ReplayDivergence(format!(
                            "key response without a request (seq {})",
                            e.seq
                        ))
                    })?;
                    exchanges.push_back((req, resp.clone()));
                }
                _ => {}
            }
        }
        if pending.is_some() {
            return Err(ProtocolError::ReplayDivergence(
                "transcript ends with an unanswered key request".into(),
            ));
        }
        Ok(Self {
            exchanges: Rc::new(RefCell::new(exchanges)),
        })
    }

    /// Recorded exchanges not yet consumed.
    pub fn remaining(&self) -> usize {
        self.exchanges.borrow().len()
    }
}

impl AuthorityChannel for ReplayChannel {
    fn exchange(&mut self, req: KeyRequest) -> Result<KeyResponse, ProtocolError> {
        let (recorded_req, resp) = self.exchanges.borrow_mut().pop_front().ok_or_else(|| {
            ProtocolError::ReplayDivergence(
                "server issued more key requests than the transcript recorded".into(),
            )
        })?;
        if recorded_req != req {
            return Err(ProtocolError::ReplayDivergence(format!(
                "request diverged from the recording: recorded {}, replayed {}",
                describe(&recorded_req),
                describe(&req)
            )));
        }
        Ok(resp)
    }
}

fn describe(req: &KeyRequest) -> String {
    match req {
        KeyRequest::FeipMpk(dim) => format!("FeipMpk(dim={dim})"),
        KeyRequest::Feip(r) => format!("Feip(dim={}, {} vectors)", r.dim, r.ys.len()),
        KeyRequest::Febo(r) => format!("Febo({} triples)", r.reqs.len()),
    }
}

/// The result of a successful replay.
pub struct ReplayOutcome {
    /// The summary the re-executed server produced.
    pub replayed: SessionSummary,
    /// The summary the transcript recorded, if any.
    pub recorded: Option<SessionSummary>,
    /// The re-executed server (trained model inside).
    pub server: ServerSession,
}

impl ReplayOutcome {
    /// True if the re-executed server reproduced the recorded final
    /// weights and losses exactly (bit-for-bit on every `f64`).
    pub fn matches_recording(&self) -> bool {
        match &self.recorded {
            Some(recorded) => recorded == &self.replayed,
            None => false,
        }
    }
}

/// Re-executes the server side of `transcript` and cross-checks every
/// recorded observable along the way.
///
/// # Errors
///
/// - [`ProtocolError::MissingMessage`] if the transcript lacks the
///   config or public parameters;
/// - [`ProtocolError::ReplayDivergence`] if the re-executed server's
///   key traffic or per-step losses differ from the recording;
/// - training failures from the re-executed steps.
pub fn replay_server(transcript: &Transcript) -> Result<ReplayOutcome, ProtocolError> {
    let config = transcript
        .entries
        .iter()
        .find_map(|e| match &e.msg {
            WireMessage::Config(c) => Some(c.clone()),
            _ => None,
        })
        .ok_or(ProtocolError::MissingMessage("SessionConfig"))?;
    let params = transcript
        .entries
        .iter()
        .find_map(|e| match &e.msg {
            WireMessage::PublicParams(p) => Some(p.clone()),
            _ => None,
        })
        .ok_or(ProtocolError::MissingMessage("PublicParams"))?;

    let channel = ReplayChannel::from_transcript(transcript)?;
    let channel_handle = channel.clone();
    let mut server = ServerSession::new(
        &config,
        &params,
        Box::new(channel),
        cryptonn_parallel::Parallelism::Serial,
    );

    // Feed the batches in recorded order, checking each recorded delta.
    let mut recorded_deltas = transcript.entries.iter().filter_map(|e| match &e.msg {
        WireMessage::Delta(d) => Some(d),
        _ => None,
    });
    for e in &transcript.entries {
        let delta = match &e.msg {
            WireMessage::Batch(msg) => server.handle_batch(msg)?,
            WireMessage::ImageBatch(msg) => server.handle_image_batch(msg)?,
            _ => continue,
        };
        // Every batch must have its recorded delta: a transcript with
        // the Delta stream stripped or truncated is a tampered
        // recording, not a weaker recording.
        let recorded = recorded_deltas.next().ok_or_else(|| {
            ProtocolError::ReplayDivergence(format!(
                "step {}: batch has no recorded ModelDelta",
                delta.step
            ))
        })?;
        if recorded != &delta {
            return Err(ProtocolError::ReplayDivergence(format!(
                "step {}: recorded loss {}, replayed {}",
                delta.step, recorded.loss, delta.loss
            )));
        }
    }

    // Full consumption: recorded observables the replay never produced
    // (trailing deltas, extra key exchanges) are forgeries, not slack.
    if let Some(extra) = recorded_deltas.next() {
        return Err(ProtocolError::ReplayDivergence(format!(
            "recorded delta for step {} has no corresponding batch",
            extra.step
        )));
    }
    if channel_handle.remaining() != 0 {
        return Err(ProtocolError::ReplayDivergence(format!(
            "{} recorded key exchanges were never requested by the replayed server",
            channel_handle.remaining()
        )));
    }

    let recorded = transcript.entries.iter().rev().find_map(|e| match &e.msg {
        WireMessage::Summary(s) => Some(s.clone()),
        _ => None,
    });
    Ok(ReplayOutcome {
        replayed: server.summary(),
        recorded,
        server,
    })
}
