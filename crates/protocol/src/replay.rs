//! Re-executing the server side of a session from its transcript.
//!
//! A [`Transcript`] contains everything the server consumed — config,
//! public parameters, registrations, encrypted batches, and every
//! authority response — so the server's computation can be re-run
//! *without* the dataset, the clients, or the authority's master keys.
//! The replay drives the same [`ServerSession`] state machine as the
//! live runner and the networked daemon, and verifies, message by
//! message, that the re-executed server emits the recorded traffic:
//! each key request must match the recorded one before its recorded
//! response is released, each step's loss must equal the recorded
//! [`ModelDelta`], and the final weights must equal the recorded
//! [`SessionSummary`] bit-for-bit. Every way a forged transcript can
//! fail is a typed [`ReplayError`] variant.
//!
//! [`ModelDelta`]: crate::ModelDelta

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::checkpoint::SessionCheckpoint;
use crate::error::{ProtocolError, ReplayError};
use crate::messages::{KeyRequest, KeyResponse, SessionSummary, WireMessage};
use crate::session::{AuthorityChannel, ServerSession};
use crate::transcript::{Envelope, Transcript};

/// An [`AuthorityChannel`] fed from recorded traffic: requests are
/// matched against the transcript and answered with the recorded
/// responses, never touching a live authority.
///
/// Clones share the same queue, so a caller can keep a handle and
/// assert every recorded exchange was consumed after the replay (a
/// transcript with *extra* recorded key traffic is as tampered as one
/// with missing traffic).
#[derive(Clone)]
pub struct ReplayChannel {
    exchanges: Arc<Mutex<VecDeque<(KeyRequest, KeyResponse)>>>,
}

impl ReplayChannel {
    /// Collects the request/response pairs of `transcript`.
    ///
    /// # Errors
    ///
    /// [`ReplayError`] variants if requests and responses do not
    /// alternate cleanly.
    pub fn from_transcript(transcript: &Transcript) -> Result<Self, ProtocolError> {
        Self::from_entries(&transcript.entries)
    }

    /// Collects the request/response pairs of an envelope slice — the
    /// transcript-suffix form a checkpoint resume feeds
    /// ([`resume_from_checkpoint`]). An exchange straddling the slice
    /// boundary surfaces as the usual alternation error, so a cut taken
    /// mid-exchange is rejected rather than mis-paired.
    ///
    /// # Errors
    ///
    /// [`ReplayError`] variants if requests and responses do not
    /// alternate cleanly.
    pub fn from_entries(entries: &[Envelope]) -> Result<Self, ProtocolError> {
        let mut exchanges = VecDeque::new();
        let mut pending: Option<KeyRequest> = None;
        for e in entries {
            match &e.msg {
                WireMessage::KeyRequest(req) => {
                    if pending.is_some() {
                        return Err(ReplayError::RequestWithoutResponse { seq: e.seq }.into());
                    }
                    pending = Some(req.clone());
                }
                WireMessage::KeyResponse(resp) => {
                    let req = pending
                        .take()
                        .ok_or(ReplayError::ResponseWithoutRequest { seq: e.seq })?;
                    exchanges.push_back((req, resp.clone()));
                }
                _ => {}
            }
        }
        if pending.is_some() {
            return Err(ReplayError::DanglingRequest.into());
        }
        Ok(Self {
            exchanges: Arc::new(Mutex::new(exchanges)),
        })
    }

    /// Recorded exchanges not yet consumed.
    pub fn remaining(&self) -> usize {
        self.exchanges.lock().len()
    }
}

impl AuthorityChannel for ReplayChannel {
    fn exchange(&mut self, req: KeyRequest) -> Result<KeyResponse, ProtocolError> {
        let (recorded_req, resp) =
            self.exchanges
                .lock()
                .pop_front()
                .ok_or(ReplayError::ExtraKeyRequest {
                    replayed: describe(&req),
                })?;
        if recorded_req != req {
            return Err(ReplayError::RequestMismatch {
                recorded: describe(&recorded_req),
                replayed: describe(&req),
            }
            .into());
        }
        Ok(resp)
    }
}

fn describe(req: &KeyRequest) -> String {
    match req {
        KeyRequest::FeipMpk(dim) => format!("FeipMpk(dim={dim})"),
        KeyRequest::Feip(r) => format!("Feip(dim={}, {} vectors)", r.dim, r.ys.len()),
        KeyRequest::Febo(r) => format!("Febo({} triples)", r.reqs.len()),
    }
}

/// The result of a successful replay.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The summary the re-executed server produced.
    pub replayed: SessionSummary,
    /// The summary the transcript recorded, if any.
    pub recorded: Option<SessionSummary>,
    /// The re-executed server (trained model inside).
    pub server: ServerSession,
}

impl ReplayOutcome {
    /// True if the re-executed server reproduced the recorded final
    /// weights and losses exactly (bit-for-bit on every `f64`).
    pub fn matches_recording(&self) -> bool {
        match &self.recorded {
            Some(recorded) => recorded == &self.replayed,
            None => false,
        }
    }
}

/// A verified replay of a transcript *prefix*: the recording stops at a
/// clean boundary (every recorded observable matched, no dangling key
/// exchange) but before the final summary — the state a crashed
/// session's recording leaves behind.
#[derive(Debug)]
pub struct ResumePoint {
    /// The next step the resumed server will train.
    pub next_step: u64,
    /// Ahead-of-schedule batches still parked in the reorder buffer at
    /// the cut. A live resume purges these (see
    /// [`ServerSession::purge_pending`]) because the rewound clients
    /// resend them; a caller continuing from more recorded entries
    /// leaves them in place.
    pub pending_batches: usize,
    /// The re-executed server, mid-session, ready for more messages.
    pub server: ServerSession,
}

/// What a transcript replays to: a finished run or a clean mid-run cut.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // both arms own a ServerSession
pub enum ReplayResolution {
    /// The transcript carries a final summary and the re-executed
    /// server reproduced the whole run.
    Completed(ReplayOutcome),
    /// The transcript is a verified prefix — it ends before the final
    /// summary, and the server stands ready to continue.
    Resume(ResumePoint),
}

/// Feeds recorded registrations and batches to `server` in recorded
/// order, cross-checking every [`ModelDelta`](crate::ModelDelta) the
/// re-executed server emits against the recorded stream.
fn drive(server: &mut ServerSession, entries: &[Envelope]) -> Result<(), ProtocolError> {
    let mut recorded_deltas = entries.iter().filter_map(|e| match &e.msg {
        WireMessage::Delta(d) => Some(d),
        _ => None,
    });
    for e in entries {
        let outs = match &e.msg {
            WireMessage::Register(_) | WireMessage::Batch(_) | WireMessage::ImageBatch(_) => {
                server.handle_message(&e.msg)?
            }
            _ => continue,
        };
        for ob in outs {
            let delta = match ob.msg {
                WireMessage::Delta(d) => d,
                // Start / Epoch / Summary broadcasts carry no training
                // observable beyond what the summary check covers.
                _ => continue,
            };
            // Every replayed step must have its recorded delta: a
            // transcript with the Delta stream stripped or truncated is
            // a tampered recording, not a weaker recording.
            let recorded = recorded_deltas
                .next()
                .ok_or(ReplayError::MissingDelta { step: delta.step })?;
            if recorded != &delta {
                return Err(ReplayError::DeltaMismatch {
                    step: delta.step,
                    recorded: recorded.loss,
                    replayed: delta.loss,
                }
                .into());
            }
        }
    }
    // Recorded deltas the replay never produced are forgeries, not
    // slack.
    if let Some(extra) = recorded_deltas.next() {
        return Err(ReplayError::ForgedDelta { step: extra.step }.into());
    }
    Ok(())
}

/// Classifies a driven server as a completed run or a resume point.
fn resolve(
    server: ServerSession,
    channel: &ReplayChannel,
    recorded: Option<SessionSummary>,
) -> Result<ReplayResolution, ProtocolError> {
    // Unconsumed key exchanges are a forgery in both outcomes: even a
    // prefix records only traffic its own batches requested.
    if channel.remaining() != 0 {
        return Err(ReplayError::UnconsumedKeyExchanges {
            count: channel.remaining(),
        }
        .into());
    }
    if recorded.is_some() {
        // A recording that reached its summary must have covered the
        // schedule; batches still parked in the reorder buffer mean
        // their step tags leave holes.
        if server.pending_batches() != 0 {
            return Err(ReplayError::StalledBatches {
                count: server.pending_batches(),
            }
            .into());
        }
        Ok(ReplayResolution::Completed(ReplayOutcome {
            replayed: server.summary(),
            recorded,
            server,
        }))
    } else {
        Ok(ReplayResolution::Resume(ResumePoint {
            next_step: server.steps(),
            pending_batches: server.pending_batches(),
            server,
        }))
    }
}

fn find_config_and_params(
    transcript: &Transcript,
) -> Result<
    (
        crate::messages::SessionConfig,
        crate::messages::PublicParams,
    ),
    ProtocolError,
> {
    let config = transcript
        .entries
        .iter()
        .find_map(|e| match &e.msg {
            WireMessage::Config(c) => Some(c.clone()),
            _ => None,
        })
        .ok_or(ProtocolError::MissingMessage("SessionConfig"))?;
    let params = transcript
        .entries
        .iter()
        .find_map(|e| match &e.msg {
            WireMessage::PublicParams(p) => Some(p.clone()),
            _ => None,
        })
        .ok_or(ProtocolError::MissingMessage("PublicParams"))?;
    Ok((config, params))
}

fn recorded_summary(entries: &[Envelope]) -> Option<SessionSummary> {
    entries.iter().rev().find_map(|e| match &e.msg {
        WireMessage::Summary(s) => Some(s.clone()),
        _ => None,
    })
}

/// Re-executes the server side of `transcript` — complete *or* a clean
/// prefix — and cross-checks every recorded observable along the way.
///
/// Registrations and batches are fed to the same [`ServerSession`]
/// state machine the live paths drive, in recorded order — batches
/// recorded ahead of schedule (a concurrent recording) are reordered by
/// the server exactly as they were live. A transcript carrying a final
/// summary resolves to [`ReplayResolution::Completed`]; one cut before
/// the summary (a crashed run, or a prefix truncated at a checkpoint
/// boundary) resolves to [`ReplayResolution::Resume`] with the
/// mid-session server, instead of an error.
///
/// # Errors
///
/// - [`ProtocolError::MissingMessage`] if the transcript lacks the
///   config or public parameters;
/// - [`ProtocolError::Replay`] with the precise [`ReplayError`] variant
///   if the re-executed server's key traffic, per-step losses, or
///   schedule coverage differ from the recording;
/// - training failures from the re-executed steps.
pub fn replay_server_prefix(transcript: &Transcript) -> Result<ReplayResolution, ProtocolError> {
    let (config, params) = find_config_and_params(transcript)?;
    let channel = ReplayChannel::from_transcript(transcript)?;
    let channel_handle = channel.clone();
    let mut server = ServerSession::new(
        &config,
        &params,
        Box::new(channel),
        cryptonn_parallel::Parallelism::Serial,
    );
    drive(&mut server, &transcript.entries)?;
    resolve(
        server,
        &channel_handle,
        recorded_summary(&transcript.entries),
    )
}

/// Re-executes the server side of a *complete* `transcript` and
/// cross-checks every recorded observable along the way.
///
/// The strict form of [`replay_server_prefix`]: a transcript cut before
/// its summary is accepted only if no batches are stalled in the
/// reorder buffer, and yields an outcome with `recorded = None` (so
/// [`ReplayOutcome::matches_recording`] is false).
///
/// # Errors
///
/// As [`replay_server_prefix`], plus [`ReplayError::StalledBatches`]
/// for a cut that strands reordered batches.
pub fn replay_server(transcript: &Transcript) -> Result<ReplayOutcome, ProtocolError> {
    match replay_server_prefix(transcript)? {
        ReplayResolution::Completed(outcome) => Ok(outcome),
        ReplayResolution::Resume(rp) => {
            if rp.pending_batches != 0 {
                return Err(ReplayError::StalledBatches {
                    count: rp.pending_batches,
                }
                .into());
            }
            Ok(ReplayOutcome {
                replayed: rp.server.summary(),
                recorded: None,
                server: rp.server,
            })
        }
    }
}

/// Restores a server from `ckpt` and replays only the transcript
/// entries past the checkpoint's cut — the crash-recovery path, and the
/// cheap audit path: `checkpoint + suffix` must resolve exactly as the
/// full replay does, in a fraction of the steps.
///
/// The suffix starts at entry `ckpt.transcript_offset`; its recorded
/// deltas and key exchanges are cross-checked exactly as in a full
/// replay (an exchange straddling the cut is rejected as mis-paired,
/// which is why checkpoints are only taken between messages).
///
/// # Errors
///
/// As [`replay_server_prefix`], plus [`ProtocolError::Checkpoint`] if
/// the checkpoint cannot be applied (stale schema, unsupported model).
pub fn resume_from_checkpoint(
    transcript: &Transcript,
    ckpt: &SessionCheckpoint,
) -> Result<ReplayResolution, ProtocolError> {
    let (config, params) = find_config_and_params(transcript)?;
    let offset = (ckpt.transcript_offset as usize).min(transcript.entries.len());
    let suffix = &transcript.entries[offset..];
    let channel = ReplayChannel::from_entries(suffix)?;
    let channel_handle = channel.clone();
    let mut server = ServerSession::restore(
        &config,
        &params,
        Box::new(channel),
        cryptonn_parallel::Parallelism::Serial,
        ckpt,
    )?;
    drive(&mut server, suffix)?;
    resolve(server, &channel_handle, recorded_summary(suffix))
}
