//! # cryptonn-protocol
//!
//! The session layer for multi-client federated CryptoNN training —
//! the paper's Fig. 1 topology made explicit: many data owners stream
//! encrypted batches to one server under a shared key authority, and
//! every cross-role interaction is a serializable [`WireMessage`].
//!
//! - [`messages`] — the wire alphabet: registration, public-parameter
//!   distribution, the schedule-start barrier, encrypted batches,
//!   batched key request/response traffic, per-step metrics, epoch
//!   barriers, the final summary.
//! - [`session`] — the role state machines: [`ClientSession`],
//!   [`ServerSession`], [`AuthoritySession`]. Each exposes the same
//!   event-driven surface (`handle_message(&mut self, msg) ->
//!   Result<Vec<Outbound>>`), so every driver — the in-process runner,
//!   the transcript replayer, and the `cryptonn-net` daemons — pumps
//!   identical protocol logic; the server reaches the authority only
//!   through the [`AuthorityChannel`] request/response hook.
//! - [`runner`] — [`TrainingSessionRunner`]: the deterministic
//!   in-process driver that shards a dataset across `K` clients, pumps
//!   the message stream (optionally overlapping client encryption with
//!   server training), and records a [`Transcript`].
//! - [`replay`] — [`replay_server`]: re-executes the server from a
//!   transcript alone and verifies it reproduces the recording, with
//!   typed [`ReplayError`] rejection of forged transcripts.
//! - [`checkpoint`] — [`SessionCheckpoint`] / [`CheckpointStore`]:
//!   durable, fingerprint-verified snapshots of the server's training
//!   state, so an interrupted session resumes from its last checkpoint
//!   plus the transcript suffix instead of replaying from step 0
//!   (DESIGN.md §14).
//! - [`inference`] — [`InferenceSession`]: the serving phase — a frozen
//!   trained model answers encrypted predict requests, coalescing
//!   in-flight requests into shared secure sweeps behind a
//!   functional-key cache (DESIGN.md §12).
//!
//! Single-client training is the `K = 1` special case of the same
//! machinery; DESIGN.md §9 documents the message flow per Algorithm 2
//! step and the determinism argument.
//!
//! ## Example
//!
//! ```
//! use cryptonn_data::clinic_dataset;
//! use cryptonn_core::Objective;
//! use cryptonn_protocol::{mlp_session_config, MlpSpec, TrainingSessionRunner};
//!
//! let data = clinic_dataset(12, 5);
//! let spec = MlpSpec {
//!     feature_dim: data.feature_dim(),
//!     hidden: vec![4],
//!     classes: data.classes(),
//!     objective: Objective::SoftmaxCrossEntropy,
//! };
//! // Two clients, one epoch, batches of 6 — recorded and replayable.
//! let runner = TrainingSessionRunner::new(mlp_session_config(spec, 2, 1, 6, 0.5));
//! let outcome = runner.run_mlp(&data)?;
//! assert_eq!(outcome.summary.steps, 2);
//!
//! // The transcript alone reproduces the server's final weights.
//! let replayed = cryptonn_protocol::replay_server(&outcome.transcript)?;
//! assert!(replayed.matches_recording());
//! # Ok::<(), cryptonn_protocol::ProtocolError>(())
//! ```

pub mod checkpoint;
mod error;
pub mod inference;
pub mod messages;
pub mod replay;
pub mod runner;
pub mod session;
mod transcript;

pub use checkpoint::{
    config_fingerprint, CheckpointError, CheckpointStore, ClientCursor, SessionCheckpoint,
    CHECKPOINT_SCHEMA,
};
pub use error::{ProtocolError, ReplayError};
pub use inference::{InferenceOptions, InferenceSession};
pub use messages::{
    ClientId, CnnArch, EncryptedBatchMsg, EncryptedImageBatchMsg, EpochBarrier, FeboKeysRequest,
    FeipKeysRequest, KeyRequest, KeyResponse, MlpSpec, ModelDelta, ModelSpec, PartialKey,
    PredictRequest, Prediction, PublicParams, RegisterClient, ReshardEntry, ReshardSpec, ResumeMsg,
    ResumeOptions, SessionConfig, SessionId, SessionPolicy, SessionSummary, ShareInfo,
    ShareRequest, TrainingStart, WireMessage,
};
pub use replay::{
    replay_server, replay_server_prefix, resume_from_checkpoint, ReplayChannel, ReplayOutcome,
    ReplayResolution, ResumePoint,
};
pub use runner::{
    mlp_session_config, round_robin_shards, RunnerOptions, SessionOutcome, TrainingSessionRunner,
};
pub use session::{
    rows_to_images, AuthorityChannel, AuthoritySession, ChannelKeyService, ClientSession, Outbound,
    ServerModel, ServerSession, ShareSession, DEFAULT_CLIENT_WINDOW,
};
pub use transcript::{Envelope, Party, Transcript};
