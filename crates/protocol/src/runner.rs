//! The deterministic in-process scheduler driving a multi-client
//! training session.
//!
//! [`TrainingSessionRunner`] shards a dataset across `K` clients,
//! schedules their encrypted batches in a fixed global order, pipelines
//! client-side encryption against server-side training (clients encrypt
//! batch `t+1` while the server trains on batch `t`), and records every
//! exchanged message into a replayable [`Transcript`].
//!
//! ## Determinism
//!
//! The final model is a pure function of the [`SessionConfig`] and the
//! dataset, independent of the client count `K`, the pipelining mode,
//! and every thread-count knob:
//!
//! - batches are assigned round-robin by in-epoch index (`batch i`
//!   belongs to client `i mod K`) and consumed in global order, so the
//!   server sees the same plaintext-content sequence for every `K`;
//! - FEIP/FEBO decryption is exact on the quantized integers, so the
//!   decrypted training signal carries no trace of which client's
//!   randomness produced a ciphertext;
//! - the encryption pipeline runs the producer sequentially on one
//!   thread ([`double_buffered`]), so client RNGs evolve exactly as in
//!   the serial schedule.
//!
//! This is the client-count-invariance property the equivalence tests
//! pin down: `K ∈ {1, 2, 4}` produce bit-identical final weights.

use cryptonn_data::Dataset;
use cryptonn_parallel::{double_buffered, Parallelism};

use std::cell::RefCell;
use std::rc::Rc;

use crate::error::ProtocolError;
use crate::messages::{
    ClientId, EpochBarrier, KeyRequest, KeyResponse, MlpSpec, ModelSpec, SessionConfig,
    SessionSummary, WireMessage,
};
use crate::session::{AuthorityChannel, AuthoritySession, ClientSession, ServerSession};
use crate::transcript::{Party, Transcript};

/// Scheduling knobs that are *not* part of the wire-level session
/// agreement: thread policies and whether to record or pipeline.
/// Everything that affects the trained weights lives in
/// [`SessionConfig`] instead.
#[derive(Debug, Clone, Copy)]
pub struct RunnerOptions {
    /// Overlap client encryption with server training (double-buffered;
    /// bit-identical results either way).
    pub pipelined: bool,
    /// Thread policy for client encryption and server decryption
    /// fan-outs.
    pub parallelism: Parallelism,
    /// Record the message stream into the outcome's transcript.
    /// Disabled for pure-throughput runs (the bench arm).
    pub record: bool,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        Self {
            pipelined: true,
            parallelism: Parallelism::Serial,
            record: true,
        }
    }
}

/// The result of a completed session.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The recorded message stream (empty when recording was off).
    pub transcript: Transcript,
    /// The final model fingerprint (also the transcript's last message).
    pub summary: SessionSummary,
    /// The server session, with the trained model inside.
    pub server: ServerSession,
}

/// The live channel: forwards requests to the in-process authority and
/// records both directions of the exchange.
struct RecordingChannel {
    authority: Rc<AuthoritySession>,
    transcript: Rc<RefCell<Transcript>>,
    record: bool,
}

impl AuthorityChannel for RecordingChannel {
    fn exchange(&mut self, req: KeyRequest) -> Result<KeyResponse, ProtocolError> {
        let resp = self.authority.handle(&req);
        if self.record {
            let mut t = self.transcript.borrow_mut();
            t.push(
                Party::Server,
                Party::Authority,
                WireMessage::KeyRequest(req),
            );
            t.push(
                Party::Authority,
                Party::Server,
                WireMessage::KeyResponse(resp.clone()),
            );
        }
        Ok(resp)
    }
}

/// The deterministic scheduler: wires authority, clients and server
/// together and drives the whole training session.
#[derive(Debug, Clone)]
pub struct TrainingSessionRunner {
    config: SessionConfig,
    options: RunnerOptions,
}

impl TrainingSessionRunner {
    /// Creates a runner for the given wire-level session agreement.
    pub fn new(config: SessionConfig) -> Self {
        Self {
            config,
            options: RunnerOptions::default(),
        }
    }

    /// Replaces the local scheduling options.
    pub fn with_options(mut self, options: RunnerOptions) -> Self {
        self.options = options;
        self
    }

    /// The wire-level session agreement.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Runs a full multi-client MLP training session over `dataset`.
    ///
    /// The dataset is batched in order (`batch_size` rows each), and
    /// batch `i` of each epoch is owned — and encrypted — by client
    /// `i mod K`. Labels are one-hot encoded by the owning client, per
    /// the paper's client-side pre-processing.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidConfig`] for an unusable config (zero
    /// clients, more clients than batches, non-MLP model); training and
    /// encryption failures otherwise.
    pub fn run_mlp(&self, dataset: &Dataset) -> Result<SessionOutcome, ProtocolError> {
        let spec = match &self.config.model {
            ModelSpec::Mlp(spec) => spec.clone(),
            ModelSpec::Cnn(_) => {
                return Err(ProtocolError::InvalidConfig(
                    "run_mlp requires an MLP model spec".into(),
                ))
            }
        };
        if spec.feature_dim != dataset.feature_dim() || spec.classes != dataset.classes() {
            return Err(ProtocolError::InvalidConfig(format!(
                "model expects {}→{} but dataset is {}→{}",
                spec.feature_dim,
                spec.classes,
                dataset.feature_dim(),
                dataset.classes()
            )));
        }
        let k = self.config.clients as usize;
        if k == 0 {
            return Err(ProtocolError::InvalidConfig("zero clients".into()));
        }
        if self.config.batch_size == 0 {
            return Err(ProtocolError::InvalidConfig("zero batch size".into()));
        }
        if self.config.epochs == 0 {
            return Err(ProtocolError::InvalidConfig("zero epochs".into()));
        }
        let batches = dataset.batches(self.config.batch_size as usize);
        if batches.len() < k {
            return Err(ProtocolError::InvalidConfig(format!(
                "{} clients but only {} batches to shard",
                k,
                batches.len()
            )));
        }

        let record = self.options.record;
        let transcript = Rc::new(RefCell::new(Transcript::new()));
        if record {
            transcript.borrow_mut().push(
                Party::Scheduler,
                Party::Broadcast,
                WireMessage::Config(self.config.clone()),
            );
        }

        // --- shard: in-epoch batch i belongs to client i mod K -------
        // `owners[t]` maps each in-epoch step to (client, local index).
        let mut shards: Vec<Vec<(cryptonn_matrix::Matrix<f64>, cryptonn_matrix::Matrix<f64>)>> =
            vec![Vec::new(); k];
        let mut owners = Vec::with_capacity(batches.len());
        for (i, batch) in batches.into_iter().enumerate() {
            let owner = i % k;
            owners.push((owner, shards[owner].len()));
            shards[owner].push(batch);
        }

        let mut clients: Vec<ClientSession> = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                ClientSession::new(
                    ClientId(i as u32),
                    self.config.client_seed_base + i as u64,
                    self.options.parallelism,
                    shard,
                )
            })
            .collect();

        if record {
            let mut t = transcript.borrow_mut();
            for client in &clients {
                t.push(
                    Party::Client(client.id().0),
                    Party::Server,
                    WireMessage::Register(client.register()),
                );
            }
        }

        // --- authority setup + key distribution ----------------------
        let authority = Rc::new(AuthoritySession::new(&self.config));
        let params = authority.public_params(spec.feature_dim, spec.classes, &self.config);
        if record {
            transcript.borrow_mut().push(
                Party::Authority,
                Party::Broadcast,
                WireMessage::PublicParams(params.clone()),
            );
        }
        for client in &mut clients {
            client.on_public_params(&params);
        }

        let mut server = ServerSession::new(
            &self.config,
            &params,
            Box::new(RecordingChannel {
                authority: Rc::clone(&authority),
                transcript: Rc::clone(&transcript),
                record,
            }),
            self.options.parallelism,
        );

        // --- the training schedule -----------------------------------
        // Global step t covers in-epoch batch t % B of epoch t / B; the
        // producer side encrypts (one thread, sequential), the consumer
        // side trains. With pipelining on, encryption of step t+1
        // overlaps training of step t.
        let b = owners.len();
        let total = b * self.config.epochs as usize;
        let mut failure: Option<ProtocolError> = None;
        // Once anything fails, the producer must stop paying for
        // encryption (thousands of exponentiations per batch), not just
        // have its output discarded: the consumer raises `abort` and the
        // producer yields `None` from then on.
        let abort = std::sync::atomic::AtomicBool::new(false);
        double_buffered(
            total,
            self.options.pipelined,
            |t| {
                if abort.load(std::sync::atomic::Ordering::Relaxed) {
                    return None;
                }
                let (owner, local_idx) = owners[t % b];
                Some(clients[owner].encrypt_step(local_idx, t as u64))
            },
            |t, produced| {
                if failure.is_some() {
                    return;
                }
                let msg = match produced {
                    Some(Ok(msg)) => msg,
                    Some(Err(e)) => {
                        failure = Some(e);
                        abort.store(true, std::sync::atomic::Ordering::Relaxed);
                        return;
                    }
                    // Producer already aborted; nothing to consume.
                    None => return,
                };
                if record {
                    transcript.borrow_mut().push(
                        Party::Client(msg.client.0),
                        Party::Server,
                        WireMessage::Batch(msg.clone()),
                    );
                }
                match server.handle_batch(&msg) {
                    Ok(delta) => {
                        if record {
                            let mut tr = transcript.borrow_mut();
                            tr.push(Party::Server, Party::Broadcast, WireMessage::Delta(delta));
                            if (t + 1) % b == 0 {
                                let epoch = (t / b) as u32;
                                tr.push(
                                    Party::Scheduler,
                                    Party::Broadcast,
                                    WireMessage::Epoch(EpochBarrier { epoch }),
                                );
                            }
                        }
                    }
                    Err(e) => {
                        failure = Some(e);
                        abort.store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            },
        );
        if let Some(e) = failure {
            return Err(e);
        }

        let summary = server.summary();
        if record {
            transcript.borrow_mut().push(
                Party::Server,
                Party::Broadcast,
                WireMessage::Summary(summary.clone()),
            );
        }
        // The server's recording channel keeps its Rc alive, so move the
        // record out rather than cloning it; the channel sees an empty
        // transcript from here on, which only affects post-session
        // handle_batch calls on the returned server (unrecorded anyway).
        let transcript = std::mem::take(&mut *transcript.borrow_mut());
        Ok(SessionOutcome {
            transcript,
            summary,
            server,
        })
    }
}

/// A convenience [`SessionConfig`] for MLP sessions: fills the crypto
/// and seed fields with the workspace's fast-test defaults so tests
/// and examples only state what varies.
pub fn mlp_session_config(
    spec: MlpSpec,
    clients: u32,
    epochs: u32,
    batch_size: u32,
    lr: f64,
) -> SessionConfig {
    use cryptonn_fe::PermittedFunctions;
    use cryptonn_group::SecurityLevel;
    use cryptonn_smc::FixedPoint;
    SessionConfig {
        level: SecurityLevel::Bits64,
        fp: FixedPoint::TWO_DECIMALS,
        grad_fp: FixedPoint::new(10_000),
        permitted: PermittedFunctions::all(),
        model: ModelSpec::Mlp(spec),
        lr,
        epochs,
        batch_size,
        clients,
        authority_seed: 1009,
        model_seed: 2017,
        client_seed_base: 4001,
    }
}
