//! The deterministic in-process driver for a multi-client training
//! session.
//!
//! [`TrainingSessionRunner`] shards a dataset across `K` clients and
//! then *pumps messages*: every protocol decision — who registers,
//! which global step a batch occupies, when an epoch barrier or the
//! final summary fires — lives in the role state machines
//! ([`ClientSession`], [`ServerSession`], [`AuthoritySession`]), the
//! same ones the transcript replayer and the networked daemons drive.
//! The runner only routes [`Outbound`]s, records them into a
//! replayable [`Transcript`], and (optionally) runs the client side on
//! a producer thread so encryption of batch `t+1` overlaps training of
//! batch `t`.
//!
//! ## Determinism
//!
//! The final model is a pure function of the [`SessionConfig`] and the
//! dataset, independent of the client count `K`, the pipelining mode,
//! and every thread-count knob:
//!
//! - batches are assigned round-robin by in-epoch index (`batch i`
//!   belongs to client `i mod K`); each client emits its shard in local
//!   order, tagging each batch with its global step, and the server
//!   trains in strict global step order (reordering bounded
//!   ahead-of-schedule bursts), so the trained weights never depend on
//!   arrival interleavings;
//! - FEIP/FEBO decryption is exact on the quantized integers, so the
//!   decrypted training signal carries no trace of which client's
//!   randomness produced a ciphertext;
//! - with pipelining on, the whole client side runs sequentially on one
//!   producer thread, driven by the same broadcast stream in the same
//!   order as the serial pump, so client RNGs — and even the recorded
//!   transcript — are bit-identical either way.
//!
//! This is the client-count-invariance property the equivalence tests
//! pin down: `K ∈ {1, 2, 4}` produce bit-identical final weights.

use cryptonn_data::Dataset;
use cryptonn_matrix::Matrix;
use cryptonn_parallel::Parallelism;
use parking_lot::Mutex;

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Arc;

use crate::checkpoint::CheckpointStore;
use crate::error::ProtocolError;
use crate::messages::{
    ClientId, KeyRequest, KeyResponse, MlpSpec, ModelSpec, PublicParams, SessionConfig, SessionId,
    SessionSummary, WireMessage,
};
use crate::session::{AuthorityChannel, AuthoritySession, ClientSession, Outbound, ServerSession};
use crate::transcript::{Party, Transcript};

/// Scheduling knobs that are *not* part of the wire-level session
/// agreement: thread policies and whether to record or pipeline.
/// Everything that affects the trained weights lives in
/// [`SessionConfig`] instead.
#[derive(Debug, Clone, Copy)]
pub struct RunnerOptions {
    /// Run the client side on a producer thread so encryption overlaps
    /// server training (bit-identical results either way).
    pub pipelined: bool,
    /// Thread policy for client encryption and server decryption
    /// fan-outs.
    pub parallelism: Parallelism,
    /// Record the message stream into the outcome's transcript.
    /// Disabled for pure-throughput runs (the bench arm).
    pub record: bool,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        Self {
            pipelined: true,
            parallelism: Parallelism::Serial,
            record: true,
        }
    }
}

/// The result of a completed session.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The recorded message stream (empty when recording was off).
    pub transcript: Transcript,
    /// The final model fingerprint (also the transcript's last message).
    pub summary: SessionSummary,
    /// The server session, with the trained model inside.
    pub server: ServerSession,
}

/// The live channel: forwards requests to the in-process authority and
/// records both directions of the exchange.
struct RecordingChannel {
    authority: Arc<AuthoritySession>,
    transcript: Arc<Mutex<Transcript>>,
    record: bool,
}

impl AuthorityChannel for RecordingChannel {
    fn exchange(&mut self, req: KeyRequest) -> Result<KeyResponse, ProtocolError> {
        let resp = self.authority.handle(&req);
        if self.record {
            let mut t = self.transcript.lock();
            t.push(
                Party::Server,
                Party::Authority,
                WireMessage::KeyRequest(req),
            );
            t.push(
                Party::Authority,
                Party::Server,
                WireMessage::KeyResponse(resp.clone()),
            );
        }
        Ok(resp)
    }
}

/// Splits `dataset` into `batch_size`-row mini-batches and assigns them
/// round-robin: in-epoch batch `i` belongs to client `i mod k`, at
/// local index `i / k`. This is the data-owner assignment every driver
/// shares — the runner shards in-process, the networked tests hand
/// each client driver its shard.
pub fn round_robin_shards(
    dataset: &Dataset,
    batch_size: usize,
    k: usize,
) -> Vec<Vec<(Matrix<f64>, Matrix<f64>)>> {
    let mut shards: Vec<Vec<(Matrix<f64>, Matrix<f64>)>> = vec![Vec::new(); k];
    for (i, batch) in dataset.batches(batch_size).into_iter().enumerate() {
        shards[i % k].push(batch);
    }
    shards
}

/// The deterministic driver: wires authority, clients and server
/// together and pumps the session's message stream to completion.
#[derive(Debug, Clone)]
pub struct TrainingSessionRunner {
    config: SessionConfig,
    options: RunnerOptions,
    checkpoints: Option<CheckpointPlan>,
}

/// Where and how often the runner durably checkpoints the server.
#[derive(Debug, Clone)]
struct CheckpointPlan {
    store: CheckpointStore,
    session: SessionId,
    every_steps: u64,
}

/// Everything the server-side pump loop shares between the serial and
/// pipelined drivers.
struct ServerPump {
    server: ServerSession,
    transcript: Arc<Mutex<Transcript>>,
    record: bool,
    summary: Option<SessionSummary>,
    checkpoints: Option<(CheckpointPlan, SessionConfig)>,
    last_checkpoint_step: u64,
}

impl ServerPump {
    /// Feeds one client message into the server state machine and
    /// returns the broadcasts it emitted.
    fn feed(&mut self, from: ClientId, msg: &WireMessage) -> Result<Vec<Outbound>, ProtocolError> {
        if self.record {
            self.transcript
                .lock()
                .push(Party::Client(from.0), Party::Server, msg.clone());
        }
        let outs = self.server.handle_message(msg)?;
        for ob in &outs {
            if self.record {
                self.transcript
                    .lock()
                    .push(Party::Server, ob.to, ob.msg.clone());
            }
            if let WireMessage::Summary(s) = &ob.msg {
                self.summary = Some(s.clone());
            }
        }
        self.maybe_checkpoint()?;
        Ok(outs)
    }

    /// Durably checkpoints the server once it is `every_steps` past the
    /// previous checkpoint — but only at a *clean* cut: nothing parked
    /// in the reorder buffer (a checkpoint never captures in-flight
    /// batches, so a cut with pending batches would lose them from the
    /// transcript-suffix resume) and the run not finished (a finished
    /// run needs no durability).
    fn maybe_checkpoint(&mut self) -> Result<(), ProtocolError> {
        let Some((plan, config)) = &self.checkpoints else {
            return Ok(());
        };
        let step = self.server.steps();
        if step < self.last_checkpoint_step + plan.every_steps
            || self.server.pending_batches() != 0
            || self.server.is_finished()
        {
            return Ok(());
        }
        let offset = self.transcript.lock().len() as u64;
        let ckpt = self.server.checkpoint(offset)?;
        plan.store.save(plan.session, config, &ckpt)?;
        self.last_checkpoint_step = step;
        Ok(())
    }
}

impl TrainingSessionRunner {
    /// Creates a runner for the given wire-level session agreement.
    pub fn new(config: SessionConfig) -> Self {
        Self {
            config,
            options: RunnerOptions::default(),
            checkpoints: None,
        }
    }

    /// Replaces the local scheduling options.
    pub fn with_options(mut self, options: RunnerOptions) -> Self {
        self.options = options;
        self
    }

    /// Durably checkpoints the server into `store` under `session`,
    /// every `every_steps` trained steps (at the next clean cut — see
    /// [`ServerSession::checkpoint`]). The recorded transcript offset
    /// in each checkpoint lets [`resume_from_checkpoint`] replay only
    /// the suffix.
    ///
    /// [`resume_from_checkpoint`]: crate::resume_from_checkpoint
    pub fn with_checkpoints(
        mut self,
        store: CheckpointStore,
        session: SessionId,
        every_steps: u64,
    ) -> Self {
        self.checkpoints = Some(CheckpointPlan {
            store,
            session,
            every_steps: every_steps.max(1),
        });
        self
    }

    /// The wire-level session agreement.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Runs a full multi-client MLP training session over `dataset`.
    ///
    /// The dataset is batched in order (`batch_size` rows each), and
    /// batch `i` of each epoch is owned — and encrypted — by client
    /// `i mod K`. Labels are one-hot encoded by the owning client, per
    /// the paper's client-side pre-processing.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidConfig`] for an unusable config (zero
    /// clients, more clients than batches, non-MLP model); training and
    /// encryption failures otherwise.
    pub fn run_mlp(&self, dataset: &Dataset) -> Result<SessionOutcome, ProtocolError> {
        let spec = match &self.config.model {
            ModelSpec::Mlp(spec) => spec.clone(),
            ModelSpec::Cnn(_) => {
                return Err(ProtocolError::InvalidConfig(
                    "run_mlp requires an MLP model spec".into(),
                ))
            }
        };
        if spec.feature_dim != dataset.feature_dim() || spec.classes != dataset.classes() {
            return Err(ProtocolError::InvalidConfig(format!(
                "model expects {}→{} but dataset is {}→{}",
                spec.feature_dim,
                spec.classes,
                dataset.feature_dim(),
                dataset.classes()
            )));
        }
        let k = self.config.clients as usize;
        if k == 0 {
            return Err(ProtocolError::InvalidConfig("zero clients".into()));
        }
        if self.config.batch_size == 0 {
            return Err(ProtocolError::InvalidConfig("zero batch size".into()));
        }
        if self.config.epochs == 0 {
            return Err(ProtocolError::InvalidConfig("zero epochs".into()));
        }
        let shards = round_robin_shards(dataset, self.config.batch_size as usize, k);
        if shards.iter().any(Vec::is_empty) {
            return Err(ProtocolError::InvalidConfig(format!(
                "{} clients but only {} batches to shard",
                k,
                shards.iter().map(Vec::len).sum::<usize>()
            )));
        }

        let record = self.options.record;
        let transcript = Arc::new(Mutex::new(Transcript::new()));
        if record {
            transcript.lock().push(
                Party::Scheduler,
                Party::Broadcast,
                WireMessage::Config(self.config.clone()),
            );
        }

        let clients: Vec<ClientSession> = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                ClientSession::new(
                    ClientId(i as u32),
                    self.config.client_seed_base + i as u64,
                    self.options.parallelism,
                    shard,
                )
            })
            .collect();

        // --- authority setup + key distribution ----------------------
        let authority = Arc::new(AuthoritySession::new(&self.config));
        let params = authority.public_params_for(&self.config);
        if record {
            transcript.lock().push(
                Party::Authority,
                Party::Broadcast,
                WireMessage::PublicParams(params.clone()),
            );
        }

        let server = ServerSession::new(
            &self.config,
            &params,
            Box::new(RecordingChannel {
                authority: Arc::clone(&authority),
                transcript: Arc::clone(&transcript),
                record,
            }),
            self.options.parallelism,
        );
        let mut pump = ServerPump {
            server,
            transcript: Arc::clone(&transcript),
            record,
            summary: None,
            checkpoints: self
                .checkpoints
                .clone()
                .map(|plan| (plan, self.config.clone())),
            last_checkpoint_step: 0,
        };

        if self.options.pipelined {
            run_pipelined(&self.config, &params, clients, &mut pump)?;
        } else {
            run_serial(&self.config, &params, clients, &mut pump)?;
        }

        let summary = pump
            .summary
            .ok_or(ProtocolError::MissingMessage("SessionSummary"))?;
        // The server's recording channel keeps its Arc alive, so move
        // the record out rather than cloning it; the channel sees an
        // empty transcript from here on, which only affects post-session
        // handle_batch calls on the returned server (unrecorded anyway).
        let transcript = std::mem::take(&mut *transcript.lock());
        Ok(SessionOutcome {
            transcript,
            summary,
            server: pump.server,
        })
    }
}

/// Delivers one broadcast to every client (in client order) and queues
/// whatever they emit — the client half of both pump modes, kept
/// identical so the two modes produce the same message sequence.
fn deliver_to_clients(
    clients: &mut [ClientSession],
    msg: &WireMessage,
    queue: &mut VecDeque<(ClientId, WireMessage)>,
) -> Result<(), ProtocolError> {
    for client in clients.iter_mut() {
        let id = client.id();
        for ob in client.handle_message(msg)? {
            queue.push_back((id, ob.msg));
        }
    }
    Ok(())
}

/// The single-threaded pump: one deterministic event loop.
fn run_serial(
    config: &SessionConfig,
    params: &PublicParams,
    mut clients: Vec<ClientSession>,
    pump: &mut ServerPump,
) -> Result<(), ProtocolError> {
    let mut queue: VecDeque<(ClientId, WireMessage)> = VecDeque::new();
    let config_msg = WireMessage::Config(config.clone());
    let params_msg = WireMessage::PublicParams(params.clone());
    deliver_to_clients(&mut clients, &config_msg, &mut queue)?;
    deliver_to_clients(&mut clients, &params_msg, &mut queue)?;

    while let Some((from, msg)) = queue.pop_front() {
        for ob in pump.feed(from, &msg)? {
            deliver_to_clients(&mut clients, &ob.msg, &mut queue)?;
        }
        if pump.summary.is_some() {
            return Ok(());
        }
    }
    // The queue drained without a summary: the state machines stalled,
    // which the credit-window invariant rules out for a valid config —
    // surface it rather than loop forever.
    Err(ProtocolError::MissingMessage("SessionSummary"))
}

/// The pipelined pump: the whole client side (encryption included) runs
/// on one producer thread, fed the same broadcast stream in the same
/// order as the serial pump, while the server trains on the calling
/// thread. The exchanged message sequence — and therefore the recorded
/// transcript and the trained weights — is bit-identical to
/// [`run_serial`].
fn run_pipelined(
    config: &SessionConfig,
    params: &PublicParams,
    mut clients: Vec<ClientSession>,
    pump: &mut ServerPump,
) -> Result<(), ProtocolError> {
    let k = clients.len();
    // Clients keep at most `window` batches in flight each, plus the
    // initial registrations: the channel never fills beyond that, so
    // the bound is backpressure against a runaway producer, not a
    // scheduling constraint.
    let depth = k * (crate::session::DEFAULT_CLIENT_WINDOW + 1);
    let (batch_tx, batch_rx) =
        mpsc::sync_channel::<Result<(ClientId, WireMessage), ProtocolError>>(depth);
    let (bcast_tx, bcast_rx) = mpsc::channel::<WireMessage>();

    let config_msg = WireMessage::Config(config.clone());
    let params_msg = WireMessage::PublicParams(params.clone());

    std::thread::scope(|scope| {
        let producer = scope.spawn(move || {
            let mut deliver = |msg: &WireMessage| -> Result<(), ()> {
                let mut queue = VecDeque::new();
                if let Err(e) = deliver_to_clients(&mut clients, msg, &mut queue) {
                    let _ = batch_tx.send(Err(e));
                    return Err(());
                }
                for item in queue {
                    // A closed channel means the server side bailed;
                    // stop encrypting immediately.
                    batch_tx.send(Ok(item)).map_err(|_| ())?;
                }
                Ok(())
            };
            if deliver(&config_msg).is_err() || deliver(&params_msg).is_err() {
                return;
            }
            while let Ok(msg) = bcast_rx.recv() {
                let done = matches!(msg, WireMessage::Summary(_));
                if deliver(&msg).is_err() || done {
                    return;
                }
            }
        });

        let mut failure: Option<ProtocolError> = None;
        while let Ok(item) = batch_rx.recv() {
            let (from, msg) = match item {
                Ok(pair) => pair,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            };
            match pump.feed(from, &msg) {
                Ok(outs) => {
                    for ob in outs {
                        // The producer hanging up early (all clients
                        // finished) makes trailing broadcasts moot.
                        let _ = bcast_tx.send(ob.msg);
                    }
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
            if pump.summary.is_some() {
                break;
            }
        }
        // Dropping our channel ends stops the producer: its next send
        // or recv fails and it returns.
        drop(batch_rx);
        drop(bcast_tx);
        if let Err(payload) = producer.join() {
            std::panic::resume_unwind(payload);
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })
}

/// A convenience [`SessionConfig`] for MLP sessions: fills the crypto
/// and seed fields with the workspace's fast-test defaults so tests
/// and examples only state what varies.
pub fn mlp_session_config(
    spec: MlpSpec,
    clients: u32,
    epochs: u32,
    batch_size: u32,
    lr: f64,
) -> SessionConfig {
    use cryptonn_fe::PermittedFunctions;
    use cryptonn_group::SecurityLevel;
    use cryptonn_smc::FixedPoint;
    SessionConfig {
        level: SecurityLevel::Bits64,
        fp: FixedPoint::TWO_DECIMALS,
        grad_fp: FixedPoint::new(10_000),
        permitted: PermittedFunctions::all(),
        model: ModelSpec::Mlp(spec),
        lr,
        epochs,
        batch_size,
        clients,
        authority_seed: 1009,
        model_seed: 2017,
        client_seed_base: 4001,
        policy: crate::messages::SessionPolicy::FailFast,
    }
}
