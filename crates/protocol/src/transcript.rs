//! Recorded message streams: every session run can be captured as a
//! [`Transcript`] — an ordered sequence of addressed envelopes — and a
//! transcript is sufficient to re-execute the server side
//! ([`replay_server`](crate::replay_server)).

use serde::{Deserialize, Serialize};

use crate::error::ProtocolError;
use crate::messages::WireMessage;

/// A protocol participant, as an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Party {
    /// The deterministic scheduler driving the session.
    Scheduler,
    /// The trusted key authority.
    Authority,
    /// The training server.
    Server,
    /// A data-owner client.
    Client(u32),
    /// Everyone (key distribution, metrics, barriers).
    Broadcast,
}

/// One addressed, sequenced message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Position in the transcript (0-based, dense).
    pub seq: u64,
    /// Sender.
    pub from: Party,
    /// Recipient.
    pub to: Party,
    /// Payload.
    pub msg: WireMessage,
}

/// An ordered record of every message a session exchanged.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Transcript {
    /// The envelopes, in exchange order (`entries[i].seq == i`).
    pub entries: Vec<Envelope>,
}

impl Transcript {
    /// An empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a message, assigning the next sequence number.
    pub fn push(&mut self, from: Party, to: Party, msg: WireMessage) {
        let seq = self.entries.len() as u64;
        self.entries.push(Envelope { seq, from, to, msg });
    }

    /// Number of recorded messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Messages of one kind, in order (see [`WireMessage::kind`]).
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Envelope> {
        self.entries.iter().filter(move |e| e.msg.kind() == kind)
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Serde`] on serializer failure.
    pub fn to_json(&self) -> Result<String, ProtocolError> {
        serde_json::to_string(self).map_err(|e| ProtocolError::Serde(e.to_string()))
    }

    /// Parses a transcript from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Serde`] on malformed input.
    pub fn from_json(s: &str) -> Result<Self, ProtocolError> {
        serde_json::from_str(s).map_err(|e| ProtocolError::Serde(e.to_string()))
    }

    /// Writes the JSON form to a file.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Serde`] on serializer failure,
    /// [`ProtocolError::Io`] on filesystem failure.
    pub fn save(&self, path: &std::path::Path) -> Result<(), ProtocolError> {
        let json = self.to_json()?;
        std::fs::write(path, json).map_err(|e| ProtocolError::Io(e.to_string()))
    }

    /// Reads a transcript from a JSON file.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Io`] if the file cannot be read,
    /// [`ProtocolError::Serde`] if its contents are malformed.
    pub fn load(path: &std::path::Path) -> Result<Self, ProtocolError> {
        let json = std::fs::read_to_string(path).map_err(|e| ProtocolError::Io(e.to_string()))?;
        Self::from_json(&json)
    }
}
