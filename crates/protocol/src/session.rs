//! The per-role state machines of the session protocol.
//!
//! Each session owns its role's private state (master keys, plaintext
//! shard, model weights) and communicates *only* through the
//! [`WireMessage`](crate::WireMessage) alphabet:
//!
//! - [`AuthoritySession`] answers [`KeyRequest`]s, enforcing the
//!   permitted set exactly as the in-process [`KeyAuthority`] does;
//! - [`ClientSession`] builds its encryptor from the wire-delivered
//!   [`PublicParams`] and emits encrypted batch messages;
//! - [`ServerSession`] consumes batch messages and trains, reaching the
//!   authority through an [`AuthorityChannel`] — the synchronous
//!   request/response hook that the runner records and the replayer
//!   feeds from a transcript.

use std::cell::RefCell;
use std::collections::HashMap;

use cryptonn_core::{Client, CryptoCnn, CryptoMlp, CryptoNnConfig};
use cryptonn_fe::{
    FeError, FeboFunctionKey, FeboKeyRequest, FeboPublicKey, FeipFunctionKey, FeipPublicKey,
    KeyAuthority, KeyService,
};
use cryptonn_group::SchnorrGroup;
use cryptonn_matrix::{Matrix, Tensor4};
use cryptonn_parallel::Parallelism;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::ProtocolError;
use crate::messages::{
    ClientId, CnnArch, EncryptedBatchMsg, EncryptedImageBatchMsg, FeboKeysRequest, FeipKeysRequest,
    KeyRequest, KeyResponse, ModelDelta, ModelSpec, PublicParams, RegisterClient, SessionConfig,
    SessionSummary,
};

/// The server's synchronous line to the authority: one request in, one
/// response out. The live implementation forwards to an
/// [`AuthoritySession`] and records both directions; the replay
/// implementation pops recorded responses and verifies the requests
/// still match.
pub trait AuthorityChannel {
    /// Sends `req` and returns the authority's response.
    ///
    /// # Errors
    ///
    /// Transport-level failures (replay exhaustion/divergence).
    fn exchange(&mut self, req: KeyRequest) -> Result<KeyResponse, ProtocolError>;
}

/// The key authority as a session: owns the master keys, answers
/// serializable key requests.
#[derive(Debug)]
pub struct AuthoritySession {
    authority: KeyAuthority,
}

impl AuthoritySession {
    /// Sets up the authority for a session: group from the configured
    /// level, master keys from the configured seed.
    pub fn new(config: &SessionConfig) -> Self {
        let group = SchnorrGroup::precomputed(config.level);
        Self {
            authority: KeyAuthority::with_seed(group, config.permitted, config.authority_seed),
        }
    }

    /// The underlying authority (for comm-log inspection in tests and
    /// benches).
    pub fn authority(&self) -> &KeyAuthority {
        &self.authority
    }

    /// The session's public parameters: FEIP instances for the feature
    /// and class dimensions plus the FEBO key.
    ///
    /// The two instances are created in a fixed order (features first),
    /// so the authority's RNG evolution — and hence every derived key —
    /// is independent of the client count.
    pub fn public_params(
        &self,
        feature_dim: usize,
        classes: usize,
        config: &SessionConfig,
    ) -> PublicParams {
        PublicParams {
            x_mpk: self.authority.feip_public_key(feature_dim),
            y_mpk: self.authority.feip_public_key(classes),
            febo_mpk: self.authority.febo_public_key(),
            fp: config.fp,
        }
    }

    /// Serves one key request. Refusals (permitted-set violations,
    /// invalid operands) come back as [`KeyResponse::Denied`] rather
    /// than an `Err`: a refusal is a protocol outcome worth recording,
    /// not a transport failure.
    pub fn handle(&self, req: &KeyRequest) -> KeyResponse {
        // Requests come off the wire: a zero dimension would panic the
        // FEIP setup, so refuse it like any other bad operand.
        let dim_of = |r: &KeyRequest| match r {
            KeyRequest::FeipMpk(dim) | KeyRequest::Feip(FeipKeysRequest { dim, .. }) => Some(*dim),
            KeyRequest::Febo(_) => None,
        };
        if dim_of(req) == Some(0) {
            return KeyResponse::Denied("FEIP dimension must be positive".into());
        }
        match req {
            KeyRequest::FeipMpk(dim) => KeyResponse::FeipMpk(self.authority.feip_public_key(*dim)),
            KeyRequest::Feip(FeipKeysRequest { dim, ys }) => {
                // First-error semantics via the same batched KeyService
                // path the in-process special case uses.
                match self.authority.derive_ip_keys(*dim, ys) {
                    Ok(keys) => KeyResponse::Feip(keys),
                    Err(e) => KeyResponse::Denied(e.to_string()),
                }
            }
            KeyRequest::Febo(FeboKeysRequest { reqs }) => {
                match self.authority.derive_bo_keys(reqs) {
                    Ok(keys) => KeyResponse::Febo(keys),
                    Err(e) => KeyResponse::Denied(e.to_string()),
                }
            }
        }
    }
}

/// A [`KeyService`] that reaches the authority over an
/// [`AuthorityChannel`]: what turns the secure steps of Algorithm 2
/// into recorded (and replayable) wire traffic.
///
/// Public keys delivered in [`PublicParams`] are cached; anything else
/// goes over the channel.
pub struct ChannelKeyService {
    link: RefCell<Box<dyn AuthorityChannel>>,
    mpks: RefCell<HashMap<usize, FeipPublicKey>>,
    febo_mpk: FeboPublicKey,
}

impl ChannelKeyService {
    /// Builds the service from the session's public parameters and a
    /// channel for everything else.
    pub fn new(params: &PublicParams, link: Box<dyn AuthorityChannel>) -> Self {
        let mut mpks = HashMap::new();
        mpks.insert(params.x_mpk.dimension(), params.x_mpk.clone());
        mpks.insert(params.y_mpk.dimension(), params.y_mpk.clone());
        Self {
            link: RefCell::new(link),
            mpks: RefCell::new(mpks),
            febo_mpk: params.febo_mpk.clone(),
        }
    }

    fn exchange(&self, req: KeyRequest) -> Result<KeyResponse, FeError> {
        self.link
            .borrow_mut()
            .exchange(req)
            .map_err(|e| FeError::Protocol(e.to_string()))
    }
}

impl KeyService for ChannelKeyService {
    fn feip_public_key(&self, dim: usize) -> Result<FeipPublicKey, FeError> {
        if let Some(mpk) = self.mpks.borrow().get(&dim) {
            return Ok(mpk.clone());
        }
        match self.exchange(KeyRequest::FeipMpk(dim))? {
            KeyResponse::FeipMpk(mpk) => {
                self.mpks.borrow_mut().insert(dim, mpk.clone());
                Ok(mpk)
            }
            KeyResponse::Denied(why) => Err(FeError::Protocol(why)),
            other => Err(FeError::Protocol(format!(
                "expected an mpk response, got {other:?}"
            ))),
        }
    }

    fn febo_public_key(&self) -> Result<FeboPublicKey, FeError> {
        Ok(self.febo_mpk.clone())
    }

    fn derive_ip_keys(&self, dim: usize, ys: &[Vec<i64>]) -> Result<Vec<FeipFunctionKey>, FeError> {
        let req = KeyRequest::Feip(FeipKeysRequest {
            dim,
            ys: ys.to_vec(),
        });
        match self.exchange(req)? {
            KeyResponse::Feip(keys) if keys.len() == ys.len() => Ok(keys),
            KeyResponse::Feip(keys) => Err(FeError::Protocol(format!(
                "requested {} FEIP keys, authority returned {}",
                ys.len(),
                keys.len()
            ))),
            KeyResponse::Denied(why) => Err(FeError::Protocol(why)),
            other => Err(FeError::Protocol(format!(
                "expected FEIP keys, got {other:?}"
            ))),
        }
    }

    fn derive_bo_keys(&self, reqs: &[FeboKeyRequest]) -> Result<Vec<FeboFunctionKey>, FeError> {
        let req = KeyRequest::Febo(FeboKeysRequest {
            reqs: reqs.to_vec(),
        });
        match self.exchange(req)? {
            KeyResponse::Febo(keys) if keys.len() == reqs.len() => Ok(keys),
            KeyResponse::Febo(keys) => Err(FeError::Protocol(format!(
                "requested {} FEBO keys, authority returned {}",
                reqs.len(),
                keys.len()
            ))),
            KeyResponse::Denied(why) => Err(FeError::Protocol(why)),
            other => Err(FeError::Protocol(format!(
                "expected FEBO keys, got {other:?}"
            ))),
        }
    }
}

/// One data-owner: holds its plaintext shard and, once the public
/// parameters arrive, its encryptor.
#[derive(Debug)]
pub struct ClientSession {
    id: ClientId,
    seed: u64,
    parallelism: Parallelism,
    /// This client's plaintext mini-batches `(x, one-hot y)`, in local
    /// order.
    shard: Vec<(Matrix<f64>, Matrix<f64>)>,
    client: Option<Client>,
}

impl ClientSession {
    /// Creates the session over a plaintext shard. Encryption becomes
    /// possible once [`on_public_params`](Self::on_public_params) runs.
    pub fn new(
        id: ClientId,
        seed: u64,
        parallelism: Parallelism,
        shard: Vec<(Matrix<f64>, Matrix<f64>)>,
    ) -> Self {
        Self {
            id,
            seed,
            parallelism,
            shard,
            client: None,
        }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Number of batches in this client's shard.
    pub fn shard_len(&self) -> usize {
        self.shard.len()
    }

    /// The registration message this client opens with.
    pub fn register(&self) -> RegisterClient {
        RegisterClient {
            client: self.id,
            batches_per_epoch: self.shard.len() as u64,
        }
    }

    /// Consumes the session's public parameters: builds the encryptor
    /// from the wire-delivered keys (never from a local authority).
    pub fn on_public_params(&mut self, params: &PublicParams) {
        self.client = Some(
            Client::from_keys(
                params.x_mpk.clone(),
                params.y_mpk.clone(),
                params.febo_mpk.clone(),
                params.fp,
                self.seed,
            )
            .with_parallelism(self.parallelism),
        );
    }

    /// Encrypts local batch `local_idx` for global step `step`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::MissingMessage`] before the public parameters
    /// arrived; shape errors from the encryptor.
    pub fn encrypt_step(
        &mut self,
        local_idx: usize,
        step: u64,
    ) -> Result<EncryptedBatchMsg, ProtocolError> {
        let (x, y) = self.shard.get(local_idx).ok_or_else(|| {
            ProtocolError::InvalidConfig(format!(
                "client {} has {} batches, scheduler asked for #{local_idx}",
                self.id,
                self.shard.len()
            ))
        })?;
        let client = self
            .client
            .as_mut()
            .ok_or(ProtocolError::MissingMessage("PublicParams"))?;
        let batch = client.encrypt_batch(x, y)?;
        Ok(EncryptedBatchMsg {
            client: self.id,
            step,
            batch,
        })
    }
}

/// The model a [`ServerSession`] trains.
#[derive(Debug)]
pub enum ServerModel {
    /// A fully-connected CryptoNN model.
    Mlp(CryptoMlp),
    /// A CryptoCNN instantiation.
    Cnn(CryptoCnn),
}

/// The training server: consumes encrypted batch messages in schedule
/// order, reaching the authority only through its channel.
pub struct ServerSession {
    model: ServerModel,
    keys: ChannelKeyService,
    lr: f64,
    next_step: u64,
    losses: Vec<f64>,
}

impl core::fmt::Debug for ServerSession {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ServerSession")
            .field("model", &self.model)
            .field("lr", &self.lr)
            .field("next_step", &self.next_step)
            .field("losses", &self.losses.len())
            .finish_non_exhaustive()
    }
}

impl ServerSession {
    /// Builds the server from the session config and public parameters,
    /// with `link` as its line to the authority. `parallelism` is the
    /// server's local thread policy for the decryption loops (a runtime
    /// choice — results are bit-identical across policies).
    pub fn new(
        config: &SessionConfig,
        params: &PublicParams,
        link: Box<dyn AuthorityChannel>,
        parallelism: Parallelism,
    ) -> Self {
        let cc = CryptoNnConfig {
            level: config.level,
            fp: config.fp,
            grad_fp: config.grad_fp,
            parallelism,
        };
        let mut rng = StdRng::seed_from_u64(config.model_seed);
        let model = match &config.model {
            ModelSpec::Mlp(spec) => ServerModel::Mlp(CryptoMlp::new(
                spec.feature_dim,
                &spec.hidden,
                spec.classes,
                spec.objective,
                cc,
                &mut rng,
            )),
            ModelSpec::Cnn(CnnArch::Lenet5) => ServerModel::Cnn(CryptoCnn::lenet5(cc, &mut rng)),
            ModelSpec::Cnn(CnnArch::LenetSmall(classes)) => {
                ServerModel::Cnn(CryptoCnn::lenet_small(cc, *classes, &mut rng))
            }
        };
        Self {
            model,
            keys: ChannelKeyService::new(params, link),
            lr: config.lr,
            next_step: 0,
            losses: Vec::new(),
        }
    }

    /// The trained MLP, if this session trains one.
    pub fn mlp(&self) -> Option<&CryptoMlp> {
        match &self.model {
            ServerModel::Mlp(m) => Some(m),
            ServerModel::Cnn(_) => None,
        }
    }

    /// The trained CNN, if this session trains one.
    pub fn cnn(&self) -> Option<&CryptoCnn> {
        match &self.model {
            ServerModel::Cnn(m) => Some(m),
            ServerModel::Mlp(_) => None,
        }
    }

    /// Mutable access to the trained MLP (plaintext prediction passes).
    pub fn mlp_mut(&mut self) -> Option<&mut CryptoMlp> {
        match &mut self.model {
            ServerModel::Mlp(m) => Some(m),
            ServerModel::Cnn(_) => None,
        }
    }

    /// Mutable access to the trained CNN.
    pub fn cnn_mut(&mut self) -> Option<&mut CryptoCnn> {
        match &mut self.model {
            ServerModel::Cnn(m) => Some(m),
            ServerModel::Mlp(_) => None,
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.next_step
    }

    /// Per-step secure losses so far.
    pub fn losses(&self) -> &[f64] {
        &self.losses
    }

    fn check_order(&self, step: u64) -> Result<(), ProtocolError> {
        if step != self.next_step {
            return Err(ProtocolError::OutOfOrder {
                expected: self.next_step,
                got: step,
            });
        }
        Ok(())
    }

    /// The shared step bookkeeping: advance the schedule, log the loss,
    /// emit the metric broadcast.
    fn finish_step(&mut self, step: u64, client: ClientId, loss: f64) -> ModelDelta {
        self.next_step += 1;
        self.losses.push(loss);
        ModelDelta { step, client, loss }
    }

    /// One Algorithm-2 training step on an encrypted MLP batch message.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::OutOfOrder`] off schedule;
    /// [`ProtocolError::InvalidConfig`] if this session trains a CNN;
    /// training failures otherwise. The model is unchanged on error.
    pub fn handle_batch(&mut self, msg: &EncryptedBatchMsg) -> Result<ModelDelta, ProtocolError> {
        self.check_order(msg.step)?;
        let out = match &mut self.model {
            ServerModel::Mlp(m) => m.train_encrypted_batch(&self.keys, &msg.batch, self.lr)?,
            ServerModel::Cnn(_) => {
                return Err(ProtocolError::InvalidConfig(
                    "MLP batch sent to a CNN session".into(),
                ))
            }
        };
        Ok(self.finish_step(msg.step, msg.client, out.loss))
    }

    /// One training step on an encrypted CNN batch message.
    ///
    /// # Errors
    ///
    /// As [`handle_batch`](Self::handle_batch), with the model kinds
    /// swapped.
    pub fn handle_image_batch(
        &mut self,
        msg: &EncryptedImageBatchMsg,
    ) -> Result<ModelDelta, ProtocolError> {
        self.check_order(msg.step)?;
        let out = match &mut self.model {
            ServerModel::Cnn(m) => m.train_encrypted_batch(&self.keys, &msg.batch, self.lr)?,
            ServerModel::Mlp(_) => {
                return Err(ProtocolError::InvalidConfig(
                    "CNN batch sent to an MLP session".into(),
                ))
            }
        };
        Ok(self.finish_step(msg.step, msg.client, out.loss))
    }

    /// The session's final fingerprint: step count, loss trajectory,
    /// and the first-layer parameters (the encrypted-path weights).
    pub fn summary(&self) -> SessionSummary {
        let (w1, b1) = match &self.model {
            ServerModel::Mlp(m) => (
                m.first_layer().weights().clone(),
                m.first_layer().bias().clone(),
            ),
            ServerModel::Cnn(m) => {
                let bias = m.first_layer().bias();
                (
                    m.first_layer().filters().clone(),
                    Matrix::from_rows(&[bias]),
                )
            }
        };
        SessionSummary {
            steps: self.next_step,
            losses: self.losses.clone(),
            final_w1: w1,
            final_b1: b1,
        }
    }
}

/// Reshapes a flat `(batch, c·h·w)` feature matrix into the `(batch,
/// c, h, w)` tensor the CNN client path encrypts — the bridge between
/// [`Dataset`](cryptonn_data::Dataset) rows and Algorithm 3 windows.
///
/// # Panics
///
/// Panics if `x.cols() != c * h * w`.
pub fn rows_to_images(x: &Matrix<f64>, c: usize, h: usize, w: usize) -> Tensor4 {
    assert_eq!(x.cols(), c * h * w, "row length must equal c*h*w");
    Tensor4::from_vec(x.rows(), c, h, w, x.as_slice().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::MlpSpec;
    use crate::runner::mlp_session_config;
    use cryptonn_core::Objective;
    use std::rc::Rc;

    fn config() -> SessionConfig {
        mlp_session_config(
            MlpSpec {
                feature_dim: 3,
                hidden: vec![2],
                classes: 2,
                objective: Objective::SoftmaxCrossEntropy,
            },
            1,
            1,
            2,
            0.5,
        )
    }

    /// A channel that forwards to an authority session and counts the
    /// exchanges, to observe the mpk cache behavior.
    struct CountingChannel {
        authority: Rc<AuthoritySession>,
        exchanges: Rc<std::cell::Cell<usize>>,
    }

    impl AuthorityChannel for CountingChannel {
        fn exchange(&mut self, req: KeyRequest) -> Result<KeyResponse, ProtocolError> {
            self.exchanges.set(self.exchanges.get() + 1);
            Ok(self.authority.handle(&req))
        }
    }

    /// Requesting an mpk dimension beyond those in PublicParams goes
    /// over the wire once, then serves from cache.
    #[test]
    fn uncached_mpk_dimension_is_fetched_then_cached() {
        let config = config();
        let authority = Rc::new(AuthoritySession::new(&config));
        let params = authority.public_params(3, 2, &config);
        let exchanges = Rc::new(std::cell::Cell::new(0));
        let service = ChannelKeyService::new(
            &params,
            Box::new(CountingChannel {
                authority: Rc::clone(&authority),
                exchanges: Rc::clone(&exchanges),
            }),
        );

        // Published dimensions never touch the wire.
        assert_eq!(service.feip_public_key(3).unwrap().dimension(), 3);
        assert_eq!(service.feip_public_key(2).unwrap().dimension(), 2);
        assert_eq!(exchanges.get(), 0);

        // An unpublished dimension is one exchange, then cached — and
        // identical to what the authority would hand out directly.
        let wire = service.feip_public_key(5).unwrap();
        assert_eq!(exchanges.get(), 1);
        assert_eq!(wire, authority.authority().feip_public_key(5));
        let again = service.feip_public_key(5).unwrap();
        assert_eq!(exchanges.get(), 1, "second lookup must hit the cache");
        assert_eq!(again, wire);
    }
}
