//! The per-role state machines of the session protocol.
//!
//! Each session owns its role's private state (master keys, plaintext
//! shard, model weights) and communicates *only* through the
//! [`WireMessage`] alphabet. Every role exposes the
//! same event-driven surface — `handle_message(&mut self, msg) ->
//! Result<Vec<Outbound>>` — so the deterministic in-process runner, the
//! transcript replayer, and the networked daemons are all thin drivers
//! over identical protocol logic:
//!
//! - [`AuthoritySession`] answers [`KeyRequest`]s, enforcing the
//!   permitted set exactly as the in-process [`KeyAuthority`] does;
//! - [`ClientSession`] builds its encryptor from the wire-delivered
//!   [`PublicParams`] and streams encrypted batch messages under
//!   credit-based flow control (a bounded window of unacknowledged
//!   batches, replenished by [`ModelDelta`] broadcasts);
//! - [`ServerSession`] consumes batch messages — reordering bounded
//!   bursts of ahead-of-schedule arrivals — trains in strict global
//!   step order, and emits the [`ModelDelta`] / [`EpochBarrier`] /
//!   [`SessionSummary`] broadcasts itself, reaching the authority only
//!   through an [`AuthorityChannel`] — the synchronous request/response
//!   hook that the runner records, the replayer feeds from a
//!   transcript, and the networked stack backs with a framed socket.
//!
//! [`ModelDelta`]: crate::ModelDelta
//! [`EpochBarrier`]: crate::EpochBarrier
//! [`SessionSummary`]: crate::SessionSummary

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use parking_lot::Mutex;

use cryptonn_core::{Client, CryptoCnn, CryptoMlp, CryptoNnConfig};
use cryptonn_fe::{
    FeError, FeboFunctionKey, FeboKeyRequest, FeboPublicKey, FeipFunctionKey, FeipPublicKey,
    KeyAuthority, KeyService, ShareAuthority, ShareSpec,
};
use cryptonn_group::SchnorrGroup;
use cryptonn_matrix::{Matrix, Tensor4};
use cryptonn_parallel::Parallelism;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::checkpoint::{SessionCheckpoint, CHECKPOINT_SCHEMA};
use crate::error::ProtocolError;
use crate::messages::{
    ClientId, CnnArch, EncryptedBatchMsg, EncryptedImageBatchMsg, EpochBarrier, FeboKeysRequest,
    FeipKeysRequest, KeyRequest, KeyResponse, ModelDelta, ModelSpec, PartialKey, PublicParams,
    RegisterClient, ReshardEntry, ReshardSpec, ResumeMsg, SessionConfig, SessionPolicy,
    SessionSummary, ShareInfo, ShareRequest, TrainingStart, WireMessage,
};
use crate::transcript::Party;

/// One message a state machine wants delivered: the event-driven
/// counterpart of a send. Transports (the in-process pump, the framed
/// socket stack) route it; state machines never call each other.
#[derive(Debug, Clone, PartialEq)]
pub struct Outbound {
    /// The addressee.
    pub to: Party,
    /// The payload.
    pub msg: WireMessage,
}

impl Outbound {
    /// An outbound addressed to everyone.
    pub fn broadcast(msg: WireMessage) -> Self {
        Self {
            to: Party::Broadcast,
            msg,
        }
    }

    /// An outbound addressed to one party.
    pub fn to(to: Party, msg: WireMessage) -> Self {
        Self { to, msg }
    }
}

/// The server's synchronous line to the authority: one request in, one
/// response out. The live implementation forwards to an
/// [`AuthoritySession`] and records both directions; the replay
/// implementation pops recorded responses and verifies the requests
/// still match; the networked implementation frames both directions
/// over a dedicated socket.
pub trait AuthorityChannel: Send {
    /// Sends `req` and returns the authority's response.
    ///
    /// # Errors
    ///
    /// Transport-level failures (replay exhaustion/divergence, a lost
    /// connection).
    fn exchange(&mut self, req: KeyRequest) -> Result<KeyResponse, ProtocolError>;
}

/// The key authority as a session: owns the master keys, answers
/// serializable key requests.
#[derive(Debug)]
pub struct AuthoritySession {
    authority: KeyAuthority,
}

impl AuthoritySession {
    /// Sets up the authority for a session: group from the configured
    /// level, master keys from the configured seed.
    pub fn new(config: &SessionConfig) -> Self {
        let group = SchnorrGroup::precomputed(config.level);
        Self {
            authority: KeyAuthority::with_seed(group, config.permitted, config.authority_seed),
        }
    }

    /// The underlying authority (for comm-log inspection in tests and
    /// benches).
    pub fn authority(&self) -> &KeyAuthority {
        &self.authority
    }

    /// The session's public parameters: FEIP instances for the feature
    /// and class dimensions plus the FEBO key.
    ///
    /// The two instances are created in a fixed order (features first),
    /// so the authority's RNG evolution — and hence every derived key —
    /// is independent of the client count.
    pub fn public_params(
        &self,
        feature_dim: usize,
        classes: usize,
        config: &SessionConfig,
    ) -> PublicParams {
        PublicParams {
            x_mpk: self.authority.feip_public_key(feature_dim),
            y_mpk: self.authority.feip_public_key(classes),
            febo_mpk: self.authority.febo_public_key(),
            fp: config.fp,
        }
    }

    /// The session's public parameters, with the FEIP geometry derived
    /// from the configured model
    /// ([`ModelSpec::first_layer_dims`]) — what every driver (runner,
    /// authority daemon) publishes, so the authority's RNG evolution is
    /// identical across transports.
    pub fn public_params_for(&self, config: &SessionConfig) -> PublicParams {
        let (x_dim, classes) = config.model.first_layer_dims();
        self.public_params(x_dim, classes, config)
    }

    /// Serves one key request. Refusals (permitted-set violations,
    /// invalid operands) come back as [`KeyResponse::Denied`] rather
    /// than an `Err`: a refusal is a protocol outcome worth recording,
    /// not a transport failure.
    pub fn handle(&self, req: &KeyRequest) -> KeyResponse {
        // Requests come off the wire: a zero dimension would panic the
        // FEIP setup, so refuse it like any other bad operand.
        let dim_of = |r: &KeyRequest| match r {
            KeyRequest::FeipMpk(dim) | KeyRequest::Feip(FeipKeysRequest { dim, .. }) => Some(*dim),
            KeyRequest::Febo(_) => None,
        };
        if dim_of(req) == Some(0) {
            return KeyResponse::Denied("FEIP dimension must be positive".into());
        }
        match req {
            KeyRequest::FeipMpk(dim) => KeyResponse::FeipMpk(self.authority.feip_public_key(*dim)),
            KeyRequest::Feip(FeipKeysRequest { dim, ys }) => {
                // First-error semantics via the same batched KeyService
                // path the in-process special case uses.
                match self.authority.derive_ip_keys(*dim, ys) {
                    Ok(keys) => KeyResponse::Feip(keys),
                    Err(e) => KeyResponse::Denied(e.to_string()),
                }
            }
            KeyRequest::Febo(FeboKeysRequest { reqs }) => {
                match self.authority.derive_bo_keys(reqs) {
                    Ok(keys) => KeyResponse::Febo(keys),
                    Err(e) => KeyResponse::Denied(e.to_string()),
                }
            }
        }
    }

    /// The event-driven surface: key requests come in, responses go
    /// back to the server.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Unexpected`] for any non-request message — the
    /// authority consumes nothing else.
    pub fn handle_message(&self, msg: &WireMessage) -> Result<Vec<Outbound>, ProtocolError> {
        match msg {
            WireMessage::KeyRequest(req) => Ok(vec![Outbound::to(
                Party::Server,
                WireMessage::KeyResponse(self.handle(req)),
            )]),
            other => Err(ProtocolError::Unexpected {
                role: "authority",
                kind: other.kind(),
            }),
        }
    }
}

/// One share-holder of a t-of-n threshold authority as a session: owns
/// a [`ShareAuthority`] dealer replica and answers serializable
/// partial-derivation requests (DESIGN.md §17).
///
/// A share node also answers [`KeyRequest::FeipMpk`] (public keys are
/// common knowledge), but *refuses* full-key derivations with
/// [`KeyResponse::Denied`] — a share-holder never assembles a complete
/// function key.
#[derive(Debug)]
pub struct ShareSession {
    node: ShareAuthority,
}

impl ShareSession {
    /// Sets up share-holder `spec.index()` for a session: group from
    /// the configured level, dealer replica from the configured
    /// authority seed — so any quorum recombines to exactly the keys
    /// [`AuthoritySession::new`] would derive from the same config.
    pub fn new(config: &SessionConfig, spec: ShareSpec) -> Self {
        let group = SchnorrGroup::precomputed(config.level);
        Self {
            node: ShareAuthority::with_seed(group, config.permitted, config.authority_seed, spec),
        }
    }

    /// The underlying share-holder.
    pub fn node(&self) -> &ShareAuthority {
        &self.node
    }

    /// The session's public parameters — identical to what the single
    /// [`AuthoritySession`] publishes (same mpks, same derivation
    /// order), so the client/server sides are agnostic to the
    /// authority's deployment shape.
    pub fn public_params_for(&self, config: &SessionConfig) -> PublicParams {
        let (x_dim, classes) = config.model.first_layer_dims();
        PublicParams {
            x_mpk: self.node.feip_public_key(x_dim),
            y_mpk: self.node.feip_public_key(classes),
            febo_mpk: self.node.febo_public_key(),
            fp: config.fp,
        }
    }

    /// Serves one partial-derivation request. Refusals come back as
    /// [`PartialKey::Denied`], mirroring [`AuthoritySession::handle`].
    pub fn handle(&self, req: &ShareRequest) -> PartialKey {
        match req {
            ShareRequest::Info => {
                let spec = self.node.spec();
                PartialKey::Info(ShareInfo {
                    index: spec.index(),
                    n: spec.setup().n() as u32,
                    t: spec.setup().t() as u32,
                    febo_commitments: self.node.febo_commitments().to_vec(),
                })
            }
            ShareRequest::Feip(FeipKeysRequest { dim, ys }) => {
                if *dim == 0 {
                    return PartialKey::Denied("FEIP dimension must be positive".into());
                }
                match self.node.feip_partials(*dim, ys) {
                    Ok(partials) => PartialKey::Feip(partials),
                    Err(e) => PartialKey::Denied(e.to_string()),
                }
            }
            ShareRequest::Febo(FeboKeysRequest { reqs }) => match self.node.febo_partials(reqs) {
                Ok(partials) => PartialKey::Febo(partials),
                Err(e) => PartialKey::Denied(e.to_string()),
            },
        }
    }

    /// Serves the subset of [`KeyRequest`]s a share-holder may answer:
    /// public keys yes, full derivations never.
    pub fn handle_key(&self, req: &KeyRequest) -> KeyResponse {
        match req {
            KeyRequest::FeipMpk(0) => KeyResponse::Denied("FEIP dimension must be positive".into()),
            KeyRequest::FeipMpk(dim) => KeyResponse::FeipMpk(self.node.feip_public_key(*dim)),
            KeyRequest::Feip(_) | KeyRequest::Febo(_) => KeyResponse::Denied(
                "share-holders serve partial derivations only; ask the combiner".into(),
            ),
        }
    }

    /// The event-driven surface: partial-derivation requests (and the
    /// public-key subset of plain key requests) in, responses out.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Unexpected`] for anything else.
    pub fn handle_message(&self, msg: &WireMessage) -> Result<Vec<Outbound>, ProtocolError> {
        match msg {
            WireMessage::ShareRequest(req) => Ok(vec![Outbound::to(
                Party::Server,
                WireMessage::PartialKey(self.handle(req)),
            )]),
            WireMessage::KeyRequest(req) => Ok(vec![Outbound::to(
                Party::Server,
                WireMessage::KeyResponse(self.handle_key(req)),
            )]),
            other => Err(ProtocolError::Unexpected {
                role: "share-authority",
                kind: other.kind(),
            }),
        }
    }
}

/// A [`KeyService`] that reaches the authority over an
/// [`AuthorityChannel`]: what turns the secure steps of Algorithm 2
/// into recorded (and replayable) wire traffic.
///
/// Public keys delivered in [`PublicParams`] are cached; anything else
/// goes over the channel.
///
/// Interior mutability is a `Mutex` (not a `RefCell`) so the service —
/// and a [`CachingKeyService`](cryptonn_fe::CachingKeyService) wrapped
/// around it — is `Sync`: inference shards behind one front door share
/// a single warmed key cache (and its one authority link) through an
/// `Arc`.
pub struct ChannelKeyService {
    link: Mutex<Box<dyn AuthorityChannel>>,
    mpks: Mutex<HashMap<usize, FeipPublicKey>>,
    febo_mpk: FeboPublicKey,
}

impl ChannelKeyService {
    /// Builds the service from the session's public parameters and a
    /// channel for everything else.
    pub fn new(params: &PublicParams, link: Box<dyn AuthorityChannel>) -> Self {
        let mut mpks = HashMap::new();
        mpks.insert(params.x_mpk.dimension(), params.x_mpk.clone());
        mpks.insert(params.y_mpk.dimension(), params.y_mpk.clone());
        Self {
            link: Mutex::new(link),
            mpks: Mutex::new(mpks),
            febo_mpk: params.febo_mpk.clone(),
        }
    }

    fn exchange(&self, req: KeyRequest) -> Result<KeyResponse, FeError> {
        self.link
            .lock()
            .exchange(req)
            .map_err(|e| FeError::Protocol(e.to_string()))
    }
}

impl KeyService for ChannelKeyService {
    fn feip_public_key(&self, dim: usize) -> Result<FeipPublicKey, FeError> {
        if let Some(mpk) = self.mpks.lock().get(&dim) {
            return Ok(mpk.clone());
        }
        match self.exchange(KeyRequest::FeipMpk(dim))? {
            KeyResponse::FeipMpk(mpk) => {
                self.mpks.lock().insert(dim, mpk.clone());
                Ok(mpk)
            }
            KeyResponse::Denied(why) => Err(FeError::Protocol(why)),
            other => Err(FeError::Protocol(format!(
                "expected an mpk response, got {other:?}"
            ))),
        }
    }

    fn febo_public_key(&self) -> Result<FeboPublicKey, FeError> {
        Ok(self.febo_mpk.clone())
    }

    fn derive_ip_keys(&self, dim: usize, ys: &[Vec<i64>]) -> Result<Vec<FeipFunctionKey>, FeError> {
        let req = KeyRequest::Feip(FeipKeysRequest {
            dim,
            ys: ys.to_vec(),
        });
        match self.exchange(req)? {
            KeyResponse::Feip(keys) if keys.len() == ys.len() => Ok(keys),
            KeyResponse::Feip(keys) => Err(FeError::Protocol(format!(
                "requested {} FEIP keys, authority returned {}",
                ys.len(),
                keys.len()
            ))),
            KeyResponse::Denied(why) => Err(FeError::Protocol(why)),
            other => Err(FeError::Protocol(format!(
                "expected FEIP keys, got {other:?}"
            ))),
        }
    }

    fn derive_bo_keys(&self, reqs: &[FeboKeyRequest]) -> Result<Vec<FeboFunctionKey>, FeError> {
        let req = KeyRequest::Febo(FeboKeysRequest {
            reqs: reqs.to_vec(),
        });
        match self.exchange(req)? {
            KeyResponse::Febo(keys) if keys.len() == reqs.len() => Ok(keys),
            KeyResponse::Febo(keys) => Err(FeError::Protocol(format!(
                "requested {} FEBO keys, authority returned {}",
                reqs.len(),
                keys.len()
            ))),
            KeyResponse::Denied(why) => Err(FeError::Protocol(why)),
            other => Err(FeError::Protocol(format!(
                "expected FEBO keys, got {other:?}"
            ))),
        }
    }
}

/// Default per-client credit window: how many batches a client keeps in
/// flight before waiting for a [`ModelDelta`]
/// acknowledging one of its own steps. Two gives double-buffering —
/// the client encrypts batch `t+1` while the server trains on `t`.
pub const DEFAULT_CLIENT_WINDOW: usize = 2;

/// One data-owner: holds its plaintext shard and, once the public
/// parameters arrive, its encryptor.
///
/// As a state machine, the client consumes [`SessionConfig`] (answering
/// with its registration), [`PublicParams`] (building the encryptor),
/// [`TrainingStart`] (fixing the global schedule), and
/// [`ModelDelta`] broadcasts (replenishing its send window), and emits
/// [`EncryptedBatchMsg`]s in its local shard order tagged with the
/// global step each occupies.
///
/// [`ModelDelta`]: crate::ModelDelta
#[derive(Debug)]
pub struct ClientSession {
    id: ClientId,
    seed: u64,
    parallelism: Parallelism,
    /// This client's plaintext mini-batches `(x, one-hot y)`, in local
    /// order.
    shard: Vec<(Matrix<f64>, Matrix<f64>)>,
    client: Option<Client>,
    /// From [`SessionConfig`]: total participants.
    clients_total: Option<u32>,
    /// From [`SessionConfig`]: epochs over the sharded dataset.
    epochs: Option<u32>,
    /// From [`TrainingStart`]: total batches per epoch across clients.
    batches_per_epoch: Option<u64>,
    /// Credit window: own batches in flight before awaiting a delta.
    window: usize,
    in_flight: usize,
    /// Local batches emitted so far, across epochs.
    sent: u64,
    /// Current schedule generation (bumped by re-shards).
    gen: u32,
    /// When the schedule was re-cut: the remaining `(step, local_idx)`
    /// emissions, precomputed from the [`ReshardSpec`]. `None` means
    /// the base round-robin formula applies.
    tail: Option<VecDeque<(u64, usize)>>,
    /// Emitter parked until the server re-syncs the send cursor — set
    /// by a reconnecting driver, cleared by `Start`/`Resume`/`Reshard`.
    awaiting_resume: bool,
    done: bool,
}

impl ClientSession {
    /// Creates the session over a plaintext shard. Encryption becomes
    /// possible once [`on_public_params`](Self::on_public_params) runs.
    pub fn new(
        id: ClientId,
        seed: u64,
        parallelism: Parallelism,
        shard: Vec<(Matrix<f64>, Matrix<f64>)>,
    ) -> Self {
        Self {
            id,
            seed,
            parallelism,
            shard,
            client: None,
            clients_total: None,
            epochs: None,
            batches_per_epoch: None,
            window: DEFAULT_CLIENT_WINDOW,
            in_flight: 0,
            sent: 0,
            gen: 0,
            tail: None,
            awaiting_resume: false,
            done: false,
        }
    }

    /// Replaces the credit window (clamped to at least one batch in
    /// flight). A window of 1 is strict lockstep; the default of
    /// [`DEFAULT_CLIENT_WINDOW`] double-buffers encryption against
    /// training. The trained weights are bit-identical for every
    /// window.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Number of batches in this client's shard.
    pub fn shard_len(&self) -> usize {
        self.shard.len()
    }

    /// True once the session summary arrived.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// True once every scheduled local batch has been emitted.
    pub fn fully_sent(&self) -> bool {
        match &self.tail {
            Some(tail) => tail.is_empty(),
            None => self.sent >= self.total_local_batches(),
        }
    }

    /// The schedule generation this client currently emits under.
    pub fn generation(&self) -> u32 {
        self.gen
    }

    fn total_local_batches(&self) -> u64 {
        self.shard.len() as u64 * u64::from(self.epochs.unwrap_or(0))
    }

    /// Parks the emitter until the server re-syncs the send cursor.
    ///
    /// A reconnecting driver calls this before re-sending its
    /// registration: the local cursor is stale (frames in flight when
    /// the connection died were lost, and the server may have re-cut
    /// the schedule), so nothing may be emitted until the server's
    /// `Resume` (or the `Start`/`Reshard` broadcast on a session whose
    /// schedule was not yet fixed) tells this client where it stands.
    /// Otherwise a stray `Delta` arriving between the re-registration
    /// and the `Resume` would pump stale-cursor batches.
    pub fn park_until_resume(&mut self) {
        self.awaiting_resume = true;
    }

    /// The registration message this client opens with.
    pub fn register(&self) -> RegisterClient {
        RegisterClient {
            client: self.id,
            batches_per_epoch: self.shard.len() as u64,
        }
    }

    /// Consumes the session's public parameters: builds the encryptor
    /// from the wire-delivered keys (never from a local authority).
    pub fn on_public_params(&mut self, params: &PublicParams) {
        self.client = Some(
            Client::from_keys(
                params.x_mpk.clone(),
                params.y_mpk.clone(),
                params.febo_mpk.clone(),
                params.fp,
                self.seed,
            )
            .with_parallelism(self.parallelism),
        );
    }

    /// Encrypts local batch `local_idx` for global step `step`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::MissingMessage`] before the public parameters
    /// arrived; shape errors from the encryptor.
    pub fn encrypt_step(
        &mut self,
        local_idx: usize,
        step: u64,
    ) -> Result<EncryptedBatchMsg, ProtocolError> {
        let (x, y) = self.shard.get(local_idx).ok_or_else(|| {
            ProtocolError::InvalidConfig(format!(
                "client {} has {} batches, scheduler asked for #{local_idx}",
                self.id,
                self.shard.len()
            ))
        })?;
        let client = self
            .client
            .as_mut()
            .ok_or(ProtocolError::MissingMessage("PublicParams"))?;
        let batch = client.encrypt_batch(x, y)?;
        Ok(EncryptedBatchMsg {
            client: self.id,
            step,
            gen: self.gen,
            batch,
        })
    }

    /// Adopts a re-cut schedule: resets the credit window (the server
    /// purged its reorder buffer when it cut the spec), rewinds the send
    /// cursor to what the server actually consumed, and precomputes the
    /// remaining emissions. A client the spec re-sharded *out* is left
    /// with an empty tail — it only waits for the summary.
    fn apply_reshard(&mut self, spec: &ReshardSpec) {
        self.awaiting_resume = false;
        self.gen = spec.gen;
        self.in_flight = 0;
        let shard_len = self.shard.len() as u64;
        let tail = match spec.survivor(self.id) {
            Some(entry) if shard_len > 0 => {
                self.sent = entry.delivered;
                spec.steps_for(self.id)
                    .into_iter()
                    .map(|(step, nth)| (step, ((entry.delivered + nth) % shard_len) as usize))
                    .collect()
            }
            _ => VecDeque::new(),
        };
        self.tail = Some(tail);
    }

    /// Re-syncs after a rejoin: the server tells this client how many of
    /// its batches were actually consumed (anything later was lost with
    /// the connection and must be re-encrypted and re-sent) and which
    /// schedule generation is current.
    fn apply_resume(&mut self, resume: &ResumeMsg) {
        self.awaiting_resume = false;
        self.batches_per_epoch = Some(resume.batches_per_epoch);
        self.in_flight = 0;
        match &resume.reshard {
            Some(spec) => self.apply_reshard(spec),
            None => {
                self.gen = resume.gen;
                self.sent = resume.delivered;
                self.tail = None;
            }
        }
    }

    /// The event-driven surface: session lifecycle and flow-control
    /// messages in, registration and encrypted batches out.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Unexpected`] for message kinds a data owner
    /// never consumes; encryption failures from the emitted batches.
    pub fn handle_message(&mut self, msg: &WireMessage) -> Result<Vec<Outbound>, ProtocolError> {
        match msg {
            WireMessage::Config(config) => {
                self.clients_total = Some(config.clients);
                self.epochs = Some(config.epochs);
                Ok(vec![Outbound::to(
                    Party::Server,
                    WireMessage::Register(self.register()),
                )])
            }
            WireMessage::PublicParams(params) => {
                self.on_public_params(params);
                self.pump()
            }
            WireMessage::Start(TrainingStart { batches_per_epoch }) => {
                // A client that dropped before the schedule fixed gets
                // no Resume on rejoin — the Start barrier is its
                // re-sync point (nothing was delivered yet).
                self.awaiting_resume = false;
                self.batches_per_epoch = Some(*batches_per_epoch);
                self.pump()
            }
            WireMessage::Delta(delta) => {
                if delta.client == self.id {
                    self.in_flight = self.in_flight.saturating_sub(1);
                }
                self.pump()
            }
            WireMessage::Epoch(_) => Ok(Vec::new()),
            WireMessage::Resume(resume) => {
                // Addressed to one client; drivers that broadcast
                // everything (the in-process pump) deliver it to all,
                // so everyone else ignores it.
                if resume.client != self.id {
                    return Ok(Vec::new());
                }
                self.apply_resume(resume);
                self.pump()
            }
            WireMessage::Reshard(spec) => {
                self.apply_reshard(spec);
                self.pump()
            }
            WireMessage::Summary(_) => {
                self.done = true;
                Ok(Vec::new())
            }
            other => Err(ProtocolError::Unexpected {
                role: "client",
                kind: other.kind(),
            }),
        }
    }

    /// Emits as many scheduled batches as the credit window allows.
    fn pump(&mut self) -> Result<Vec<Outbound>, ProtocolError> {
        let (Some(k), Some(b)) = (self.clients_total, self.batches_per_epoch) else {
            return Ok(Vec::new());
        };
        if self.client.is_none() || self.awaiting_resume {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        while self.in_flight < self.window && !self.fully_sent() {
            let (step, local) = match &mut self.tail {
                Some(tail) => tail.pop_front().expect("not fully sent"),
                None => {
                    let shard_len = self.shard.len() as u64;
                    let epoch = self.sent / shard_len;
                    let local = self.sent % shard_len;
                    // In-epoch batch i belongs to client i mod K at
                    // local index i / K, so local batch j of this
                    // client is in-epoch batch j·K + id.
                    (
                        epoch * b + local * u64::from(k) + u64::from(self.id.0),
                        local as usize,
                    )
                }
            };
            let msg = self.encrypt_step(local, step)?;
            self.sent += 1;
            self.in_flight += 1;
            out.push(Outbound::to(Party::Server, WireMessage::Batch(msg)));
        }
        Ok(out)
    }
}

/// The model a [`ServerSession`] trains.
#[derive(Debug)]
pub enum ServerModel {
    /// A fully-connected CryptoNN model.
    Mlp(CryptoMlp),
    /// A CryptoCNN instantiation.
    Cnn(CryptoCnn),
}

/// A buffered ahead-of-schedule batch message.
#[derive(Debug, Clone)]
enum PendingBatch {
    Mlp(EncryptedBatchMsg),
    Cnn(EncryptedImageBatchMsg),
}

impl PendingBatch {
    fn client(&self) -> ClientId {
        match self {
            PendingBatch::Mlp(msg) => msg.client,
            PendingBatch::Cnn(msg) => msg.client,
        }
    }
}

/// The training server: consumes encrypted batch messages, trains in
/// strict global step order, and reaches the authority only through
/// its channel.
///
/// As a state machine, the server consumes [`RegisterClient`] messages
/// (emitting [`TrainingStart`] once every expected client registered)
/// and encrypted batches — buffering a bounded window of
/// ahead-of-schedule arrivals so concurrent clients need no global
/// lockstep — and emits the per-step [`ModelDelta`], the per-epoch
/// [`EpochBarrier`], and the final [`SessionSummary`] broadcasts.
///
/// [`RegisterClient`]: crate::RegisterClient
/// [`ModelDelta`]: crate::ModelDelta
/// [`EpochBarrier`]: crate::EpochBarrier
/// [`SessionSummary`]: crate::SessionSummary
pub struct ServerSession {
    model: ServerModel,
    keys: ChannelKeyService,
    lr: f64,
    next_step: u64,
    losses: Vec<f64>,
    expected_clients: u32,
    epochs: u32,
    policy: SessionPolicy,
    registered: BTreeMap<ClientId, u64>,
    batches_per_epoch: Option<u64>,
    pending: BTreeMap<u64, PendingBatch>,
    reorder_cap: usize,
    /// Own batches consumed per client — what a rejoining client's send
    /// cursor rewinds to.
    delivered: BTreeMap<ClientId, u64>,
    /// Registered clients currently believed gone (transport-reported).
    disconnected: BTreeSet<ClientId>,
    /// Current schedule generation; stale-generation batches are
    /// silently dropped.
    gen: u32,
    /// The active re-cut schedule, if any.
    reshard: Option<ReshardSpec>,
    /// Steps this run will train in total — `b · epochs` once the
    /// schedule fixes, shrunk by re-shards.
    total_steps: Option<u64>,
    finished: bool,
}

impl core::fmt::Debug for ServerSession {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ServerSession")
            .field("model", &self.model)
            .field("lr", &self.lr)
            .field("next_step", &self.next_step)
            .field("losses", &self.losses.len())
            .field("registered", &self.registered.len())
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl ServerSession {
    /// Builds the server from the session config and public parameters,
    /// with `link` as its line to the authority. `parallelism` is the
    /// server's local thread policy for the decryption loops (a runtime
    /// choice — results are bit-identical across policies).
    pub fn new(
        config: &SessionConfig,
        params: &PublicParams,
        link: Box<dyn AuthorityChannel>,
        parallelism: Parallelism,
    ) -> Self {
        let cc = CryptoNnConfig {
            level: config.level,
            fp: config.fp,
            grad_fp: config.grad_fp,
            parallelism,
        };
        let mut rng = StdRng::seed_from_u64(config.model_seed);
        let model = match &config.model {
            ModelSpec::Mlp(spec) => ServerModel::Mlp(CryptoMlp::new(
                spec.feature_dim,
                &spec.hidden,
                spec.classes,
                spec.objective,
                cc,
                &mut rng,
            )),
            ModelSpec::Cnn(CnnArch::Lenet5) => ServerModel::Cnn(CryptoCnn::lenet5(cc, &mut rng)),
            ModelSpec::Cnn(CnnArch::LenetSmall(classes)) => {
                ServerModel::Cnn(CryptoCnn::lenet_small(cc, *classes, &mut rng))
            }
        };
        // Bounded reorder window: enough for every client to run a full
        // default credit window ahead, with slack for uneven shards.
        let reorder_cap = (config.clients as usize).max(1) * (DEFAULT_CLIENT_WINDOW * 2);
        Self {
            model,
            keys: ChannelKeyService::new(params, link),
            lr: config.lr,
            next_step: 0,
            losses: Vec::new(),
            expected_clients: config.clients,
            epochs: config.epochs,
            policy: config.policy,
            registered: BTreeMap::new(),
            batches_per_epoch: None,
            pending: BTreeMap::new(),
            reorder_cap,
            delivered: BTreeMap::new(),
            disconnected: BTreeSet::new(),
            gen: 0,
            reshard: None,
            total_steps: None,
            finished: false,
        }
    }

    /// Rebuilds a server mid-run from a [`SessionCheckpoint`]:
    /// architecture and key channel from the (unchanged) config and
    /// parameters, trained state from the checkpoint. The reorder
    /// buffer restarts empty — a checkpoint never captures in-flight
    /// batches; clients re-send them from their `delivered` cursor.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Checkpoint`] for a schema this build does not
    /// speak; model-restore failures for an architecture mismatch.
    pub fn restore(
        config: &SessionConfig,
        params: &PublicParams,
        link: Box<dyn AuthorityChannel>,
        parallelism: Parallelism,
        ckpt: &SessionCheckpoint,
    ) -> Result<Self, ProtocolError> {
        if ckpt.schema != CHECKPOINT_SCHEMA {
            return Err(ProtocolError::Checkpoint(
                crate::checkpoint::CheckpointError::StaleSchema {
                    found: ckpt.schema,
                    expected: CHECKPOINT_SCHEMA,
                },
            ));
        }
        let mut session = Self::new(config, params, link, parallelism);
        match &mut session.model {
            ServerModel::Mlp(m) => m.restore(&ckpt.model)?,
            ServerModel::Cnn(_) => {
                return Err(ProtocolError::Checkpoint(
                    crate::checkpoint::CheckpointError::UnsupportedModel("cnn"),
                ))
            }
        }
        session.next_step = ckpt.next_step;
        session.losses = ckpt.losses.clone();
        session.registered = ckpt
            .registered
            .iter()
            .map(|c| (c.client, c.count))
            .collect();
        session.delivered = ckpt.delivered.iter().map(|c| (c.client, c.count)).collect();
        session.batches_per_epoch = ckpt.batches_per_epoch;
        session.total_steps = ckpt.total_steps;
        session.gen = ckpt.gen;
        session.reshard = ckpt.reshard.clone();
        Ok(session)
    }

    /// Captures the session's trained state for durable storage.
    /// `transcript_offset` records how much of the session's input
    /// stream (transcript entries or ledger lines) this state already
    /// reflects, so a resume replays only the suffix. The reorder
    /// buffer is deliberately excluded: buffered batches are re-sent by
    /// their owners on rejoin.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Checkpoint`] with
    /// [`UnsupportedModel`](crate::checkpoint::CheckpointError::UnsupportedModel)
    /// for CNN sessions; snapshot failures from the model.
    pub fn checkpoint(&self, transcript_offset: u64) -> Result<SessionCheckpoint, ProtocolError> {
        let model = match &self.model {
            ServerModel::Mlp(m) => m.snapshot()?,
            ServerModel::Cnn(_) => {
                return Err(ProtocolError::Checkpoint(
                    crate::checkpoint::CheckpointError::UnsupportedModel("cnn"),
                ))
            }
        };
        Ok(SessionCheckpoint {
            schema: CHECKPOINT_SCHEMA,
            transcript_offset,
            next_step: self.next_step,
            losses: self.losses.clone(),
            registered: self
                .registered
                .iter()
                .map(|(&client, &count)| crate::checkpoint::ClientCursor { client, count })
                .collect(),
            delivered: self
                .delivered
                .iter()
                .map(|(&client, &count)| crate::checkpoint::ClientCursor { client, count })
                .collect(),
            batches_per_epoch: self.batches_per_epoch,
            total_steps: self.total_steps,
            gen: self.gen,
            reshard: self.reshard.clone(),
            model,
        })
    }

    /// Replaces the reorder-buffer capacity (clamped to at least one
    /// buffered batch).
    pub fn with_reorder_cap(mut self, cap: usize) -> Self {
        self.reorder_cap = cap.max(1);
        self
    }

    /// Backs the model's BSGS table cache with an on-disk directory so
    /// a restarted server with the same group parameters warm-starts
    /// its tables instead of rebuilding them.
    pub fn attach_table_cache(&mut self, dir: std::path::PathBuf) {
        match &mut self.model {
            ServerModel::Mlp(m) => m.attach_table_cache(dir),
            ServerModel::Cnn(m) => m.attach_table_cache(dir),
        }
    }

    /// The trained MLP, if this session trains one.
    pub fn mlp(&self) -> Option<&CryptoMlp> {
        match &self.model {
            ServerModel::Mlp(m) => Some(m),
            ServerModel::Cnn(_) => None,
        }
    }

    /// The trained CNN, if this session trains one.
    pub fn cnn(&self) -> Option<&CryptoCnn> {
        match &self.model {
            ServerModel::Cnn(m) => Some(m),
            ServerModel::Mlp(_) => None,
        }
    }

    /// Mutable access to the trained MLP (plaintext prediction passes).
    pub fn mlp_mut(&mut self) -> Option<&mut CryptoMlp> {
        match &mut self.model {
            ServerModel::Mlp(m) => Some(m),
            ServerModel::Cnn(_) => None,
        }
    }

    /// Mutable access to the trained CNN.
    pub fn cnn_mut(&mut self) -> Option<&mut CryptoCnn> {
        match &mut self.model {
            ServerModel::Cnn(m) => Some(m),
            ServerModel::Mlp(_) => None,
        }
    }

    /// Consumes the session, returning the trained model — the frozen
    /// artifact an [`InferenceSession`](crate::InferenceSession) serves.
    pub fn into_model(self) -> ServerModel {
        self.model
    }

    /// Consumes the session, returning the trained MLP if this session
    /// trained one.
    pub fn into_mlp(self) -> Option<CryptoMlp> {
        match self.model {
            ServerModel::Mlp(m) => Some(m),
            ServerModel::Cnn(_) => None,
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.next_step
    }

    /// Per-step secure losses so far.
    pub fn losses(&self) -> &[f64] {
        &self.losses
    }

    /// Ahead-of-schedule batches currently held in the reorder buffer.
    pub fn pending_batches(&self) -> usize {
        self.pending.len()
    }

    /// Empties the reorder buffer. A restarted daemon calls this after
    /// replaying its ledger suffix: batches parked there were never
    /// trained, so the reconnecting clients (rewound to `delivered`)
    /// will resend them.
    pub fn purge_pending(&mut self) {
        self.pending.clear();
    }

    /// True once the final [`SessionSummary`]
    /// was emitted.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The configured churn policy.
    pub fn policy(&self) -> SessionPolicy {
        self.policy
    }

    /// The current schedule generation (0 until a re-shard happens).
    pub fn generation(&self) -> u32 {
        self.gen
    }

    /// The active re-cut schedule, if a re-shard happened.
    pub fn reshard_spec(&self) -> Option<&ReshardSpec> {
        self.reshard.as_ref()
    }

    /// Total steps this run will train, once the schedule is fixed
    /// (shrunk from `b · epochs` by re-shards).
    pub fn total_steps(&self) -> Option<u64> {
        self.total_steps
    }

    /// Own batches consumed for one client — the cursor a rejoin
    /// rewinds that client to.
    pub fn delivered(&self, client: ClientId) -> u64 {
        self.delivered.get(&client).copied().unwrap_or(0)
    }

    /// Marks every registered client as disconnected — what a restarted
    /// daemon does after restoring a session, before any client has
    /// reconnected. (A pure-replay resume skips this: its "clients" are
    /// the recorded message stream.)
    pub fn mark_all_disconnected(&mut self) {
        self.disconnected = self.registered.keys().copied().collect();
    }

    /// Transport-level notice that a client's connection is gone.
    ///
    /// Under the default fail-fast policy this is fatal (the seed
    /// behavior). Under a resume policy the client is marked away and
    /// its in-flight batches are dropped from the reorder buffer (on
    /// rejoin it re-sends from its `delivered` cursor); if the policy
    /// re-shards and the schedule is already stalled on a disconnected
    /// owner, the re-cut happens now and is broadcast.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Transport`] under fail-fast;
    /// [`ProtocolError::InvalidConfig`] if a re-shard finds no
    /// survivors.
    pub fn client_gone(&mut self, client: ClientId) -> Result<Vec<Outbound>, ProtocolError> {
        if !self.policy.resumes() {
            return Err(ProtocolError::Transport(format!(
                "{client} disconnected mid-session"
            )));
        }
        if self.registered.contains_key(&client) {
            self.disconnected.insert(client);
        }
        self.pending.retain(|_, batch| batch.client() != client);
        let mut out = Vec::new();
        self.maybe_reshard(&mut out)?;
        Ok(out)
    }

    /// Which client the current schedule expects to supply `step`.
    fn owner(&self, step: u64) -> Option<ClientId> {
        let b = self.batches_per_epoch?;
        if let Some(spec) = &self.reshard {
            if step >= spec.from_step {
                return spec.owner(step);
            }
        }
        Some(ClientId(
            ((step % b) % u64::from(self.expected_clients.max(1))) as u32,
        ))
    }

    /// Re-cuts the schedule if it is stalled on a disconnected owner
    /// and the policy allows it: the dropped client's unsent batches
    /// leave the run, survivors' remaining batches are reassigned
    /// round-robin from `next_step`, the reorder buffer is purged (its
    /// step tags belong to the old generation), and the spec is
    /// broadcast so every survivor re-syncs deterministically.
    fn maybe_reshard(&mut self, out: &mut Vec<Outbound>) -> Result<(), ProtocolError> {
        if !self.policy.reshards() || self.finished {
            return Ok(());
        }
        let Some(total) = self.total_steps else {
            return Ok(());
        };
        if self.next_step >= total {
            return Ok(());
        }
        let Some(owner) = self.owner(self.next_step) else {
            return Ok(());
        };
        if !self.disconnected.contains(&owner) {
            return Ok(());
        }
        let survivors: Vec<ReshardEntry> = self
            .registered
            .iter()
            .filter(|(client, _)| !self.disconnected.contains(client))
            .map(|(client, shard_batches)| {
                let delivered = self.delivered.get(client).copied().unwrap_or(0);
                // A client's total stake: its base schedule allotment,
                // or whatever the previous re-shard left it.
                let stake = match &self.reshard {
                    Some(old) => old
                        .survivor(*client)
                        .map(|e| e.delivered + e.remaining)
                        .unwrap_or(delivered),
                    None => shard_batches * u64::from(self.epochs),
                };
                ReshardEntry {
                    client: *client,
                    delivered,
                    remaining: stake.saturating_sub(delivered),
                }
            })
            .collect();
        if survivors.is_empty() {
            return Err(ProtocolError::InvalidConfig(
                "every client disconnected; nothing to re-shard onto".into(),
            ));
        }
        self.gen += 1;
        let spec = ReshardSpec {
            gen: self.gen,
            from_step: self.next_step,
            survivors,
        };
        self.pending.clear();
        self.total_steps = Some(spec.total_steps());
        self.reshard = Some(spec.clone());
        out.push(Outbound::broadcast(WireMessage::Reshard(spec)));
        self.maybe_finish(out);
        Ok(())
    }

    /// Emits the summary once the (possibly re-cut) schedule is done.
    fn maybe_finish(&mut self, out: &mut Vec<Outbound>) {
        if let (Some(total), false) = (self.total_steps, self.finished) {
            if self.next_step >= total {
                self.finished = true;
                out.push(Outbound::broadcast(WireMessage::Summary(self.summary())));
            }
        }
    }

    fn check_order(&self, step: u64) -> Result<(), ProtocolError> {
        if step != self.next_step {
            return Err(ProtocolError::OutOfOrder {
                expected: self.next_step,
                got: step,
            });
        }
        Ok(())
    }

    /// The shared step bookkeeping: advance the schedule, log the loss,
    /// emit the metric broadcast.
    fn finish_step(&mut self, step: u64, client: ClientId, loss: f64) -> ModelDelta {
        self.next_step += 1;
        self.losses.push(loss);
        *self.delivered.entry(client).or_insert(0) += 1;
        ModelDelta { step, client, loss }
    }

    /// One Algorithm-2 training step on an encrypted MLP batch message.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::OutOfOrder`] off schedule;
    /// [`ProtocolError::InvalidConfig`] if this session trains a CNN;
    /// training failures otherwise. The model is unchanged on error.
    pub fn handle_batch(&mut self, msg: &EncryptedBatchMsg) -> Result<ModelDelta, ProtocolError> {
        self.check_order(msg.step)?;
        let out = match &mut self.model {
            ServerModel::Mlp(m) => m.train_encrypted_batch(&self.keys, &msg.batch, self.lr)?,
            ServerModel::Cnn(_) => {
                return Err(ProtocolError::InvalidConfig(
                    "MLP batch sent to a CNN session".into(),
                ))
            }
        };
        Ok(self.finish_step(msg.step, msg.client, out.loss))
    }

    /// One training step on an encrypted CNN batch message.
    ///
    /// # Errors
    ///
    /// As [`handle_batch`](Self::handle_batch), with the model kinds
    /// swapped.
    pub fn handle_image_batch(
        &mut self,
        msg: &EncryptedImageBatchMsg,
    ) -> Result<ModelDelta, ProtocolError> {
        self.check_order(msg.step)?;
        let out = match &mut self.model {
            ServerModel::Cnn(m) => m.train_encrypted_batch(&self.keys, &msg.batch, self.lr)?,
            ServerModel::Mlp(_) => {
                return Err(ProtocolError::InvalidConfig(
                    "CNN batch sent to an MLP session".into(),
                ))
            }
        };
        Ok(self.finish_step(msg.step, msg.client, out.loss))
    }

    /// The event-driven surface: registrations and encrypted batches
    /// in; schedule-start, per-step metric, epoch-barrier and final
    /// summary broadcasts out.
    ///
    /// Batches ahead of the schedule are buffered (up to the reorder
    /// cap) and trained the moment their step comes up, so concurrent
    /// clients need no lockstep with the server.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::OutOfOrder`] for a step already consumed (or
    /// duplicated), [`ProtocolError::TooFarAhead`] past the reorder
    /// window, [`ProtocolError::Unexpected`] for foreign message kinds,
    /// and training failures. The model is unchanged on error.
    pub fn handle_message(&mut self, msg: &WireMessage) -> Result<Vec<Outbound>, ProtocolError> {
        match msg {
            WireMessage::Register(reg) => self.handle_register(reg),
            WireMessage::Batch(batch) => {
                self.accept_batch(batch.step, batch.gen, PendingBatch::Mlp(batch.clone()))
            }
            WireMessage::ImageBatch(batch) => {
                self.accept_batch(batch.step, batch.gen, PendingBatch::Cnn(batch.clone()))
            }
            other => Err(ProtocolError::Unexpected {
                role: "server",
                kind: other.kind(),
            }),
        }
    }

    fn handle_register(&mut self, reg: &RegisterClient) -> Result<Vec<Outbound>, ProtocolError> {
        if reg.client.0 >= self.expected_clients {
            return Err(ProtocolError::InvalidConfig(format!(
                "{} registered but the session has {} clients",
                reg.client, self.expected_clients
            )));
        }
        if let Some(&known) = self.registered.get(&reg.client) {
            // A re-registration is a rejoin under a resume policy, a
            // protocol violation under fail-fast (the seed behavior).
            if !self.policy.resumes() {
                return Err(ProtocolError::InvalidConfig(format!(
                    "{} registered twice",
                    reg.client
                )));
            }
            if known != reg.batches_per_epoch {
                return Err(ProtocolError::InvalidConfig(format!(
                    "{} rejoined with {} batches per epoch, registered {}",
                    reg.client, reg.batches_per_epoch, known
                )));
            }
            self.disconnected.remove(&reg.client);
            // A rejoin can beat the dead connection's disconnect
            // notice (which a registered fresh writer then voids), so
            // the purge in `client_gone` may never have run: any of
            // this client's batches still buffered are remnants of the
            // old connection, and the client is about to re-send those
            // very steps — freshly encrypted, which the duplicate-step
            // check would refuse as a substitution. Purging here is
            // idempotent with the notice-first ordering.
            self.pending.retain(|_, batch| batch.client() != reg.client);
            // Before the schedule is fixed there is nothing to re-sync;
            // the Start broadcast will reach the rejoined connection.
            let Some(batches_per_epoch) = self.batches_per_epoch else {
                return Ok(Vec::new());
            };
            return Ok(vec![Outbound::to(
                Party::Client(reg.client.0),
                WireMessage::Resume(ResumeMsg {
                    client: reg.client,
                    delivered: self.delivered(reg.client),
                    batches_per_epoch,
                    gen: self.gen,
                    reshard: self.reshard.clone(),
                }),
            )]);
        }
        self.registered.insert(reg.client, reg.batches_per_epoch);
        if self.registered.len() == self.expected_clients as usize {
            let batches_per_epoch: u64 = self.registered.values().sum();
            if batches_per_epoch == 0 {
                return Err(ProtocolError::InvalidConfig(
                    "no batches registered across all clients".into(),
                ));
            }
            self.batches_per_epoch = Some(batches_per_epoch);
            self.total_steps = Some(batches_per_epoch * u64::from(self.epochs));
            return Ok(vec![Outbound::broadcast(WireMessage::Start(
                TrainingStart { batches_per_epoch },
            ))]);
        }
        Ok(Vec::new())
    }

    fn accept_batch(
        &mut self,
        step: u64,
        gen: u32,
        batch: PendingBatch,
    ) -> Result<Vec<Outbound>, ProtocolError> {
        // No training before the schedule is fixed: a peer that skips
        // registration gets a typed refusal, not free compute on a
        // session that can never emit its epoch barriers or summary.
        if self.batches_per_epoch.is_none() {
            return Err(ProtocolError::MissingMessage(
                "Register from every client (schedule not fixed)",
            ));
        }
        // A batch tagged with an older generation was in flight when
        // the schedule was re-cut: its step index is meaningless now,
        // and its owner will re-send the data under the new schedule.
        if gen != self.gen {
            return Ok(Vec::new());
        }
        // Nothing trains past the summary (a re-cut schedule can end
        // below `b · epochs`, so late stragglers are possible).
        if self.finished {
            return Ok(Vec::new());
        }
        if step > self.next_step {
            // Duplicate-step check first, and without touching the
            // buffer: the state must be unchanged on error, or a driver
            // tolerating OutOfOrder would train a substituted batch.
            if self.pending.contains_key(&step) {
                return Err(ProtocolError::OutOfOrder {
                    expected: self.next_step,
                    got: step,
                });
            }
            if self.pending.len() >= self.reorder_cap {
                return Err(ProtocolError::TooFarAhead {
                    step,
                    expected: self.next_step,
                    cap: self.reorder_cap,
                });
            }
            self.pending.insert(step, batch);
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        self.train_one(batch, &mut out)?;
        // Drain every buffered batch whose slot just opened.
        while let Some(next) = self.pending.remove(&self.next_step) {
            self.train_one(next, &mut out)?;
        }
        // The drain may have run the schedule into a disconnected
        // owner's slot: re-cut now rather than deadlock waiting for a
        // batch that can never come.
        self.maybe_reshard(&mut out)?;
        Ok(out)
    }

    fn train_one(
        &mut self,
        batch: PendingBatch,
        out: &mut Vec<Outbound>,
    ) -> Result<(), ProtocolError> {
        let delta = match &batch {
            PendingBatch::Mlp(msg) => self.handle_batch(msg)?,
            PendingBatch::Cnn(msg) => self.handle_image_batch(msg)?,
        };
        out.push(Outbound::broadcast(WireMessage::Delta(delta)));
        if let Some(b) = self.batches_per_epoch {
            if self.next_step.is_multiple_of(b) {
                let epoch = (self.next_step / b - 1) as u32;
                out.push(Outbound::broadcast(WireMessage::Epoch(EpochBarrier {
                    epoch,
                })));
            }
        }
        self.maybe_finish(out);
        Ok(())
    }

    /// The session's final fingerprint: step count, loss trajectory,
    /// and the first-layer parameters (the encrypted-path weights).
    pub fn summary(&self) -> SessionSummary {
        let (w1, b1) = match &self.model {
            ServerModel::Mlp(m) => (
                m.first_layer().weights().clone(),
                m.first_layer().bias().clone(),
            ),
            ServerModel::Cnn(m) => {
                let bias = m.first_layer().bias();
                (
                    m.first_layer().filters().clone(),
                    Matrix::from_rows(&[bias]),
                )
            }
        };
        SessionSummary {
            steps: self.next_step,
            losses: self.losses.clone(),
            final_w1: w1,
            final_b1: b1,
        }
    }
}

/// Reshapes a flat `(batch, c·h·w)` feature matrix into the `(batch,
/// c, h, w)` tensor the CNN client path encrypts — the bridge between
/// [`Dataset`](cryptonn_data::Dataset) rows and Algorithm 3 windows.
///
/// # Panics
///
/// Panics if `x.cols() != c * h * w`.
pub fn rows_to_images(x: &Matrix<f64>, c: usize, h: usize, w: usize) -> Tensor4 {
    assert_eq!(x.cols(), c * h * w, "row length must equal c*h*w");
    Tensor4::from_vec(x.rows(), c, h, w, x.as_slice().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::MlpSpec;
    use crate::runner::mlp_session_config;
    use cryptonn_core::Objective;
    use std::sync::Arc;

    fn config() -> SessionConfig {
        mlp_session_config(
            MlpSpec {
                feature_dim: 3,
                hidden: vec![2],
                classes: 2,
                objective: Objective::SoftmaxCrossEntropy,
            },
            1,
            1,
            2,
            0.5,
        )
    }

    /// A channel that forwards to an authority session and counts the
    /// exchanges, to observe the mpk cache behavior.
    struct CountingChannel {
        authority: Arc<AuthoritySession>,
        exchanges: Arc<std::sync::atomic::AtomicUsize>,
    }

    impl AuthorityChannel for CountingChannel {
        fn exchange(&mut self, req: KeyRequest) -> Result<KeyResponse, ProtocolError> {
            self.exchanges
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(self.authority.handle(&req))
        }
    }

    /// Requesting an mpk dimension beyond those in PublicParams goes
    /// over the wire once, then serves from cache.
    #[test]
    fn uncached_mpk_dimension_is_fetched_then_cached() {
        let config = config();
        let authority = Arc::new(AuthoritySession::new(&config));
        let params = authority.public_params(3, 2, &config);
        let exchanges = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let service = ChannelKeyService::new(
            &params,
            Box::new(CountingChannel {
                authority: Arc::clone(&authority),
                exchanges: Arc::clone(&exchanges),
            }),
        );
        let count = || exchanges.load(std::sync::atomic::Ordering::SeqCst);

        // Published dimensions never touch the wire.
        assert_eq!(service.feip_public_key(3).unwrap().dimension(), 3);
        assert_eq!(service.feip_public_key(2).unwrap().dimension(), 2);
        assert_eq!(count(), 0);

        // An unpublished dimension is one exchange, then cached — and
        // identical to what the authority would hand out directly.
        let wire = service.feip_public_key(5).unwrap();
        assert_eq!(count(), 1);
        assert_eq!(wire, authority.authority().feip_public_key(5));
        let again = service.feip_public_key(5).unwrap();
        assert_eq!(count(), 1, "second lookup must hit the cache");
        assert_eq!(again, wire);
    }

    /// The authority state machine answers requests and refuses every
    /// other message kind.
    #[test]
    fn authority_state_machine_is_request_response_only() {
        let config = config();
        let authority = AuthoritySession::new(&config);
        let out = authority
            .handle_message(&WireMessage::KeyRequest(KeyRequest::FeipMpk(3)))
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, Party::Server);
        assert!(matches!(
            out[0].msg,
            WireMessage::KeyResponse(KeyResponse::FeipMpk(_))
        ));
        assert!(matches!(
            authority.handle_message(&WireMessage::Config(config.clone())),
            Err(ProtocolError::Unexpected {
                role: "authority",
                ..
            })
        ));
    }

    /// `first_layer_dims` matches the actual first-layer geometry the
    /// server builds, so the authority publishes usable FEIP instances.
    #[test]
    fn model_dims_match_built_models() {
        use cryptonn_group::SecurityLevel;
        use cryptonn_smc::FixedPoint;
        let cc = CryptoNnConfig {
            level: SecurityLevel::Bits64,
            fp: FixedPoint::TWO_DECIMALS,
            grad_fp: FixedPoint::new(10_000),
            parallelism: Parallelism::Serial,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let small = CryptoCnn::lenet_small(cc, 3, &mut rng);
        let spec = small.first_layer().spec();
        let (dim, classes) = ModelSpec::Cnn(CnnArch::LenetSmall(3)).first_layer_dims();
        assert_eq!(dim, spec.kh * spec.kw);
        assert_eq!(classes, 3);
    }
}
