//! Error types of the session layer.

use core::fmt;

use cryptonn_core::CryptoNnError;
use cryptonn_fe::FeError;

/// A forged, tampered, or stale transcript, rejected by
/// [`replay_server`](crate::replay_server) — every way an adversarial
/// recording can fail verification, as a typed variant so rejection is
/// testable without string matching.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReplayError {
    /// Two key requests were recorded without a response in between.
    RequestWithoutResponse {
        /// Transcript sequence number of the second request.
        seq: u64,
    },
    /// A key response was recorded with no request before it.
    ResponseWithoutRequest {
        /// Transcript sequence number of the response.
        seq: u64,
    },
    /// The transcript ends with an unanswered key request.
    DanglingRequest,
    /// The replayed server issued a key request the recording never
    /// answered — the code under replay asks for more than it used to.
    ExtraKeyRequest {
        /// Description of the unmatched replayed request.
        replayed: String,
    },
    /// The replayed server's key request differs from the recorded one
    /// at the same position in the exchange stream.
    RequestMismatch {
        /// Description of the recorded request.
        recorded: String,
        /// Description of the replayed request.
        replayed: String,
    },
    /// A replayed training step has no recorded [`ModelDelta`] — the
    /// per-step metric stream was stripped or truncated.
    ///
    /// [`ModelDelta`]: crate::ModelDelta
    MissingDelta {
        /// The replayed step lacking its recorded metric.
        step: u64,
    },
    /// The recorded metric for a step disagrees with the re-executed
    /// one.
    DeltaMismatch {
        /// The diverging step.
        step: u64,
        /// The loss the transcript recorded.
        recorded: f64,
        /// The loss the re-executed server produced.
        replayed: f64,
    },
    /// A recorded [`ModelDelta`] attests a training step the replayed
    /// server never performed.
    ///
    /// [`ModelDelta`]: crate::ModelDelta
    ForgedDelta {
        /// The step the forged metric claims.
        step: u64,
    },
    /// Recorded key exchanges the replayed server never requested.
    UnconsumedKeyExchanges {
        /// How many recorded exchanges were left over.
        count: usize,
    },
    /// Recorded batches whose schedule slot never came up — their step
    /// tags leave a hole in the schedule, so the server held them in
    /// its reorder buffer until the transcript ran out.
    StalledBatches {
        /// How many batches never reached their slot.
        count: usize,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::RequestWithoutResponse { seq } => {
                write!(f, "two key requests without a response (seq {seq})")
            }
            ReplayError::ResponseWithoutRequest { seq } => {
                write!(f, "key response without a request (seq {seq})")
            }
            ReplayError::DanglingRequest => {
                write!(f, "transcript ends with an unanswered key request")
            }
            ReplayError::ExtraKeyRequest { replayed } => write!(
                f,
                "server issued a key request beyond the recording: {replayed}"
            ),
            ReplayError::RequestMismatch { recorded, replayed } => write!(
                f,
                "request diverged from the recording: recorded {recorded}, replayed {replayed}"
            ),
            ReplayError::MissingDelta { step } => {
                write!(f, "step {step}: batch has no recorded ModelDelta")
            }
            ReplayError::DeltaMismatch {
                step,
                recorded,
                replayed,
            } => write!(
                f,
                "step {step}: recorded loss {recorded}, replayed {replayed}"
            ),
            ReplayError::ForgedDelta { step } => write!(
                f,
                "recorded delta for step {step} has no corresponding batch"
            ),
            ReplayError::UnconsumedKeyExchanges { count } => write!(
                f,
                "{count} recorded key exchanges were never requested by the replayed server"
            ),
            ReplayError::StalledBatches { count } => write!(
                f,
                "{count} recorded batches never reached their schedule slot"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Errors from running or replaying a training session.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// A message arrived before its prerequisite (e.g. an encrypted
    /// batch before the public parameters).
    MissingMessage(&'static str),
    /// A batch arrived for a schedule slot already consumed (a replayed
    /// or duplicated step).
    OutOfOrder {
        /// The step the server expected next.
        expected: u64,
        /// The step the message carried.
        got: u64,
    },
    /// A message kind this role's state machine never consumes.
    Unexpected {
        /// The receiving role.
        role: &'static str,
        /// The offending [`WireMessage::kind`](crate::WireMessage::kind).
        kind: &'static str,
    },
    /// A batch arrived so far ahead of schedule that buffering it would
    /// exceed the server's reorder window — a client ignoring the
    /// credit-based flow control.
    TooFarAhead {
        /// The step the message carried.
        step: u64,
        /// The step the server expected next.
        expected: u64,
        /// The reorder-buffer capacity that would be exceeded.
        cap: usize,
    },
    /// The replayed transcript failed verification.
    Replay(ReplayError),
    /// The underlying encrypted-training step failed.
    Training(CryptoNnError),
    /// Transcript (de)serialization failed.
    Serde(String),
    /// Transcript file I/O failed (distinct from a malformed
    /// transcript).
    Io(String),
    /// The transport under a session failed (connection lost, framing
    /// error, peer rejected the exchange).
    Transport(String),
    /// A session-configuration inconsistency (zero clients, shard/step
    /// disagreement…).
    InvalidConfig(String),
    /// A threshold key derivation fell below quorum mid-run: fewer than
    /// `need` share-holders are still answering, so the session fails
    /// closed rather than hang or derive a wrong key (DESIGN.md §17).
    Quorum {
        /// Share-holders that answered.
        have: usize,
        /// The quorum threshold `t`.
        need: usize,
    },
    /// Writing, reading, or applying a durable checkpoint failed.
    Checkpoint(crate::checkpoint::CheckpointError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::MissingMessage(what) => {
                write!(f, "required message missing or premature: {what}")
            }
            ProtocolError::OutOfOrder { expected, got } => {
                write!(f, "batch out of order: expected step {expected}, got {got}")
            }
            ProtocolError::Unexpected { role, kind } => {
                write!(
                    f,
                    "the {role} state machine cannot consume a {kind} message"
                )
            }
            ProtocolError::TooFarAhead {
                step,
                expected,
                cap,
            } => write!(
                f,
                "step {step} outruns the schedule (expected {expected}) beyond the \
                 reorder window of {cap}"
            ),
            ProtocolError::Replay(e) => write!(f, "replay divergence: {e}"),
            ProtocolError::Training(e) => write!(f, "encrypted training failed: {e}"),
            ProtocolError::Serde(e) => write!(f, "transcript (de)serialization failed: {e}"),
            ProtocolError::Io(e) => write!(f, "transcript file I/O failed: {e}"),
            ProtocolError::Transport(e) => write!(f, "session transport failed: {e}"),
            ProtocolError::InvalidConfig(what) => write!(f, "invalid session config: {what}"),
            ProtocolError::Quorum { have, need } => write!(
                f,
                "threshold quorum lost: {have} share-holders answering, need {need}"
            ),
            ProtocolError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Training(e) => Some(e),
            ProtocolError::Replay(e) => Some(e),
            ProtocolError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::checkpoint::CheckpointError> for ProtocolError {
    fn from(e: crate::checkpoint::CheckpointError) -> Self {
        ProtocolError::Checkpoint(e)
    }
}

impl From<CryptoNnError> for ProtocolError {
    fn from(e: CryptoNnError) -> Self {
        ProtocolError::Training(e)
    }
}

impl From<FeError> for ProtocolError {
    fn from(e: FeError) -> Self {
        ProtocolError::Training(CryptoNnError::Fe(e))
    }
}

impl From<ReplayError> for ProtocolError {
    fn from(e: ReplayError) -> Self {
        ProtocolError::Replay(e)
    }
}
