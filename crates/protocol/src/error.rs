//! Error type of the session layer.

use core::fmt;

use cryptonn_core::CryptoNnError;
use cryptonn_fe::FeError;

/// Errors from running or replaying a training session.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// A message arrived before its prerequisite (e.g. an encrypted
    /// batch before the public parameters).
    MissingMessage(&'static str),
    /// A batch arrived out of schedule order.
    OutOfOrder {
        /// The step the server expected next.
        expected: u64,
        /// The step the message carried.
        got: u64,
    },
    /// A replayed request diverged from the recorded one — the code
    /// under replay no longer produces the transcript's traffic.
    ReplayDivergence(String),
    /// The underlying encrypted-training step failed.
    Training(CryptoNnError),
    /// Transcript (de)serialization failed.
    Serde(String),
    /// Transcript file I/O failed (distinct from a malformed
    /// transcript).
    Io(String),
    /// A session-configuration inconsistency (zero clients, shard/step
    /// disagreement…).
    InvalidConfig(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::MissingMessage(what) => {
                write!(f, "required message missing or premature: {what}")
            }
            ProtocolError::OutOfOrder { expected, got } => {
                write!(f, "batch out of order: expected step {expected}, got {got}")
            }
            ProtocolError::ReplayDivergence(what) => write!(f, "replay divergence: {what}"),
            ProtocolError::Training(e) => write!(f, "encrypted training failed: {e}"),
            ProtocolError::Serde(e) => write!(f, "transcript (de)serialization failed: {e}"),
            ProtocolError::Io(e) => write!(f, "transcript file I/O failed: {e}"),
            ProtocolError::InvalidConfig(what) => write!(f, "invalid session config: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Training(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoNnError> for ProtocolError {
    fn from(e: CryptoNnError) -> Self {
        ProtocolError::Training(e)
    }
}

impl From<FeError> for ProtocolError {
    fn from(e: FeError) -> Self {
        ProtocolError::Training(CryptoNnError::Fe(e))
    }
}
