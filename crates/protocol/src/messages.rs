//! The wire messages of the CryptoNN session protocol.
//!
//! Every cross-role data flow of the paper's Fig. 1 — key distribution,
//! encrypted batches, function-key traffic, training metrics — is one
//! of these serde-serializable types. Sessions exchange *only* these
//! messages (no shared memory), which is what makes a recorded
//! [`Transcript`](crate::Transcript) a complete description of a
//! training run: the server side can be re-executed from the message
//! stream alone (see [`replay_server`](crate::replay_server)).
//!
//! The message ↔ Algorithm 2 correspondence is documented in
//! DESIGN.md §9.

use cryptonn_core::{EncryptedBatch, EncryptedImageBatch, Objective};
use cryptonn_fe::{
    FeboFunctionKey, FeboKeyRequest, FeboPartial, FeboPublicKey, FeipFunctionKey, FeipPublicKey,
    PermittedFunctions,
};
use cryptonn_group::{Element, Scalar, SecurityLevel};
use cryptonn_matrix::Matrix;
use cryptonn_smc::FixedPoint;
use serde::{Deserialize, Serialize};

/// A client (data-owner) identifier within one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClientId(pub u32);

impl core::fmt::Display for ClientId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "client-{}", self.0)
    }
}

/// A training-session identifier, scoping every message of one run when
/// many sessions share a transport (the multi-session server registry
/// and the networked key authority are keyed by this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SessionId(pub u64);

impl core::fmt::Display for SessionId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// The MLP topology a session trains (§III-D family).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpSpec {
    /// Input feature dimensionality.
    pub feature_dim: usize,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Output classes.
    pub classes: usize,
    /// Output layer + loss pairing.
    pub objective: Objective,
}

/// A named CNN architecture (§III-E); topologies are fixed by name so
/// the spec stays a small wire value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CnnArch {
    /// The paper's LeNet-5 over 1×28×28 inputs, 10 classes.
    Lenet5,
    /// The scaled-down 1×14×14 variant, with the given class count.
    LenetSmall(usize),
}

/// What the server trains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// A fully-connected CryptoNN model.
    Mlp(MlpSpec),
    /// A CryptoCNN instantiation.
    Cnn(CnnArch),
}

impl ModelSpec {
    /// The `(x_dim, classes)` geometry of the encrypted first layer —
    /// what fixes the session's two FEIP instances. For an MLP that is
    /// the feature dimension; for a CNN it is the first convolution's
    /// flattened kernel window (Algorithm 3 encrypts per-window).
    pub fn first_layer_dims(&self) -> (usize, usize) {
        match self {
            ModelSpec::Mlp(spec) => (spec.feature_dim, spec.classes),
            // LeNet-5: 5×5 kernels over 1 input channel, 10 classes.
            ModelSpec::Cnn(CnnArch::Lenet5) => (5 * 5, 10),
            // The scaled-down variant: 3×3 kernels over 1 channel.
            ModelSpec::Cnn(CnnArch::LenetSmall(classes)) => (3 * 3, *classes),
        }
    }
}

/// How a session reacts when a member disconnects mid-run.
///
/// The default is [`FailFast`](SessionPolicy::FailFast) — the seed
/// behavior, and what the golden transcripts were recorded under (the
/// field is `#[serde(default)]` on [`SessionConfig`], so transcripts
/// predating it still deserialize).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionPolicy {
    /// A disconnect fails the whole session immediately (seed
    /// behavior).
    #[default]
    FailFast,
    /// The session survives churn: a disconnected client may rejoin
    /// and re-sync from [`PublicParams`] plus a [`ResumeMsg`].
    Resume(ResumeOptions),
}

/// Knobs of [`SessionPolicy::Resume`] (a separate struct because the
/// vendored serde derive speaks tuple variants, not struct variants).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResumeOptions {
    /// When `true`, a session whose schedule stalls on a disconnected
    /// client re-shards that client's remaining steps deterministically
    /// onto the survivors (its unsent data is gone with it,
    /// FedAvg-style) instead of waiting for a rejoin.
    pub reshard: bool,
}

impl SessionPolicy {
    /// The resume policy that waits for disconnected clients to rejoin.
    pub fn resume() -> Self {
        SessionPolicy::Resume(ResumeOptions { reshard: false })
    }

    /// The resume policy that re-shards a stalled schedule onto the
    /// survivors.
    pub fn resume_resharding() -> Self {
        SessionPolicy::Resume(ResumeOptions { reshard: true })
    }

    /// True for either resume-enabled variant.
    pub fn resumes(&self) -> bool {
        matches!(self, SessionPolicy::Resume(_))
    }

    /// True when a stalled schedule triggers a deterministic re-shard.
    pub fn reshards(&self) -> bool {
        matches!(self, SessionPolicy::Resume(ResumeOptions { reshard: true }))
    }
}

/// Everything the three roles must agree on before the first batch:
/// crypto parameters, quantization, model, schedule, and the seeds that
/// make the run reproducible. Broadcast by the scheduler as the first
/// message of every session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Group security level.
    pub level: SecurityLevel,
    /// Quantization for data, labels and weights.
    pub fp: FixedPoint,
    /// Quantization for back-propagated deltas.
    pub grad_fp: FixedPoint,
    /// The permitted-function set the authority enforces.
    pub permitted: PermittedFunctions,
    /// The model the server builds.
    pub model: ModelSpec,
    /// Learning rate.
    pub lr: f64,
    /// Epochs over the sharded dataset.
    pub epochs: u32,
    /// Rows per mini-batch.
    pub batch_size: u32,
    /// Number of participating clients.
    pub clients: u32,
    /// Seed for the authority's master-key generation.
    pub authority_seed: u64,
    /// Seed for the server's weight initialization.
    pub model_seed: u64,
    /// Base seed for client encryption randomness (client `i` uses
    /// `client_seed_base + i`).
    pub client_seed_base: u64,
    /// Churn policy (defaults to fail-fast, the seed behavior).
    #[serde(default)]
    pub policy: SessionPolicy,
}

/// Client → server: announces participation and how many batches the
/// client's shard contributes per epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterClient {
    /// The registering client.
    pub client: ClientId,
    /// Batches per epoch from this client's shard.
    pub batches_per_epoch: u64,
}

/// Authority → everyone: the public keys of the session. `x_mpk` covers
/// the feature (or convolution-window) dimension, `y_mpk` the class
/// dimension; the FEBO key serves the element-wise label evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublicParams {
    /// FEIP public key for feature vectors.
    pub x_mpk: FeipPublicKey,
    /// FEIP public key for one-hot label vectors.
    pub y_mpk: FeipPublicKey,
    /// FEBO public key.
    pub febo_mpk: FeboPublicKey,
    /// The agreed quantization (repeated here so a client can be built
    /// from this one message).
    pub fp: FixedPoint,
}

/// Server → everyone: the session's global schedule is fixed — all
/// `clients` registrations arrived, so every client can derive which
/// global steps its shard occupies (in-epoch batch `i` belongs to
/// client `i mod K` and epochs repeat every `batches_per_epoch` steps)
/// and begin streaming encrypted batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainingStart {
    /// Total batches per epoch, summed over every client's shard.
    pub batches_per_epoch: u64,
}

/// Client → server: one encrypted MLP mini-batch, tagged with the
/// global step it occupies in the training schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncryptedBatchMsg {
    /// The sending client.
    pub client: ClientId,
    /// Global step index (0-based across epochs).
    pub step: u64,
    /// Schedule generation the step index was computed under (bumped by
    /// every [`ReshardSpec`]); the server silently drops batches from a
    /// stale generation. Defaults to 0 so pre-churn transcripts still
    /// deserialize.
    #[serde(default)]
    pub gen: u32,
    /// The encrypted payload.
    pub batch: EncryptedBatch,
}

/// Client → server: one encrypted CNN mini-batch (Algorithm 3 windows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncryptedImageBatchMsg {
    /// The sending client.
    pub client: ClientId,
    /// Global step index.
    pub step: u64,
    /// Schedule generation (see [`EncryptedBatchMsg::gen`]).
    #[serde(default)]
    pub gen: u32,
    /// The encrypted payload.
    pub batch: EncryptedImageBatch,
}

/// Server → authority: a batched request for FEIP function keys, one
/// per weight vector, all against the dimension-`dim` instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeipKeysRequest {
    /// The FEIP instance dimension.
    pub dim: usize,
    /// One weight vector per requested key.
    pub ys: Vec<Vec<i64>>,
}

/// Server → authority: a batched request for FEBO operation keys.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeboKeysRequest {
    /// One `(commitment, op, operand)` triple per requested key.
    pub reqs: Vec<FeboKeyRequest>,
}

/// Server → authority: every request the server can make mid-training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum KeyRequest {
    /// The FEIP public key of the given dimension (used when a step
    /// needs an instance beyond those in [`PublicParams`]).
    FeipMpk(usize),
    /// Batched FEIP function keys — the per-layer weight keys of
    /// Algorithm 2 line 4, the per-sample loss keys of §III-E2, and the
    /// cached unit keys of the secure gradient step.
    Feip(FeipKeysRequest),
    /// Batched FEBO keys — the `P − Y` evaluation keys of line 8.
    Febo(FeboKeysRequest),
}

/// Authority → server: the response to one [`KeyRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum KeyResponse {
    /// A public key.
    FeipMpk(FeipPublicKey),
    /// Derived FEIP keys, in request order.
    Feip(Vec<FeipFunctionKey>),
    /// Derived FEBO keys, in request order.
    Febo(Vec<FeboFunctionKey>),
    /// The authority refused (permitted-set violation, bad operand…).
    /// Refusals are recorded so replay reproduces them too.
    Denied(String),
}

/// Combiner → share-holder: every request a threshold combiner can
/// make of one share-holder node (DESIGN.md §17). Mirrors
/// [`KeyRequest`], but answers are *partial* derivations — a
/// share-holder never assembles (and refuses to serve) a full function
/// key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ShareRequest {
    /// This node's place in the deployment plus the common share
    /// commitments (first request after the hello, so the combiner can
    /// consensus-check the deployment before deriving anything).
    Info,
    /// Batched FEIP partials: `⟨f(j), y⟩ mod q` per weight vector.
    Feip(FeipKeysRequest),
    /// Batched FEBO partials: `cmt^{uⱼ}` plus a DLEQ proof per request.
    Febo(FeboKeysRequest),
}

/// A share-holder's public self-description, answered to
/// [`ShareRequest::Info`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShareInfo {
    /// This node's 1-based share index.
    pub index: u32,
    /// Number of share-holders in the deployment.
    pub n: u32,
    /// Quorum size.
    pub t: u32,
    /// Public share commitments `F_k = g^{u_k}`, one per node —
    /// identical on every honest replica, anchored to the FEBO public
    /// key by the combiner.
    pub febo_commitments: Vec<Element>,
}

/// Share-holder → combiner: the response to one [`ShareRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PartialKey {
    /// The node's self-description.
    Info(ShareInfo),
    /// FEIP partials, in request order.
    Feip(Vec<Scalar>),
    /// FEBO partials with DLEQ proofs, in request order.
    Febo(Vec<FeboPartial>),
    /// The node refused (permitted-set violation, bad operand, or a
    /// full-key request sent to a share-holder).
    Denied(String),
}

/// Client → inference server: one encrypted feature batch to predict
/// on. The batch carries **no labels** (it is built by
/// [`Client::encrypt_features`](cryptonn_core::Client::encrypt_features));
/// the request id is client-scoped and echoed back in the matching
/// [`Prediction`], so a client may pipeline many requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictRequest {
    /// Client-scoped request identifier, echoed in the response.
    pub id: u64,
    /// The encrypted feature batch (`batch × features`, no labels).
    pub batch: EncryptedBatch,
}

/// Inference server → client: the model outputs for one
/// [`PredictRequest`] — softmax probabilities or sigmoid activations
/// (`batch × classes`), exactly what the in-process
/// [`CryptoMlp::predict_encrypted`](cryptonn_core::CryptoMlp::predict_encrypted)
/// returns. The server learning the prediction is the paper's FE-mode
/// contract (§III-D).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// The request this answers.
    pub id: u64,
    /// Model outputs, one row per sample.
    pub outputs: Matrix<f64>,
}

/// Server → everyone: metrics after one training step. This is the
/// paper's "server learns only functional outputs" boundary: clients
/// observe training progress, never each other's data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelDelta {
    /// The global step just completed.
    pub step: u64,
    /// Which client's batch was consumed.
    pub client: ClientId,
    /// The secure loss of the step.
    pub loss: f64,
}

/// Scheduler → everyone: all clients' batches for one epoch have been
/// consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochBarrier {
    /// The epoch just completed (0-based).
    pub epoch: u32,
}

/// One survivor's stake in a re-sharded schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReshardEntry {
    /// The surviving client.
    pub client: ClientId,
    /// Batches of its own the server had consumed when the re-shard was
    /// cut. The client resumes sending from this count.
    pub delivered: u64,
    /// Batches the survivor still owes across the rest of the run.
    pub remaining: u64,
}

/// Server → everyone: the schedule was re-cut after a client dropped
/// without rejoining. Steps `>= from_step` are reassigned round-robin
/// over `survivors` (in entry order, each contributing one batch per
/// cycle while it has any remaining); the dropped client's unsent data
/// leaves the run, so the total step count shrinks to
/// [`total_steps`](ReshardSpec::total_steps).
///
/// Both sides recompute the tail schedule from this one value with
/// [`schedule`](ReshardSpec::schedule) — the re-shard is deterministic
/// by construction, which is what the churn proptests assert.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReshardSpec {
    /// The schedule generation this spec creates (monotonic, starts
    /// at 1; batches tagged with an older generation are dropped).
    pub gen: u32,
    /// First global step governed by the new schedule (everything below
    /// was already trained and is immutable).
    pub from_step: u64,
    /// The surviving clients, ordered by [`ClientId`].
    pub survivors: Vec<ReshardEntry>,
}

impl ReshardSpec {
    /// Total steps of the re-cut run: the already-trained prefix plus
    /// every survivor's remaining batches.
    pub fn total_steps(&self) -> u64 {
        self.from_step + self.survivors.iter().map(|e| e.remaining).sum::<u64>()
    }

    /// The owner of every step `from_step..total_steps()`, in order:
    /// cycle over the survivors, each contributing one batch per cycle
    /// until its `remaining` is exhausted.
    pub fn schedule(&self) -> Vec<ClientId> {
        let mut remaining: Vec<u64> = self.survivors.iter().map(|e| e.remaining).collect();
        let mut out = Vec::new();
        while remaining.iter().any(|&r| r > 0) {
            for (i, entry) in self.survivors.iter().enumerate() {
                if remaining[i] > 0 {
                    remaining[i] -= 1;
                    out.push(entry.client);
                }
            }
        }
        out
    }

    /// Which client owns the given global step under this spec.
    /// `None` for steps before `from_step` (owned by the previous
    /// generation) or past the end of the run.
    pub fn owner(&self, step: u64) -> Option<ClientId> {
        if step < self.from_step {
            return None;
        }
        let idx = usize::try_from(step - self.from_step).ok()?;
        self.schedule().get(idx).copied()
    }

    /// The `(global step, nth-remaining-batch)` pairs assigned to one
    /// survivor, in emission order. The client maps
    /// `nth-remaining-batch` to its local shard index as
    /// `(delivered + nth) mod shard_batches`.
    pub fn steps_for(&self, client: ClientId) -> Vec<(u64, u64)> {
        let mut nth = 0u64;
        self.schedule()
            .iter()
            .enumerate()
            .filter(|(_, owner)| **owner == client)
            .map(|(idx, _)| {
                let pair = (self.from_step + idx as u64, nth);
                nth += 1;
                pair
            })
            .collect()
    }

    /// The survivor entry for one client, if it survived the cut.
    pub fn survivor(&self, client: ClientId) -> Option<&ReshardEntry> {
        self.survivors.iter().find(|e| e.client == client)
    }
}

/// Server → one rejoining client: where to pick the schedule back up.
/// Sent in response to a `Register` from a client the server already
/// knows, under a [`SessionPolicy`] that resumes. The client rebuilds
/// its encryptor from the (re-delivered) [`PublicParams`], resets its
/// send cursor to `delivered`, and streams the remainder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResumeMsg {
    /// The rejoining client this message addresses.
    pub client: ClientId,
    /// Batches of this client's the server has consumed; the client
    /// re-sends everything after (including any batches that were in
    /// flight when it dropped).
    pub delivered: u64,
    /// The fixed global schedule width (re-stated because the client
    /// may have dropped before [`TrainingStart`] reached it).
    pub batches_per_epoch: u64,
    /// Current schedule generation.
    pub gen: u32,
    /// The active re-shard, if the schedule was re-cut while the client
    /// was away.
    pub reshard: Option<ReshardSpec>,
}

/// Server → everyone: the session's final state — the replay fixpoint a
/// re-executed server must reproduce bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSummary {
    /// Total training steps taken.
    pub steps: u64,
    /// Per-step secure losses.
    pub losses: Vec<f64>,
    /// Final first-layer weights (the encrypted-path parameters).
    pub final_w1: Matrix<f64>,
    /// Final first-layer bias.
    pub final_b1: Matrix<f64>,
}

/// The session protocol's message alphabet. A [`Transcript`] is a
/// sequence of these, each wrapped in an addressed
/// [`Envelope`](crate::Envelope).
///
/// [`Transcript`]: crate::Transcript
// Payload sizes are dominated by heap-side ciphertext vectors, not the
// inline variant size, so boxing the big variants would buy one pointer
// of stack at the cost of an indirection on every recorded message.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireMessage {
    /// Session parameters (scheduler broadcast, first message).
    Config(SessionConfig),
    /// Client registration.
    Register(RegisterClient),
    /// Public-key distribution.
    PublicParams(PublicParams),
    /// Schedule fixed: all clients registered, streaming may begin.
    Start(TrainingStart),
    /// An encrypted MLP batch.
    Batch(EncryptedBatchMsg),
    /// An encrypted CNN batch.
    ImageBatch(EncryptedImageBatchMsg),
    /// A server → authority key request.
    KeyRequest(KeyRequest),
    /// The authority's response.
    KeyResponse(KeyResponse),
    /// A combiner → share-holder partial-derivation request
    /// (threshold mode).
    ShareRequest(ShareRequest),
    /// The share-holder's response (threshold mode).
    PartialKey(PartialKey),
    /// Per-step training metrics.
    Delta(ModelDelta),
    /// Epoch boundary.
    Epoch(EpochBarrier),
    /// Final model fingerprint.
    Summary(SessionSummary),
    /// An encrypted inference request (serving phase).
    Predict(PredictRequest),
    /// The inference server's answer to one request.
    Prediction(Prediction),
    /// Resume instructions for one rejoining client (churn).
    Resume(ResumeMsg),
    /// A deterministic schedule re-cut after an unrecovered drop
    /// (churn).
    Reshard(ReshardSpec),
}

impl WireMessage {
    /// A short tag for diagnostics and transcript browsing.
    pub fn kind(&self) -> &'static str {
        match self {
            WireMessage::Config(_) => "config",
            WireMessage::Register(_) => "register",
            WireMessage::PublicParams(_) => "public-params",
            WireMessage::Start(_) => "start",
            WireMessage::Batch(_) => "batch",
            WireMessage::ImageBatch(_) => "image-batch",
            WireMessage::KeyRequest(_) => "key-request",
            WireMessage::KeyResponse(_) => "key-response",
            WireMessage::ShareRequest(_) => "share-request",
            WireMessage::PartialKey(_) => "partial-key",
            WireMessage::Delta(_) => "delta",
            WireMessage::Epoch(_) => "epoch",
            WireMessage::Summary(_) => "summary",
            WireMessage::Predict(_) => "predict",
            WireMessage::Prediction(_) => "prediction",
            WireMessage::Resume(_) => "resume",
            WireMessage::Reshard(_) => "reshard",
        }
    }
}
