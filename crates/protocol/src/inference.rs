//! The inference serving state machine: encrypted predictions against
//! a frozen trained model.
//!
//! Training sessions end with a trained model on the server; the
//! serving phase exposes it to predict clients without ever seeing
//! their features in the clear. [`InferenceSession`] is the server
//! side, as an event-driven state machine in the same style as the
//! training roles: [`PredictRequest`]s come in, [`Prediction`]s go
//! back, and the transport layer (`cryptonn-net`) is a thin pump.
//!
//! Two properties distinguish serving from training:
//!
//! - **The model is frozen**, so the FEIP function keys for its
//!   first-layer weights never change. The session therefore reaches
//!   the authority through a
//!   [`CachingKeyService`] wrapped
//!   around the wire-backed [`ChannelKeyService`]: the first sweep
//!   derives the keys, every later request is **authority-free** (the
//!   cache-key correctness argument is DESIGN.md §12).
//! - **Requests are coalesced**: up to
//!   [`max_batch`](InferenceOptions::max_batch) in-flight requests are
//!   served in one
//!   [`predict_encrypted_many`](cryptonn_core::CryptoMlp::predict_encrypted_many)
//!   sweep, so every ciphertext column across every coalesced request
//!   shares one set of wNAF row recodings and a **single** batched
//!   modular inversion.
//!
//! Served outputs are bit-identical to in-process
//! [`CryptoMlp::predict_encrypted`] on the same ciphertexts — the
//! equivalence the serving tests and the `predict_serve` telemetry pin
//! down.
//!
//! [`CryptoMlp::predict_encrypted`]: cryptonn_core::CryptoMlp::predict_encrypted

use std::collections::VecDeque;
use std::sync::Arc;

use cryptonn_core::{CryptoMlp, CryptoNnError};
use cryptonn_fe::{CachingKeyService, KeyCacheStats};

use crate::error::ProtocolError;
use crate::messages::{ClientId, PredictRequest, Prediction, PublicParams, WireMessage};
use crate::session::{AuthorityChannel, ChannelKeyService, Outbound};
use crate::transcript::Party;

/// Tuning for an [`InferenceSession`].
#[derive(Debug, Clone, Copy)]
pub struct InferenceOptions {
    /// Coalescing cap `B`: how many pending requests one secure sweep
    /// serves at most. `1` disables coalescing (every request is its
    /// own sweep — the per-request baseline of the serving benchmarks).
    pub max_batch: usize,
    /// Capacity of the functional-key cache, in FEIP keys. `0` disables
    /// caching: every sweep re-derives through the authority channel —
    /// the "cache off" benchmark arm.
    pub key_cache: usize,
}

impl Default for InferenceOptions {
    fn default() -> Self {
        Self {
            max_batch: 4,
            key_cache: 1024,
        }
    }
}

/// The inference server role: serves encrypted predict requests from a
/// frozen trained [`CryptoMlp`], coalescing pending requests into
/// shared secure sweeps and caching the model's function keys.
///
/// Drivers queue client messages through
/// [`handle_message`](Self::handle_message) and serve them with
/// [`flush`](Self::flush) once their inbound backlog is drained, so
/// latency under light load stays one sweep deep while bursts
/// amortize. Queuing and serving are deliberately separate calls:
/// queue-time errors are attributable to one client, sweep-time
/// errors to the whole window.
pub struct InferenceSession {
    model: CryptoMlp,
    // Shared, not owned: N shard sessions behind one front door hold
    // the same warmed cache (and its single authority link), so a key
    // derived by any shard is a hit for every other.
    keys: Arc<CachingKeyService<ChannelKeyService>>,
    pending: VecDeque<(ClientId, PredictRequest)>,
    max_batch: usize,
    served: u64,
    sweeps: u64,
}

impl core::fmt::Debug for InferenceSession {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("InferenceSession")
            .field("pending", &self.pending.len())
            .field("max_batch", &self.max_batch)
            .field("served", &self.served)
            .field("sweeps", &self.sweeps)
            .finish_non_exhaustive()
    }
}

impl InferenceSession {
    /// Builds the serving session around a frozen trained model, with
    /// `link` as its line to the key authority (used on cache misses
    /// only).
    pub fn new(
        params: &PublicParams,
        link: Box<dyn AuthorityChannel>,
        model: CryptoMlp,
        options: InferenceOptions,
    ) -> Self {
        let keys = Arc::new(CachingKeyService::new(
            ChannelKeyService::new(params, link),
            options.key_cache,
        ));
        Self::with_shared_keys(keys, model, options)
    }

    /// Builds a serving session over an *already shared* key service —
    /// the sharded-fleet constructor. Every shard of a front door calls
    /// this with the same `Arc`, so the frozen model's function keys
    /// are derived once fleet-wide: correctness holds because the cache
    /// is keyed on the exact quantized weight vectors (DESIGN.md §12),
    /// which are identical across shards replicated from one snapshot.
    pub fn with_shared_keys(
        keys: Arc<CachingKeyService<ChannelKeyService>>,
        model: CryptoMlp,
        options: InferenceOptions,
    ) -> Self {
        Self {
            model,
            keys,
            pending: VecDeque::new(),
            max_batch: options.max_batch.max(1),
            served: 0,
            sweeps: 0,
        }
    }

    /// The frozen model being served.
    pub fn model(&self) -> &CryptoMlp {
        &self.model
    }

    /// Backs the served model's BSGS table cache with an on-disk
    /// directory so a serving restart warm-starts its tables instead of
    /// rebuilding them.
    pub fn attach_table_cache(&mut self, dir: std::path::PathBuf) {
        self.model.attach_table_cache(dir);
    }

    /// Requests currently waiting for a sweep.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Requests answered so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Secure sweeps run so far (≤ served; the gap is the coalescing).
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// The functional-key cache counters.
    pub fn cache_stats(&self) -> KeyCacheStats {
        self.keys.stats()
    }

    /// The event-driven surface: validates and queues one predict
    /// request. Requests are *served* by [`flush`](Self::flush) — never
    /// here — so every error this method returns is attributable to
    /// `from` alone (a driver may safely drop that one connection),
    /// while sweep failures, which lose a whole coalescing window, only
    /// ever surface from `flush`.
    ///
    /// # Errors
    ///
    /// - [`ProtocolError::Training`] (a shape mismatch) if the
    ///   request's feature dimension does not match the served model —
    ///   rejected *before* queuing, so one malformed request never
    ///   poisons a coalesced sweep carrying other clients' work;
    /// - [`ProtocolError::Unexpected`] for message kinds the serving
    ///   role never consumes.
    pub fn handle_message(
        &mut self,
        from: ClientId,
        msg: &WireMessage,
    ) -> Result<Vec<Outbound>, ProtocolError> {
        match msg {
            WireMessage::Predict(req) => {
                let expected = self.model.first_layer().in_dim();
                if req.batch.feature_dim() != expected {
                    return Err(ProtocolError::Training(CryptoNnError::BatchShapeMismatch {
                        expected,
                        got: req.batch.feature_dim(),
                        what: "feature dimension",
                    }));
                }
                self.pending.push_back((from, req.clone()));
                Ok(Vec::new())
            }
            other => Err(ProtocolError::Unexpected {
                role: "inference-server",
                kind: other.kind(),
            }),
        }
    }

    /// Serves **every** pending request, in coalescing windows of at
    /// most [`max_batch`](InferenceOptions::max_batch) requests per
    /// secure sweep. Drivers call this after draining their inbound
    /// backlog — the momentary backlog *is* the coalescing window.
    ///
    /// # Errors
    ///
    /// Training-stack failures from the sweeps (an unreachable
    /// authority, a broken key response). Such a failure is collective
    /// — the drained window's requests are lost — so a driver should
    /// tell every waiting client rather than blame one.
    pub fn flush(&mut self) -> Result<Vec<Outbound>, ProtocolError> {
        let mut out = Vec::new();
        while !self.pending.is_empty() {
            out.extend(self.sweep()?);
        }
        Ok(out)
    }

    /// One coalesced sweep over up to `max_batch` pending requests.
    fn sweep(&mut self) -> Result<Vec<Outbound>, ProtocolError> {
        let take = self.pending.len().min(self.max_batch);
        if take == 0 {
            return Ok(Vec::new());
        }
        let window: Vec<(ClientId, PredictRequest)> = self.pending.drain(..take).collect();
        let batches: Vec<&cryptonn_core::EncryptedBatch> =
            window.iter().map(|(_, req)| &req.batch).collect();
        let outputs = self
            .model
            .predict_encrypted_many(self.keys.as_ref(), &batches)?;
        self.sweeps += 1;
        self.served += window.len() as u64;
        Ok(window
            .into_iter()
            .zip(outputs)
            .map(|((client, req), outputs)| {
                Outbound::to(
                    Party::Client(client.0),
                    WireMessage::Prediction(Prediction {
                        id: req.id,
                        outputs,
                    }),
                )
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{MlpSpec, SessionConfig};
    use crate::runner::mlp_session_config;
    use crate::session::AuthoritySession;
    use crate::KeyRequest;
    use crate::KeyResponse;
    use cryptonn_core::{Client, CryptoNnConfig, Objective};
    use cryptonn_matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn config() -> SessionConfig {
        mlp_session_config(
            MlpSpec {
                feature_dim: 4,
                hidden: vec![3],
                classes: 2,
                objective: Objective::SoftmaxCrossEntropy,
            },
            1,
            1,
            2,
            0.5,
        )
    }

    struct CountingChannel {
        authority: Arc<AuthoritySession>,
        exchanges: Arc<AtomicUsize>,
    }

    impl AuthorityChannel for CountingChannel {
        fn exchange(&mut self, req: KeyRequest) -> Result<KeyResponse, ProtocolError> {
            self.exchanges.fetch_add(1, Ordering::SeqCst);
            Ok(self.authority.handle(&req))
        }
    }

    fn serving_setup(
        options: InferenceOptions,
    ) -> (InferenceSession, Client, CryptoMlp, Arc<AtomicUsize>) {
        let config = config();
        let authority = Arc::new(AuthoritySession::new(&config));
        let params = authority.public_params_for(&config);
        let cc = CryptoNnConfig {
            level: config.level,
            fp: config.fp,
            grad_fp: config.grad_fp,
            parallelism: cryptonn_parallel::Parallelism::Serial,
        };
        // Twin frozen models from the same seed: one served, one the
        // in-process reference.
        let mut rng = StdRng::seed_from_u64(config.model_seed);
        let served = CryptoMlp::new(4, &[3], 2, Objective::SoftmaxCrossEntropy, cc, &mut rng);
        let mut rng = StdRng::seed_from_u64(config.model_seed);
        let reference = CryptoMlp::new(4, &[3], 2, Objective::SoftmaxCrossEntropy, cc, &mut rng);

        let exchanges = Arc::new(AtomicUsize::new(0));
        let link = Box::new(CountingChannel {
            authority: Arc::clone(&authority),
            exchanges: Arc::clone(&exchanges),
        });
        let session = InferenceSession::new(&params, link, served, options);
        let client = Client::from_keys(
            params.x_mpk.clone(),
            params.y_mpk.clone(),
            params.febo_mpk.clone(),
            params.fp,
            77,
        );
        (session, client, reference, exchanges)
    }

    fn request(client: &mut Client, id: u64, rows: usize) -> PredictRequest {
        let x = Matrix::from_fn(rows, 4, |r, c| ((id as usize + r * 3 + c) % 7) as f64 / 7.0);
        PredictRequest {
            id,
            batch: client.encrypt_features(&x).unwrap(),
        }
    }

    /// Requests queue without being served, then one flush answers all
    /// of them in a single coalesced sweep — addressed to their
    /// requesters, ids echoed, outputs bit-identical to the in-process
    /// predict path.
    #[test]
    fn coalesced_window_served_bit_identically() {
        let (mut session, mut client, mut reference, _) = serving_setup(InferenceOptions {
            max_batch: 3,
            key_cache: 64,
        });
        // Same authority master keys: the reference decrypts the same
        // ciphertexts through a co-located authority session.
        let ref_authority = AuthoritySession::new(&config());

        let reqs: Vec<PredictRequest> = (0..3).map(|i| request(&mut client, i, 2)).collect();
        for (i, req) in reqs.iter().enumerate() {
            let from = ClientId([0, 1, 0][i]);
            assert!(
                session
                    .handle_message(from, &WireMessage::Predict(req.clone()))
                    .unwrap()
                    .is_empty(),
                "queuing never serves"
            );
        }
        assert_eq!(session.pending(), 3);

        let out = session.flush().unwrap();
        assert_eq!(out.len(), 3, "full window answered in one sweep");
        assert_eq!(session.pending(), 0);
        assert_eq!(session.served(), 3);
        assert_eq!(session.sweeps(), 1);

        for (i, ob) in out.iter().enumerate() {
            let expected_party = [Party::Client(0), Party::Client(1), Party::Client(0)][i];
            assert_eq!(ob.to, expected_party);
            let WireMessage::Prediction(p) = &ob.msg else {
                panic!("expected a prediction, got {}", ob.msg.kind());
            };
            assert_eq!(p.id, i as u64);
            let direct = reference
                .predict_encrypted(ref_authority.authority(), &reqs[i].batch)
                .unwrap();
            assert_eq!(p.outputs, direct, "served output diverged from in-process");
        }
    }

    /// `flush` serves a partial window; with the cache on, only the
    /// first sweep touches the authority.
    #[test]
    fn flush_serves_partials_and_cache_makes_serving_authority_free() {
        let (mut session, mut client, _, exchanges) = serving_setup(InferenceOptions {
            max_batch: 8,
            key_cache: 64,
        });
        for i in 0..3 {
            let req = request(&mut client, i, 1);
            assert!(session
                .handle_message(ClientId(0), &WireMessage::Predict(req))
                .unwrap()
                .is_empty());
        }
        let out = session.flush().unwrap();
        assert_eq!(out.len(), 3);
        let after_first = exchanges.load(Ordering::SeqCst);
        assert!(after_first > 0, "first sweep must derive keys");

        // Steady state: every further sweep is authority-free.
        for i in 3..6 {
            let req = request(&mut client, i, 1);
            session
                .handle_message(ClientId(0), &WireMessage::Predict(req))
                .unwrap();
            session.flush().unwrap();
        }
        assert_eq!(
            exchanges.load(Ordering::SeqCst),
            after_first,
            "cached serving must not touch the authority again"
        );
        let stats = session.cache_stats();
        assert!(stats.hits > 0);

        // Cache off: the same steady state keeps paying the authority.
        let (mut uncached, mut client2, _, exchanges2) = serving_setup(InferenceOptions {
            max_batch: 8,
            key_cache: 0,
        });
        for i in 0..3 {
            let req = request(&mut client2, i, 1);
            uncached
                .handle_message(ClientId(0), &WireMessage::Predict(req))
                .unwrap();
            uncached.flush().unwrap();
        }
        assert!(
            exchanges2.load(Ordering::SeqCst) >= 3,
            "uncached serving derives per sweep"
        );
    }

    /// A wrong-dimension request is refused before queuing and leaves
    /// queued work intact.
    #[test]
    fn bad_request_rejected_without_poisoning_the_window() {
        let (mut session, mut client, _, _) = serving_setup(InferenceOptions {
            max_batch: 4,
            key_cache: 64,
        });
        session
            .handle_message(
                ClientId(0),
                &WireMessage::Predict(request(&mut client, 0, 1)),
            )
            .unwrap();

        // A foreign-geometry client.
        let bad_config = mlp_session_config(
            MlpSpec {
                feature_dim: 6,
                hidden: vec![3],
                classes: 2,
                objective: Objective::SoftmaxCrossEntropy,
            },
            1,
            1,
            2,
            0.5,
        );
        let bad_authority = AuthoritySession::new(&bad_config);
        let bad_params = bad_authority.public_params_for(&bad_config);
        let mut bad_client = Client::from_keys(
            bad_params.x_mpk.clone(),
            bad_params.y_mpk.clone(),
            bad_params.febo_mpk.clone(),
            bad_params.fp,
            5,
        );
        let bad = PredictRequest {
            id: 9,
            batch: bad_client.encrypt_features(&Matrix::zeros(1, 6)).unwrap(),
        };
        let err = session
            .handle_message(ClientId(1), &WireMessage::Predict(bad))
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Training(_)));
        assert_eq!(session.pending(), 1, "queued work untouched");
        assert_eq!(session.flush().unwrap().len(), 1);
    }

    /// The serving role consumes nothing but predict requests.
    #[test]
    fn foreign_messages_are_unexpected() {
        let (mut session, _, _, _) = serving_setup(InferenceOptions::default());
        let err = session
            .handle_message(ClientId(0), &WireMessage::Config(config()))
            .unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::Unexpected {
                role: "inference-server",
                ..
            }
        ));
    }
}
